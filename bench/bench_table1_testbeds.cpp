// Table 1: BoFL testbed hardware specifications — the DVFS frequency
// ranges, step counts, and resulting configuration-space sizes of the two
// simulated devices.
#include "figure_common.hpp"

namespace {

void print_device(const bofl::device::DeviceModel& model) {
  const auto& space = model.space();
  std::printf("%s\n", model.name().c_str());
  const auto row = [](const char* unit,
                      const bofl::device::FrequencyTable& table) {
    std::printf("  %-6s %5.2f GHz -> %5.2f GHz  (%2zu steps)\n", unit,
                table.min().value(), table.max().value(), table.size());
  };
  row("CPU", space.cpu_table());
  row("GPU", space.gpu_table());
  row("MEM", space.mem_table());
  std::printf("  total configurations |X| = %zu\n", space.size());
}

}  // namespace

int main() {
  bofl::bench::print_header("Table 1: Testbed hardware specifications");
  print_device(bofl::device::jetson_agx());
  print_device(bofl::device::jetson_tx2());
  std::printf(
      "\nPaper reference: AGX 0.42-2.26 GHz x25 / 0.11-1.38 x14 / "
      "0.20-2.13 x6 (2100 configs);\n"
      "                 TX2 0.34-2.03 x12 / 0.11-1.30 x13 / 0.41-1.87 x6 "
      "(936 configs).\n");
  return 0;
}
