// Figure 9: energy consumption for the first 40 rounds of FL training on
// the AGX testbed with Tmax/Tmin = 2, for the three paper tasks.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  bofl::bench::configure_threads(argc, argv);  // --threads N
  bofl::bench::print_energy_figure("Figure 9", "fig9_energy_ddl2", 2.0);
  std::printf(
      "\nPaper reference (Fig. 9a): improvement 22.3%%, regret 3.48%%; BoFL "
      "explores ~10 rounds then exploits.\n");
  return 0;
}
