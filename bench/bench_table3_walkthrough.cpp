// Table 3: walkthrough of the exploration phases — per round, the number of
// configurations explored and how many of them end up in the final
// constructed Pareto front.  Red/blue in the paper = phase 1 / phase 2;
// here the phase number is printed per row.
#include <algorithm>
#include <set>

#include "figure_common.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  bench::print_header(
      "Table 3: explorations and Pareto points per round (AGX, Tmax/Tmin=2)",
      "phase 1 = safe random exploration, phase 2 = Pareto construction");

  for (const core::FlTaskSpec& task : core::paper_tasks(agx.name())) {
    core::TaskResult result;
    const auto controller =
        bench::run_bofl_only(agx, task, 2.0, result);
    const auto pareto_ids = controller->pareto_flat_ids();
    const std::set<std::size_t> pareto(pareto_ids.begin(), pareto_ids.end());

    std::printf("\n%s\n", task.name.c_str());
    std::printf("  %-6s %-6s %-6s %-8s\n", "round", "phase", "#exp",
                "#pareto");
    std::size_t total_explored = 0;
    std::size_t total_pareto = 0;
    for (const core::RoundTrace& trace : result.rounds) {
      if (trace.phase == core::Phase::kExploitation) {
        break;
      }
      std::size_t in_front = 0;
      for (std::size_t flat : trace.explored_flat_ids) {
        in_front += pareto.count(flat);
      }
      std::printf("  %-6lld %-6d %-6zu %-8zu\n",
                  static_cast<long long>(trace.index + 1),
                  static_cast<int>(trace.phase),
                  trace.explored_flat_ids.size(), in_front);
      total_explored += trace.explored_flat_ids.size();
      total_pareto += in_front;
    }
    std::printf("  %-6s %-6s %-6zu %-8zu\n", "total", "", total_explored,
                total_pareto);
  }
  std::printf(
      "\nPaper reference totals: ViT 70 explored / 20 Pareto, ResNet50 "
      "68 / 13, LSTM 66 / 14.\n");
  return 0;
}
