// Figure 11: BoFL-constructed Pareto fronts vs the actual (offline-profiled)
// Pareto fronts on the AGX testbed, per task.  Prints both point series
// (per-job latency [s], energy [J]) plus coverage statistics, then an A/B
// of the phase-1 exploration sampler (Sobol vs Halton) on hypervolume
// coverage.  Writes BENCH_fig11_pareto_fronts.json.
#include <algorithm>
#include <set>

#include "figure_common.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/quality.hpp"

int main(int argc, char** argv) {
  using namespace bofl;
  bench::configure_threads(argc, argv);
  const device::DeviceModel agx = device::jetson_agx();
  bench::print_header(
      "Figure 11: BoFL searched Pareto fronts vs actual fronts (AGX, "
      "Tmax/Tmin = 2)");

  telemetry::JsonValue json_tasks = telemetry::JsonValue::array();
  for (const core::FlTaskSpec& task : core::paper_tasks(agx.name())) {
    core::TaskResult result;
    const auto controller = bench::run_bofl_only(agx, task, 2.0, result);

    // Actual front from exhaustive ground-truth profiling.
    const auto truth = core::true_pareto_profiles(agx, task.profile);
    // BoFL front: measured-Pareto configurations, scored at their *true*
    // values (the figure plots real performance).
    std::vector<pareto::Point2> constructed;
    for (std::size_t flat : controller->pareto_flat_ids()) {
      const device::DvfsConfig config = agx.space().from_flat(flat);
      constructed.push_back({agx.energy(task.profile, config).value(),
                             agx.latency(task.profile, config).value()});
    }
    std::sort(constructed.begin(), constructed.end(),
              [](const auto& a, const auto& b) { return a.f2 < b.f2; });

    std::printf("\n%s\n", task.name.c_str());
    std::printf("  actual Pareto front (%zu points):\n", truth.size());
    for (const auto& p : truth) {
      std::printf("    T=%.3fs  E=%.2fJ\n", p.latency_per_job,
                  p.energy_per_job);
    }
    std::printf("  BoFL constructed front (%zu points):\n",
                constructed.size());
    for (const auto& p : constructed) {
      std::printf("    T=%.3fs  E=%.2fJ\n", p.f2, p.f1);
    }

    std::vector<pareto::Point2> truth_points;
    for (const auto& p : truth) {
      truth_points.push_back({p.energy_per_job, p.latency_per_job});
    }
    const pareto::Point2 ref{20.0, 3.5};
    const double hv_truth = pareto::hypervolume_2d(truth_points, ref);
    const double hv_bofl = pareto::hypervolume_2d(constructed, ref);
    const double eps = pareto::additive_epsilon(constructed, truth_points);
    const double igd =
        pareto::inverted_generational_distance(constructed, truth_points);
    std::printf(
        "  explored %zu/%zu configurations (%.1f%% of the space); "
        "hypervolume coverage %.1f%% of actual front\n",
        controller->engine().num_observed_candidates(), agx.space().size(),
        100.0 *
            static_cast<double>(
                controller->engine().num_observed_candidates()) /
            static_cast<double>(agx.space().size()),
        100.0 * hv_bofl / hv_truth);
    std::printf(
        "  front quality: additive epsilon %.3f, inverted generational "
        "distance %.3f\n",
        eps, igd);

    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("task", task.name)
        .set("actual_front_points", static_cast<std::uint64_t>(truth.size()))
        .set("constructed_front_points",
             static_cast<std::uint64_t>(constructed.size()))
        .set("explored_configs",
             static_cast<std::uint64_t>(
                 controller->engine().num_observed_candidates()))
        .set("hv_coverage_pct", 100.0 * hv_bofl / hv_truth)
        .set("additive_epsilon", eps)
        .set("igd", igd);
    json_tasks.push_back(std::move(row));
  }

  // A/B: the phase-1 exploration sampler.  Same tasks, same seeds, same
  // stopping rule — only the quasi-random generator behind the starting
  // points differs.  Reported as true-front hypervolume coverage and
  // exploration cost, so the growth per explored configuration is
  // comparable across samplers.
  bench::print_header(
      "Sampler A/B: Sobol vs Halton phase-1 exploration (AGX, ratio 2)");
  std::printf(
      "  %-14s | %-6s | %8s | %9s | %8s\n", "task", "qrng", "explored",
      "hv cov %", "eps");
  telemetry::JsonValue json_ab = telemetry::JsonValue::array();
  for (const core::FlTaskSpec& task : core::paper_tasks(agx.name())) {
    const auto truth = core::true_pareto_profiles(agx, task.profile);
    std::vector<pareto::Point2> truth_points;
    for (const auto& p : truth) {
      truth_points.push_back({p.energy_per_job, p.latency_per_job});
    }
    const pareto::Point2 ref{20.0, 3.5};
    const double hv_truth = pareto::hypervolume_2d(truth_points, ref);
    for (const core::ExplorationSampler sampler :
         {core::ExplorationSampler::kSobol,
          core::ExplorationSampler::kHalton}) {
      core::BoflOptions options = bench::default_bofl_options(agx);
      options.exploration_sampler = sampler;
      core::TaskResult result;
      const auto controller =
          bench::run_bofl_only(agx, task, 2.0, result, {}, &options);
      std::vector<pareto::Point2> constructed;
      for (std::size_t flat : controller->pareto_flat_ids()) {
        const device::DvfsConfig config = agx.space().from_flat(flat);
        constructed.push_back({agx.energy(task.profile, config).value(),
                               agx.latency(task.profile, config).value()});
      }
      const double hv = pareto::hypervolume_2d(constructed, ref);
      const double eps =
          pareto::additive_epsilon(constructed, truth_points);
      const std::size_t explored =
          controller->engine().num_observed_candidates();
      std::printf("  %-14s | %-6s | %8zu | %9.1f | %8.3f\n",
                  task.name.c_str(), core::to_string(sampler), explored,
                  100.0 * hv / hv_truth, eps);
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("task", task.name)
          .set("sampler", core::to_string(sampler))
          .set("explored_configs", static_cast<std::uint64_t>(explored))
          .set("hv_coverage_pct", 100.0 * hv / hv_truth)
          .set("additive_epsilon", eps);
      json_ab.push_back(std::move(row));
    }
  }
  std::printf(
      "\nBoth samplers construct near-identical fronts; the choice is not "
      "load-bearing for the paper's coverage claim.\n");

  telemetry::JsonValue metrics = telemetry::JsonValue::object();
  metrics.set("tasks", std::move(json_tasks))
      .set("sampler_ab", std::move(json_ab));
  (void)bench::write_bench_json("fig11_pareto_fronts", std::move(metrics));

  std::printf(
      "\nPaper reference: the constructed front closely tracks the actual "
      "front after exploring ~3%% of the space.\n");
  return 0;
}
