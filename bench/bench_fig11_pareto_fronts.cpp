// Figure 11: BoFL-constructed Pareto fronts vs the actual (offline-profiled)
// Pareto fronts on the AGX testbed, per task.  Prints both point series
// (per-job latency [s], energy [J]) plus coverage statistics.
#include <algorithm>
#include <set>

#include "figure_common.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/quality.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  bench::print_header(
      "Figure 11: BoFL searched Pareto fronts vs actual fronts (AGX, "
      "Tmax/Tmin = 2)");

  for (const core::FlTaskSpec& task : core::paper_tasks(agx.name())) {
    core::TaskResult result;
    const auto controller = bench::run_bofl_only(agx, task, 2.0, result);

    // Actual front from exhaustive ground-truth profiling.
    const auto truth = core::true_pareto_profiles(agx, task.profile);
    // BoFL front: measured-Pareto configurations, scored at their *true*
    // values (the figure plots real performance).
    std::vector<pareto::Point2> constructed;
    for (std::size_t flat : controller->pareto_flat_ids()) {
      const device::DvfsConfig config = agx.space().from_flat(flat);
      constructed.push_back({agx.energy(task.profile, config).value(),
                             agx.latency(task.profile, config).value()});
    }
    std::sort(constructed.begin(), constructed.end(),
              [](const auto& a, const auto& b) { return a.f2 < b.f2; });

    std::printf("\n%s\n", task.name.c_str());
    std::printf("  actual Pareto front (%zu points):\n", truth.size());
    for (const auto& p : truth) {
      std::printf("    T=%.3fs  E=%.2fJ\n", p.latency_per_job,
                  p.energy_per_job);
    }
    std::printf("  BoFL constructed front (%zu points):\n",
                constructed.size());
    for (const auto& p : constructed) {
      std::printf("    T=%.3fs  E=%.2fJ\n", p.f2, p.f1);
    }

    std::vector<pareto::Point2> truth_points;
    for (const auto& p : truth) {
      truth_points.push_back({p.energy_per_job, p.latency_per_job});
    }
    const pareto::Point2 ref{20.0, 3.5};
    const double hv_truth = pareto::hypervolume_2d(truth_points, ref);
    const double hv_bofl = pareto::hypervolume_2d(constructed, ref);
    const double eps = pareto::additive_epsilon(constructed, truth_points);
    const double igd =
        pareto::inverted_generational_distance(constructed, truth_points);
    std::printf(
        "  explored %zu/%zu configurations (%.1f%% of the space); "
        "hypervolume coverage %.1f%% of actual front\n",
        controller->engine().num_observed_candidates(), agx.space().size(),
        100.0 *
            static_cast<double>(
                controller->engine().num_observed_candidates()) /
            static_cast<double>(agx.space().size()),
        100.0 * hv_bofl / hv_truth);
    std::printf(
        "  front quality: additive epsilon %.3f, inverted generational "
        "distance %.3f\n",
        eps, igd);
  }
  std::printf(
      "\nPaper reference: the constructed front closely tracks the actual "
      "front after exploring ~3%% of the space.\n");
  return 0;
}
