// Micro-benchmarks: Gaussian-process conditioning and prediction scaling.
// The MBO update refits two GPs and sweeps ~2100 candidates per greedy
// pick; these numbers justify the Fig. 13 cost model.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/hyperopt.hpp"

namespace {

using namespace bofl;

std::pair<std::vector<linalg::Vector>, std::vector<double>> make_data(
    std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector x{rng.uniform(), rng.uniform(), rng.uniform()};
    ys.push_back(std::sin(4.0 * x[0]) + 0.5 * x[1] * x[1] - x[2]);
    xs.push_back(std::move(x));
  }
  return {std::move(xs), std::move(ys)};
}

gp::Kernel default_kernel() {
  return {gp::KernelFamily::kMatern52, 1.0, {0.3, 0.3, 0.3}};
}

void BM_GpCondition(benchmark::State& state) {
  const auto [xs, ys] = make_data(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    gp::GaussianProcess model(default_kernel(), 1e-4);
    model.condition(xs, ys);
    benchmark::DoNotOptimize(model.num_observations());
  }
}
BENCHMARK(BM_GpCondition)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_GpPredict(benchmark::State& state) {
  const auto [xs, ys] = make_data(static_cast<std::size_t>(state.range(0)), 2);
  gp::GaussianProcess model(default_kernel(), 1e-4);
  model.condition(xs, ys);
  Rng rng(3);
  const linalg::Vector query{rng.uniform(), rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(query));
  }
}
BENCHMARK(BM_GpPredict)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_GpCandidateSweep(benchmark::State& state) {
  // One full EHVI-style sweep: predict all 2100 AGX candidates.
  const auto [xs, ys] = make_data(70, 4);
  gp::GaussianProcess model(default_kernel(), 1e-4);
  model.condition(xs, ys);
  const auto [candidates, unused] = make_data(2100, 5);
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& c : candidates) {
      sum += model.predict(c).mean;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GpCandidateSweep);

void BM_GpHyperparameterFit(benchmark::State& state) {
  const auto [xs, ys] = make_data(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    Rng rng(7);
    gp::HyperoptOptions options;
    options.num_restarts = 2;
    options.max_iterations_per_start = 100;
    benchmark::DoNotOptimize(gp::fit_hyperparameters(
        gp::KernelFamily::kMatern52, xs, ys, rng, options));
  }
}
BENCHMARK(BM_GpHyperparameterFit)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
