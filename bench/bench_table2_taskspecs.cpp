// Table 2: federated learning task specifications — B, E, N per device,
// |T| and the measured T_min (round time at x_max) per task and device.
#include "figure_common.hpp"

int main() {
  using namespace bofl;
  bench::print_header("Table 2: Federated learning task specifications");

  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();

  std::printf("%-20s %4s %4s %8s %8s %6s %12s %12s\n", "task", "B", "E",
              "N(AGX)", "N(TX2)", "|T|", "Tmin(AGX)", "Tmin(TX2)");
  for (std::size_t i = 0; i < 3; ++i) {
    const core::FlTaskSpec on_agx = core::paper_tasks(agx.name())[i];
    const core::FlTaskSpec on_tx2 = core::paper_tasks(tx2.name())[i];
    const double t_min_agx =
        agx.round_t_min(on_agx.profile, on_agx.jobs_per_round()).value();
    const double t_min_tx2 =
        tx2.round_t_min(on_tx2.profile, on_tx2.jobs_per_round()).value();
    std::printf("%-20s %4lld %4lld %8lld %8lld %6lld %11.1fs %11.1fs\n",
                on_agx.name.c_str(),
                static_cast<long long>(on_agx.minibatch_size),
                static_cast<long long>(on_agx.epochs),
                static_cast<long long>(on_agx.num_minibatches),
                static_cast<long long>(on_tx2.num_minibatches),
                static_cast<long long>(on_agx.num_rounds), t_min_agx,
                t_min_tx2);
  }
  std::printf(
      "\nDeadline sampling: T ~ Uniform[Tmin, r*Tmin], r in {2.0, 2.5, 3.0, "
      "3.5, 4.0}.\n"
      "Paper Tmin reference (s): AGX {37.2, 46.9, 46.1}, TX2 {36.0, 49.2, "
      "55.6}.\n");
  return 0;
}
