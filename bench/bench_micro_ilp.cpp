// Micro-benchmarks: the per-round exploitation ILP.  The paper reports
// Gurobi solving Eqn. (1) within 20 ms; the branch-and-bound substrate must
// stay in that ballpark on realistic Pareto-set sizes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/oracle_controller.hpp"
#include "device/device_model.hpp"
#include "ilp/schedule_solver.hpp"

namespace {

using namespace bofl;

std::vector<ilp::ConfigProfile> synthetic_front(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ilp::ConfigProfile> profiles;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.18 + 0.5 * static_cast<double>(i) /
                                static_cast<double>(n);
    profiles.push_back({i, 6.0 * 0.18 / t + 0.05 * rng.uniform(), t});
  }
  return profiles;
}

void BM_RoundScheduleIlp(benchmark::State& state) {
  const auto profiles =
      synthetic_front(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ilp::solve_round_schedule(profiles, 200, 60.0));
  }
}
BENCHMARK(BM_RoundScheduleIlp)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMicrosecond);

void BM_RoundScheduleOnTrueParetoFront(benchmark::State& state) {
  // The actual exploitation-phase workload: the AGX/ViT true Pareto set.
  const device::DeviceModel agx = device::jetson_agx();
  const auto profiles =
      core::true_pareto_profiles(agx, device::vit_profile());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ilp::solve_round_schedule(profiles, 200, 55.0));
  }
}
BENCHMARK(BM_RoundScheduleOnTrueParetoFront)->Unit(benchmark::kMicrosecond);

void BM_ExhaustiveReference(benchmark::State& state) {
  const auto profiles = synthetic_front(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ilp::solve_round_schedule_exhaustive(profiles, 40, 14.0));
  }
}
BENCHMARK(BM_ExhaustiveReference)->Unit(benchmark::kMicrosecond);

void BM_SimplexLp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto profiles = synthetic_front(n, 3);
  ilp::LpProblem problem;
  problem.objective.resize(n);
  ilp::LpConstraint all_jobs;
  all_jobs.coefficients.assign(n, 1.0);
  all_jobs.relation = ilp::Relation::kEqual;
  all_jobs.rhs = 200.0;
  ilp::LpConstraint deadline;
  deadline.coefficients.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    problem.objective[i] = profiles[i].energy_per_job;
    deadline.coefficients[i] = profiles[i].latency_per_job;
  }
  deadline.relation = ilp::Relation::kLessEqual;
  deadline.rhs = 60.0;
  problem.constraints = {all_jobs, deadline};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(problem));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace
