// Micro-benchmarks: the per-round exploitation ILP and its steady-state
// memoization.  The paper reports Gurobi solving Eqn. (1) within 20 ms; the
// branch-and-bound substrate must stay in that ballpark on realistic
// Pareto-set sizes — and a fleet of clients facing the same round problem
// should pay it once, not once per client (ScheduleCache).
// Emits BENCH_micro_ilp.json with cache-hit-rate columns; the committed
// baseline under bench/baselines holds the uncached per-solve numbers the
// acceptance ratio divides by.
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "core/oracle_controller.hpp"
#include "device/device_model.hpp"
#include "figure_common.hpp"
#include "ilp/schedule_cache.hpp"
#include "ilp/schedule_solver.hpp"

namespace {

using namespace bofl;

std::vector<ilp::ConfigProfile> synthetic_front(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ilp::ConfigProfile> profiles;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.18 + 0.5 * static_cast<double>(i) /
                                static_cast<double>(n);
    profiles.push_back({i, 6.0 * 0.18 / t + 0.05 * rng.uniform(), t});
  }
  return profiles;
}

/// Best-of-`reps` wall time of fn(), in seconds.  `sink` defeats dead-code
/// elimination: callers accumulate a dependent value into it.
template <typename Fn>
double best_seconds(int reps, double& sink, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sink += fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::configure_threads(argc, argv);
  double sink = 0.0;
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
#ifdef __OPTIMIZE__
  metrics.set("optimized", true);
#else
  metrics.set("optimized", false);
#endif

  // --- Repeated-round solves: the fleet cohort pattern. -------------------
  // `kRepeats` clients per round hit the solver with the same (profiles,
  // jobs, deadline) problem; uncached, each one pays branch-and-bound,
  // memoized, the first pays and the rest are hash lookups.
  bench::print_header(
      "Micro: repeated round solves (cohort of 64 identical problems)",
      "controller path: pre-pruned profiles, solve_round_schedule_pruned "
      "vs fleet-shared ScheduleCache::solve_pruned");
  std::printf("  %6s %16s %16s %10s %10s\n", "front", "uncached [us]",
              "cached [us]", "speedup", "hit rate");
  const int kRepeats = 64;
  telemetry::JsonValue repeat_rows = telemetry::JsonValue::array();
  for (const std::size_t n : {5u, 10u, 20u, 50u}) {
    // BoflController::exploitation_profiles() hoists the dominance pruning
    // to once per Pareto-set version, so the steady-state per-round call is
    // solve_round_schedule_pruned / ScheduleCache::solve_pruned on an
    // already-efficient set — benchmark exactly that.
    const auto pruned = ilp::prune_dominated_profiles(synthetic_front(n, 1));
    const auto& profiles = pruned.profiles;
    const double uncached_s = best_seconds(5, sink, [&] {
      double total = 0.0;
      for (int r = 0; r < kRepeats; ++r) {
        total += ilp::solve_round_schedule_pruned(profiles, 200, 60.0)
                     .total_energy;
      }
      return total;
    });
    ilp::ScheduleCache cache;
    const double cached_s = best_seconds(5, sink, [&] {
      double total = 0.0;
      for (int r = 0; r < kRepeats; ++r) {
        total += cache.solve_pruned(profiles, 200, 60.0).total_energy;
      }
      return total;
    });
    const ilp::ScheduleCache::Stats stats = cache.stats();
    const double hit_rate =
        static_cast<double>(stats.hits) /
        static_cast<double>(stats.hits + stats.misses);
    const double per_uncached = uncached_s / kRepeats;
    const double per_cached = cached_s / kRepeats;
    std::printf("  %6zu %16.2f %16.2f %10.1f %9.1f%%\n", n, per_uncached * 1e6,
                per_cached * 1e6, per_uncached / per_cached, hit_rate * 100.0);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("front_size", n)
        .set("repeats", kRepeats)
        .set("uncached_solve_seconds", per_uncached)
        .set("cached_solve_seconds", per_cached)
        .set("speedup", per_uncached / per_cached)
        .set("cache_hit_rate", hit_rate);
    repeat_rows.push_back(std::move(row));
  }
  metrics.set("repeated_solves", std::move(repeat_rows));

  // --- Cold solves on the true AGX/ViT Pareto set. ------------------------
  bench::print_header("Micro: cold exploitation solves",
                      "every problem distinct; cache overhead must be noise");
  std::printf("  %22s %16s %16s %10s\n", "problem", "uncached [us]",
              "cached [us]", "hit rate");
  telemetry::JsonValue cold_rows = telemetry::JsonValue::array();
  {
    const device::DeviceModel agx = device::jetson_agx();
    const auto profiles = core::true_pareto_profiles(agx, device::vit_profile());
    const int kRounds = 64;
    const double uncached_s = best_seconds(5, sink, [&] {
      double total = 0.0;
      for (int r = 0; r < kRounds; ++r) {
        // Distinct deadline every round: no key ever repeats.
        total += ilp::solve_round_schedule(profiles, 200,
                                           50.0 + 0.125 * r)
                     .total_energy;
      }
      return total;
    });
    ilp::ScheduleCache cache;
    std::uint64_t lookups = 0;
    const double cached_s = best_seconds(5, sink, [&] {
      cache.clear();
      double total = 0.0;
      for (int r = 0; r < kRounds; ++r) {
        total += cache.solve(profiles, 200, 50.0 + 0.125 * r).total_energy;
      }
      return total;
    });
    const ilp::ScheduleCache::Stats stats = cache.stats();
    lookups = stats.hits + stats.misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(stats.hits) /
                           static_cast<double>(lookups);
    std::printf("  %22s %16.2f %16.2f %9.1f%%\n", "agx-vit true front",
                uncached_s / kRounds * 1e6, cached_s / kRounds * 1e6,
                hit_rate * 100.0);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("problem", "agx_vit_true_front")
        .set("rounds", kRounds)
        .set("front_size", profiles.size())
        .set("uncached_solve_seconds", uncached_s / kRounds)
        .set("cached_solve_seconds", cached_s / kRounds)
        .set("cache_hit_rate", hit_rate);
    cold_rows.push_back(std::move(row));
  }
  metrics.set("cold_solves", std::move(cold_rows));

  // --- Dominance pruning (hoisted to once per Pareto-set version). --------
  {
    auto raw = synthetic_front(50, 2);
    const auto dominated = synthetic_front(150, 3);
    for (const auto& p : dominated) {
      raw.push_back({p.config_id + 1000, p.energy_per_job + 3.0,
                     p.latency_per_job + 0.4});
    }
    const double prune_s = best_seconds(50, sink, [&] {
      return static_cast<double>(
          ilp::prune_dominated_profiles(raw).profiles.size());
    });
    std::printf("\n  prune 200 -> efficient set: %.1f us\n", prune_s * 1e6);
    metrics.set("prune200_seconds", prune_s);
  }

  std::printf("  (sink %.3g)\n", sink);
  bench::write_bench_json("micro_ilp", std::move(metrics));
  return 0;
}
