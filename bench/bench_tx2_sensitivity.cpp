// The TX2 half of the §6 evaluation: the paper trains all three tasks on
// *both* testbeds for 100 rounds.  Figures 9-12 show the AGX numbers; this
// bench produces the equivalent improvement/regret table on the Jetson TX2
// (936-configuration space, weaker GPU, different power balance).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace bofl;
  bench::configure_threads(argc, argv);  // --threads N
  const device::DeviceModel tx2 = device::jetson_tx2();
  const std::vector<double> ratios{2.0, 3.0, 4.0};

  bench::print_header(
      "TX2 evaluation: improvement vs Performant / regret vs Oracle "
      "(100 rounds)",
      "the paper evaluates both testbeds; its Fig. 12 bands (20.3-25.9 % / "
      "1.2-3.4 %) cover both");
  std::printf("%-28s", "Tmax/Tmin");
  for (double r : ratios) {
    std::printf("%9.1fx", r);
  }
  std::printf("\n");

  for (const core::FlTaskSpec& task : core::paper_tasks(tx2.name())) {
    std::vector<double> improvements;
    std::vector<double> regrets;
    for (double ratio : ratios) {
      const bench::ComparisonResult cmp =
          bench::run_comparison(tx2, task, ratio);
      improvements.push_back(100.0 *
                             core::improvement_vs(cmp.bofl, cmp.performant));
      regrets.push_back(100.0 * core::regret_vs(cmp.bofl, cmp.oracle));
      if (!cmp.bofl.all_deadlines_met()) {
        std::printf("!! deadline missed on %s at ratio %.1f\n",
                    task.name.c_str(), ratio);
      }
    }
    bench::print_row(task.name + "  improv. [%]", improvements);
    bench::print_row(task.name + "  regret  [%]", regrets);
  }
  return 0;
}
