// Figure 10: energy consumption for the first 40 rounds of FL training on
// the AGX testbed with Tmax/Tmin = 4, for the three paper tasks.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  bofl::bench::configure_threads(argc, argv);  // --threads N
  bofl::bench::print_energy_figure("Figure 10", "fig10_energy_ddl4", 4.0);
  std::printf(
      "\nPaper reference: longer deadlines flatten the energy spikes and "
      "shorten the exploration\nphase (ViT explores ~6 rounds at ratio 4 vs "
      "~10 at ratio 2).\n");
  return 0;
}
