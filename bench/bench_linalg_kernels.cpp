// Dense-linalg kernel sweeps: GEMM, kernel Gram builds, Cholesky
// factorization and the multi-RHS triangular solve, over the matrix sizes
// the GP hot path actually sees (tens of observations, ~2100-candidate
// blocks).  Emits BENCH_linalg_kernels.json so kernel regressions show up
// in the perf trajectory; the `optimized` flag records whether the binary
// was compiled with optimization (unoptimized numbers are not comparable).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "figure_common.hpp"
#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "telemetry/json_reader.hpp"

namespace {

using namespace bofl;

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.normal();
    }
  }
  return m;
}

linalg::Matrix random_spd(std::size_t n, Rng& rng) {
  linalg::Matrix a = random_matrix(n, n, rng);
  linalg::Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<double>(n);
  }
  return spd;
}

/// Best-of-`reps` wall time of fn(), in seconds.  `sink` defeats dead-code
/// elimination: callers accumulate a dependent value into it.
template <typename Fn>
double best_seconds(int reps, double& sink, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sink += fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

/// Baseline `seconds`-style field for the row in section `section` whose
/// "n" equals `n`, or 0 when the baseline has no such row.
double baseline_seconds(const telemetry::JsonNode& metrics,
                        const char* section, std::size_t n,
                        const char* field) {
  const telemetry::JsonNode* rows = metrics.find(section);
  if (rows == nullptr || rows->type != telemetry::JsonNode::Type::kArray) {
    return 0.0;
  }
  for (const telemetry::JsonNode& row : rows->array) {
    if (telemetry::number_field(row, "n", -1.0) == static_cast<double>(n)) {
      return telemetry::number_field(row, field, 0.0);
    }
  }
  return 0.0;
}

/// Speedup-vs-baseline section: every timed kernel row compared against the
/// committed pre-SIMD numbers, printed and folded into the bench JSON so
/// the perf trajectory carries the acceptance ratio itself (target >= 2x on
/// the hot kernels at the current simd_level).  Missing/unreadable baseline
/// skips the section rather than failing the bench.
void report_vs_baseline(const std::string& path,
                        const std::vector<std::tuple<const char*, std::size_t,
                                                     const char*, double>>&
                            measured,
                        telemetry::JsonValue& metrics) {
  std::ifstream in(path);
  if (!in) {
    std::printf("\n  (baseline %s not found; speedup section skipped)\n",
                path.c_str());
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  telemetry::JsonNode root;
  try {
    root = telemetry::parse_json(buffer.str());
  } catch (const std::exception& e) {
    std::printf("\n  (baseline %s unreadable: %s; speedup section skipped)\n",
                path.c_str(), e.what());
    return;
  }
  const telemetry::JsonNode* base = root.find("metrics");
  if (base == nullptr) {
    std::printf("\n  (baseline %s has no metrics; speedup section skipped)\n",
                path.c_str());
    return;
  }
  bench::print_header("Speedup vs committed pre-SIMD baseline",
                      "baseline: " + path);
  std::printf("  %-10s %6s %14s %14s %9s\n", "kernel", "n", "baseline [ms]",
              "now [ms]", "speedup");
  telemetry::JsonValue rows = telemetry::JsonValue::array();
  for (const auto& [section, n, field, now_seconds] : measured) {
    const double base_seconds = baseline_seconds(*base, section, n, field);
    if (base_seconds <= 0.0 || now_seconds <= 0.0) {
      continue;
    }
    const double speedup = base_seconds / now_seconds;
    std::printf("  %-10s %6zu %14.3f %14.3f %8.2fx\n", section, n,
                base_seconds * 1e3, now_seconds * 1e3, speedup);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("kernel", section)
        .set("n", static_cast<std::uint64_t>(n))
        .set("baseline_seconds", base_seconds)
        .set("seconds", now_seconds)
        .set("speedup", speedup);
    rows.push_back(std::move(row));
  }
  metrics.set("speedup_vs_baseline", std::move(rows));
}

}  // namespace

int main(int argc, char** argv) {
  bench::configure_threads(argc, argv);
  const FlagParser flags(argc, argv);
  const std::string baseline_path = flags.get(
      "baseline", "bench/baselines/BENCH_linalg_kernels_baseline.json");
  Rng rng(20220901);
  double sink = 0.0;
  // (section, n, baseline field, measured seconds) for the speedup report.
  std::vector<std::tuple<const char*, std::size_t, const char*, double>>
      measured;
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
#ifdef __OPTIMIZE__
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  metrics.set("optimized", optimized);

  bench::print_header("Dense GEMM (register-blocked ikj kernel)");
  std::printf("  %6s %14s %12s\n", "n", "best [ms]", "GFLOP/s");
  telemetry::JsonValue gemm = telemetry::JsonValue::array();
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    const linalg::Matrix a = random_matrix(n, n, rng);
    const linalg::Matrix b = random_matrix(n, n, rng);
    const double secs = best_seconds(n >= 256 ? 5 : 20, sink, [&] {
      const linalg::Matrix c = a * b;
      return c(0, 0);
    });
    const double gflops = 2.0 * static_cast<double>(n) * n * n / secs / 1e9;
    std::printf("  %6zu %14.3f %12.2f\n", n, secs * 1e3, gflops);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("n", n).set("seconds", secs).set("gflops", gflops);
    gemm.push_back(std::move(row));
    measured.emplace_back("gemm", n, "seconds", secs);
  }
  metrics.set("gemm", std::move(gemm));

  bench::print_header("Kernel Gram build (Matérn-5/2, 3-D inputs)",
                      "serial vs. fanned out over the shared worker pool");
  std::printf("  %6s %14s %14s %10s\n", "n", "serial [ms]", "pool [ms]",
              "speedup");
  telemetry::JsonValue gram = telemetry::JsonValue::array();
  const gp::Kernel kernel(gp::KernelFamily::kMatern52, 1.0, {0.3, 0.3, 0.3});
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    std::vector<linalg::Vector> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    }
    const double serial = best_seconds(20, sink, [&] {
      return kernel.gram(points)(n - 1, 0);
    });
    const double pooled = best_seconds(20, sink, [&] {
      return kernel.gram(points, &bench::shared_pool())(n - 1, 0);
    });
    std::printf("  %6zu %14.3f %14.3f %10.2f\n", n, serial * 1e3,
                pooled * 1e3, serial / pooled);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("n", n)
        .set("serial_seconds", serial)
        .set("pool_seconds", pooled);
    gram.push_back(std::move(row));
    measured.emplace_back("gram", n, "serial_seconds", serial);
  }
  metrics.set("gram", std::move(gram));

  bench::print_header("Cholesky factorization (row-oriented, contiguous dots)");
  std::printf("  %6s %14s %12s\n", "n", "best [ms]", "GFLOP/s");
  telemetry::JsonValue chol = telemetry::JsonValue::array();
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    const linalg::Matrix spd = random_spd(n, rng);
    const double secs = best_seconds(20, sink, [&] {
      return (*linalg::cholesky(spd))(n - 1, n - 1);
    });
    const double gflops =
        static_cast<double>(n) * n * n / 3.0 / secs / 1e9;
    std::printf("  %6zu %14.3f %12.2f\n", n, secs * 1e3, gflops);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("n", n).set("seconds", secs).set("gflops", gflops);
    chol.push_back(std::move(row));
    measured.emplace_back("cholesky", n, "seconds", secs);
  }
  metrics.set("cholesky", std::move(chol));

  bench::print_header(
      "Triangular solve: 2048 RHS (one EHVI candidate sweep)",
      "blocked multi-RHS solve vs. 2048 independent solve_lower calls");
  std::printf("  %6s %16s %16s %10s\n", "n", "per-RHS [ms]", "blocked [ms]",
              "speedup");
  telemetry::JsonValue multi = telemetry::JsonValue::array();
  for (const std::size_t n : {30u, 60u, 90u}) {
    const std::size_t m = 2048;
    const linalg::Matrix spd = random_spd(n, rng);
    const linalg::Matrix l = *linalg::cholesky(spd);
    const linalg::Matrix b = random_matrix(n, m, rng);
    const double per_rhs = best_seconds(10, sink, [&] {
      double acc = 0.0;
      linalg::Vector col(n);
      for (std::size_t c = 0; c < m; ++c) {
        for (std::size_t r = 0; r < n; ++r) {
          col[r] = b(r, c);
        }
        acc += linalg::solve_lower(l, col)[n - 1];
      }
      return acc;
    });
    const double blocked = best_seconds(10, sink, [&] {
      return linalg::solve_lower_multi(l, b)(n - 1, m - 1);
    });
    std::printf("  %6zu %16.3f %16.3f %10.2f\n", n, per_rhs * 1e3,
                blocked * 1e3, per_rhs / blocked);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("n", n)
        .set("rhs", m)
        .set("per_rhs_seconds", per_rhs)
        .set("blocked_seconds", blocked)
        .set("speedup", per_rhs / blocked);
    multi.push_back(std::move(row));
    measured.emplace_back("multi_rhs", n, "blocked_seconds", blocked);
  }
  metrics.set("multi_rhs", std::move(multi));

  report_vs_baseline(baseline_path, measured, metrics);

  std::printf("\n  (sink=%.3g, optimized=%d)\n", sink, optimized ? 1 : 0);
  bench::write_bench_json("linalg_kernels", std::move(metrics));
  return 0;
}
