// Figure 12: BoFL's effectiveness across deadline lengths — improvement vs
// Performant and regret vs Oracle for Tmax/Tmin in {2.0, 2.5, 3.0, 3.5,
// 4.0}, per task, over the full 100-round runs.
#include <limits>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace bofl;
  bench::configure_threads(argc, argv);  // --threads N
  const device::DeviceModel agx = device::jetson_agx();
  const std::vector<double> ratios{2.0, 2.5, 3.0, 3.5, 4.0};

  bench::print_header(
      "Figure 12: sensitivity to deadline length (AGX, 100 rounds)",
      "rows per task: improvement vs Performant [%] and regret vs Oracle "
      "[%] at each Tmax/Tmin");
  std::printf("%-28s", "Tmax/Tmin");
  for (double r : ratios) {
    std::printf("%9.1fx", r);
  }
  std::printf("\n");

  double min_improvement = 1.0;
  double max_improvement = 0.0;
  double min_regret = 1.0;
  double max_regret = 0.0;
  telemetry::JsonValue bench_rows = telemetry::JsonValue::array();
  for (const core::FlTaskSpec& task : core::paper_tasks(agx.name())) {
    std::vector<double> improvements;
    std::vector<double> regrets;
    std::vector<double> min_slacks;
    for (double ratio : ratios) {
      const bench::ComparisonResult cmp =
          bench::run_comparison(agx, task, ratio);
      const double improvement =
          core::improvement_vs(cmp.bofl, cmp.performant);
      const double regret = core::regret_vs(cmp.bofl, cmp.oracle);
      // How close BoFL cuts it: the tightest per-round deadline slack over
      // the whole run.  Misses are flagged explicitly via deadline_met()
      // rather than inferred from the sign of a float.
      double min_slack = std::numeric_limits<double>::infinity();
      bool any_miss = false;
      for (const core::RoundTrace& trace : cmp.bofl.rounds) {
        min_slack = std::min(min_slack, trace.slack().value());
        any_miss = any_miss || !trace.deadline_met();
      }
      improvements.push_back(100.0 * improvement);
      regrets.push_back(100.0 * regret);
      min_slacks.push_back(min_slack);
      min_improvement = std::min(min_improvement, improvement);
      max_improvement = std::max(max_improvement, improvement);
      min_regret = std::min(min_regret, regret);
      max_regret = std::max(max_regret, regret);
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("task", task.name)
          .set("ratio", ratio)
          .set("improvement_pct", 100.0 * improvement)
          .set("regret_pct", 100.0 * regret)
          .set("bofl_min_slack_s", min_slack)
          .set("bofl_deadline_miss", any_miss);
      bench_rows.push_back(std::move(row));
    }
    bench::print_row(task.name + "  improv. [%]", improvements);
    bench::print_row(task.name + "  regret  [%]", regrets);
    bench::print_row(task.name + "  min slack [s]", min_slacks);
  }
  std::printf(
      "\nOverall: improvement %.1f%% - %.1f%% (paper: 20.3%% - 25.9%%), "
      "regret %.1f%% - %.1f%% (paper: 1.2%% - 3.4%%).\n"
      "Expected shape: improvement grows with deadline slack; regret "
      "shrinks.\n",
      100.0 * min_improvement, 100.0 * max_improvement, 100.0 * min_regret,
      100.0 * max_regret);
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
  metrics.set("improvement_pct_min", 100.0 * min_improvement)
      .set("improvement_pct_max", 100.0 * max_improvement)
      .set("regret_pct_min", 100.0 * min_regret)
      .set("regret_pct_max", 100.0 * max_regret)
      .set("rows", std::move(bench_rows));
  bench::write_bench_json("fig12_deadline_sensitivity", std::move(metrics));
  return 0;
}
