// Figure 3: ViT training performance with increasing GPU frequencies at two
// CPU settings (0.42 and 2.26 GHz), memory at maximum.
// (a) execution latency per minibatch; (b) energy per minibatch.
#include "figure_common.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  const device::WorkloadProfile vit = device::vit_profile();
  const device::DvfsSpace& space = agx.space();
  const std::size_t mem_max = space.mem_table().size() - 1;
  const std::size_t cpu_min = 0;
  const std::size_t cpu_max = space.cpu_table().size() - 1;

  bench::print_header(
      "Figure 3: ViT vs GPU frequency (AGX, mem at max)",
      "columns: gpu GHz | T(cpu=0.42) T(cpu=2.26) [s] | E(cpu=0.42) "
      "E(cpu=2.26) [J]");
  // The paper plots 0.9-1.3 GHz; print the wider 0.7-1.38 band for context.
  for (std::size_t g = space.gpu_table().nearest_index(GigaHertz{0.7});
       g < space.gpu_table().size(); ++g) {
    const device::DvfsConfig slow{cpu_min, g, mem_max};
    const device::DvfsConfig fast{cpu_max, g, mem_max};
    std::printf("  %5.2f | %7.3f %7.3f | %7.3f %7.3f\n",
                space.gpu_table().at(g).value(),
                agx.latency(vit, slow).value(), agx.latency(vit, fast).value(),
                agx.energy(vit, slow).value(), agx.energy(vit, fast).value());
  }
  std::printf(
      "\nExpected shape (paper): latency saturates under the slow CPU; the "
      "energy curves cross —\nslow CPU wins at low GPU clocks, fast CPU "
      "wins at high GPU clocks.\n");
  return 0;
}
