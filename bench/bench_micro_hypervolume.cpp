// Micro-benchmarks: 2-D hypervolume and Pareto-front extraction, the
// primitives behind the phase-2 stopping rule.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "pareto/hypervolume.hpp"

namespace {

using namespace bofl;

std::vector<pareto::Point2> random_cloud(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<pareto::Point2> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  return points;
}

void BM_ParetoFront(benchmark::State& state) {
  const auto cloud = random_cloud(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::pareto_front(cloud));
  }
}
BENCHMARK(BM_ParetoFront)->Arg(32)->Arg(256)->Arg(2048);

void BM_Hypervolume2d(benchmark::State& state) {
  const auto cloud = random_cloud(static_cast<std::size_t>(state.range(0)), 2);
  const pareto::Point2 ref{10.0, 10.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::hypervolume_2d(cloud, ref));
  }
}
BENCHMARK(BM_Hypervolume2d)->Arg(32)->Arg(256)->Arg(2048);

void BM_HypervolumeImprovement(benchmark::State& state) {
  const auto front = random_cloud(64, 3);
  const auto batch = random_cloud(static_cast<std::size_t>(state.range(0)), 4);
  const pareto::Point2 ref{10.0, 10.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pareto::hypervolume_improvement(front, batch, ref));
  }
}
BENCHMARK(BM_HypervolumeImprovement)->Arg(1)->Arg(10)->Arg(100);

void BM_NonDominatedIndices(benchmark::State& state) {
  const auto cloud = random_cloud(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::non_dominated_indices(cloud));
  }
}
BENCHMARK(BM_NonDominatedIndices)->Arg(32)->Arg(256);

}  // namespace
