// Micro-benchmarks: exact 2-D EHVI vs the Monte-Carlo estimator, across
// front sizes.  The exact form is what makes per-round batch proposals
// affordable (paper cites O(n log n) [76]).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bo/ehvi.hpp"
#include "common/rng.hpp"

namespace {

using namespace bofl;

std::vector<pareto::Point2> make_front(std::size_t n, std::uint64_t seed) {
  // A synthetic convex front: (t, 1/t) scaled into (0, 4)^2, plus jitter.
  Rng rng(seed);
  std::vector<pareto::Point2> front;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.2 + 3.6 * static_cast<double>(i + 1) /
                               static_cast<double>(n + 1);
    front.push_back({t, 4.0 * 0.2 / t + 0.05 * rng.uniform()});
  }
  return front;
}

void BM_EhviExact(benchmark::State& state) {
  const auto front = make_front(static_cast<std::size_t>(state.range(0)), 1);
  const pareto::Point2 ref{4.0, 4.0};
  const bo::GaussianPair belief{1.2, 0.4, 1.1, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bo::ehvi_2d(belief, front, ref));
  }
}
BENCHMARK(BM_EhviExact)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EhviMonteCarlo(benchmark::State& state) {
  const auto front = make_front(16, 2);
  const pareto::Point2 ref{4.0, 4.0};
  const bo::GaussianPair belief{1.2, 0.4, 1.1, 0.5};
  Rng rng(3);
  std::vector<std::pair<double, double>> samples;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    samples.emplace_back(rng.normal(), rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bo::ehvi_2d_monte_carlo(belief, front, ref, samples));
  }
}
BENCHMARK(BM_EhviMonteCarlo)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_EhviFullCandidateSweep(benchmark::State& state) {
  // The inner loop of one greedy pick: EHVI over 2100 candidates.
  const auto front = make_front(20, 4);
  const pareto::Point2 ref{4.0, 4.0};
  Rng rng(5);
  std::vector<bo::GaussianPair> beliefs;
  for (int i = 0; i < 2100; ++i) {
    beliefs.push_back({rng.uniform(0.2, 3.8), rng.uniform(0.05, 0.8),
                       rng.uniform(0.2, 3.8), rng.uniform(0.05, 0.8)});
  }
  for (auto _ : state) {
    double best = -1.0;
    for (const auto& b : beliefs) {
      best = std::max(best, bo::ehvi_2d(b, front, ref));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_EhviFullCandidateSweep)->Unit(benchmark::kMillisecond);

}  // namespace
