// Micro-benchmarks: the EHVI scoring hot path.  One greedy Kriging-believer
// pick scores every unobserved candidate (~2100 on the AGX) against the
// current front; the steady-state work asks how fast that batch scoring is
//   (a) on the seed path — ehvi_2d re-cleans and re-sorts the front for
//       every single candidate,
//   (b) through CompiledFront in exact mode — preprocessing hoisted out,
//       libm kernels (bitwise-identical values to (a)), and
//   (c) through CompiledFront in fast mode — the batched polynomial normal
//       kernel (the engine default).
// Emits BENCH_micro_ehvi.json; the committed baseline under bench/baselines
// holds the seed-path numbers the acceptance ratio divides by.
#include <chrono>
#include <cstdio>

#include "bo/ehvi.hpp"
#include "common/rng.hpp"
#include "figure_common.hpp"
#include "pareto/hypervolume.hpp"

namespace {

using namespace bofl;

std::vector<pareto::Point2> make_front(std::size_t n, std::uint64_t seed) {
  // A synthetic convex front: (t, 1/t) scaled into (0, 4)^2, plus jitter.
  Rng rng(seed);
  std::vector<pareto::Point2> front;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.2 + 3.6 * static_cast<double>(i + 1) /
                               static_cast<double>(n + 1);
    front.push_back({t, 4.0 * 0.2 / t + 0.05 * rng.uniform()});
  }
  return front;
}

std::vector<bo::GaussianPair> make_beliefs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bo::GaussianPair> beliefs;
  beliefs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    beliefs.push_back({rng.uniform(0.2, 3.8), rng.uniform(0.05, 0.8),
                       rng.uniform(0.2, 3.8), rng.uniform(0.05, 0.8)});
  }
  return beliefs;
}

/// Best-of-`reps` wall time of fn(), in seconds.  `sink` defeats dead-code
/// elimination: callers accumulate a dependent value into it.
template <typename Fn>
double best_seconds(int reps, double& sink, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sink += fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::configure_threads(argc, argv);
  double sink = 0.0;
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
#ifdef __OPTIMIZE__
  metrics.set("optimized", true);
#else
  metrics.set("optimized", false);
#endif

  const pareto::Point2 ref{4.0, 4.0};
  const std::size_t kCandidates = 2100;  // the AGX DVFS space
  const auto beliefs = make_beliefs(kCandidates, 5);
  std::vector<double> out(kCandidates);

  bench::print_header(
      "Micro: EHVI batch scoring, 2100 candidates",
      "seed path (per-candidate ehvi_2d) vs CompiledFront exact / fast");
  std::printf("  %6s %14s %14s %14s %10s %10s\n", "front", "seed [ms]",
              "exact [ms]", "fast [ms]", "x exact", "x fast");
  telemetry::JsonValue batch_rows = telemetry::JsonValue::array();
  for (const std::size_t n : {4u, 16u, 64u, 256u}) {
    const auto front = make_front(n, 1);
    const int reps = n >= 256 ? 5 : 10;
    const double seed_s = best_seconds(reps, sink, [&] {
      double best = -1.0;
      for (const auto& b : beliefs) {
        best = std::max(best, bo::ehvi_2d(b, front, ref));
      }
      return best;
    });
    const double exact_s = best_seconds(reps, sink, [&] {
      const bo::CompiledFront compiled(front, ref, bo::EhviMode::kExact);
      compiled.ehvi_block(beliefs.data(), beliefs.size(), out.data());
      return out[0];
    });
    const double fast_s = best_seconds(reps, sink, [&] {
      const bo::CompiledFront compiled(front, ref, bo::EhviMode::kFast);
      compiled.ehvi_block(beliefs.data(), beliefs.size(), out.data());
      return out[0];
    });
    std::printf("  %6zu %14.3f %14.3f %14.3f %10.2f %10.2f\n", n, seed_s * 1e3,
                exact_s * 1e3, fast_s * 1e3, seed_s / exact_s,
                seed_s / fast_s);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("front_size", n)
        .set("candidates", kCandidates)
        .set("seed_seconds", seed_s)
        .set("compiled_exact_seconds", exact_s)
        .set("compiled_fast_seconds", fast_s)
        .set("speedup_exact_vs_seed", seed_s / exact_s)
        .set("speedup_fast_vs_seed", seed_s / fast_s);
    batch_rows.push_back(std::move(row));
  }
  metrics.set("batch_scoring", std::move(batch_rows));

  bench::print_header("Micro: Monte-Carlo EHVI estimator",
                      "per-sample hypervolume_improvement vs compiled hvi()");
  std::printf("  %8s %14s %14s %10s\n", "samples", "direct [ms]",
              "compiled [ms]", "speedup");
  const auto mc_front = make_front(16, 2);
  const bo::GaussianPair mc_belief{1.2, 0.4, 1.1, 0.5};
  Rng mc_rng(3);
  telemetry::JsonValue mc_rows = telemetry::JsonValue::array();
  for (const std::size_t n_samples : {1000u, 10000u}) {
    std::vector<std::pair<double, double>> samples;
    for (std::size_t i = 0; i < n_samples; ++i) {
      samples.emplace_back(mc_rng.normal(), mc_rng.normal());
    }
    const double direct_s = best_seconds(10, sink, [&] {
      double sum = 0.0;
      for (const auto& [z1, z2] : samples) {
        sum += pareto::hypervolume_improvement(
            mc_front,
            {{mc_belief.mu1 + mc_belief.sigma1 * z1,
              mc_belief.mu2 + mc_belief.sigma2 * z2}},
            ref);
      }
      return sum / static_cast<double>(samples.size());
    });
    const double compiled_s = best_seconds(10, sink, [&] {
      return bo::ehvi_2d_monte_carlo(mc_belief, mc_front, ref, samples);
    });
    std::printf("  %8zu %14.3f %14.3f %10.2f\n", n_samples, direct_s * 1e3,
                compiled_s * 1e3, direct_s / compiled_s);
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("samples", n_samples)
        .set("front_size", mc_front.size())
        .set("direct_seconds", direct_s)
        .set("compiled_seconds", compiled_s)
        .set("speedup", direct_s / compiled_s);
    mc_rows.push_back(std::move(row));
  }
  metrics.set("monte_carlo", std::move(mc_rows));

  // Front compilation itself (paid once per Kriging-believer pick).
  {
    const auto front = make_front(64, 4);
    const double compile_s = best_seconds(50, sink, [&] {
      const bo::CompiledFront compiled(front, ref, bo::EhviMode::kFast);
      return compiled.reference().f1 + static_cast<double>(compiled.size());
    });
    std::printf("\n  front compilation (n=64): %.1f us\n", compile_s * 1e6);
    metrics.set("compile_front64_seconds", compile_s);
  }

  std::printf("  (sink %.3g)\n", sink);
  bench::write_bench_json("micro_ehvi", std::move(metrics));
  return 0;
}
