// Ablations for the design choices called out in DESIGN.md:
//   A1  MBO-guided exploration vs uniform random exploration (same budget)
//   A2  sensitivity to the reference measurement duration tau
//   A3  sensitivity to the MBO batch-size cap K
//   A4  surrogate kernel family (Matern-5/2 vs Matern-3/2 vs RBF)
//   A5  the SmartPC-style linear 1-D controller vs BoFL
// All on the AGX CIFAR10-ViT task, 40 rounds, Tmax/Tmin = 2.
#include "figure_common.hpp"
#include "pareto/hypervolume.hpp"

namespace {

using namespace bofl;

struct RunOutcome {
  double energy = 0.0;        // training + MBO [J]
  double hv_coverage = 0.0;   // of the true front
  std::size_t explored = 0;
  bool deadlines_met = true;
};

RunOutcome run_bofl_variant(const device::DeviceModel& model,
                            const core::FlTaskSpec& task,
                            const core::BoflOptions& options,
                            const std::vector<core::RoundSpec>& rounds) {
  core::BoflController controller(model, task.profile, {}, options, 71);
  const core::TaskResult result = core::run_task(controller, rounds);

  std::vector<pareto::Point2> constructed;
  for (std::size_t flat : controller.pareto_flat_ids()) {
    const device::DvfsConfig config = model.space().from_flat(flat);
    constructed.push_back({model.energy(task.profile, config).value(),
                           model.latency(task.profile, config).value()});
  }
  std::vector<pareto::Point2> truth;
  for (const auto& p : core::true_pareto_profiles(model, task.profile)) {
    truth.push_back({p.energy_per_job, p.latency_per_job});
  }
  const pareto::Point2 ref{20.0, 3.5};
  RunOutcome out;
  out.energy = core::total_energy(result).value();
  out.hv_coverage = pareto::hypervolume_2d(constructed, ref) /
                    pareto::hypervolume_2d(truth, ref);
  out.explored = controller.engine().num_observed_candidates();
  out.deadlines_met = result.all_deadlines_met();
  return out;
}

}  // namespace

int main() {
  const device::DeviceModel agx = device::jetson_agx();
  core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  task.num_rounds = 40;
  const auto rounds = core::make_rounds(task, agx, 2.0, 20221107);
  const core::BoflOptions base = bench::default_bofl_options(agx);

  // --- A1: MBO vs random exploration at matched budget. --------------------
  bench::print_header(
      "Ablation A1: Bayesian vs uniform-random exploration (matched budget)");
  const RunOutcome mbo = run_bofl_variant(agx, task, base, rounds);
  std::vector<pareto::Point2> random_points;
  {
    Rng rng(4242);
    for (std::size_t i = 0; i < mbo.explored; ++i) {
      const auto flat = rng.uniform_index(agx.space().size());
      const device::DvfsConfig config = agx.space().from_flat(flat);
      random_points.push_back({agx.energy(task.profile, config).value(),
                               agx.latency(task.profile, config).value()});
    }
  }
  std::vector<pareto::Point2> truth;
  for (const auto& p : core::true_pareto_profiles(agx, task.profile)) {
    truth.push_back({p.energy_per_job, p.latency_per_job});
  }
  const pareto::Point2 ref{20.0, 3.5};
  const double random_coverage = pareto::hypervolume_2d(random_points, ref) /
                                 pareto::hypervolume_2d(truth, ref);
  // Engine-level ablations: phase-2 suggestions drawn uniformly at random
  // or by marginal Thompson sampling instead of exact EHVI.
  core::BoflOptions random_options = base;
  random_options.mbo.acquisition = bo::AcquisitionKind::kRandomUnobserved;
  const RunOutcome random_controller =
      run_bofl_variant(agx, task, random_options, rounds);
  core::BoflOptions thompson_options = base;
  thompson_options.mbo.acquisition = bo::AcquisitionKind::kThompsonMarginal;
  const RunOutcome thompson_controller =
      run_bofl_variant(agx, task, thompson_options, rounds);
  std::printf(
      "  MBO (EHVI):       %zu configs explored, coverage %.1f%%, task "
      "energy %.0f J\n"
      "  Thompson in-loop: %zu configs explored, coverage %.1f%%, task "
      "energy %.0f J\n"
      "  random in-loop:   %zu configs explored, coverage %.1f%%, task "
      "energy %.0f J\n"
      "  random offline:   %zu configs sampled,  coverage %.1f%%\n",
      mbo.explored, 100.0 * mbo.hv_coverage, mbo.energy,
      thompson_controller.explored, 100.0 * thompson_controller.hv_coverage,
      thompson_controller.energy,
      random_controller.explored, 100.0 * random_controller.hv_coverage,
      random_controller.energy, mbo.explored, 100.0 * random_coverage);

  // --- A2: tau sensitivity. ------------------------------------------------
  bench::print_header(
      "Ablation A2: reference measurement duration tau",
      "short tau = noisy measurements; long tau = less exploitation time");
  std::printf("  %-8s %12s %12s %10s %10s\n", "tau [s]", "energy [J]",
              "coverage", "explored", "deadlines");
  for (const double tau : {1.0, 2.5, 5.0, 10.0}) {
    core::BoflOptions options = base;
    options.tau = Seconds{tau};
    const RunOutcome out = run_bofl_variant(agx, task, options, rounds);
    std::printf("  %-8.1f %12.0f %11.1f%% %10zu %10s\n", tau, out.energy,
                100.0 * out.hv_coverage, out.explored,
                out.deadlines_met ? "all met" : "MISSED");
  }

  // --- A3: batch-size cap. -------------------------------------------------
  bench::print_header("Ablation A3: MBO batch-size cap K");
  std::printf("  %-8s %12s %12s %10s\n", "K cap", "energy [J]", "coverage",
              "explored");
  for (const std::size_t cap : {1UL, 3UL, 10UL, 20UL}) {
    core::BoflOptions options = base;
    options.max_batch_size = cap;
    const RunOutcome out = run_bofl_variant(agx, task, options, rounds);
    std::printf("  %-8zu %12.0f %11.1f%% %10zu\n", cap, out.energy,
                100.0 * out.hv_coverage, out.explored);
  }

  // --- A4: kernel family. --------------------------------------------------
  bench::print_header("Ablation A4: surrogate kernel family");
  std::printf("  %-10s %12s %12s\n", "kernel", "energy [J]", "coverage");
  for (const auto family :
       {gp::KernelFamily::kMatern52, gp::KernelFamily::kMatern32,
        gp::KernelFamily::kRbf}) {
    core::BoflOptions options = base;
    options.mbo.kernel_family = family;
    const RunOutcome out = run_bofl_variant(agx, task, options, rounds);
    std::printf("  %-10s %12.0f %11.1f%%\n", gp::to_string(family),
                out.energy, 100.0 * out.hv_coverage);
  }

  // --- A5: SmartPC-style linear controller. --------------------------------
  bench::print_header(
      "Ablation A5: 1-D linear pace control (SmartPC-style) vs BoFL",
      "the paper's critique: linear CPU-only models fail on multi-axis "
      "DVFS devices");
  core::LinearModelController linear(agx, task.profile, {}, 72);
  core::PerformantController performant(agx, task.profile, {}, 73);
  const core::TaskResult rl = core::run_task(linear, rounds);
  const core::TaskResult rp = core::run_task(performant, rounds);
  std::printf(
      "  energy [J]: Performant=%.0f  Linear=%.0f  BoFL=%.0f\n"
      "  linear improvement vs Performant: %.1f%%; BoFL improvement: %.1f%%"
      "\n  linear guardian interventions: %lld\n",
      core::total_energy(rp).value(), core::total_energy(rl).value(),
      mbo.energy, 100.0 * core::improvement_vs(rl, rp),
      100.0 * (1.0 - mbo.energy / core::total_energy(rp).value()),
      static_cast<long long>(linear.guardian_interventions()));
  return 0;
}
