#include "figure_common.hpp"

#include <cstdlib>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/flags.hpp"
#include "linalg/simd/dispatch.hpp"

namespace bofl::bench {

namespace {
std::size_t g_threads = 0;  // 0 = one worker per hardware thread
}  // namespace

void configure_threads(int argc, const char* const* argv) {
  const FlagParser flags(argc, argv);
  g_threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  if (flags.has("simd")) {
    const std::string name = flags.get("simd", "");
    const auto level = linalg::simd::level_from_string(name);
    BOFL_REQUIRE(level.has_value(),
                 "--simd must be one of: avx2, scalar (got \"" + name + "\")");
    linalg::simd::force_level(*level);
  }
}

runtime::ThreadPool& shared_pool() {
  static runtime::ThreadPool pool(g_threads);
  return pool;
}

core::BoflOptions default_bofl_options(const device::DeviceModel& model) {
  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(model.name());
  return options;
}

ComparisonResult run_comparison(const device::DeviceModel& model,
                                const core::FlTaskSpec& task,
                                double deadline_ratio, const Seeds& seeds) {
  ComparisonResult result;
  result.rounds = core::make_rounds(task, model, deadline_ratio,
                                    seeds.deadlines);
  const device::NoiseModel noise;
  core::BoflController bofl(model, task.profile, noise,
                            default_bofl_options(model), seeds.bofl);
  core::PerformantController performant(model, task.profile, noise,
                                        seeds.performant);
  core::OracleController oracle(model, task.profile, noise, seeds.oracle);
  const std::vector<core::TaskResult> swept = core::run_tasks(
      {&bofl, &performant, &oracle},
      {&result.rounds, &result.rounds, &result.rounds}, &shared_pool());
  result.bofl = swept[0];
  result.performant = swept[1];
  result.oracle = swept[2];
  return result;
}

std::unique_ptr<core::BoflController> run_bofl_only(
    const device::DeviceModel& model, const core::FlTaskSpec& task,
    double deadline_ratio, core::TaskResult& result_out, const Seeds& seeds,
    const core::BoflOptions* options_override) {
  const auto rounds =
      core::make_rounds(task, model, deadline_ratio, seeds.deadlines);
  auto controller = std::make_unique<core::BoflController>(
      model, task.profile, device::NoiseModel{},
      options_override ? *options_override : default_bofl_options(model),
      seeds.bofl);
  result_out = core::run_task(*controller, rounds);
  return controller;
}

void print_energy_figure(const char* figure_label, const char* bench_slug,
                         double deadline_ratio) {
  const device::DeviceModel agx = device::jetson_agx();
  char title[160];
  std::snprintf(title, sizeof(title),
                "%s: per-round energy, AGX, Tmax/Tmin = %.0f (100 rounds, "
                "first 40 shown)",
                figure_label, deadline_ratio);
  print_header(title,
               "columns: round | phase | deadline [s] | E(BoFL) "
               "E(Performant) E(Oracle) [J]");

  const char sub = 'a';
  const auto tasks = core::paper_tasks(agx.name());
  telemetry::JsonValue bench_tasks = telemetry::JsonValue::array();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const core::FlTaskSpec& task = tasks[t];
    const ComparisonResult cmp = run_comparison(agx, task, deadline_ratio);
    std::printf("\n(%c) %s\n", static_cast<char>(sub + t),
                task.name.c_str());
    std::unique_ptr<CsvWriter> csv;
    const std::string csv_path = csv_path_or_empty(
        std::string(figure_label) + "_" + task.name + "_r" +
        std::to_string(static_cast<int>(deadline_ratio)) + ".csv");
    if (!csv_path.empty()) {
      csv = std::make_unique<CsvWriter>(
          csv_path, std::vector<std::string>{"round", "phase", "deadline_s",
                                             "bofl_J", "performant_J",
                                             "oracle_J"});
      for (std::size_t r = 0; r < cmp.rounds.size(); ++r) {
        csv->write_row(std::vector<double>{
            static_cast<double>(r + 1),
            static_cast<double>(static_cast<int>(cmp.bofl.rounds[r].phase)),
            cmp.rounds[r].deadline.value(),
            cmp.bofl.rounds[r].energy().value(),
            cmp.performant.rounds[r].energy().value(),
            cmp.oracle.rounds[r].energy().value()});
      }
      std::printf("  [csv written to %s]\n", csv_path.c_str());
    }
    for (std::size_t r = 0; r < 40 && r < cmp.rounds.size(); ++r) {
      std::printf("  r%02zu | p%d | %6.1f | %8.1f %8.1f %8.1f\n", r + 1,
                  static_cast<int>(cmp.bofl.rounds[r].phase),
                  cmp.rounds[r].deadline.value(),
                  cmp.bofl.rounds[r].energy().value(),
                  cmp.performant.rounds[r].energy().value(),
                  cmp.oracle.rounds[r].energy().value());
    }
    std::printf(
        "  summary (all 100 rounds): improvement vs Performant = %.1f%%, "
        "regret vs Oracle = %.2f%%,\n"
        "  deadlines met: BoFL=%s Performant=%s Oracle=%s; BoFL phases "
        "1/2/3 = %lld/%lld/%lld rounds\n",
        100.0 * core::improvement_vs(cmp.bofl, cmp.performant),
        100.0 * core::regret_vs(cmp.bofl, cmp.oracle),
        cmp.bofl.all_deadlines_met() ? "all" : "MISSED",
        cmp.performant.all_deadlines_met() ? "all" : "MISSED",
        cmp.oracle.all_deadlines_met() ? "all" : "MISSED",
        static_cast<long long>(
            cmp.bofl.rounds_in_phase(core::Phase::kSafeRandomExploration)),
        static_cast<long long>(
            cmp.bofl.rounds_in_phase(core::Phase::kParetoConstruction)),
        static_cast<long long>(
            cmp.bofl.rounds_in_phase(core::Phase::kExploitation)));
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("task", task.name)
        .set("improvement_vs_performant_pct",
             100.0 * core::improvement_vs(cmp.bofl, cmp.performant))
        .set("regret_vs_oracle_pct",
             100.0 * core::regret_vs(cmp.bofl, cmp.oracle))
        .set("bofl_energy_j", cmp.bofl.total_training_energy().value() +
                                  cmp.bofl.total_mbo_energy().value())
        .set("performant_energy_j",
             cmp.performant.total_training_energy().value())
        .set("oracle_energy_j", cmp.oracle.total_training_energy().value())
        .set("bofl_deadlines_met", cmp.bofl.all_deadlines_met());
    bench_tasks.push_back(std::move(row));
  }
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
  metrics.set("deadline_ratio", deadline_ratio)
      .set("tasks", std::move(bench_tasks));
  write_bench_json(bench_slug, std::move(metrics));
}

std::string write_bench_json(const std::string& name,
                             telemetry::JsonValue metrics) {
  const char* dir = std::getenv("BOFL_BENCH_JSON_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_" + name + ".json"
                               : "BENCH_" + name + ".json";
  telemetry::JsonValue root = telemetry::JsonValue::object();
  // Every bench result records the SIMD dispatch level it ran under, so
  // perf trajectories never mix avx2 and scalar numbers unknowingly (CI
  // greps this field to assert the expected leg actually ran).
  root.set("bench", name)
      .set("simd_level", std::string(linalg::simd::to_string(
                             linalg::simd::active_level())))
      .set("metrics", std::move(metrics));
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write bench json to %s\n",
                 path.c_str());
    return {};
  }
  const std::string text = root.dump();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("[bench json written to %s]\n", path.c_str());
  return path;
}

std::string csv_path_or_empty(const std::string& filename) {
  const char* dir = std::getenv("BOFL_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return {};
  }
  return std::string(dir) + "/" + filename;
}

void print_header(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!subtitle.empty()) {
    std::printf("%s\n", subtitle.c_str());
  }
}

void print_row(const std::string& label, const std::vector<double>& cells,
               const char* format) {
  std::printf("%-28s", label.c_str());
  for (double cell : cells) {
    std::printf(format, cell);
  }
  std::printf("\n");
}

}  // namespace bofl::bench
