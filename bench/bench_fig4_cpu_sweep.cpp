// Figure 4: training performance of the three models with increasing CPU
// frequency (GPU and memory at maximum).
// (a) execution latency per minibatch; (b) energy per minibatch.
#include "figure_common.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  const device::DvfsSpace& space = agx.space();
  const auto profiles = device::paper_profiles();

  bench::print_header(
      "Figure 4: models vs CPU frequency (AGX, gpu/mem at max)",
      "columns: cpu GHz | T(vit) T(resnet50) T(lstm) [s] | E(vit) "
      "E(resnet50) E(lstm) [J]");
  const device::DvfsConfig top{0, space.gpu_table().size() - 1,
                               space.mem_table().size() - 1};
  // The paper sweeps 0.7-1.7 GHz.
  for (std::size_t c = space.cpu_table().nearest_index(GigaHertz{0.7});
       c <= space.cpu_table().nearest_index(GigaHertz{1.7}); ++c) {
    device::DvfsConfig config = top;
    config.cpu = c;
    std::printf("  %5.2f |", space.cpu_table().at(c).value());
    for (const auto& p : profiles) {
      std::printf(" %7.3f", agx.latency(p, config).value());
    }
    std::printf(" |");
    for (const auto& p : profiles) {
      std::printf(" %6.2f", agx.energy(p, config).value());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): ViT/ResNet50 latency nearly flat, LSTM "
      "halves; ResNet50 energy\nrises with CPU clock while LSTM energy "
      "falls.\n");
  return 0;
}
