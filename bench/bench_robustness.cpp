// Robustness under execution disturbances (beyond the paper): latency
// spikes from background OS activity and transparent thermal throttling.
// Reports deadline miss rates, worst overshoots, and whether BoFL's energy
// advantage survives — the graceful-degradation story the closed-loop
// exploitation is built for.
#include "figure_common.hpp"

namespace {

using namespace bofl;

struct Outcome {
  double bofl_energy = 0.0;
  double performant_energy = 0.0;
  int misses = 0;
  double worst_overshoot_s = 0.0;
};

Outcome run_case(const device::NoiseModel& noise, double ratio) {
  const device::DeviceModel agx = device::jetson_agx();
  core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  task.num_rounds = 50;
  const auto rounds = core::make_rounds(task, agx, ratio, 20221107);
  core::BoflController bofl(agx, task.profile, noise,
                            bench::default_bofl_options(agx), 91);
  core::PerformantController performant(agx, task.profile, noise, 92);
  const core::TaskResult rb = core::run_task(bofl, rounds);
  const core::TaskResult rp = core::run_task(performant, rounds);
  Outcome out;
  out.bofl_energy = core::total_energy(rb).value();
  out.performant_energy = core::total_energy(rp).value();
  for (const core::RoundTrace& trace : rb.rounds) {
    if (!trace.deadline_met()) {
      ++out.misses;
      out.worst_overshoot_s =
          std::max(out.worst_overshoot_s,
                   trace.elapsed().value() - trace.deadline.value());
    }
  }
  return out;
}

void print_outcome(const char* label, const Outcome& out) {
  std::printf(
      "  %-28s BoFL %7.0f J vs Performant %7.0f J (%+5.1f%%), misses "
      "%d/50, worst overshoot %.2f s\n",
      label, out.bofl_energy, out.performant_energy,
      100.0 * (out.bofl_energy / out.performant_energy - 1.0), out.misses,
      out.worst_overshoot_s);
}

}  // namespace

int main() {
  bench::print_header(
      "Robustness: BoFL under execution disturbances (AGX, CIFAR10-ViT, "
      "50 rounds, Tmax/Tmin = 2.5)",
      "disturbances hit the *true* execution, so hard guarantees are "
      "impossible; the target is graceful degradation");

  device::NoiseModel clean;
  print_outcome("clean", run_case(clean, 2.5));

  device::NoiseModel rare_spikes;
  rare_spikes.spike_probability = 0.005;
  rare_spikes.spike_magnitude = 3.0;
  print_outcome("spikes p=0.5% k=3", run_case(rare_spikes, 2.5));

  device::NoiseModel heavy_spikes;
  heavy_spikes.spike_probability = 0.02;
  heavy_spikes.spike_magnitude = 4.0;
  print_outcome("spikes p=2% k=4", run_case(heavy_spikes, 2.5));

  device::NoiseModel thermal;
  device::ThermalParams params;
  params.throttle_temp_c = 60.0;
  params.time_constant_s = 120.0;
  params.thermal_resistance_c_per_w = 1.6;
  thermal.thermal = params;
  print_outcome("thermal throttling", run_case(thermal, 2.5));

  device::NoiseModel everything = heavy_spikes;
  everything.thermal = params;
  print_outcome("spikes + thermal", run_case(everything, 2.5));

  std::printf(
      "\nMechanism: exploitation runs closed-loop (slowest block first, "
      "blocks capped at half the\nremaining jobs, ILP re-solved per block "
      "with refreshed measurements), so optimistic or\nstale latency "
      "estimates are corrected before they can sink a round.\n");
  return 0;
}
