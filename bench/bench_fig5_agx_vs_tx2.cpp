// Figure 5: normalized training performance of Jetson AGX relative to
// Jetson TX2 at maximum operational frequencies (TX2 = 1.0).
#include "figure_common.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();

  bench::print_header(
      "Figure 5: AGX performance normalized to TX2 (both at x_max)",
      "per-minibatch latency and energy ratios; lower = bigger AGX "
      "advantage");
  std::printf("  %-10s %18s %18s\n", "model", "latency ratio", "energy ratio");
  for (const device::WorkloadProfile& p : device::paper_profiles()) {
    const double t_ratio =
        agx.latency(p, agx.space().max_config()).value() /
        tx2.latency(p, tx2.space().max_config()).value();
    const double e_ratio =
        agx.energy(p, agx.space().max_config()).value() /
        tx2.energy(p, tx2.space().max_config()).value();
    std::printf("  %-10s %18.2f %18.2f\n", p.name.c_str(), t_ratio, e_ratio);
  }
  std::printf(
      "\nPaper reference: latency {0.39, 0.32, 0.80}, energy {0.85, 0.70, "
      "0.80}.\nNote: the paper's Fig. 5 LSTM latency ratio (0.80) is "
      "inconsistent with its own Table 2\nper-minibatch numbers (~0.41); "
      "this model calibrates to Table 2 (see EXPERIMENTS.md).\n");
  return 0;
}
