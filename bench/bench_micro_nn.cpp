// Micro-benchmarks: the nn substrate's layer throughput.  These bound how
// much wall-clock the FL simulation spends on actual gradient math (the
// simulated devices account energy/time separately).
#include <benchmark/benchmark.h>

#include "nn/conv.hpp"
#include "nn/data.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace {

using namespace bofl;
using namespace bofl::nn;

void BM_DenseForwardBackward(benchmark::State& state) {
  Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  Dense dense(width, width, rng);
  const Tensor x = Tensor::randn({32, width}, rng, 1.0f);
  const Tensor g = Tensor::randn({32, width}, rng, 1.0f);
  for (auto _ : state) {
    dense.zero_gradients();
    benchmark::DoNotOptimize(dense.forward(x));
    benchmark::DoNotOptimize(dense.backward(g));
  }
}
BENCHMARK(BM_DenseForwardBackward)->Arg(32)->Arg(128)->Arg(512);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv(3, 8, 3, rng);
  const auto side = static_cast<std::size_t>(state.range(0));
  const Tensor x = Tensor::randn({8, 3, side, side}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(9)->Arg(17)->Arg(33)->Unit(benchmark::kMicrosecond);

void BM_LstmForwardBackward(benchmark::State& state) {
  Rng rng(3);
  LstmCell lstm(8, 32, rng);
  const auto time = static_cast<std::size_t>(state.range(0));
  const Tensor x = Tensor::randn({16, time, 8}, rng, 1.0f);
  const Tensor g = Tensor::randn({16, 32}, rng, 1.0f);
  for (auto _ : state) {
    lstm.zero_gradients();
    benchmark::DoNotOptimize(lstm.forward(x));
    benchmark::DoNotOptimize(lstm.backward(g));
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_FullTrainingStepMlp(benchmark::State& state) {
  Rng rng(4);
  Sequential model = make_mlp_classifier(16, 32, 2, 8, rng);
  const Dataset batch = make_classification(16, 16, 8, 5);
  SgdOptimizer optimizer(0.05, 0.9);
  SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    model.zero_gradients();
    benchmark::DoNotOptimize(loss.forward(model.forward(batch.features),
                                          batch.labels));
    model.backward(loss.backward());
    optimizer.step(model);
  }
}
BENCHMARK(BM_FullTrainingStepMlp)->Unit(benchmark::kMicrosecond);

void BM_FedAvgParameterRoundTrip(benchmark::State& state) {
  Rng rng(6);
  Sequential model = make_mlp_classifier(64, 128, 3, 16, rng);
  for (auto _ : state) {
    auto flat = model.get_flat_parameters();
    benchmark::DoNotOptimize(flat.data());
    model.set_flat_parameters(flat);
  }
}
BENCHMARK(BM_FedAvgParameterRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace
