// Two-generation knowledge-plane benchmark (ISSUE 7 success metric): train
// a store on a cold fleet, warm-start a fresh fleet from it, and gate the
// warm-start collapse.
//
//   bench_fleet_priors [--clients N] [--rounds R] [--cohort F] [--ratio R]
//                      [--threads N] [--min-speedup X]
//
// Stages (each is a hard gate — the bench exits 1 on violation):
//   1. Cold reference run (no store attached).
//   2. Generation 1: same fleet with an EMPTY store attached — every
//      cluster is unknown, so admission declines and the trace hash must
//      equal the cold reference bit for bit; the run distills one snapshot
//      per cluster into the store.
//   3. Store serialization round-trip: to_json → from_json → to_json must
//      be byte-identical (the cross-generation persistence contract).
//   4. Generation 2: a fresh fleet warm-started from the store under
//      kVerify.  Gates: every cluster admitted, exploration rounds ≥
//      --min-speedup (default 5) times fewer than cold, cumulative energy
//      (training + MBO) strictly lower than cold.
//   5. kCold differential guarantee: the POPULATED store attached under
//      kCold must reproduce the cold reference hash exactly and leave the
//      store untouched.
#include <cstdio>
#include <string>
#include <utility>

#include "common/flags.hpp"
#include "device/device_model.hpp"
#include "figure_common.hpp"
#include "fleet/fleet_engine.hpp"
#include "priors/knowledge_store.hpp"
#include "telemetry/json.hpp"

namespace {

using namespace bofl;

struct RunOutcome {
  std::uint64_t trace_hash = 0;
  std::uint64_t exploration_rounds = 0;
  std::uint32_t warm_clusters = 0;
  double energy_j = 0.0;  ///< training + MBO, cumulative over the run
};

RunOutcome run_fleet(const fleet::FleetConfig& config) {
  fleet::FleetEngine engine(config);
  const fleet::FleetResult result = engine.run();
  RunOutcome out;
  out.trace_hash = result.trace_hash;
  out.exploration_rounds = result.exploration_rounds;
  out.warm_clusters = result.warm_clusters;
  out.energy_j = result.total_energy_j() + result.total_mbo_energy_j();
  return out;
}

bool gate(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const auto clients = static_cast<std::size_t>(flags.get_int("clients", 2000));
  const std::int64_t rounds = flags.get_int("rounds", 24);
  const double cohort = flags.get_double("cohort", 0.5);
  const double ratio = flags.get_double("ratio", 8.0);
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const double min_speedup = flags.get_double("min-speedup", 5.0);

  bench::print_header(
      "Fleet knowledge plane: two-generation warm start (src/priors)",
      "gen 1 trains the store cold; gen 2 must collapse exploration >= "
      "min-speedup x and spend less energy; kCold must stay bit-identical");

  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  fleet::FleetConfig base;
  base.num_clients = clients;
  base.rounds = rounds;
  base.cohort_fraction = cohort;  // deep trajectories: most clients replay
  base.deadline_ratio = ratio;    // past the canonical exploration prefix
  base.seed = 7;
  base.threads = threads;
  base.clusters.push_back({&agx, device::vit_profile(), 0.6});
  base.clusters.push_back({&tx2, device::lstm_profile(), 0.4});

  // Stage 1: cold reference.
  const RunOutcome cold = run_fleet(base);
  std::printf("\ncold:  hash=%016llx exploration=%llu energy=%.0f J\n",
              static_cast<unsigned long long>(cold.trace_hash),
              static_cast<unsigned long long>(cold.exploration_rounds),
              cold.energy_j);

  // Stage 2: generation 1 — empty store, kVerify.  Unknown clusters run
  // cold; the run publishes one distilled snapshot per cluster.
  priors::KnowledgeStore store;
  fleet::FleetConfig gen1 = base;
  gen1.knowledge = &store;
  gen1.prior_policy = priors::PriorPolicy::kVerify;
  const RunOutcome first = run_fleet(gen1);
  std::printf("gen 1: hash=%016llx exploration=%llu clusters=%zu\n",
              static_cast<unsigned long long>(first.trace_hash),
              static_cast<unsigned long long>(first.exploration_rounds),
              store.num_clusters());

  // Stage 3: serialization round-trip.
  const std::string json = store.to_json();
  const priors::KnowledgeStore reloaded =
      priors::KnowledgeStore::from_json(json, store.options());
  const bool roundtrip_stable = reloaded.to_json() == json;

  // Stage 4: generation 2 — fresh fleet, warm from the reloaded store.
  priors::KnowledgeStore gen2_store = reloaded;
  fleet::FleetConfig gen2 = base;
  gen2.knowledge = &gen2_store;
  gen2.prior_policy = priors::PriorPolicy::kVerify;
  const RunOutcome warm = run_fleet(gen2);
  const double speedup =
      warm.exploration_rounds == 0
          ? static_cast<double>(cold.exploration_rounds)
          : static_cast<double>(cold.exploration_rounds) /
                static_cast<double>(warm.exploration_rounds);
  std::printf(
      "gen 2: hash=%016llx exploration=%llu (%.1fx fewer) "
      "energy=%.0f J (cold %.0f J) warm clusters=%u/%zu\n",
      static_cast<unsigned long long>(warm.trace_hash),
      static_cast<unsigned long long>(warm.exploration_rounds), speedup,
      warm.energy_j, cold.energy_j, warm.warm_clusters, base.clusters.size());

  // Stage 5: kCold differential guarantee against the populated store.
  priors::KnowledgeStore frozen = reloaded;
  const std::string frozen_before = frozen.to_json();
  fleet::FleetConfig cold_with_store = base;
  cold_with_store.knowledge = &frozen;
  cold_with_store.prior_policy = priors::PriorPolicy::kCold;
  const RunOutcome differential = run_fleet(cold_with_store);

  std::printf("\ngates:\n");
  bool ok = true;
  ok &= gate(first.trace_hash == cold.trace_hash,
             "gen 1 (empty store) trace bit-identical to cold");
  ok &= gate(store.num_clusters() == base.clusters.size(),
             "gen 1 distilled every cluster");
  ok &= gate(roundtrip_stable, "store JSON round-trip byte-identical");
  ok &= gate(warm.warm_clusters == base.clusters.size(),
             "gen 2 admitted every cluster's prior");
  ok &= gate(speedup >= min_speedup,
             "gen 2 exploration rounds >= min-speedup x fewer");
  ok &= gate(warm.energy_j < cold.energy_j,
             "gen 2 cumulative energy below cold");
  ok &= gate(differential.trace_hash == cold.trace_hash,
             "kCold with populated store bit-identical to cold");
  ok &= gate(frozen.to_json() == frozen_before,
             "kCold left the store untouched");

  telemetry::JsonValue metrics = telemetry::JsonValue::object();
  metrics.set("clients", clients)
      .set("rounds", rounds)
      .set("cohort_fraction", cohort)
      .set("deadline_ratio", ratio)
      .set("clusters", base.clusters.size())
      .set("cold_exploration_rounds",
           static_cast<double>(cold.exploration_rounds))
      .set("warm_exploration_rounds",
           static_cast<double>(warm.exploration_rounds))
      .set("exploration_speedup", speedup)
      .set("cold_energy_j", cold.energy_j)
      .set("warm_energy_j", warm.energy_j)
      .set("energy_saving_fraction",
           cold.energy_j > 0.0 ? 1.0 - warm.energy_j / cold.energy_j : 0.0)
      .set("kcold_bit_identical", differential.trace_hash == cold.trace_hash)
      .set("passed", ok);
  bench::write_bench_json("fleet_priors", std::move(metrics));
  std::printf("\nresult: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
