// Fleet-scaling benchmark for the runtime subsystem: sweep fleet size x
// worker count over the federated simulation and report per-round wall
// time, speedup over the serial run, and parallel efficiency.  Also checks
// the runtime's determinism contract as it goes: every thread count must
// reproduce the serial run's total energy and final accuracy bit-for-bit.
//
//   bench_fleet_scaling [--threads N] [--rounds R] [--clients-list 16,64]
//
// --threads caps the sweep's largest worker count (0 / absent = one worker
// per hardware thread; the sweep always includes 1, 2, 4 when they fit).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "device/device_model.hpp"
#include "figure_common.hpp"
#include "fl/simulation.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace bofl;

fl::FlSimulationConfig base_config(std::size_t clients, std::int64_t rounds,
                                   std::size_t threads) {
  fl::FlSimulationConfig config;
  config.num_clients = clients;
  config.clients_per_round = std::max<std::size_t>(1, clients / 2);
  config.rounds = rounds;
  config.shard_examples = 128;
  config.seed = 7;
  config.threads = threads;
  return config;
}

std::vector<std::size_t> parse_list(const std::string& csv,
                                    std::vector<std::size_t> fallback) {
  if (csv.empty()) {
    return fallback;
  }
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.npos : comma - pos);
    out.push_back(static_cast<std::size_t>(std::stoull(item)));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const auto rounds = flags.get_int("rounds", 3);
  const std::size_t max_threads =
      flags.get_int("threads", 0) > 0
          ? static_cast<std::size_t>(flags.get_int("threads", 0))
          : runtime::hardware_threads();
  const std::vector<std::size_t> fleets =
      parse_list(flags.get("clients-list", ""), {16, 64});

  std::vector<std::size_t> thread_counts;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              max_threads}) {
    if (t <= max_threads &&
        (thread_counts.empty() || t > thread_counts.back())) {
      thread_counts.push_back(t);
    }
  }

  bench::print_header(
      "Fleet scaling: round wall-time vs worker count (BoFL clients, "
      "heterogeneous AGX/TX2 fleet)",
      "speedup is vs the threads=1 run of the same fleet; results must be "
      "bit-identical across thread counts");

  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  const std::vector<const device::DeviceModel*> devices{&agx, &tx2};

  bool deterministic = true;
  telemetry::JsonValue cells = telemetry::JsonValue::array();
  for (const std::size_t clients : fleets) {
    std::printf("\n%zu clients, %zu/round, %lld rounds:\n", clients,
                std::max<std::size_t>(1, clients / 2),
                static_cast<long long>(rounds));
    std::printf("  %8s %14s %10s %12s\n", "threads", "round [ms]", "speedup",
                "efficiency");
    double serial_ms = 0.0;
    Joules serial_energy{0.0};
    double serial_accuracy = 0.0;
    for (const std::size_t threads : thread_counts) {
      fl::FederatedSimulation sim(devices,
                                  base_config(clients, rounds, threads));
      const auto start = std::chrono::steady_clock::now();
      const fl::FlSimulationResult result = sim.run();
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count() /
          static_cast<double>(rounds);
      if (threads == 1) {
        serial_ms = ms;
        serial_energy = result.total_energy();
        serial_accuracy = result.final_accuracy();
      }
      const bool same =
          result.total_energy().value() == serial_energy.value() &&
          result.final_accuracy() == serial_accuracy;
      deterministic = deterministic && same;
      const double speedup = serial_ms / ms;
      std::printf("  %8zu %14.1f %9.2fx %11.0f%%%s\n", threads, ms, speedup,
                  100.0 * speedup / static_cast<double>(threads),
                  same ? "" : "  [MISMATCH vs threads=1]");
      telemetry::JsonValue cell = telemetry::JsonValue::object();
      cell.set("clients", clients)
          .set("threads", threads)
          .set("round_ms", ms)
          .set("speedup", speedup)
          .set("efficiency",
               speedup / static_cast<double>(threads))
          .set("deterministic", same);
      cells.push_back(std::move(cell));
    }
  }

  std::printf("\ndeterminism across thread counts: %s\n",
              deterministic ? "ok (bit-identical)" : "VIOLATED");
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
  metrics.set("rounds", rounds)
      .set("deterministic", deterministic)
      .set("cells", std::move(cells));
  bench::write_bench_json("fleet_scaling", std::move(metrics));
  return deterministic ? 0 : 1;
}
