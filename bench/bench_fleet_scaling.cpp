// Fleet-scaling benchmark, two engines:
//
//   1. Per-object engine (fl::Simulation): sweep fleet size x worker count
//      and report per-round wall time, speedup over the serial run, and
//      parallel efficiency.  Checks the runtime's determinism contract as
//      it goes: every thread count must reproduce the serial run's total
//      energy and final accuracy bit-for-bit.
//   2. Sharded fleet engine (src/fleet): sweep fleet sizes into the 10^5–
//      10^6 range and report per-round wall time, microseconds per
//      client-round, SoA bytes per client (must stay flat), and peak RSS.
//      Each size re-runs re-sharded + parallel and compares trace hashes —
//      the engine's bit-identity contract.
//
//   3. Cluster control-plane sweep: clusters x threads wall-time cells on a
//      re-exploration workload (every cluster task-switches mid-run, so the
//      per-round GP/EHVI/ILP control plane is the dominant cost), with the
//      control-plane ms split out from the data-plane ms.  Each parallel
//      cell's trace hash must match the serial-control-plane reference, and
//      the serial reference is compared against the committed baseline under
//      bench/baselines/ (target: >= 3x control-plane speedup at 8 threads on
//      the 16-cluster workload).
//
//   bench_fleet_scaling [--threads N] [--rounds R] [--clients-list 16,64]
//                       [--ratio 8.0] [--fleet-clients-list 1000,...]
//                       [--fleet-rounds N] [--million]
//                       [--cluster-list 4,16] [--cluster-rounds N]
//                       [--cluster-clients N] [--baseline PATH]
//
// --threads caps the sweep's largest worker count (0 / absent = one worker
// per hardware thread; the sweep always includes 1, 2, 4 when they fit).
// --ratio is the deadline ratio for BOTH engines: the default 8 keeps
// steady-state rounds in exploitation so the ILP/cache hot path is what's
// measured (a ratio of 2 pins clients in exploration and measures the wrong
// regime).  --million appends the 10^6-client x 100-round cell to the fleet
// sweep (minutes, off by default).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "device/device_model.hpp"
#include "faults/fleet_scenario.hpp"
#include "figure_common.hpp"
#include "fl/simulation.hpp"
#include "fleet/fleet_engine.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/json_reader.hpp"
#include "telemetry/process.hpp"

namespace {

using namespace bofl;

fl::FlSimulationConfig base_config(std::size_t clients, std::int64_t rounds,
                                   std::size_t threads, double ratio) {
  fl::FlSimulationConfig config;
  config.num_clients = clients;
  config.clients_per_round = std::max<std::size_t>(1, clients / 2);
  config.rounds = rounds;
  config.shard_examples = 128;
  config.seed = 7;
  config.threads = threads;
  config.deadline_ratio = ratio;
  return config;
}

std::vector<std::size_t> parse_list(const std::string& csv,
                                    std::vector<std::size_t> fallback) {
  if (csv.empty()) {
    return fallback;
  }
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.npos : comma - pos);
    out.push_back(static_cast<std::size_t>(std::stoull(item)));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

fleet::FleetConfig fleet_config(std::size_t clients, std::int64_t rounds,
                                double ratio, std::size_t shards,
                                std::size_t threads) {
  fleet::FleetConfig config;
  config.num_clients = clients;
  config.rounds = rounds;
  config.cohort_fraction = 0.01;
  config.deadline_ratio = ratio;
  config.seed = 7;
  config.shards = shards;
  config.threads = threads;
  return config;
}

/// Serial-control-plane ms/round for `clusters` from the committed baseline's
/// cluster_sweep rows, or 0 when the baseline lacks that row.
double baseline_serial_cp_ms(const telemetry::JsonNode& metrics,
                             std::size_t clusters) {
  const telemetry::JsonNode* rows = metrics.find("cluster_sweep");
  if (rows == nullptr || rows->type != telemetry::JsonNode::Type::kArray) {
    return 0.0;
  }
  for (const telemetry::JsonNode& row : rows->array) {
    const telemetry::JsonNode* serial = row.find("serial");
    if (telemetry::number_field(row, "clusters", -1.0) ==
            static_cast<double>(clusters) &&
        serial != nullptr && serial->boolean) {
      return telemetry::number_field(row, "control_plane_ms_per_round", 0.0);
    }
  }
  return 0.0;
}

/// Committed-baseline metrics, or nullopt (with a printed note) when the
/// baseline is missing/unreadable — the sweep still runs, only the
/// vs-baseline column is skipped.
std::optional<telemetry::JsonNode> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("  (baseline %s not found; vs-baseline column skipped)\n",
                path.c_str());
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  telemetry::JsonNode root;
  try {
    root = telemetry::parse_json(buffer.str());
  } catch (const std::exception& e) {
    std::printf("  (baseline %s unreadable: %s; vs-baseline column skipped)\n",
                path.c_str(), e.what());
    return std::nullopt;
  }
  const telemetry::JsonNode* base = root.find("metrics");
  if (base == nullptr) {
    std::printf("  (baseline %s has no metrics; vs-baseline column skipped)\n",
                path.c_str());
    return std::nullopt;
  }
  return *base;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const auto rounds = flags.get_int("rounds", 3);
  const double ratio = flags.get_double("ratio", 8.0);
  const std::size_t max_threads =
      flags.get_int("threads", 0) > 0
          ? static_cast<std::size_t>(flags.get_int("threads", 0))
          : runtime::hardware_threads();
  const std::vector<std::size_t> fleets =
      parse_list(flags.get("clients-list", ""), {16, 64});

  std::vector<std::size_t> thread_counts;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              max_threads}) {
    if (t <= max_threads &&
        (thread_counts.empty() || t > thread_counts.back())) {
      thread_counts.push_back(t);
    }
  }

  bench::print_header(
      "Fleet scaling: round wall-time vs worker count (BoFL clients, "
      "heterogeneous AGX/TX2 fleet)",
      "speedup is vs the threads=1 run of the same fleet; results must be "
      "bit-identical across thread counts");

  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  const std::vector<const device::DeviceModel*> devices{&agx, &tx2};

  bool deterministic = true;
  telemetry::JsonValue cells = telemetry::JsonValue::array();
  for (const std::size_t clients : fleets) {
    std::printf("\n%zu clients, %zu/round, %lld rounds (per-object engine):\n",
                clients, std::max<std::size_t>(1, clients / 2),
                static_cast<long long>(rounds));
    std::printf("  %8s %14s %10s %12s\n", "threads", "round [ms]", "speedup",
                "efficiency");
    double serial_ms = 0.0;
    Joules serial_energy{0.0};
    double serial_accuracy = 0.0;
    for (const std::size_t threads : thread_counts) {
      fl::FederatedSimulation sim(
          devices, base_config(clients, rounds, threads, ratio));
      const auto start = std::chrono::steady_clock::now();
      const fl::FlSimulationResult result = sim.run();
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count() /
          static_cast<double>(rounds);
      if (threads == 1) {
        serial_ms = ms;
        serial_energy = result.total_energy();
        serial_accuracy = result.final_accuracy();
      }
      const bool same =
          result.total_energy().value() == serial_energy.value() &&
          result.final_accuracy() == serial_accuracy;
      deterministic = deterministic && same;
      const double speedup = serial_ms / ms;
      std::printf("  %8zu %14.1f %9.2fx %11.0f%%%s\n", threads, ms, speedup,
                  100.0 * speedup / static_cast<double>(threads),
                  same ? "" : "  [MISMATCH vs threads=1]");
      telemetry::JsonValue cell = telemetry::JsonValue::object();
      cell.set("engine", "per-object")
          .set("clients", clients)
          .set("threads", threads)
          .set("round_ms", ms)
          .set("speedup", speedup)
          .set("efficiency",
               speedup / static_cast<double>(threads))
          .set("deterministic", same);
      cells.push_back(std::move(cell));
    }
  }

  // --- Sharded fleet engine: size sweep with bit-identity re-check. -------
  const auto fleet_rounds = flags.get_int("fleet-rounds", 20);
  std::vector<std::size_t> fleet_sizes = parse_list(
      flags.get("fleet-clients-list", ""), {1'000, 10'000, 100'000});
  std::int64_t million_rounds = 0;
  if (flags.get_bool("million")) {
    fleet_sizes.push_back(1'000'000);
    million_rounds = 100;  // the full paper-scale curve
  }

  std::printf("\nsharded fleet engine (cohort 1%%, ratio %.1f, "
              "%lld rounds/size):\n", ratio,
              static_cast<long long>(fleet_rounds));
  std::printf("  %10s %12s %16s %10s %10s %10s\n", "clients", "round [ms]",
              "us/client-round", "B/client", "RSS [MB]", "queue");
  for (const std::size_t clients : fleet_sizes) {
    const std::int64_t size_rounds =
        clients >= 1'000'000 && million_rounds > 0 ? million_rounds
                                                   : fleet_rounds;
    // Reference trace: serial, single shard.
    fleet::FleetEngine reference(
        fleet_config(clients, size_rounds, ratio, 1, 1));
    const fleet::FleetResult ref_result = reference.run();
    // Measured run: auto shards, full worker pool.
    fleet::FleetEngine engine(
        fleet_config(clients, size_rounds, ratio, 0, max_threads));
    const auto start = std::chrono::steady_clock::now();
    const fleet::FleetResult result = engine.run();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(size_rounds);
    const bool same = result.trace_hash == ref_result.trace_hash;
    deterministic = deterministic && same;
    const double us_per_client_round =
        1000.0 * ms / static_cast<double>(clients);
    const double rss_mb =
        static_cast<double>(result.peak_rss_bytes) / (1024.0 * 1024.0);
    std::printf("  %10zu %12.1f %16.3f %10.1f %10.1f %10llu%s\n", clients, ms,
                us_per_client_round, result.bytes_per_client(), rss_mb,
                static_cast<unsigned long long>(result.max_queue_depth),
                same ? "" : "  [MISMATCH vs shards=1/threads=1]");
    telemetry::JsonValue cell = telemetry::JsonValue::object();
    cell.set("engine", "fleet")
        .set("clients", clients)
        .set("deadline_ratio", ratio)
        .set("rounds", size_rounds)
        .set("shards", result.num_shards)
        .set("threads", max_threads)
        .set("round_ms", ms)
        .set("us_per_client_round", us_per_client_round)
        .set("bytes_per_client", result.bytes_per_client())
        .set("peak_rss_bytes", static_cast<double>(result.peak_rss_bytes))
        .set("max_queue_depth",
             static_cast<double>(result.max_queue_depth))
        .set("miss_rate", result.miss_rate())
        .set("phase3_fraction", result.phase3_fraction())
        .set("deterministic", same);
    cells.push_back(std::move(cell));
  }

  // --- Cluster control-plane sweep: clusters x threads on a re-exploration
  // workload.  Every cell runs the task-switch scenario (all clusters forced
  // back into exploration at round 10) over a 4-device-class mix, so
  // per-round cost is dominated by the canonical controllers' GP/EHVI/ILP
  // work — exactly what the parallel control plane fans out.  The serial
  // reference (threads=1, --serial-control-plane semantics) anchors both the
  // in-run speedup and the comparison against the committed baseline.
  const auto cluster_rounds = flags.get_int("cluster-rounds", 12);
  const std::size_t cluster_clients =
      static_cast<std::size_t>(flags.get_int("cluster-clients", 20'000));
  const std::vector<std::size_t> cluster_counts =
      parse_list(flags.get("cluster-list", ""), {4, 16});
  const std::string baseline_path =
      flags.get("baseline",
                "bench/baselines/BENCH_fleet_control_plane_baseline.json");

  bench::print_header(
      "Cluster control-plane sweep: clusters x threads (task-switch "
      "re-exploration workload)",
      "control-plane ms is the per-round serial section (extension + "
      "needed-depth + fault flush); every parallel cell must reproduce the "
      "serial trace hash");
  const std::optional<telemetry::JsonNode> baseline =
      load_baseline(baseline_path);

  const device::DeviceModel phone = device::pixel_phone();
  const device::DeviceModel edge = device::edge_server();
  const std::vector<const device::DeviceModel*> sweep_devices{&agx, &tx2,
                                                              &phone, &edge};
  const std::vector<device::WorkloadProfile> sweep_profiles{
      device::vit_profile(), device::lstm_profile(),
      device::resnet50_profile()};

  telemetry::JsonValue sweep_rows = telemetry::JsonValue::array();
  for (const std::size_t nclusters : cluster_counts) {
    const auto make_config = [&](std::size_t threads, bool serial_cp) {
      fleet::FleetConfig config = fleet_config(
          cluster_clients, cluster_rounds, ratio, 0, threads);
      config.serial_control_plane = serial_cp;
      config.scenario = faults::make_fleet_scenario("task-switch", 7);
      for (std::size_t c = 0; c < nclusters; ++c) {
        config.clusters.push_back({sweep_devices[c % sweep_devices.size()],
                                   sweep_profiles[(c / sweep_devices.size()) %
                                                  sweep_profiles.size()],
                                   1.0});
      }
      return config;
    };
    const double base_cp_ms =
        baseline.has_value() ? baseline_serial_cp_ms(*baseline, nclusters)
                             : 0.0;

    std::printf("\n%zu clusters, %zu clients, %lld rounds:\n", nclusters,
                cluster_clients, static_cast<long long>(cluster_rounds));
    std::printf("  %8s %8s %16s %14s %10s %12s\n", "threads", "mode",
                "control [ms/rd]", "data [ms/rd]", "speedup", "vs baseline");

    // Serial control-plane reference.
    fleet::FleetEngine reference(make_config(1, true));
    const fleet::FleetResult ref = reference.run();
    const double rounds_d = static_cast<double>(cluster_rounds);
    const double serial_cp = ref.control_plane_ms / rounds_d;
    const double serial_dp = ref.data_plane_ms / rounds_d;
    std::printf("  %8d %8s %16.2f %14.2f %10s %11.2fx\n", 1, "serial",
                serial_cp, serial_dp, "--",
                base_cp_ms > 0.0 ? base_cp_ms / serial_cp : 0.0);
    {
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("clusters", nclusters)
          .set("threads", std::size_t{1})
          .set("serial", true)
          .set("control_plane_ms_per_round", serial_cp)
          .set("data_plane_ms_per_round", serial_dp)
          .set("deterministic", true);
      if (base_cp_ms > 0.0) {
        row.set("speedup_vs_baseline", base_cp_ms / serial_cp);
      }
      sweep_rows.push_back(std::move(row));
    }

    for (const std::size_t threads : thread_counts) {
      fleet::FleetEngine engine(make_config(threads, false));
      const fleet::FleetResult result = engine.run();
      const bool same = result.trace_hash == ref.trace_hash;
      deterministic = deterministic && same;
      const double cp = result.control_plane_ms / rounds_d;
      const double dp = result.data_plane_ms / rounds_d;
      const double speedup = cp > 0.0 ? serial_cp / cp : 0.0;
      std::printf("  %8zu %8s %16.2f %14.2f %9.2fx %11.2fx%s\n", threads,
                  "parallel", cp, dp, speedup,
                  base_cp_ms > 0.0 ? base_cp_ms / cp : 0.0,
                  same ? "" : "  [MISMATCH vs serial control plane]");
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("clusters", nclusters)
          .set("threads", threads)
          .set("serial", false)
          .set("control_plane_ms_per_round", cp)
          .set("data_plane_ms_per_round", dp)
          .set("speedup_vs_serial", speedup)
          .set("deterministic", same);
      if (base_cp_ms > 0.0) {
        row.set("speedup_vs_baseline", base_cp_ms / cp);
      }
      sweep_rows.push_back(std::move(row));
    }
  }

  std::printf("\ndeterminism across thread counts: %s\n",
              deterministic ? "ok (bit-identical)" : "VIOLATED");
  telemetry::JsonValue metrics = telemetry::JsonValue::object();
  // The fleet section carries its sweep parameters unconditionally —
  // deadline_ratio used to ride only on the per-size cells, so a run whose
  // size sweep was skipped (empty --fleet-clients-list without --million)
  // wrote a fleet summary with no ratio and baseline diffs stopped lining
  // up.  Emitting it here keeps the key present for every flag combination.
  telemetry::JsonValue fleet_section = telemetry::JsonValue::object();
  fleet_section.set("deadline_ratio", ratio)
      .set("rounds", fleet_rounds)
      .set("sizes", fleet_sizes.size())
      .set("million", million_rounds > 0);
  metrics.set("rounds", rounds)
      .set("fleet_rounds", fleet_rounds)
      .set("deadline_ratio", ratio)
      .set("fleet", std::move(fleet_section))
      .set("cluster_rounds", cluster_rounds)
      .set("cluster_clients", cluster_clients)
      .set("cluster_sweep", std::move(sweep_rows))
      .set("deterministic", deterministic)
      .set("cells", std::move(cells));
  bench::write_bench_json("fleet_scaling", std::move(metrics));
  return deterministic ? 0 : 1;
}
