// Shared plumbing for the figure-reproduction benchmarks: standard
// controller construction, full-task execution, and table formatting.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/linear_controller.hpp"
#include "core/mbo_cost.hpp"
#include "core/oracle_controller.hpp"
#include "core/performant_controller.hpp"
#include "device/device_model.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/json.hpp"

namespace bofl::bench {

/// Parse --threads N from a bench driver's argv (0 / absent = one worker
/// per hardware thread) and --simd avx2|scalar (forces the kernel dispatch
/// level; absent = BOFL_SIMD env, then cpuid — see linalg/simd/dispatch.hpp).
/// Call once at the top of main, before the first shared_pool() use.
void configure_threads(int argc, const char* const* argv);

/// Process-wide worker pool for the benches, sized by configure_threads();
/// created on first use.  Controller sweeps are deterministic for any size.
[[nodiscard]] runtime::ThreadPool& shared_pool();

/// The seeds every figure benchmark uses, so printed numbers are stable.
struct Seeds {
  std::uint64_t deadlines = 20221107;  // Middleware '22 opening day
  std::uint64_t bofl = 1;
  std::uint64_t performant = 2;
  std::uint64_t oracle = 3;
};

/// Default BoFL options with the device-calibrated MBO cost model.
[[nodiscard]] core::BoflOptions default_bofl_options(
    const device::DeviceModel& model);

/// Run a full (task, deadline-ratio) experiment with the three §6
/// controllers and return their results in {bofl, performant, oracle} order.
/// The three controllers run concurrently on shared_pool() (each one's
/// rounds stay strictly ordered, so numbers match the serial sweep).
struct ComparisonResult {
  core::TaskResult bofl;
  core::TaskResult performant;
  core::TaskResult oracle;
  std::vector<core::RoundSpec> rounds;
};

[[nodiscard]] ComparisonResult run_comparison(const device::DeviceModel& model,
                                              const core::FlTaskSpec& task,
                                              double deadline_ratio,
                                              const Seeds& seeds = {});

/// Same but keeping the BoFL controller alive for post-hoc inspection
/// (Pareto fronts, explored sets).  `options_override` replaces
/// default_bofl_options(model) when non-null — used by A/B sweeps (e.g.
/// fig11's Sobol-vs-Halton exploration-sampler comparison).
[[nodiscard]] std::unique_ptr<core::BoflController> run_bofl_only(
    const device::DeviceModel& model, const core::FlTaskSpec& task,
    double deadline_ratio, core::TaskResult& result_out,
    const Seeds& seeds = {}, const core::BoflOptions* options_override = nullptr);

/// When the BOFL_CSV_DIR environment variable is set, figure benchmarks
/// additionally export their series as CSV files into that directory
/// (returns the full path, or an empty string when exporting is off).
[[nodiscard]] std::string csv_path_or_empty(const std::string& filename);

/// Figures 9 and 10 share everything except the deadline ratio: print the
/// per-round energy of BoFL / Performant / Oracle (first 40 of 100 rounds)
/// with deadlines and phase markers, then the whole-task summary metrics.
/// `bench_slug` names the machine-readable result file (see
/// write_bench_json).
void print_energy_figure(const char* figure_label, const char* bench_slug,
                         double deadline_ratio);

/// Write a machine-readable bench result as BENCH_<name>.json into
/// $BOFL_BENCH_JSON_DIR (or the current directory), wrapping `metrics` as
///   {"bench": <name>, "metrics": <metrics>}
/// so perf trajectories can be assembled from bench runs.  Returns the path
/// written.
std::string write_bench_json(const std::string& name,
                             telemetry::JsonValue metrics);

/// Section banner: "=== Figure 9(a): ... ===".
void print_header(const std::string& title, const std::string& subtitle = "");

/// One row of right-aligned numeric cells after a label.
void print_row(const std::string& label, const std::vector<double>& cells,
               const char* format = "%10.2f");

}  // namespace bofl::bench
