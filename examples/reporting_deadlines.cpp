// reporting_deadlines: the paper's footnote-3 extension in action.  The
// server only specifies *reporting* deadlines (train + upload); each client
// measures its uplink bandwidth and infers a safe training deadline for its
// BoFL controller.  We degrade the link mid-run and watch the adapter
// tighten the inferred training deadlines while updates keep landing.
//
//   $ ./reporting_deadlines
#include <cstdio>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "fl/network.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  core::FlTaskSpec task = core::imagenet_resnet50_task(agx.name());
  task.num_rounds = 30;

  // ResNet50 update ~ 51.2 Mb over a nominal 5 Mbps LTE uplink (the
  // paper's own example: ~10.2 s per transfer).
  constexpr double kModelBits = 51.2e6;
  fl::NetworkModel uplink(5.0, 0.2, 11);
  fl::ReportingDeadlineAdapter adapter(kModelBits,
                                       fl::BandwidthEstimator(5.0), 1.25);

  // The server assigns reporting deadlines with enough headroom for the
  // nominal upload on top of the usual 2.5x training slack.
  const Seconds t_min =
      agx.round_t_min(task.profile, task.jobs_per_round());
  core::DeadlineGenerator reporting_deadlines(
      t_min + Seconds{1.25 * kModelBits / (5.0 * 1e6)}, 2.5, 21);

  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(agx.name());
  core::BoflController bofl(agx, task.profile, device::NoiseModel{},
                            options, 31);

  std::printf(
      "round | report ddl | est. bw | inferred train ddl | trained | "
      "upload | reported\n");
  int landed = 0;
  for (std::int64_t round = 0; round < task.num_rounds; ++round) {
    if (round == 15) {
      // The client roams onto a congested cell: uplink halves.
      uplink = fl::NetworkModel(2.5, 0.2, 99);
      std::printf("--- uplink degrades to 2.5 Mbps ---\n");
    }
    const Seconds reporting = reporting_deadlines.next();
    const Seconds training = adapter.training_deadline(reporting);
    const core::RoundTrace trace =
        bofl.run_round({round, task.jobs_per_round(), training});
    const Seconds upload = uplink.transfer_time(kModelBits);
    adapter.record_upload(upload);
    const bool reported =
        trace.elapsed() + upload <= reporting;
    landed += reported ? 1 : 0;
    std::printf(
        "  %3lld | %7.1f s  | %4.1f Mb | %12.1f s     | %6.1f s | %5.1f s | "
        "%s\n",
        static_cast<long long>(round + 1), reporting.value(),
        adapter.estimator().estimate_mbps(), training.value(),
        trace.elapsed().value(), upload.value(), reported ? "yes" : "LATE");
  }
  std::printf(
      "\n%d/%lld updates reported in time; the bandwidth estimate tracked "
      "the degradation and\nthe inferred training deadlines tightened "
      "accordingly.\n",
      landed, static_cast<long long>(task.num_rounds));
  return 0;
}
