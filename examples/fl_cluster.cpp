// fl_cluster: a full federated-learning fleet — FedAvg server, a pool of
// simulated AGX clients each running its own BoFL controller, real local
// SGD on non-IID shards — compared against the same fleet at Performant
// pacing.  Demonstrates the paper's end goal: the fleet learns equally well
// while every client burns less battery.
//
//   $ ./fl_cluster
#include <cstdio>

#include "fl/simulation.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();

  fl::FlSimulationConfig config;
  config.num_clients = 8;
  config.clients_per_round = 4;
  config.rounds = 25;
  config.epochs = 2;
  config.minibatch_size = 8;
  config.shard_examples = 512;   // 64 minibatches -> 128 jobs/round
  config.deadline_ratio = 3.0;
  config.shard_skew = 2.0;       // visibly non-IID client data
  config.seed = 2022;

  std::printf("fleet: %zu clients, %zu per round, %lld rounds, task=%s\n\n",
              config.num_clients, config.clients_per_round,
              static_cast<long long>(config.rounds),
              config.profile.name.c_str());

  fl::FlSimulationResult results[2];
  const fl::ControllerKind kinds[2] = {fl::ControllerKind::kBofl,
                                       fl::ControllerKind::kPerformant};
  for (int k = 0; k < 2; ++k) {
    config.controller = kinds[k];
    fl::FederatedSimulation simulation(agx, config);
    results[k] = simulation.run();

    std::printf("--- %s pacing ---\n", to_string(kinds[k]));
    std::printf("round | loss    | accuracy | round energy | accepted\n");
    for (const fl::FlRoundStats& round : results[k].rounds) {
      std::printf(" %4lld | %.4f | %7.1f%% | %9.1f J  | %zu/%zu\n",
                  static_cast<long long>(round.round + 1), round.global_loss,
                  100.0 * round.global_accuracy, round.energy.value(),
                  round.accepted, round.participants);
    }
    std::printf("total energy: %.0f J, final accuracy: %.1f%%\n\n",
                results[k].total_energy().value(),
                100.0 * results[k].final_accuracy());
  }

  const double saved = 1.0 - results[0].total_energy().value() /
                                 results[1].total_energy().value();
  std::printf(
      "=> BoFL fleet saved %.1f%% energy; accuracy difference %.2f "
      "percentage points;\n   dropped updates: BoFL=%zu Performant=%zu\n",
      100.0 * saved,
      100.0 * (results[0].final_accuracy() - results[1].final_accuracy()),
      results[0].total_dropped_updates(),
      results[1].total_dropped_updates());
  return 0;
}
