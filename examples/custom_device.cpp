// custom_device: bring your own hardware.  Defines a hypothetical
// "edge-nano" board (2-axis-dominant, weak GPU) and a custom workload, then
// runs BoFL on it — nothing in the controller is Jetson-specific.  Also
// shows the sysfs actuation path a real deployment would drive.
//
//   $ ./custom_device
#include <cstdio>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/performant_controller.hpp"
#include "device/sysfs.hpp"

int main() {
  using namespace bofl;

  // 1. Describe the hardware: frequency tables, throughput scales, power.
  device::DeviceSpec spec;
  spec.name = "edge-nano";
  spec.cpu_scale = 0.6;
  spec.mem_scale = 0.5;
  spec.gpu_class_scale = {{device::WorkloadClass::kTransformer, 0.25},
                          {device::WorkloadClass::kCnn, 0.2},
                          {device::WorkloadClass::kRnn, 0.35}};
  spec.idle_power_watts = 1.2;
  spec.cpu_power = {0.65, 1.05, 1.3, 5.0};
  spec.gpu_power = {0.65, 1.05, 1.3, 4.0};
  spec.mem_power = {0.65, 1.05, 1.3, 1.5};
  device::DvfsSpace space{device::FrequencyTable::linear(0.3, 1.5, 10),
                          device::FrequencyTable::linear(0.15, 0.9, 8),
                          device::FrequencyTable::linear(0.4, 1.6, 4)};
  const device::DeviceModel nano(spec, std::move(space));
  std::printf("custom device '%s': %zu DVFS configurations\n",
              nano.name().c_str(), nano.space().size());

  // 2. Describe the workload: a small on-device keyword-spotting RNN.
  device::WorkloadProfile kws;
  kws.name = "keyword-spotting-rnn";
  kws.workload_class = device::WorkloadClass::kRnn;
  kws.cpu_work = 0.12;
  kws.gpu_work = 0.05;
  kws.mem_work = 0.04;
  kws.serial_fraction = 0.5;
  kws.cpu_power_intensity = 0.8;

  // 3. An FL task on this device: 64 jobs per round, 25 rounds, 2.5x slack.
  core::FlTaskSpec task;
  task.name = "KWS-RNN";
  task.profile = kws;
  task.minibatch_size = 16;
  task.epochs = 2;
  task.num_minibatches = 32;
  task.num_rounds = 25;
  const auto rounds = core::make_rounds(task, nano, 2.5, 31);
  std::printf("task '%s': %lld jobs/round, T_min = %.1f s\n",
              task.name.c_str(),
              static_cast<long long>(task.jobs_per_round()),
              nano.round_t_min(kws, task.jobs_per_round()).value());

  // 4. Run BoFL.  The MBO cost model is device-specific; for a custom board
  //    measure it once and plug it in (here: a conservative guess).
  core::BoflOptions options;
  options.mbo_cost = {6.0, 0.02, 0.15, 4.0};
  core::BoflController bofl(nano, kws, device::NoiseModel{}, options, 3);
  core::PerformantController performant(nano, kws, device::NoiseModel{}, 4);
  const core::TaskResult rb = core::run_task(bofl, rounds);
  const core::TaskResult rp = core::run_task(performant, rounds);

  std::printf(
      "\nBoFL %.0f J vs Performant %.0f J -> %.1f%% saved; deadlines %s\n",
      core::total_energy(rb).value(), core::total_energy(rp).value(),
      100.0 * core::improvement_vs(rb, rp),
      rb.all_deadlines_met() ? "all met" : "MISSED");

  // 5. Actuate the final round's schedule through the sysfs interface —
  //    this is the layer you'd point at /sys on real hardware.
  device::SysfsDvfsController sysfs(nano.space());
  std::printf("\nfinal-round schedule actuated via sysfs:\n");
  for (const core::ConfigRun& run : rb.rounds.back().runs) {
    sysfs.apply(run.config);
    std::printf("  %lld jobs @ %s  (cpu cur_freq file: %s kHz)\n",
                static_cast<long long>(run.jobs),
                nano.space().describe(run.config).c_str(),
                sysfs.tree().read(device::SysfsDvfsController::kCpuCurPath)
                    .c_str());
  }
  return 0;
}
