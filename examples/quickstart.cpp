// Quickstart: run BoFL on one simulated Jetson AGX for the paper's
// CIFAR10-ViT task and compare it with the Performant baseline.
//
//   $ ./quickstart
//
// Walks through the public API in the order a user would meet it:
//   1. pick a device model,
//   2. describe the FL task (B, E, N, deadlines),
//   3. construct a pace controller,
//   4. feed it rounds and read the traces.
#include <cstdio>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/performant_controller.hpp"

int main() {
  using namespace bofl;

  // 1. The device: a calibrated Jetson AGX Xavier simulation with the full
  //    25 x 14 x 6 DVFS lattice.
  const device::DeviceModel agx = device::jetson_agx();
  std::printf("device: %s with %zu DVFS configurations\n",
              agx.name().c_str(), agx.space().size());

  // 2. The task: CIFAR10-ViT per the paper's Table 2 — minibatch 32,
  //    5 epochs over 40 local minibatches = 200 jobs per round, with
  //    deadlines sampled uniformly in [T_min, 2 T_min].
  core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  task.num_rounds = 30;
  const auto rounds = core::make_rounds(task, agx, /*ratio=*/2.0, /*seed=*/7);
  std::printf("task: %s, %lld jobs/round, %zu rounds\n", task.name.c_str(),
              static_cast<long long>(task.jobs_per_round()), rounds.size());

  // 3. The controllers.
  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(agx.name());
  core::BoflController bofl(agx, task.profile, device::NoiseModel{}, options,
                            /*seed=*/1);
  core::PerformantController performant(agx, task.profile,
                                        device::NoiseModel{}, /*seed=*/2);

  // 4. Run both and inspect.
  const core::TaskResult bofl_result = core::run_task(bofl, rounds);
  const core::TaskResult perf_result = core::run_task(performant, rounds);

  std::printf("\nround | phase | deadline |  BoFL energy | Performant\n");
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    std::printf("  %3zu |   %d   | %6.1fs  | %9.1f J  | %9.1f J\n", r + 1,
                static_cast<int>(bofl_result.rounds[r].phase),
                rounds[r].deadline.value(),
                bofl_result.rounds[r].energy().value(),
                perf_result.rounds[r].energy().value());
  }
  std::printf(
      "\ntotal: BoFL %.0f J (+ %.0f J MBO)  vs  Performant %.0f J  ->  "
      "%.1f%% energy saved\n",
      bofl_result.total_training_energy().value(),
      bofl_result.total_mbo_energy().value(),
      perf_result.total_training_energy().value(),
      100.0 * core::improvement_vs(bofl_result, perf_result));
  std::printf("all deadlines met: %s\n",
              bofl_result.all_deadlines_met() ? "yes" : "NO");
  return 0;
}
