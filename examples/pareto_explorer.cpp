// pareto_explorer: use the MBO engine directly (outside any FL task) to
// search a device's energy/latency Pareto front, round by round, printing
// the hypervolume as it converges.  This is the §4.3 machinery exposed as a
// standalone tool — useful for profiling a new device or workload.
//
//   $ ./pareto_explorer
#include <cstdio>

#include "bo/mbo_engine.hpp"
#include "core/oracle_controller.hpp"
#include "device/device_model.hpp"
#include "device/observer.hpp"
#include "pareto/hypervolume.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel tx2 = device::jetson_tx2();
  const device::WorkloadProfile workload = device::resnet50_profile();
  std::printf("exploring %s / %s: %zu configurations\n", tx2.name().c_str(),
              workload.name.c_str(), tx2.space().size());

  // Measurement stack: noisy observer + simulated clock.
  device::PerformanceObserver observer(tx2, device::NoiseModel{}, 11);
  device::SimClock clock;
  const auto measure = [&](std::size_t flat) {
    const device::DvfsConfig config = tx2.space().from_flat(flat);
    const device::Measurement m =
        observer.run_jobs(workload, config, /*count=*/8, clock);
    return bo::MboObservation{flat, m.measured_energy.value(),
                              m.measured_latency.value()};
  };

  bo::MboEngine engine(tx2.space().all_normalized(), bo::MboOptions{}, 13);

  // Seed with a handful of quasi-random points (phase 1 in miniature).
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    engine.add_observation(measure(rng.uniform_index(tx2.space().size())));
  }
  engine.set_reference(engine.reference());

  std::printf("\n%5s %10s %12s %14s\n", "batch", "explored", "front size",
              "hypervolume");
  for (int round = 0; round < 8; ++round) {
    for (std::size_t flat : engine.propose_batch(8)) {
      engine.add_observation(measure(flat));
    }
    std::printf("%5d %10zu %12zu %14.3f\n", round + 1,
                engine.num_observed_candidates(),
                engine.observed_front().size(),
                engine.observed_hypervolume());
  }

  // Compare with the true front.
  const auto truth = core::true_pareto_profiles(tx2, workload);
  std::vector<pareto::Point2> truth_points;
  for (const auto& p : truth) {
    truth_points.push_back({p.energy_per_job, p.latency_per_job});
  }
  const double hv_truth =
      pareto::hypervolume_2d(truth_points, engine.reference());
  std::printf(
      "\nafter exploring %.1f%% of the space the front covers %.1f%% of the "
      "true hypervolume\n",
      100.0 *
          static_cast<double>(engine.num_observed_candidates()) /
          static_cast<double>(tx2.space().size()),
      100.0 * engine.observed_hypervolume() / hv_truth);

  std::printf("\nconstructed front (energy J/job, latency s/job):\n");
  for (const auto& p : engine.observed_front()) {
    std::printf("  E=%.2f  T=%.3f\n", p.f1, p.f2);
  }
  std::printf("simulated exploration time: %.1f s\n", clock.now().value());
  return 0;
}
