// heterogeneous_fleet: a mixed AGX/TX2 fleet with an adaptive server
// deadline policy and client dropout — the realistic deployment the paper's
// §2.1 two-level architecture targets.  The server floors each round's
// deadline at the slowest selected participant's T_min, tightens its slack
// while everyone delivers, and backs off after misses.
//
//   $ ./heterogeneous_fleet
#include <cstdio>

#include "fl/simulation.hpp"

int main() {
  using namespace bofl;
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();

  fl::FlSimulationConfig config;
  config.num_clients = 10;  // alternating AGX / TX2
  config.clients_per_round = 4;
  config.rounds = 25;
  config.epochs = 2;
  config.minibatch_size = 8;
  config.shard_examples = 512;
  config.deadline_policy = fl::DeadlinePolicyKind::kAdaptiveSlack;
  config.dropout_probability = 0.08;
  config.controller = fl::ControllerKind::kBofl;
  config.seed = 424242;

  std::printf(
      "fleet: %zu clients (AGX/TX2 alternating), %zu per round, adaptive "
      "deadline slack,\n8%% dropout, per-client BoFL controllers\n\n",
      config.num_clients, config.clients_per_round);

  fl::FederatedSimulation sim({&agx, &tx2}, config);
  const fl::FlSimulationResult result = sim.run();

  std::printf("round | deadline | accepted | loss    | accuracy | energy\n");
  for (const fl::FlRoundStats& round : result.rounds) {
    std::printf(" %4lld | %6.1f s | %zu/%zu      | %.4f | %6.1f%%  | %7.1f J\n",
                static_cast<long long>(round.round + 1),
                round.deadline.value(), round.accepted, round.participants,
                round.global_loss, 100.0 * round.global_accuracy,
                round.energy.value());
  }
  std::printf(
      "\ntotals: %.0f J, final accuracy %.1f%%, %zu dropped updates "
      "(dropout + stragglers)\n",
      result.total_energy().value(), 100.0 * result.final_accuracy(),
      result.total_dropped_updates());

  // Adaptive policy behaviour: the deadline band should visibly tighten
  // whenever a run of rounds lands everything.
  std::printf(
      "\nNote how the assigned deadlines drift down while all updates land "
      "and jump back up after\na dropout-heavy round: that is the adaptive "
      "slack policy reacting to cohort outcomes.\n");
  return 0;
}
