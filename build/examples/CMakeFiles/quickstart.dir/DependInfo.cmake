
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/bofl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bofl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bofl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/bofl_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/bofl_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/bofl_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/bofl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/bofl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bofl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
