# Empty dependencies file for reporting_deadlines.
# This may be replaced when dependencies are built.
