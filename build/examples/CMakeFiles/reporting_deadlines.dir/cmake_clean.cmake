file(REMOVE_RECURSE
  "CMakeFiles/reporting_deadlines.dir/reporting_deadlines.cpp.o"
  "CMakeFiles/reporting_deadlines.dir/reporting_deadlines.cpp.o.d"
  "reporting_deadlines"
  "reporting_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reporting_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
