file(REMOVE_RECURSE
  "CMakeFiles/fl_cluster.dir/fl_cluster.cpp.o"
  "CMakeFiles/fl_cluster.dir/fl_cluster.cpp.o.d"
  "fl_cluster"
  "fl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
