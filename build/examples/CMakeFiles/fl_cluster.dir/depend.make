# Empty dependencies file for fl_cluster.
# This may be replaced when dependencies are built.
