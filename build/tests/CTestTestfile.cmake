# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bofl_common_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_linalg_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_gp_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_pareto_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_bo_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_ilp_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_device_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_nn_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_core_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_fl_tests[1]_include.cmake")
include("/root/repo/build/tests/bofl_integration_tests[1]_include.cmake")
