# Empty dependencies file for bofl_ilp_tests.
# This may be replaced when dependencies are built.
