file(REMOVE_RECURSE
  "CMakeFiles/bofl_ilp_tests.dir/ilp/branch_and_bound_test.cpp.o"
  "CMakeFiles/bofl_ilp_tests.dir/ilp/branch_and_bound_test.cpp.o.d"
  "CMakeFiles/bofl_ilp_tests.dir/ilp/lp_test.cpp.o"
  "CMakeFiles/bofl_ilp_tests.dir/ilp/lp_test.cpp.o.d"
  "CMakeFiles/bofl_ilp_tests.dir/ilp/schedule_solver_test.cpp.o"
  "CMakeFiles/bofl_ilp_tests.dir/ilp/schedule_solver_test.cpp.o.d"
  "bofl_ilp_tests"
  "bofl_ilp_tests.pdb"
  "bofl_ilp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_ilp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
