# Empty dependencies file for bofl_fl_tests.
# This may be replaced when dependencies are built.
