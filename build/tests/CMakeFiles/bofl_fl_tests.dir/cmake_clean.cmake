file(REMOVE_RECURSE
  "CMakeFiles/bofl_fl_tests.dir/fl/client_server_test.cpp.o"
  "CMakeFiles/bofl_fl_tests.dir/fl/client_server_test.cpp.o.d"
  "CMakeFiles/bofl_fl_tests.dir/fl/deadline_policy_test.cpp.o"
  "CMakeFiles/bofl_fl_tests.dir/fl/deadline_policy_test.cpp.o.d"
  "CMakeFiles/bofl_fl_tests.dir/fl/heterogeneous_fleet_test.cpp.o"
  "CMakeFiles/bofl_fl_tests.dir/fl/heterogeneous_fleet_test.cpp.o.d"
  "CMakeFiles/bofl_fl_tests.dir/fl/network_test.cpp.o"
  "CMakeFiles/bofl_fl_tests.dir/fl/network_test.cpp.o.d"
  "CMakeFiles/bofl_fl_tests.dir/fl/simulation_modes_test.cpp.o"
  "CMakeFiles/bofl_fl_tests.dir/fl/simulation_modes_test.cpp.o.d"
  "CMakeFiles/bofl_fl_tests.dir/fl/simulation_test.cpp.o"
  "CMakeFiles/bofl_fl_tests.dir/fl/simulation_test.cpp.o.d"
  "bofl_fl_tests"
  "bofl_fl_tests.pdb"
  "bofl_fl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_fl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
