# Empty compiler generated dependencies file for bofl_bo_tests.
# This may be replaced when dependencies are built.
