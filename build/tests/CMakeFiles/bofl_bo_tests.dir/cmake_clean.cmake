file(REMOVE_RECURSE
  "CMakeFiles/bofl_bo_tests.dir/bo/ehvi_test.cpp.o"
  "CMakeFiles/bofl_bo_tests.dir/bo/ehvi_test.cpp.o.d"
  "CMakeFiles/bofl_bo_tests.dir/bo/mbo_engine_test.cpp.o"
  "CMakeFiles/bofl_bo_tests.dir/bo/mbo_engine_test.cpp.o.d"
  "bofl_bo_tests"
  "bofl_bo_tests.pdb"
  "bofl_bo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_bo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
