# Empty compiler generated dependencies file for bofl_common_tests.
# This may be replaced when dependencies are built.
