file(REMOVE_RECURSE
  "CMakeFiles/bofl_common_tests.dir/common/csv_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/csv_test.cpp.o.d"
  "CMakeFiles/bofl_common_tests.dir/common/flags_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/flags_test.cpp.o.d"
  "CMakeFiles/bofl_common_tests.dir/common/optim_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/optim_test.cpp.o.d"
  "CMakeFiles/bofl_common_tests.dir/common/quasirandom_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/quasirandom_test.cpp.o.d"
  "CMakeFiles/bofl_common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/bofl_common_tests.dir/common/stats_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/bofl_common_tests.dir/common/units_test.cpp.o"
  "CMakeFiles/bofl_common_tests.dir/common/units_test.cpp.o.d"
  "bofl_common_tests"
  "bofl_common_tests.pdb"
  "bofl_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
