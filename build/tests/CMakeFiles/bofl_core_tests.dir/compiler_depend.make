# Empty compiler generated dependencies file for bofl_core_tests.
# This may be replaced when dependencies are built.
