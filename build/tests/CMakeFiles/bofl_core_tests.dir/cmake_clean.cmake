file(REMOVE_RECURSE
  "CMakeFiles/bofl_core_tests.dir/core/baseline_controllers_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/baseline_controllers_test.cpp.o.d"
  "CMakeFiles/bofl_core_tests.dir/core/bofl_controller_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/bofl_controller_test.cpp.o.d"
  "CMakeFiles/bofl_core_tests.dir/core/mbo_cost_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/mbo_cost_test.cpp.o.d"
  "CMakeFiles/bofl_core_tests.dir/core/robustness_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/robustness_test.cpp.o.d"
  "CMakeFiles/bofl_core_tests.dir/core/state_io_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/state_io_test.cpp.o.d"
  "CMakeFiles/bofl_core_tests.dir/core/task_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/task_test.cpp.o.d"
  "CMakeFiles/bofl_core_tests.dir/core/trace_test.cpp.o"
  "CMakeFiles/bofl_core_tests.dir/core/trace_test.cpp.o.d"
  "bofl_core_tests"
  "bofl_core_tests.pdb"
  "bofl_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
