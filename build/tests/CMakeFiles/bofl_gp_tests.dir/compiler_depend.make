# Empty compiler generated dependencies file for bofl_gp_tests.
# This may be replaced when dependencies are built.
