file(REMOVE_RECURSE
  "CMakeFiles/bofl_gp_tests.dir/gp/gaussian_process_test.cpp.o"
  "CMakeFiles/bofl_gp_tests.dir/gp/gaussian_process_test.cpp.o.d"
  "CMakeFiles/bofl_gp_tests.dir/gp/hyperopt_test.cpp.o"
  "CMakeFiles/bofl_gp_tests.dir/gp/hyperopt_test.cpp.o.d"
  "CMakeFiles/bofl_gp_tests.dir/gp/kernel_test.cpp.o"
  "CMakeFiles/bofl_gp_tests.dir/gp/kernel_test.cpp.o.d"
  "bofl_gp_tests"
  "bofl_gp_tests.pdb"
  "bofl_gp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_gp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
