# Empty compiler generated dependencies file for bofl_integration_tests.
# This may be replaced when dependencies are built.
