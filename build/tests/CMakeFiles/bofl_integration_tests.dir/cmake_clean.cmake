file(REMOVE_RECURSE
  "CMakeFiles/bofl_integration_tests.dir/integration/determinism_test.cpp.o"
  "CMakeFiles/bofl_integration_tests.dir/integration/determinism_test.cpp.o.d"
  "CMakeFiles/bofl_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/bofl_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "bofl_integration_tests"
  "bofl_integration_tests.pdb"
  "bofl_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
