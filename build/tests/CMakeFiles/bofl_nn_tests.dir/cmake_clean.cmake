file(REMOVE_RECURSE
  "CMakeFiles/bofl_nn_tests.dir/nn/conv_test.cpp.o"
  "CMakeFiles/bofl_nn_tests.dir/nn/conv_test.cpp.o.d"
  "CMakeFiles/bofl_nn_tests.dir/nn/layers_test.cpp.o"
  "CMakeFiles/bofl_nn_tests.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/bofl_nn_tests.dir/nn/loss_test.cpp.o"
  "CMakeFiles/bofl_nn_tests.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/bofl_nn_tests.dir/nn/lstm_test.cpp.o"
  "CMakeFiles/bofl_nn_tests.dir/nn/lstm_test.cpp.o.d"
  "CMakeFiles/bofl_nn_tests.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/bofl_nn_tests.dir/nn/tensor_test.cpp.o.d"
  "CMakeFiles/bofl_nn_tests.dir/nn/training_test.cpp.o"
  "CMakeFiles/bofl_nn_tests.dir/nn/training_test.cpp.o.d"
  "bofl_nn_tests"
  "bofl_nn_tests.pdb"
  "bofl_nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
