# Empty compiler generated dependencies file for bofl_nn_tests.
# This may be replaced when dependencies are built.
