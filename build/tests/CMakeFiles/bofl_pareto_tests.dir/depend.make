# Empty dependencies file for bofl_pareto_tests.
# This may be replaced when dependencies are built.
