file(REMOVE_RECURSE
  "CMakeFiles/bofl_pareto_tests.dir/pareto/hypervolume_test.cpp.o"
  "CMakeFiles/bofl_pareto_tests.dir/pareto/hypervolume_test.cpp.o.d"
  "CMakeFiles/bofl_pareto_tests.dir/pareto/pareto_test.cpp.o"
  "CMakeFiles/bofl_pareto_tests.dir/pareto/pareto_test.cpp.o.d"
  "CMakeFiles/bofl_pareto_tests.dir/pareto/quality_test.cpp.o"
  "CMakeFiles/bofl_pareto_tests.dir/pareto/quality_test.cpp.o.d"
  "bofl_pareto_tests"
  "bofl_pareto_tests.pdb"
  "bofl_pareto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_pareto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
