# Empty dependencies file for bofl_device_tests.
# This may be replaced when dependencies are built.
