file(REMOVE_RECURSE
  "CMakeFiles/bofl_device_tests.dir/device/device_model_test.cpp.o"
  "CMakeFiles/bofl_device_tests.dir/device/device_model_test.cpp.o.d"
  "CMakeFiles/bofl_device_tests.dir/device/disturbance_test.cpp.o"
  "CMakeFiles/bofl_device_tests.dir/device/disturbance_test.cpp.o.d"
  "CMakeFiles/bofl_device_tests.dir/device/frequency_test.cpp.o"
  "CMakeFiles/bofl_device_tests.dir/device/frequency_test.cpp.o.d"
  "CMakeFiles/bofl_device_tests.dir/device/observer_test.cpp.o"
  "CMakeFiles/bofl_device_tests.dir/device/observer_test.cpp.o.d"
  "CMakeFiles/bofl_device_tests.dir/device/sysfs_test.cpp.o"
  "CMakeFiles/bofl_device_tests.dir/device/sysfs_test.cpp.o.d"
  "bofl_device_tests"
  "bofl_device_tests.pdb"
  "bofl_device_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_device_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
