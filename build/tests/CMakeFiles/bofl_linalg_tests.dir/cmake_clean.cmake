file(REMOVE_RECURSE
  "CMakeFiles/bofl_linalg_tests.dir/linalg/cholesky_test.cpp.o"
  "CMakeFiles/bofl_linalg_tests.dir/linalg/cholesky_test.cpp.o.d"
  "CMakeFiles/bofl_linalg_tests.dir/linalg/matrix_test.cpp.o"
  "CMakeFiles/bofl_linalg_tests.dir/linalg/matrix_test.cpp.o.d"
  "bofl_linalg_tests"
  "bofl_linalg_tests.pdb"
  "bofl_linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
