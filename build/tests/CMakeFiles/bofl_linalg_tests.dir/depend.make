# Empty dependencies file for bofl_linalg_tests.
# This may be replaced when dependencies are built.
