file(REMOVE_RECURSE
  "CMakeFiles/bofl_sim.dir/bofl_sim.cpp.o"
  "CMakeFiles/bofl_sim.dir/bofl_sim.cpp.o.d"
  "bofl_sim"
  "bofl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
