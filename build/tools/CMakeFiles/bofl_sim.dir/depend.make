# Empty dependencies file for bofl_sim.
# This may be replaced when dependencies are built.
