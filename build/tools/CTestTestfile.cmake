# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bofl_sim_smoke_bofl "/root/repo/build/tools/bofl_sim" "--rounds" "3" "--quiet" "--tau" "2.5")
set_tests_properties(bofl_sim_smoke_bofl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bofl_sim_smoke_performant "/root/repo/build/tools/bofl_sim" "--controller" "performant" "--rounds" "3" "--quiet")
set_tests_properties(bofl_sim_smoke_performant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bofl_sim_smoke_oracle "/root/repo/build/tools/bofl_sim" "--controller" "oracle" "--device" "tx2" "--task" "lstm" "--rounds" "3" "--quiet")
set_tests_properties(bofl_sim_smoke_oracle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bofl_sim_smoke_linear "/root/repo/build/tools/bofl_sim" "--controller" "linear" "--rounds" "3" "--quiet")
set_tests_properties(bofl_sim_smoke_linear PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bofl_sim_rejects_unknown_device "/root/repo/build/tools/bofl_sim" "--device" "toaster")
set_tests_properties(bofl_sim_rejects_unknown_device PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
