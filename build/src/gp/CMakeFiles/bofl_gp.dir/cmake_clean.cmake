file(REMOVE_RECURSE
  "CMakeFiles/bofl_gp.dir/gaussian_process.cpp.o"
  "CMakeFiles/bofl_gp.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/bofl_gp.dir/hyperopt.cpp.o"
  "CMakeFiles/bofl_gp.dir/hyperopt.cpp.o.d"
  "CMakeFiles/bofl_gp.dir/kernel.cpp.o"
  "CMakeFiles/bofl_gp.dir/kernel.cpp.o.d"
  "libbofl_gp.a"
  "libbofl_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
