file(REMOVE_RECURSE
  "libbofl_gp.a"
)
