# Empty dependencies file for bofl_gp.
# This may be replaced when dependencies are built.
