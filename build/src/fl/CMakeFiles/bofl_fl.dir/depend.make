# Empty dependencies file for bofl_fl.
# This may be replaced when dependencies are built.
