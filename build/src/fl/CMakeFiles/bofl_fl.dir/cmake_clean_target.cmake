file(REMOVE_RECURSE
  "libbofl_fl.a"
)
