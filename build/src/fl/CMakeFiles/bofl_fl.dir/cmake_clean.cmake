file(REMOVE_RECURSE
  "CMakeFiles/bofl_fl.dir/client.cpp.o"
  "CMakeFiles/bofl_fl.dir/client.cpp.o.d"
  "CMakeFiles/bofl_fl.dir/deadline_policy.cpp.o"
  "CMakeFiles/bofl_fl.dir/deadline_policy.cpp.o.d"
  "CMakeFiles/bofl_fl.dir/network.cpp.o"
  "CMakeFiles/bofl_fl.dir/network.cpp.o.d"
  "CMakeFiles/bofl_fl.dir/server.cpp.o"
  "CMakeFiles/bofl_fl.dir/server.cpp.o.d"
  "CMakeFiles/bofl_fl.dir/simulation.cpp.o"
  "CMakeFiles/bofl_fl.dir/simulation.cpp.o.d"
  "libbofl_fl.a"
  "libbofl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
