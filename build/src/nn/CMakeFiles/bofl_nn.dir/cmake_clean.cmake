file(REMOVE_RECURSE
  "CMakeFiles/bofl_nn.dir/conv.cpp.o"
  "CMakeFiles/bofl_nn.dir/conv.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/data.cpp.o"
  "CMakeFiles/bofl_nn.dir/data.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/layers.cpp.o"
  "CMakeFiles/bofl_nn.dir/layers.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/loss.cpp.o"
  "CMakeFiles/bofl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/lstm.cpp.o"
  "CMakeFiles/bofl_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/model.cpp.o"
  "CMakeFiles/bofl_nn.dir/model.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/sgd.cpp.o"
  "CMakeFiles/bofl_nn.dir/sgd.cpp.o.d"
  "CMakeFiles/bofl_nn.dir/tensor.cpp.o"
  "CMakeFiles/bofl_nn.dir/tensor.cpp.o.d"
  "libbofl_nn.a"
  "libbofl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
