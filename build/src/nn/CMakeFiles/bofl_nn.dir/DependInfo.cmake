
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/bofl_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/data.cpp" "src/nn/CMakeFiles/bofl_nn.dir/data.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/data.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/bofl_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/bofl_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/bofl_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/bofl_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/bofl_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/sgd.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/bofl_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/bofl_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
