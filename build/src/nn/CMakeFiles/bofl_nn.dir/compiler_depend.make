# Empty compiler generated dependencies file for bofl_nn.
# This may be replaced when dependencies are built.
