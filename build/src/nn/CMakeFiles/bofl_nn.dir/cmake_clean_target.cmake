file(REMOVE_RECURSE
  "libbofl_nn.a"
)
