# Empty dependencies file for bofl_common.
# This may be replaced when dependencies are built.
