file(REMOVE_RECURSE
  "libbofl_common.a"
)
