file(REMOVE_RECURSE
  "CMakeFiles/bofl_common.dir/csv.cpp.o"
  "CMakeFiles/bofl_common.dir/csv.cpp.o.d"
  "CMakeFiles/bofl_common.dir/flags.cpp.o"
  "CMakeFiles/bofl_common.dir/flags.cpp.o.d"
  "CMakeFiles/bofl_common.dir/optim.cpp.o"
  "CMakeFiles/bofl_common.dir/optim.cpp.o.d"
  "CMakeFiles/bofl_common.dir/quasirandom.cpp.o"
  "CMakeFiles/bofl_common.dir/quasirandom.cpp.o.d"
  "CMakeFiles/bofl_common.dir/rng.cpp.o"
  "CMakeFiles/bofl_common.dir/rng.cpp.o.d"
  "CMakeFiles/bofl_common.dir/stats.cpp.o"
  "CMakeFiles/bofl_common.dir/stats.cpp.o.d"
  "libbofl_common.a"
  "libbofl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
