file(REMOVE_RECURSE
  "libbofl_device.a"
)
