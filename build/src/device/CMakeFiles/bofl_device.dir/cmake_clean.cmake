file(REMOVE_RECURSE
  "CMakeFiles/bofl_device.dir/device_model.cpp.o"
  "CMakeFiles/bofl_device.dir/device_model.cpp.o.d"
  "CMakeFiles/bofl_device.dir/frequency.cpp.o"
  "CMakeFiles/bofl_device.dir/frequency.cpp.o.d"
  "CMakeFiles/bofl_device.dir/observer.cpp.o"
  "CMakeFiles/bofl_device.dir/observer.cpp.o.d"
  "CMakeFiles/bofl_device.dir/sysfs.cpp.o"
  "CMakeFiles/bofl_device.dir/sysfs.cpp.o.d"
  "CMakeFiles/bofl_device.dir/workload.cpp.o"
  "CMakeFiles/bofl_device.dir/workload.cpp.o.d"
  "libbofl_device.a"
  "libbofl_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
