
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device_model.cpp" "src/device/CMakeFiles/bofl_device.dir/device_model.cpp.o" "gcc" "src/device/CMakeFiles/bofl_device.dir/device_model.cpp.o.d"
  "/root/repo/src/device/frequency.cpp" "src/device/CMakeFiles/bofl_device.dir/frequency.cpp.o" "gcc" "src/device/CMakeFiles/bofl_device.dir/frequency.cpp.o.d"
  "/root/repo/src/device/observer.cpp" "src/device/CMakeFiles/bofl_device.dir/observer.cpp.o" "gcc" "src/device/CMakeFiles/bofl_device.dir/observer.cpp.o.d"
  "/root/repo/src/device/sysfs.cpp" "src/device/CMakeFiles/bofl_device.dir/sysfs.cpp.o" "gcc" "src/device/CMakeFiles/bofl_device.dir/sysfs.cpp.o.d"
  "/root/repo/src/device/workload.cpp" "src/device/CMakeFiles/bofl_device.dir/workload.cpp.o" "gcc" "src/device/CMakeFiles/bofl_device.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bofl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bofl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
