# Empty compiler generated dependencies file for bofl_device.
# This may be replaced when dependencies are built.
