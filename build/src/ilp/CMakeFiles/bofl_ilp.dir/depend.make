# Empty dependencies file for bofl_ilp.
# This may be replaced when dependencies are built.
