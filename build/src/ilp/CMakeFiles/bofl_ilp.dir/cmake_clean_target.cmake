file(REMOVE_RECURSE
  "libbofl_ilp.a"
)
