file(REMOVE_RECURSE
  "CMakeFiles/bofl_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/bofl_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/bofl_ilp.dir/lp.cpp.o"
  "CMakeFiles/bofl_ilp.dir/lp.cpp.o.d"
  "CMakeFiles/bofl_ilp.dir/schedule_solver.cpp.o"
  "CMakeFiles/bofl_ilp.dir/schedule_solver.cpp.o.d"
  "libbofl_ilp.a"
  "libbofl_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
