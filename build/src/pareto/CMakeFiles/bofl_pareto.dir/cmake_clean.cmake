file(REMOVE_RECURSE
  "CMakeFiles/bofl_pareto.dir/hypervolume.cpp.o"
  "CMakeFiles/bofl_pareto.dir/hypervolume.cpp.o.d"
  "CMakeFiles/bofl_pareto.dir/pareto.cpp.o"
  "CMakeFiles/bofl_pareto.dir/pareto.cpp.o.d"
  "CMakeFiles/bofl_pareto.dir/quality.cpp.o"
  "CMakeFiles/bofl_pareto.dir/quality.cpp.o.d"
  "libbofl_pareto.a"
  "libbofl_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
