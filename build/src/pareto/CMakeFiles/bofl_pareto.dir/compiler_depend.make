# Empty compiler generated dependencies file for bofl_pareto.
# This may be replaced when dependencies are built.
