file(REMOVE_RECURSE
  "libbofl_pareto.a"
)
