# Empty dependencies file for bofl_core.
# This may be replaced when dependencies are built.
