file(REMOVE_RECURSE
  "CMakeFiles/bofl_core.dir/bofl_controller.cpp.o"
  "CMakeFiles/bofl_core.dir/bofl_controller.cpp.o.d"
  "CMakeFiles/bofl_core.dir/harness.cpp.o"
  "CMakeFiles/bofl_core.dir/harness.cpp.o.d"
  "CMakeFiles/bofl_core.dir/linear_controller.cpp.o"
  "CMakeFiles/bofl_core.dir/linear_controller.cpp.o.d"
  "CMakeFiles/bofl_core.dir/mbo_cost.cpp.o"
  "CMakeFiles/bofl_core.dir/mbo_cost.cpp.o.d"
  "CMakeFiles/bofl_core.dir/oracle_controller.cpp.o"
  "CMakeFiles/bofl_core.dir/oracle_controller.cpp.o.d"
  "CMakeFiles/bofl_core.dir/performant_controller.cpp.o"
  "CMakeFiles/bofl_core.dir/performant_controller.cpp.o.d"
  "CMakeFiles/bofl_core.dir/state_io.cpp.o"
  "CMakeFiles/bofl_core.dir/state_io.cpp.o.d"
  "CMakeFiles/bofl_core.dir/task.cpp.o"
  "CMakeFiles/bofl_core.dir/task.cpp.o.d"
  "CMakeFiles/bofl_core.dir/trace.cpp.o"
  "CMakeFiles/bofl_core.dir/trace.cpp.o.d"
  "libbofl_core.a"
  "libbofl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
