file(REMOVE_RECURSE
  "libbofl_core.a"
)
