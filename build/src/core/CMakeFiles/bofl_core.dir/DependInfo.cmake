
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bofl_controller.cpp" "src/core/CMakeFiles/bofl_core.dir/bofl_controller.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/bofl_controller.cpp.o.d"
  "/root/repo/src/core/harness.cpp" "src/core/CMakeFiles/bofl_core.dir/harness.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/harness.cpp.o.d"
  "/root/repo/src/core/linear_controller.cpp" "src/core/CMakeFiles/bofl_core.dir/linear_controller.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/linear_controller.cpp.o.d"
  "/root/repo/src/core/mbo_cost.cpp" "src/core/CMakeFiles/bofl_core.dir/mbo_cost.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/mbo_cost.cpp.o.d"
  "/root/repo/src/core/oracle_controller.cpp" "src/core/CMakeFiles/bofl_core.dir/oracle_controller.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/oracle_controller.cpp.o.d"
  "/root/repo/src/core/performant_controller.cpp" "src/core/CMakeFiles/bofl_core.dir/performant_controller.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/performant_controller.cpp.o.d"
  "/root/repo/src/core/state_io.cpp" "src/core/CMakeFiles/bofl_core.dir/state_io.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/state_io.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/bofl_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/task.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/bofl_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/bofl_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bofl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/bofl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/bofl_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/bofl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/bofl_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/bofl_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bofl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
