# Empty compiler generated dependencies file for bofl_linalg.
# This may be replaced when dependencies are built.
