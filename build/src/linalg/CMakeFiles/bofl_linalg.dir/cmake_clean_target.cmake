file(REMOVE_RECURSE
  "libbofl_linalg.a"
)
