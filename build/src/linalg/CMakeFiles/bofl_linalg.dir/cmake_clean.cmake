file(REMOVE_RECURSE
  "CMakeFiles/bofl_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/bofl_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/bofl_linalg.dir/matrix.cpp.o"
  "CMakeFiles/bofl_linalg.dir/matrix.cpp.o.d"
  "libbofl_linalg.a"
  "libbofl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
