file(REMOVE_RECURSE
  "libbofl_bo.a"
)
