
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/ehvi.cpp" "src/bo/CMakeFiles/bofl_bo.dir/ehvi.cpp.o" "gcc" "src/bo/CMakeFiles/bofl_bo.dir/ehvi.cpp.o.d"
  "/root/repo/src/bo/mbo_engine.cpp" "src/bo/CMakeFiles/bofl_bo.dir/mbo_engine.cpp.o" "gcc" "src/bo/CMakeFiles/bofl_bo.dir/mbo_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bofl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bofl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/bofl_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/bofl_pareto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
