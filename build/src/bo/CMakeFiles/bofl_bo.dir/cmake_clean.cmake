file(REMOVE_RECURSE
  "CMakeFiles/bofl_bo.dir/ehvi.cpp.o"
  "CMakeFiles/bofl_bo.dir/ehvi.cpp.o.d"
  "CMakeFiles/bofl_bo.dir/mbo_engine.cpp.o"
  "CMakeFiles/bofl_bo.dir/mbo_engine.cpp.o.d"
  "libbofl_bo.a"
  "libbofl_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
