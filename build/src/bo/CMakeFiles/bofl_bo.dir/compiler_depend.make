# Empty compiler generated dependencies file for bofl_bo.
# This may be replaced when dependencies are built.
