# Empty compiler generated dependencies file for bench_micro_ehvi.
# This may be replaced when dependencies are built.
