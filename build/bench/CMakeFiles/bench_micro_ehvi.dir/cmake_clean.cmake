file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ehvi.dir/bench_micro_ehvi.cpp.o"
  "CMakeFiles/bench_micro_ehvi.dir/bench_micro_ehvi.cpp.o.d"
  "bench_micro_ehvi"
  "bench_micro_ehvi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ehvi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
