file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_deadline_sensitivity.dir/bench_fig12_deadline_sensitivity.cpp.o"
  "CMakeFiles/bench_fig12_deadline_sensitivity.dir/bench_fig12_deadline_sensitivity.cpp.o.d"
  "bench_fig12_deadline_sensitivity"
  "bench_fig12_deadline_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_deadline_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
