# Empty dependencies file for bench_fig12_deadline_sensitivity.
# This may be replaced when dependencies are built.
