file(REMOVE_RECURSE
  "CMakeFiles/bofl_bench_common.dir/figure_common.cpp.o"
  "CMakeFiles/bofl_bench_common.dir/figure_common.cpp.o.d"
  "libbofl_bench_common.a"
  "libbofl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bofl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
