file(REMOVE_RECURSE
  "libbofl_bench_common.a"
)
