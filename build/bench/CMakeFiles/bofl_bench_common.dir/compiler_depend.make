# Empty compiler generated dependencies file for bofl_bench_common.
# This may be replaced when dependencies are built.
