# Empty compiler generated dependencies file for bench_fig9_energy_ddl2.
# This may be replaced when dependencies are built.
