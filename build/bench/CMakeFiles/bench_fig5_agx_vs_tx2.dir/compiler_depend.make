# Empty compiler generated dependencies file for bench_fig5_agx_vs_tx2.
# This may be replaced when dependencies are built.
