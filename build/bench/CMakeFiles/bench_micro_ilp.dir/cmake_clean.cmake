file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ilp.dir/bench_micro_ilp.cpp.o"
  "CMakeFiles/bench_micro_ilp.dir/bench_micro_ilp.cpp.o.d"
  "bench_micro_ilp"
  "bench_micro_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
