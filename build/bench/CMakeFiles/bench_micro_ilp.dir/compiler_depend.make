# Empty compiler generated dependencies file for bench_micro_ilp.
# This may be replaced when dependencies are built.
