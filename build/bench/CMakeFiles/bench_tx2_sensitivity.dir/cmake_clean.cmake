file(REMOVE_RECURSE
  "CMakeFiles/bench_tx2_sensitivity.dir/bench_tx2_sensitivity.cpp.o"
  "CMakeFiles/bench_tx2_sensitivity.dir/bench_tx2_sensitivity.cpp.o.d"
  "bench_tx2_sensitivity"
  "bench_tx2_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tx2_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
