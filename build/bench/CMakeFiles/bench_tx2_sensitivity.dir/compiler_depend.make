# Empty compiler generated dependencies file for bench_tx2_sensitivity.
# This may be replaced when dependencies are built.
