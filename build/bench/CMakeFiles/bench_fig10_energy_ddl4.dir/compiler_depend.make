# Empty compiler generated dependencies file for bench_fig10_energy_ddl4.
# This may be replaced when dependencies are built.
