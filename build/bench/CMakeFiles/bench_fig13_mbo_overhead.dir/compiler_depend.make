# Empty compiler generated dependencies file for bench_fig13_mbo_overhead.
# This may be replaced when dependencies are built.
