file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pareto_fronts.dir/bench_fig11_pareto_fronts.cpp.o"
  "CMakeFiles/bench_fig11_pareto_fronts.dir/bench_fig11_pareto_fronts.cpp.o.d"
  "bench_fig11_pareto_fronts"
  "bench_fig11_pareto_fronts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pareto_fronts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
