file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_testbeds.dir/bench_table1_testbeds.cpp.o"
  "CMakeFiles/bench_table1_testbeds.dir/bench_table1_testbeds.cpp.o.d"
  "bench_table1_testbeds"
  "bench_table1_testbeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_testbeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
