file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_walkthrough.dir/bench_table3_walkthrough.cpp.o"
  "CMakeFiles/bench_table3_walkthrough.dir/bench_table3_walkthrough.cpp.o.d"
  "bench_table3_walkthrough"
  "bench_table3_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
