# Empty dependencies file for bench_table2_taskspecs.
# This may be replaced when dependencies are built.
