file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_taskspecs.dir/bench_table2_taskspecs.cpp.o"
  "CMakeFiles/bench_table2_taskspecs.dir/bench_table2_taskspecs.cpp.o.d"
  "bench_table2_taskspecs"
  "bench_table2_taskspecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_taskspecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
