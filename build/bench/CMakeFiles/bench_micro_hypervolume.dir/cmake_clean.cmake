file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hypervolume.dir/bench_micro_hypervolume.cpp.o"
  "CMakeFiles/bench_micro_hypervolume.dir/bench_micro_hypervolume.cpp.o.d"
  "bench_micro_hypervolume"
  "bench_micro_hypervolume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hypervolume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
