# Empty compiler generated dependencies file for bench_micro_hypervolume.
# This may be replaced when dependencies are built.
