# Empty dependencies file for bench_fig3_vit_gpu_sweep.
# This may be replaced when dependencies are built.
