// bofl_sim — the command-line driver for single-device experiments.
//
//   bofl_sim [--device agx|tx2] [--task vit|resnet50|lstm]
//            [--controller bofl|performant|oracle|linear]
//            [--ratio 2.0] [--rounds 100] [--seed 1] [--tau 5.0]
//            [--spike-prob 0] [--spike-mag 3] [--thermal]
//            [--faults PLAN.json | --scenario NAME] [--list-scenarios]
//            [--threads N] [--simd avx2|scalar] [--csv PATH] [--quiet]
//            [--metrics-out PATH] [--metrics-summary]
//
// Runs one pace controller through one FL task on one simulated testbed and
// prints the per-round trace plus summary metrics; optionally exports the
// trace as CSV.  --metrics-out streams structured telemetry (JSON Lines
// events + a final summary line) to PATH; --metrics-summary prints the
// summary table to stdout.  --faults injects a fault plan (src/faults JSON
// dialect); --scenario runs a named curated plan (clean, thermal-storm,
// flaky-sysfs, straggler-heavy, mid-round-throttle) scaled to the round
// schedule.  Everything a downstream user needs to poke at the system
// without writing C++.
#include <cstdio>
#include <memory>
#include <optional>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/linear_controller.hpp"
#include "core/oracle_controller.hpp"
#include "core/performant_controller.hpp"
#include "core/state_io.hpp"
#include "faults/fault_injector.hpp"
#include "faults/scenarios.hpp"
#include "linalg/simd/dispatch.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/run_recorder.hpp"

namespace {

using namespace bofl;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--device agx|tx2] [--task vit|resnet50|lstm]\n"
      "          [--controller bofl|performant|oracle|linear]\n"
      "          [--ratio R] [--rounds N] [--seed S] [--tau SECONDS]\n"
      "          [--spike-prob P] [--spike-mag K] [--thermal]\n"
      "          [--faults PLAN.json | --scenario NAME] [--list-scenarios]\n"
      "          [--threads N] [--simd avx2|scalar] [--csv PATH]\n"
      "          [--save-state PATH] [--load-state PATH] [--quiet]\n"
      "          [--metrics-out PATH] [--metrics-summary]\n",
      argv0);
  return 2;
}

// The full --scenario catalog, hidden entries included — the hidden ones
// exist for regression tests, but an operator reading a CI log needs to be
// able to look them up.
int list_scenarios() {
  std::printf("fault scenarios (--scenario NAME):\n");
  for (const faults::ScenarioInfo& info : faults::all_scenarios()) {
    std::printf("  %-18s %s%s\n", info.name.c_str(), info.description.c_str(),
                info.hidden ? "  [hidden]" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.has("help")) {
    return usage(argv[0]);
  }
  if (flags.get_bool("list-scenarios")) {
    return list_scenarios();
  }

  // Resolve the kernel dispatch level before any numeric work; an
  // unknown/unsupported request is a hard error, not a silent downgrade.
  if (flags.has("simd")) {
    const std::string simd_name = flags.get("simd", "");
    const auto level = linalg::simd::level_from_string(simd_name);
    if (!level.has_value()) {
      std::fprintf(stderr, "unknown --simd level: %s\n", simd_name.c_str());
      return usage(argv[0]);
    }
    linalg::simd::force_level(*level);
  }

  const std::string device_name = flags.get("device", "agx");
  const device::DeviceModel model =
      device_name == "tx2" ? device::jetson_tx2() : device::jetson_agx();
  if (device_name != "agx" && device_name != "tx2") {
    std::fprintf(stderr, "unknown device: %s\n", device_name.c_str());
    return usage(argv[0]);
  }

  const std::string task_name = flags.get("task", "vit");
  core::FlTaskSpec task = core::cifar10_vit_task(model.name());
  if (task_name == "resnet50") {
    task = core::imagenet_resnet50_task(model.name());
  } else if (task_name == "lstm") {
    task = core::imdb_lstm_task(model.name());
  } else if (task_name != "vit") {
    std::fprintf(stderr, "unknown task: %s\n", task_name.c_str());
    return usage(argv[0]);
  }
  task.num_rounds = flags.get_int("rounds", 100);

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double ratio = flags.get_double("ratio", 2.0);
  const auto rounds = core::make_rounds(task, model, ratio, seed ^ 0xD1CE);

  device::NoiseModel noise;
  noise.spike_probability = flags.get_double("spike-prob", 0.0);
  noise.spike_magnitude = flags.get_double("spike-mag", 3.0);
  if (flags.get_bool("thermal")) {
    noise.thermal = device::ThermalParams{};
  }

  // Fault plan: explicit JSON (--faults) or a named scenario scaled to the
  // round schedule's total deadline budget (--scenario).
  const std::string faults_path = flags.get("faults", "");
  const std::string scenario_name = flags.get("scenario", "");
  if (!faults_path.empty() && !scenario_name.empty()) {
    std::fprintf(stderr, "--faults and --scenario are mutually exclusive\n");
    return usage(argv[0]);
  }
  std::optional<faults::FaultPlan> plan;
  if (!faults_path.empty()) {
    plan = faults::FaultPlan::from_json_file(faults_path);
  } else if (!scenario_name.empty()) {
    double horizon = 0.0;
    for (const core::RoundSpec& r : rounds) {
      horizon += r.deadline.value();
    }
    plan = faults::make_scenario(scenario_name, seed ^ 0xFA17ULL, horizon);
  }
  std::optional<faults::FaultInjector> injector;
  std::unique_ptr<faults::DeviceFaultChannel> channel;
  if (plan) {
    injector.emplace(*plan, seed);
    channel = injector->make_device_channel(0);
  }

  // Telemetry must be installed before any instrumented component (the
  // thread pool caches metric handles at construction) and — because the
  // pool is declared after — outlives everything that uses it.
  const std::string metrics_path = flags.get("metrics-out", "");
  const bool metrics_summary = flags.get_bool("metrics-summary");
  std::unique_ptr<telemetry::Registry> registry;
  std::unique_ptr<telemetry::RunRecorder> recorder;
  if (!metrics_path.empty() || metrics_summary) {
    registry = std::make_unique<telemetry::Registry>();
    recorder =
        std::make_unique<telemetry::RunRecorder>(*registry, metrics_path);
    telemetry::install_global_recorder(recorder.get());
    const linalg::simd::Level simd_level = linalg::simd::active_level();
    registry->gauge("runtime.simd_level")
        .set(static_cast<double>(static_cast<int>(simd_level)));
    telemetry::JsonValue run_start = telemetry::JsonValue::object();
    run_start.set("device", model.name())
        .set("task", task.name)
        .set("controller", flags.get("controller", "bofl"))
        .set("rounds", task.num_rounds)
        .set("ratio", ratio)
        .set("seed", seed)
        .set("simd_level", std::string(linalg::simd::to_string(simd_level)));
    recorder->emit("run_start", std::move(run_start));
  }

  // Worker pool for MBO candidate scoring (deterministic for any size;
  // 0 = one worker per hardware thread).  Scoped so its destructor — which
  // finalizes the pool's telemetry gauges — runs before the summary below
  // is rendered.
  core::TaskResult result;
  {
    runtime::ThreadPool pool(
        static_cast<std::size_t>(flags.get_int("threads", 0)));

    const std::string controller_name = flags.get("controller", "bofl");
    std::unique_ptr<core::PaceController> controller;
    if (controller_name == "bofl") {
      core::BoflOptions options;
      options.mbo_cost = core::mbo_cost_for_device(model.name());
      options.tau = Seconds{flags.get_double("tau", 5.0)};
      auto bofl = std::make_unique<core::BoflController>(
          model, task.profile, noise, options, seed);
      bofl->set_parallel_pool(&pool);
      const std::string state_path = flags.get("load-state", "");
      if (!state_path.empty()) {
        bofl->import_state(core::load_state(state_path));
        std::printf("resumed from %s (phase %d)\n", state_path.c_str(),
                    static_cast<int>(bofl->phase()));
      }
      controller = std::move(bofl);
    } else if (controller_name == "performant") {
      controller = std::make_unique<core::PerformantController>(
          model, task.profile, noise, seed);
    } else if (controller_name == "oracle") {
      controller = std::make_unique<core::OracleController>(model, task.profile,
                                                            noise, seed);
    } else if (controller_name == "linear") {
      controller = std::make_unique<core::LinearModelController>(
          model, task.profile, noise, seed);
    } else {
      std::fprintf(stderr, "unknown controller: %s\n", controller_name.c_str());
      return usage(argv[0]);
    }
    if (channel) {
      controller->install_fault_model(channel.get());
      std::printf("fault plan: %s (%zu faults, seed %llu)\n",
                  plan->name.empty() ? faults_path.c_str() : plan->name.c_str(),
                  plan->faults.size(),
                  static_cast<unsigned long long>(plan->seed));
    }

    std::printf("device=%s task=%s controller=%s ratio=%.2f rounds=%lld "
                "seed=%llu jobs/round=%lld\n",
                model.name().c_str(), task.name.c_str(),
                std::string(controller->name()).c_str(), ratio,
                static_cast<long long>(task.num_rounds),
                static_cast<unsigned long long>(seed),
                static_cast<long long>(task.jobs_per_round()));

    // Fault events queue inside the channel during each round; the hook
    // drains them serially, per round, into the telemetry stream.
    std::size_t fault_events = 0;
    const core::RoundHook drain =
        channel ? core::RoundHook([&](const core::RoundTrace& trace) {
          for (const faults::FaultEvent& event :
               channel->drain_events(trace.index)) {
            faults::emit_fault_event(event);
            ++fault_events;
          }
        })
                : core::RoundHook{};
    result = core::run_task(*controller, rounds, drain);
    if (channel) {
      std::printf("fault events: %zu\n", fault_events);
    }

    const bool quiet = flags.get_bool("quiet");
    if (!quiet) {
      std::printf("%6s %6s %10s %10s %10s %6s\n", "round", "phase", "ddl[s]",
                  "used[s]", "energy[J]", "met");
      for (const core::RoundTrace& trace : result.rounds) {
        std::printf("%6lld %6d %10.2f %10.2f %10.1f %6s\n",
                    static_cast<long long>(trace.index + 1),
                    static_cast<int>(trace.phase), trace.deadline.value(),
                    trace.elapsed().value(), trace.energy().value(),
                    trace.deadline_met() ? "yes" : "MISS");
      }
    }

    const std::string csv_path = flags.get("csv", "");
    if (!csv_path.empty()) {
      CsvWriter csv(csv_path, {"round", "phase", "deadline_s", "elapsed_s",
                               "energy_J", "mbo_energy_J", "deadline_met"});
      for (const core::RoundTrace& trace : result.rounds) {
        csv.write_row(std::vector<double>{
            static_cast<double>(trace.index + 1),
            static_cast<double>(static_cast<int>(trace.phase)),
            trace.deadline.value(), trace.elapsed().value(),
            trace.energy().value(), trace.mbo_energy.value(),
            trace.deadline_met() ? 1.0 : 0.0});
      }
      std::printf("trace written to %s (%zu rows)\n", csv_path.c_str(),
                  csv.rows_written());
    }

    std::printf(
        "\ntotal: training %.0f J + MBO %.0f J over %zu rounds; deadlines %s\n",
        result.total_training_energy().value(),
        result.total_mbo_energy().value(), result.rounds.size(),
        result.all_deadlines_met() ? "all met" : "MISSED");
    const std::string save_path = flags.get("save-state", "");
    if (!save_path.empty()) {
      if (auto* bofl = dynamic_cast<core::BoflController*>(controller.get())) {
        core::save_state(*bofl, save_path);
        std::printf("state saved to %s (%zu configurations)\n",
                    save_path.c_str(), bofl->export_state().size());
      } else {
        std::fprintf(stderr,
                     "--save-state only applies to the bofl controller\n");
      }
    }
    // End of the pool's scope: workers join and the pool publishes its final
    // utilization gauge before the telemetry summary is emitted.
  }
  std::printf("phases 1/2/3: %lld/%lld/%lld rounds\n",
              static_cast<long long>(result.rounds_in_phase(
                  core::Phase::kSafeRandomExploration)),
              static_cast<long long>(
                  result.rounds_in_phase(core::Phase::kParetoConstruction)),
              static_cast<long long>(
                  result.rounds_in_phase(core::Phase::kExploitation)));
  if (recorder) {
    telemetry::JsonValue run_end = telemetry::JsonValue::object();
    run_end.set("training_energy_j", result.total_training_energy().value())
        .set("mbo_energy_j", result.total_mbo_energy().value())
        .set("mbo_latency_s", result.total_mbo_latency().value())
        .set("rounds", result.rounds.size())
        .set("all_deadlines_met", result.all_deadlines_met());
    recorder->emit("run_end", std::move(run_end));
    recorder->emit_summary();
    if (metrics_summary) {
      recorder->print_summary(stdout);
    }
    if (!metrics_path.empty()) {
      std::printf("metrics written to %s (%zu events)\n",
                  metrics_path.c_str(), recorder->events_written());
    }
    telemetry::install_global_recorder(nullptr);
  }
  return result.all_deadlines_met() ? 0 : 1;
}
