// bofl_fleet — the command-line driver for fleet-scale experiments.
//
//   bofl_fleet [--clients N] [--rounds N] [--cohort F] [--jobs N]
//              [--ratio R] [--seed S] [--controller bofl|performant|oracle]
//              [--mix agx-vit|edge-mix|global-mix] [--shards N] [--threads N]
//              [--simd avx2|scalar]
//              [--het-cv CV] [--noise-cv CV] [--straggler-timeout K]
//              [--faults PLAN.json | --scenario NAME]
//              [--fleet-scenario SPEC.json|NAME] [--list-scenarios]
//              [--priors off|save|load] [--priors-path PATH]
//              [--prior-policy cold|verify|trust]
//              [--json PATH] [--quiet]
//              [--metrics-out PATH] [--metrics-summary]
//              [--assert-wall-s S] [--assert-rss-mb MB]
//
// Runs the sharded fleet engine (src/fleet): 10^5–10^6 BoFL clients in
// struct-of-arrays shards replaying per-cluster canonical trajectories, with
// event-driven round closes.  Prints the per-round fleet trace plus a
// summary (energy, phase occupancy, bytes/client, peak RSS, trace hash);
// --json writes the summary as JSON.  --assert-wall-s / --assert-rss-mb turn
// the run into a CI gate: exit nonzero when the measured wall time or peak
// RSS exceeds the ceiling.
//
// The fleet knowledge plane (src/priors) rides on --priors:
//   --priors save            run cold, then write the distilled per-cluster
//                            store to --priors-path (generation 1)
//   --priors load            load the store, warm-start each cluster under
//                            --prior-policy, publish back and re-save
//                            (generation 2)
//   --priors off  (default)  no knowledge plane
// With --prior-policy cold a loaded store is read-only and the run is
// bit-identical to --priors off (the differential guarantee).
//
// Fleet-population scenarios (--fleet-scenario) drive churn, diurnal
// cohort/deadline waves, mid-run workload switches and per-client battery
// budgets — pass a SPEC.json (see README "Fleet scenarios") or a built-in
// name (churn, diurnal, task-switch, battery-budget; --list-scenarios
// prints all of them).
//
// A quick 100k-client example (see README "Fleet engine"):
//
//   bofl_fleet --clients 100000 --rounds 20 --cohort 0.01 --threads 8
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "common/flags.hpp"
#include "faults/fault_plan.hpp"
#include "faults/fleet_scenario.hpp"
#include "faults/scenarios.hpp"
#include "fleet/fleet_engine.hpp"
#include "linalg/simd/dispatch.hpp"
#include "priors/knowledge_store.hpp"
#include "telemetry/json.hpp"
#include "telemetry/process.hpp"
#include "telemetry/run_recorder.hpp"

namespace {

using namespace bofl;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--clients N] [--rounds N] [--cohort F] [--jobs N]\n"
      "          [--ratio R] [--seed S] [--controller bofl|performant|oracle]\n"
      "          [--mix agx-vit|edge-mix|global-mix] [--shards N] [--threads N]\n"
      "          [--serial-control-plane] [--simd avx2|scalar]\n"
      "          [--het-cv CV] [--noise-cv CV] [--straggler-timeout K]\n"
      "          [--faults PLAN.json | --scenario NAME]\n"
      "          [--fleet-scenario SPEC.json|NAME] [--list-scenarios]\n"
      "          [--priors off|save|load] [--priors-path PATH]\n"
      "          [--prior-policy cold|verify|trust]\n"
      "          [--json PATH] [--quiet]\n"
      "          [--metrics-out PATH] [--metrics-summary]\n"
      "          [--assert-wall-s S] [--assert-rss-mb MB]\n",
      argv0);
  return 2;
}

// Catalog of every scenario this driver understands: the fault scenarios
// behind --scenario (including hidden ones — operators debugging a fleet
// need the full list) and the fleet-population scenarios behind
// --fleet-scenario.
int list_scenarios() {
  std::printf("fault scenarios (--scenario NAME):\n");
  for (const faults::ScenarioInfo& info : faults::all_scenarios()) {
    std::printf("  %-18s %s%s\n", info.name.c_str(), info.description.c_str(),
                info.hidden ? "  [hidden]" : "");
  }
  std::printf("\nfleet scenarios (--fleet-scenario NAME):\n");
  for (const std::string& name : faults::fleet_scenario_names()) {
    std::printf("  %-18s %s\n", name.c_str(),
                faults::fleet_scenario_description(name));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.has("help")) {
    return usage(argv[0]);
  }
  if (flags.get_bool("list-scenarios")) {
    return list_scenarios();
  }

  // Resolve the kernel dispatch level before any numeric work; an
  // unknown/unsupported request is a hard error, not a silent downgrade.
  if (flags.has("simd")) {
    const std::string simd_name = flags.get("simd", "");
    const auto level = linalg::simd::level_from_string(simd_name);
    if (!level.has_value()) {
      std::fprintf(stderr, "unknown --simd level: %s\n", simd_name.c_str());
      return usage(argv[0]);
    }
    linalg::simd::force_level(*level);
  }

  fleet::FleetConfig config;
  config.num_clients =
      static_cast<std::size_t>(flags.get_int("clients", 100'000));
  config.rounds = flags.get_int("rounds", 100);
  config.cohort_fraction = flags.get_double("cohort", 0.01);
  config.jobs_per_round = flags.get_int("jobs", 60);
  config.deadline_ratio = flags.get_double("ratio", 8.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.shards = static_cast<std::size_t>(flags.get_int("shards", 0));
  config.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  // Escape hatch: extend cluster trajectories one at a time on the round
  // loop thread (results are bit-identical either way).
  config.serial_control_plane = flags.get_bool("serial-control-plane");
  config.heterogeneity_cv = flags.get_double("het-cv", 0.08);
  config.round_noise_cv = flags.get_double("noise-cv", 0.01);
  config.straggler_timeout = flags.get_double("straggler-timeout", 0.0);

  const std::string controller_name = flags.get("controller", "bofl");
  if (controller_name == "bofl") {
    config.controller = fleet::FleetControllerKind::kBofl;
  } else if (controller_name == "performant") {
    config.controller = fleet::FleetControllerKind::kPerformant;
  } else if (controller_name == "oracle") {
    config.controller = fleet::FleetControllerKind::kOracle;
  } else {
    std::fprintf(stderr, "unknown controller: %s\n", controller_name.c_str());
    return usage(argv[0]);
  }

  // The population mix.  Models live here for the engine's lifetime.
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  const device::DeviceModel phone = device::pixel_phone();
  const device::DeviceModel server = device::edge_server();
  const std::string mix = flags.get("mix", "agx-vit");
  if (mix == "agx-vit") {
    config.clusters.push_back({&agx, device::vit_profile(), 1.0});
  } else if (mix == "edge-mix") {
    config.clusters.push_back({&agx, device::vit_profile(), 0.40});
    config.clusters.push_back({&agx, device::resnet50_profile(), 0.20});
    config.clusters.push_back({&tx2, device::lstm_profile(), 0.25});
    config.clusters.push_back({&tx2, device::vit_profile(), 0.15});
  } else if (mix == "global-mix") {
    // The cross-tier population: phones dominate the count, edge boards
    // carry the mid-tier, a thin server slice anchors the fast tail.
    config.clusters.push_back({&phone, device::vit_profile(), 0.35});
    config.clusters.push_back({&phone, device::lstm_profile(), 0.20});
    config.clusters.push_back({&agx, device::vit_profile(), 0.20});
    config.clusters.push_back({&tx2, device::lstm_profile(), 0.15});
    config.clusters.push_back({&server, device::resnet50_profile(), 0.10});
  } else {
    std::fprintf(stderr, "unknown mix: %s\n", mix.c_str());
    return usage(argv[0]);
  }

  // Fault plan: explicit JSON or a named scenario scaled to the canonical
  // per-cluster horizon (rounds x mean deadline of the first cluster).
  const std::string faults_path = flags.get("faults", "");
  const std::string scenario_name = flags.get("scenario", "");
  if (!faults_path.empty() && !scenario_name.empty()) {
    std::fprintf(stderr, "--faults and --scenario are mutually exclusive\n");
    return usage(argv[0]);
  }
  if (!faults_path.empty()) {
    config.fault_plan = faults::FaultPlan::from_json_file(faults_path);
  } else if (!scenario_name.empty()) {
    const Seconds t_min = config.clusters.front().model->round_t_min(
        config.clusters.front().profile, config.jobs_per_round);
    const double horizon = static_cast<double>(config.rounds) *
                           t_min.value() *
                           (1.0 + config.deadline_ratio) / 2.0;
    config.fault_plan =
        faults::make_scenario(scenario_name, config.seed ^ 0xFA17ULL, horizon);
  }

  // Fleet-population scenario: a SPEC.json path (anything with a path
  // separator or .json suffix) or a built-in name.  A spec embedding its own
  // fault list excludes --faults/--scenario (the engine refuses ambiguous
  // double fault sources; catch it here for a clean message).
  const std::string fleet_scenario_arg = flags.get("fleet-scenario", "");
  if (!fleet_scenario_arg.empty()) {
    const bool is_file =
        fleet_scenario_arg.find('/') != std::string::npos ||
        (fleet_scenario_arg.size() > 5 &&
         fleet_scenario_arg.compare(fleet_scenario_arg.size() - 5, 5,
                                    ".json") == 0);
    if (is_file) {
      config.scenario = faults::FleetScenario::from_json_file(
          fleet_scenario_arg);
    } else {
      config.scenario =
          faults::make_fleet_scenario(fleet_scenario_arg, config.seed);
    }
    if (!config.scenario->fault_plan.empty() &&
        config.fault_plan.has_value()) {
      std::fprintf(stderr,
                   "--fleet-scenario spec embeds a fault list; drop "
                   "--faults/--scenario\n");
      return usage(argv[0]);
    }
  }

  // Fleet knowledge plane.  The store outlives the engine (non-owning
  // pointer in the config).  "save" runs from an empty store — every cluster
  // is unknown, so admission declines and the run is bit-identical to
  // --priors off — and persists the distilled generation afterwards; "load"
  // warm-starts from the persisted store under --prior-policy and re-saves
  // the merged result (except under cold, which keeps the store read-only).
  const std::string priors_mode = flags.get("priors", "off");
  const std::string priors_path =
      flags.get("priors-path", "bofl_fleet_store.json");
  const std::string policy_name = flags.get("prior-policy", "verify");
  const std::optional<priors::PriorPolicy> policy =
      priors::prior_policy_from_string(policy_name);
  if (!policy.has_value()) {
    std::fprintf(stderr, "unknown prior policy: %s\n", policy_name.c_str());
    return usage(argv[0]);
  }
  std::optional<priors::KnowledgeStore> store;
  if (priors_mode == "save") {
    store.emplace();
    config.knowledge = &*store;
    config.prior_policy = priors::PriorPolicy::kVerify;
  } else if (priors_mode == "load") {
    store.emplace(priors::KnowledgeStore::from_file(priors_path));
    config.knowledge = &*store;
    config.prior_policy = *policy;
  } else if (priors_mode != "off") {
    std::fprintf(stderr, "unknown priors mode: %s\n", priors_mode.c_str());
    return usage(argv[0]);
  }
  const priors::PriorPolicy effective_policy = config.prior_policy;

  // Telemetry must be installed before the engine (it caches handles).
  const std::string metrics_path = flags.get("metrics-out", "");
  const bool metrics_summary = flags.get_bool("metrics-summary");
  std::unique_ptr<telemetry::Registry> registry;
  std::unique_ptr<telemetry::RunRecorder> recorder;
  if (!metrics_path.empty() || metrics_summary) {
    registry = std::make_unique<telemetry::Registry>();
    recorder =
        std::make_unique<telemetry::RunRecorder>(*registry, metrics_path);
    telemetry::install_global_recorder(recorder.get());
    registry->gauge("runtime.simd_level")
        .set(static_cast<double>(
            static_cast<int>(linalg::simd::active_level())));
  }

  const std::string fleet_scenario_name =
      config.scenario.has_value() ? config.scenario->name : "";
  std::printf(
      "fleet: %zu clients, %lld rounds, cohort %.3f, controller=%s, mix=%s,\n"
      "       ratio=%.1f seed=%llu shards=%zu threads=%zu%s%s%s%s\n",
      config.num_clients, static_cast<long long>(config.rounds),
      config.cohort_fraction, controller_name.c_str(), mix.c_str(),
      config.deadline_ratio, static_cast<unsigned long long>(config.seed),
      config.shards, config.threads,
      config.fault_plan.has_value() ? " faults=" : "",
      config.fault_plan.has_value() ? config.fault_plan->name.c_str() : "",
      config.scenario.has_value() ? " fleet-scenario=" : "",
      fleet_scenario_name.c_str());

  const bool has_fleet_scenario = config.scenario.has_value();
  const auto t0 = std::chrono::steady_clock::now();
  fleet::FleetEngine engine(std::move(config));
  const fleet::FleetResult result = engine.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!flags.get_bool("quiet")) {
    if (has_fleet_scenario) {
      std::printf("%6s %9s %9s %6s %6s %8s %8s %12s %10s %18s\n", "round",
                  "active", "cohort", "left", "back", "blocked", "missed",
                  "energy[J]", "wall[s]", "phase1/2/3");
      for (const fleet::FleetRoundStats& round : result.rounds) {
        std::printf("%6lld %9u %9u %6u %6u %8u %8u %12.1f %10.2f %6u/%u/%u\n",
                    static_cast<long long>(round.round + 1),
                    round.active_clients, round.participants, round.departed,
                    round.rejoined, round.battery_blocked, round.missed,
                    round.energy_j(), round.wall_s(), round.phase1,
                    round.phase2, round.phase3);
      }
    } else {
      std::printf("%6s %9s %8s %8s %6s %6s %12s %10s %18s\n", "round",
                  "cohort", "dropped", "missed", "late", "strag", "energy[J]",
                  "wall[s]", "phase1/2/3");
      for (const fleet::FleetRoundStats& round : result.rounds) {
        std::printf("%6lld %9u %8u %8u %6u %6u %12.1f %10.2f %6u/%u/%u\n",
                    static_cast<long long>(round.round + 1), round.participants,
                    round.dropped, round.missed, round.timed_out,
                    round.stragglers, round.energy_j(), round.wall_s(),
                    round.phase1, round.phase2, round.phase3);
      }
    }
  }

  const double rss_mb =
      static_cast<double>(result.peak_rss_bytes) / (1024.0 * 1024.0);
  std::printf(
      "\ntotal: training %.0f J + MBO %.0f J over %zu rounds, "
      "%llu participations\n"
      "rates: miss %.4f, timeout %.4f; phase-3 occupancy %.3f\n"
      "scale: %zu shards, %zu clusters, %.1f B/client SoA, "
      "peak RSS %.1f MB, wall %.2f s "
      "(control plane %.1f ms, data plane %.1f ms)\n"
      "priors: mode=%s policy=%s, %u warm clusters, "
      "%llu exploration rounds\n"
      "trace hash: %016llx\n",
      result.total_energy_j(), result.total_mbo_energy_j(),
      result.rounds.size(),
      static_cast<unsigned long long>(result.total_participants()),
      result.miss_rate(), result.timeout_rate(), result.phase3_fraction(),
      result.num_shards, result.num_clusters, result.bytes_per_client(),
      rss_mb, wall_s, result.control_plane_ms, result.data_plane_ms,
      priors_mode.c_str(),
      priors::to_string(effective_policy), result.warm_clusters,
      static_cast<unsigned long long>(result.exploration_rounds),
      static_cast<unsigned long long>(result.trace_hash));
  if (has_fleet_scenario) {
    std::printf(
        "scenario: %s — %llu departed, %llu rejoined, %llu state resets, "
        "%llu battery-blocked\n",
        fleet_scenario_name.c_str(),
        static_cast<unsigned long long>(result.total_departed()),
        static_cast<unsigned long long>(result.total_rejoined()),
        static_cast<unsigned long long>(result.total_resets()),
        static_cast<unsigned long long>(result.total_battery_blocked()));
  }

  if (store.has_value() &&
      (priors_mode == "save" ||
       effective_policy != priors::PriorPolicy::kCold)) {
    store->save(priors_path);
    std::printf("knowledge store written to %s (%zu clusters)\n",
                priors_path.c_str(), store->num_clusters());
  }

  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    telemetry::JsonValue summary = telemetry::JsonValue::object();
    summary.set("clients", static_cast<double>(result.num_clients))
        .set("rounds", static_cast<double>(result.rounds.size()))
        .set("shards", static_cast<double>(result.num_shards))
        .set("clusters", static_cast<double>(result.num_clusters))
        .set("controller", controller_name)
        .set("mix", mix)
        .set("training_energy_j", result.total_energy_j())
        .set("mbo_energy_j", result.total_mbo_energy_j())
        .set("participations", static_cast<double>(result.total_participants()))
        .set("miss_rate", result.miss_rate())
        .set("timeout_rate", result.timeout_rate())
        .set("phase3_fraction", result.phase3_fraction())
        .set("bytes_per_client", result.bytes_per_client())
        .set("soa_bytes", static_cast<double>(result.soa_bytes))
        .set("peak_rss_bytes", static_cast<double>(result.peak_rss_bytes))
        .set("priors", priors_mode)
        .set("prior_policy", priors::to_string(effective_policy))
        .set("warm_clusters", static_cast<double>(result.warm_clusters))
        .set("exploration_rounds",
             static_cast<double>(result.exploration_rounds))
        .set("simd_level", std::string(linalg::simd::to_string(
                               linalg::simd::active_level())))
        .set("wall_s", wall_s)
        .set("control_plane_ms", result.control_plane_ms)
        .set("data_plane_ms", result.data_plane_ms)
        .set("serial_control_plane",
             flags.get_bool("serial-control-plane") ? 1.0 : 0.0);
    if (has_fleet_scenario) {
      summary.set("fleet_scenario", fleet_scenario_name)
          .set("departed", static_cast<double>(result.total_departed()))
          .set("rejoined", static_cast<double>(result.total_rejoined()))
          .set("state_resets", static_cast<double>(result.total_resets()))
          .set("battery_blocked",
               static_cast<double>(result.total_battery_blocked()));
    }
    char hash_hex[17];
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(result.trace_hash));
    summary.set("trace_hash", std::string(hash_hex));
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string text = summary.dump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("summary written to %s\n", json_path.c_str());
  }

  if (recorder) {
    recorder->emit_summary();
    if (metrics_summary) {
      recorder->print_summary(stdout);
    }
    if (!metrics_path.empty()) {
      std::printf("metrics written to %s (%zu events)\n", metrics_path.c_str(),
                  recorder->events_written());
    }
    telemetry::install_global_recorder(nullptr);
  }

  // CI ceilings: a fleet-smoke run fails loudly when it regresses.
  int status = 0;
  const double max_wall = flags.get_double("assert-wall-s", 0.0);
  if (max_wall > 0.0 && wall_s > max_wall) {
    std::fprintf(stderr, "FAIL: wall %.2f s exceeds ceiling %.2f s\n", wall_s,
                 max_wall);
    status = 1;
  }
  const double max_rss = flags.get_double("assert-rss-mb", 0.0);
  if (max_rss > 0.0 && rss_mb > max_rss) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MB exceeds ceiling %.1f MB\n",
                 rss_mb, max_rss);
    status = 1;
  }
  return status;
}
