// Controller-level warm-start semantics: the kCold differential guarantee,
// the kVerify phase-1/2 collapse, misprediction demotion, and kTrust
// adoption — the contract the fleet knowledge plane builds on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/mbo_cost.hpp"
#include "core/task.hpp"
#include "device/device_model.hpp"
#include "priors/snapshot.hpp"

namespace bofl::priors {
namespace {

using core::BoflController;

core::BoflOptions fast_options(const std::string& device_name) {
  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(device_name);
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  return options;
}

std::vector<core::RoundSpec> rounds_for(const device::DeviceModel& model,
                                        std::int64_t rounds, double ratio,
                                        std::uint64_t seed) {
  core::FlTaskSpec task = core::cifar10_vit_task(model.name());
  task.num_rounds = rounds;
  return core::make_rounds(task, model, ratio, seed);
}

/// A donor controller run to convergence, plus its distilled snapshot.
struct Donor {
  std::unique_ptr<BoflController> controller;
  PriorSnapshot snapshot;
};

Donor make_donor(const device::DeviceModel& model) {
  const core::FlTaskSpec task = core::cifar10_vit_task(model.name());
  Donor donor;
  donor.controller = std::make_unique<BoflController>(
      model, task.profile, device::NoiseModel{}, fast_options(model.name()),
      11);
  const auto rounds = rounds_for(model, 40, 3.0, 21);
  (void)core::run_task(*donor.controller, rounds);
  EXPECT_EQ(donor.controller->phase(), core::Phase::kExploitation);
  donor.snapshot = distill(*donor.controller, 40);
  EXPECT_FALSE(donor.snapshot.empty());
  return donor;
}

TEST(WarmStart, KColdReproducesTheColdTrajectoryExactly) {
  const device::DeviceModel agx = device::jetson_agx();
  const core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  const Donor donor = make_donor(agx);
  const BoflController::PriorSeed seed = donor.snapshot.make_seed(2);

  BoflController cold(agx, task.profile, {}, fast_options(agx.name()), 77);
  BoflController offered(agx, task.profile, {}, fast_options(agx.name()), 77);
  offered.apply_prior(seed, PriorPolicy::kCold);  // must be a strict no-op
  EXPECT_EQ(offered.prior_state(), BoflController::PriorState::kNone);

  const auto rounds = rounds_for(agx, 16, 2.0, 33);
  const core::TaskResult a = core::run_task(cold, rounds);
  const core::TaskResult b = core::run_task(offered, rounds);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].energy().value(), b.rounds[i].energy().value());
    EXPECT_EQ(a.rounds[i].elapsed().value(), b.rounds[i].elapsed().value());
    EXPECT_EQ(a.rounds[i].phase, b.rounds[i].phase);
  }
}

TEST(WarmStart, KVerifyCollapsesExplorationToAVerificationPass) {
  const device::DeviceModel agx = device::jetson_agx();
  const core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  const Donor donor = make_donor(agx);

  BoflController warm(agx, task.profile, {}, fast_options(agx.name()), 77);
  std::vector<BoflController::PriorState> feedback;
  warm.set_prior_feedback(
      [&feedback](BoflController::PriorState state) {
        feedback.push_back(state);
      });
  warm.apply_prior(donor.snapshot.make_seed(2), PriorPolicy::kVerify);
  EXPECT_EQ(warm.prior_state(), BoflController::PriorState::kVerifying);

  const auto rounds = rounds_for(agx, 16, 3.0, 33);
  const core::TaskResult result = core::run_task(warm, rounds);
  EXPECT_EQ(warm.prior_state(), BoflController::PriorState::kVerified);
  ASSERT_EQ(feedback.size(), 1u);
  EXPECT_EQ(feedback.front(), BoflController::PriorState::kVerified);
  // The donor's coverage satisfies the stopping rule's exploration floor,
  // so the verification pass goes straight to exploitation: at most a
  // couple of rounds spent outside phase 3 versus the cold ~6-10.
  const std::int64_t exploration =
      result.rounds_in_phase(core::Phase::kSafeRandomExploration) +
      result.rounds_in_phase(core::Phase::kParetoConstruction);
  EXPECT_LE(exploration, 2);
  EXPECT_EQ(warm.phase(), core::Phase::kExploitation);
}

TEST(WarmStart, OptimisticPriorDemotesToColdAndRearmsDrift) {
  const device::DeviceModel agx = device::jetson_agx();
  const core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  const Donor donor = make_donor(agx);

  // Poison the believed profiles: claim every config is 2x faster than it
  // really is.  The first on-unit measurement lands outside the drift band
  // (actual > believed * drift_demote_ratio) — an optimistic misprediction.
  PriorSnapshot poisoned = donor.snapshot;
  for (auto& obs : poisoned.observations) {
    obs.mean_latency *= 0.5;
  }

  BoflController warm(agx, task.profile, {}, fast_options(agx.name()), 77);
  std::vector<BoflController::PriorState> feedback;
  warm.set_prior_feedback(
      [&feedback](BoflController::PriorState state) {
        feedback.push_back(state);
      });
  warm.apply_prior(poisoned.make_seed(2), PriorPolicy::kVerify);

  const auto rounds = rounds_for(agx, 20, 3.0, 33);
  const core::TaskResult result = core::run_task(warm, rounds);
  EXPECT_EQ(warm.prior_state(), BoflController::PriorState::kDemoted);
  ASSERT_EQ(feedback.size(), 1u);
  EXPECT_EQ(feedback.front(), BoflController::PriorState::kDemoted);
  // Demotion falls back to the cold three-phase protocol and still ends in
  // exploitation; no deadline may be missed along the way (the guardian
  // stayed authoritative throughout).
  EXPECT_EQ(warm.phase(), core::Phase::kExploitation);
  for (const core::RoundTrace& trace : result.rounds) {
    EXPECT_TRUE(trace.deadline_met())
        << "round " << trace.index << " missed under a poisoned prior";
  }
}

TEST(WarmStart, KTrustAdoptsWithoutVerification) {
  const device::DeviceModel agx = device::jetson_agx();
  const core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  const Donor donor = make_donor(agx);

  BoflController trusted(agx, task.profile, {}, fast_options(agx.name()), 77);
  trusted.apply_prior(donor.snapshot.make_seed(2), PriorPolicy::kTrust);
  EXPECT_EQ(trusted.prior_state(), BoflController::PriorState::kAdopted);
  // import_state semantics: the donor's coverage passes the exploration
  // floor, so the controller starts its life in exploitation.
  EXPECT_EQ(trusted.phase(), core::Phase::kExploitation);

  const auto rounds = rounds_for(agx, 8, 3.0, 33);
  const core::TaskResult result = core::run_task(trusted, rounds);
  EXPECT_EQ(result.rounds_in_phase(core::Phase::kExploitation),
            static_cast<std::int64_t>(result.rounds.size()));
}

}  // namespace
}  // namespace bofl::priors
