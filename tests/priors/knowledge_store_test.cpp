#include "priors/knowledge_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace bofl::priors {
namespace {

using SavedObservation = core::BoflController::SavedObservation;

PriorSnapshot snapshot_of(std::vector<SavedObservation> observations) {
  PriorSnapshot snapshot;
  snapshot.observations = std::move(observations);
  for (const SavedObservation& obs : snapshot.observations) {
    snapshot.pareto_flat_ids.push_back(obs.config_flat);
  }
  snapshot.t_x_max_s = 0.25;
  snapshot.source_rounds = 10;
  return snapshot;
}

const ClusterKey kKey{"agx", "vit"};

TEST(KnowledgeStore, UnknownClusterDeclinesAndKColdPassesThrough) {
  KnowledgeStore store;
  const KnowledgeStore::Admission unknown =
      store.admit(kKey, PriorPolicy::kVerify);
  EXPECT_EQ(unknown.policy, PriorPolicy::kCold);
  EXPECT_EQ(unknown.snapshot, nullptr);
  EXPECT_EQ(store.confidence(kKey), 0.0);

  store.contribute(kKey, snapshot_of({{5, 4.0, 2.0, 0.5}}));
  const KnowledgeStore::Admission cold = store.admit(kKey, PriorPolicy::kCold);
  EXPECT_EQ(cold.policy, PriorPolicy::kCold);
  EXPECT_EQ(cold.snapshot, nullptr);
}

TEST(KnowledgeStore, ConfidenceGatesAdmissionAndDowngradesTrust) {
  KnowledgeStore store;
  store.contribute(kKey, snapshot_of({{5, 4.0, 2.0, 0.5}}));
  // No outcomes yet: full confidence, trust granted as requested.
  EXPECT_EQ(store.confidence(kKey), 1.0);
  EXPECT_EQ(store.admit(kKey, PriorPolicy::kTrust).policy,
            PriorPolicy::kTrust);

  // One misprediction outweighs misprediction_weight verifications: with
  // 3 confirmations and 1 demotion, confidence = 3 / (3 + 4) < 0.5.
  store.record_outcome(kKey, true);
  store.record_outcome(kKey, true);
  store.record_outcome(kKey, true);
  store.record_outcome(kKey, false);
  EXPECT_NEAR(store.confidence(kKey), 3.0 / 7.0, 1e-12);
  const KnowledgeStore::Admission declined =
      store.admit(kKey, PriorPolicy::kVerify);
  EXPECT_EQ(declined.snapshot, nullptr);

  // Many confirmations rebuild confidence past min_confidence but stay
  // below the trust bar: kTrust is downgraded to kVerify.
  for (int i = 0; i < 10; ++i) {
    store.record_outcome(kKey, true);
  }
  EXPECT_GT(store.confidence(kKey), store.options().min_confidence);
  EXPECT_LT(store.confidence(kKey), store.options().trust_confidence);
  const KnowledgeStore::Admission downgraded =
      store.admit(kKey, PriorPolicy::kTrust);
  EXPECT_EQ(downgraded.policy, PriorPolicy::kVerify);
  ASSERT_NE(downgraded.snapshot, nullptr);
}

TEST(KnowledgeStore, ContributeMergesObservationsJobWeighted) {
  KnowledgeStore store;
  store.contribute(kKey, snapshot_of({{3, 2.0, 4.0, 1.0}, {7, 2.0, 1.0, 2.0}}));
  store.contribute(kKey, snapshot_of({{3, 6.0, 8.0, 3.0}, {9, 1.0, 0.5, 4.0}}));

  const ClusterKnowledge* knowledge = store.lookup(kKey);
  ASSERT_NE(knowledge, nullptr);
  EXPECT_EQ(knowledge->contributions, 2u);
  ASSERT_EQ(knowledge->snapshot.observations.size(), 3u);
  // Sorted by flat id, overlapping id 3 merged with job weights 2 + 6.
  const SavedObservation& merged = knowledge->snapshot.observations[0];
  EXPECT_EQ(merged.config_flat, 3u);
  EXPECT_DOUBLE_EQ(merged.jobs, 8.0);
  EXPECT_NEAR(merged.mean_energy, (2.0 * 4.0 + 6.0 * 8.0) / 8.0, 1e-12);
  EXPECT_NEAR(merged.mean_latency, (2.0 * 1.0 + 6.0 * 3.0) / 8.0, 1e-12);
  EXPECT_EQ(knowledge->snapshot.observations[1].config_flat, 7u);
  EXPECT_EQ(knowledge->snapshot.observations[2].config_flat, 9u);
  // The merged Pareto front is recomputed over the merged profiles: id 3
  // (7.0 J, 2.5 s after the merge) is dominated by id 7 (1.0 J, 2.0 s)
  // and must drop off the front.
  for (const std::size_t flat : knowledge->snapshot.pareto_flat_ids) {
    EXPECT_NE(flat, 3u);
  }
}

TEST(KnowledgeStore, JsonRoundTripIsByteStable) {
  KnowledgeStore store;
  store.contribute(kKey, snapshot_of({{3, 2.0, 4.0, 1.0}, {7, 2.0, 1.0, 2.0}}));
  store.contribute(ClusterKey{"tx2", "lstm"},
                   snapshot_of({{1, 5.0, 0.125, 0.0625}}));
  store.record_outcome(kKey, true);
  store.record_outcome(kKey, false);

  const std::string json = store.to_json();
  const KnowledgeStore reloaded = KnowledgeStore::from_json(json);
  EXPECT_EQ(reloaded.to_json(), json);
  EXPECT_EQ(reloaded.num_clusters(), 2u);
  EXPECT_DOUBLE_EQ(reloaded.confidence(kKey), store.confidence(kKey));

  // File round trip preserves the exact bytes too.
  const std::string path = ::testing::TempDir() + "bofl_store_test.json";
  store.save(path);
  const KnowledgeStore from_disk = KnowledgeStore::from_file(path);
  EXPECT_EQ(from_disk.to_json(), json);
  std::remove(path.c_str());
}

TEST(KnowledgeStore, EmptySnapshotNeverAdmits) {
  KnowledgeStore store;
  store.contribute(kKey, PriorSnapshot{});
  const KnowledgeStore::Admission admission =
      store.admit(kKey, PriorPolicy::kVerify);
  EXPECT_EQ(admission.snapshot, nullptr);
  EXPECT_EQ(admission.policy, PriorPolicy::kCold);
}

}  // namespace
}  // namespace bofl::priors
