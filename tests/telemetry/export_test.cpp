// JSON serialization and JSONL/summary exporter tests, including a
// golden-file check: the exporter's byte-stable output contract is what
// makes metrics diffs across runs meaningful.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/json.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl::telemetry {
namespace {

TEST(JsonValue, Scalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(JsonValue(std::size_t{3}).dump(), "3");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonValue, DoubleFormattingIsShortestRoundTrip) {
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue(6.0).dump(), "6");
  EXPECT_EQ(JsonValue(0.1).dump(), "0.1");
  EXPECT_EQ(JsonValue(-0.0).dump(), "-0");
}

TEST(JsonValue, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
  EXPECT_EQ(JsonValue(HUGE_VAL).dump(), "null");
  EXPECT_EQ(JsonValue(-HUGE_VAL).dump(), "null");
}

TEST(JsonValue, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonValue("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonValue(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(JsonValue, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1).set("alpha", 2).set("mid", "x");
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":\"x\"}");
}

TEST(JsonValue, NestedArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  JsonValue inner = JsonValue::object();
  inner.set("k", JsonValue::array());
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(), "[1,{\"k\":[]}]");
}

// The exporter contract, checked byte-for-byte: deterministic inputs (a
// counter, a gauge, a histogram whose observations all share one value so
// every derived statistic is exact) must produce exactly these lines.
TEST(RunRecorder, GoldenJsonlFile) {
  const std::string path = ::testing::TempDir() + "/telemetry_golden.jsonl";
  Registry registry;
  {
    RunRecorder recorder(registry, path);
    registry.counter("alpha").add(3);
    registry.gauge("g").set(2.5);
    Histogram& h = registry.histogram("h", {1.0, 10.0});
    h.observe(2.0);
    h.observe(2.0);
    h.observe(2.0);
    JsonValue fields = JsonValue::object();
    fields.set("n", 42).set("note", "a\"b");
    recorder.emit("hello", std::move(fields));
    recorder.emit_summary();
    EXPECT_EQ(recorder.events_written(), 2u);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"event\":\"hello\",\"seq\":0,\"n\":42,\"note\":\"a\\\"b\"}");
  EXPECT_EQ(
      lines[1],
      "{\"event\":\"summary\",\"seq\":1,"
      "\"counters\":{\"alpha\":3},"
      "\"gauges\":{\"g\":2.5},"
      "\"histograms\":{\"h\":{\"count\":3,\"sum\":6,\"mean\":2,\"min\":2,"
      "\"max\":2,\"p50\":2,\"p90\":2,\"p99\":2,"
      "\"buckets\":[{\"le\":10,\"count\":3}]}}}");
}

TEST(RunRecorder, SummaryOnlyModeCountsEvents) {
  Registry registry;
  RunRecorder recorder(registry, "");
  recorder.emit("a");
  recorder.emit("b");
  EXPECT_EQ(recorder.events_written(), 2u);
}

TEST(RunRecorder, OverflowBucketExportsLeInf) {
  Registry registry;
  RunRecorder recorder(registry, "");
  registry.histogram("h", {1.0}).observe(5.0);
  const std::string dump = recorder.summary().dump();
  EXPECT_NE(dump.find("{\"le\":\"inf\",\"count\":1}"), std::string::npos);
}

TEST(RunRecorder, PrintSummaryWritesTable) {
  Registry registry;
  RunRecorder recorder(registry, "");
  registry.counter("c").add(7);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(0.25);
  const std::string path = ::testing::TempDir() + "/telemetry_summary.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  recorder.print_summary(out);
  std::fclose(out);
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("telemetry summary"), std::string::npos);
  EXPECT_NE(text.find("c"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(GlobalRecorder, InstallSetsRegistryToo) {
  ASSERT_EQ(global_recorder(), nullptr);
  Registry registry;
  RunRecorder recorder(registry, "");
  install_global_recorder(&recorder);
  EXPECT_EQ(global_recorder(), &recorder);
  EXPECT_EQ(global_registry(), &registry);
  install_global_recorder(nullptr);
  EXPECT_EQ(global_recorder(), nullptr);
  EXPECT_EQ(global_registry(), nullptr);
}

}  // namespace
}  // namespace bofl::telemetry
