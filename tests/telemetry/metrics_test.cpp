// Concurrency and shard-merge correctness for the metrics registry.  The
// CI TSan job runs this binary, so the concurrent tests double as data-race
// proofs for the striped write paths.
#include "telemetry/metrics.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bofl::telemetry {
namespace {

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter counter;
  // More threads than stripes, so several threads share a stripe and the
  // fetch_add path is exercised under real contention.
  constexpr int kThreads = 3 * static_cast<int>(detail::kStripes) / 2;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.total(), kThreads * kPerThread);
}

TEST(Counter, AddWithArgument) {
  Counter counter;
  counter.add(5);
  counter.add();
  EXPECT_EQ(counter.total(), 6u);
}

TEST(Gauge, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(Histogram, ConcurrentObservesMergeExactly) {
  // Integer-valued observations keep the shard sums exact, so the merged
  // snapshot must reproduce count/sum/min/max with no tolerance.
  Histogram histogram(linear_buckets(1.0, 1.0, 8));
  constexpr int kThreads = 24;  // > kStripes: stripes are shared
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(static_cast<double>(t % 4 + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // 24 threads cycle through values 1..4, six threads per value.
  const double expected_sum = 6.0 * kPerThread * (1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 4.0);
}

TEST(Histogram, ShardMergeInvariants) {
  Histogram histogram(std::vector<double>{1.0, 10.0, 100.0});
  const std::vector<double> values{0.5, 5.0, 50.0, 500.0, 5.0, 0.25};
  std::vector<std::thread> threads;
  for (double v : values) {
    threads.emplace_back([&histogram, v] { histogram.observe(v); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const HistogramSnapshot snap = histogram.snapshot();
  // counts has one overflow bucket beyond the finite bounds.
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  // Sum of bucket counts always equals the total observation count.
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.counts) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.counts[0], 2u);  // 0.5, 0.25
  EXPECT_EQ(snap.counts[1], 2u);  // 5.0 x2
  EXPECT_EQ(snap.counts[2], 1u);  // 50.0
  EXPECT_EQ(snap.counts[3], 1u);  // 500.0 overflows
  EXPECT_EQ(snap.min, 0.25);
  EXPECT_EQ(snap.max, 500.0);
}

TEST(Histogram, BucketBoundaryIsInclusive) {
  // Prometheus-style "le": an observation equal to a bound lands in that
  // bound's bucket.
  Histogram histogram(std::vector<double>{1.0, 2.0});
  histogram.observe(1.0);
  histogram.observe(2.0);
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
}

TEST(Histogram, QuantileInterpolatesAndClamps) {
  Histogram histogram(linear_buckets(10.0, 10.0, 10));  // 10, 20, ..., 100
  for (int i = 1; i <= 100; ++i) {
    histogram.observe(static_cast<double>(i));
  }
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_NEAR(snap.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(snap.quantile(0.9), 90.0, 10.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(snap.quantile(0.0), snap.min);
  EXPECT_LE(snap.quantile(1.0), snap.max);
  EXPECT_EQ(snap.mean(), 50.5);
}

TEST(Histogram, SingleValueQuantilesAreExact) {
  // All mass in one bucket with min == max: every quantile is that value.
  Histogram histogram(std::vector<double>{1.0, 10.0});
  histogram.observe(2.0);
  histogram.observe(2.0);
  histogram.observe(2.0);
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.quantile(0.5), 2.0);
  EXPECT_EQ(snap.quantile(0.99), 2.0);
  EXPECT_EQ(snap.mean(), 2.0);
}

TEST(Histogram, EmptySnapshotIsBenign) {
  Histogram histogram(default_buckets());
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

TEST(BucketHelpers, ShapesAreCorrect) {
  const std::vector<double> exp = exponential_buckets(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const std::vector<double> lin = linear_buckets(0.5, 0.25, 3);
  EXPECT_EQ(lin, (std::vector<double>{0.5, 0.75, 1.0}));
  const std::vector<double>& def = default_buckets();
  ASSERT_GE(def.size(), 2u);
  for (std::size_t i = 1; i < def.size(); ++i) {
    EXPECT_GT(def[i], def[i - 1]);
  }
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry registry;
  Counter& a = registry.counter("hits");
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.total(), 3u);
  Histogram& h1 = registry.histogram("lat", {1.0, 2.0});
  // Bounds apply only on creation; the second call ignores them.
  Histogram& h2 = registry.histogram("lat", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.counter("shared").add();
        registry.histogram("h").observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.counter("shared").total(), 800u);
  EXPECT_EQ(registry.histogram("h").snapshot().count, 800u);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("zeta").add();
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(1.0);
  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "mid");
}

TEST(GlobalRegistry, InstallAndClear) {
  EXPECT_EQ(global_registry(), nullptr);
  Registry registry;
  set_global_registry(&registry);
  EXPECT_EQ(global_registry(), &registry);
  set_global_registry(nullptr);
  EXPECT_EQ(global_registry(), nullptr);
}

}  // namespace
}  // namespace bofl::telemetry
