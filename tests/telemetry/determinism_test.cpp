// The telemetry determinism contract: installing a recorder must not change
// a single bit of any simulation result.  Instrumentation only observes —
// it never consumes RNG draws or SimClock time — so a run with --metrics-out
// is exactly the run without it, plus an event stream on the side.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/mbo_cost.hpp"
#include "core/task.hpp"
#include "device/device_model.hpp"
#include "fl/simulation.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl {
namespace {

void expect_identical(const core::TaskResult& a, const core::TaskResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const core::RoundTrace& x = a.rounds[r];
    const core::RoundTrace& y = b.rounds[r];
    EXPECT_EQ(x.phase, y.phase);
    EXPECT_EQ(x.deadline.value(), y.deadline.value());
    EXPECT_EQ(x.elapsed().value(), y.elapsed().value());
    EXPECT_EQ(x.energy().value(), y.energy().value());
    EXPECT_EQ(x.mbo_energy.value(), y.mbo_energy.value());
    EXPECT_EQ(x.mbo_latency.value(), y.mbo_latency.value());
    EXPECT_EQ(x.jobs(), y.jobs());
    EXPECT_EQ(x.slack().value(), y.slack().value());
  }
}

core::TaskResult run_bofl_task(const device::DeviceModel& model) {
  core::FlTaskSpec task = core::cifar10_vit_task(model.name());
  task.num_rounds = 12;
  const auto rounds = core::make_rounds(task, model, 2.0, 99);
  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(model.name());
  core::BoflController controller(model, task.profile, device::NoiseModel{},
                                  options, 7);
  return core::run_task(controller, rounds);
}

TEST(TelemetryDeterminism, HarnessRunIsBitIdenticalWithRecorder) {
  const device::DeviceModel model = device::jetson_agx();
  const core::TaskResult baseline = run_bofl_task(model);

  telemetry::Registry registry;
  const std::string path =
      ::testing::TempDir() + "/determinism_core.jsonl";
  telemetry::RunRecorder recorder(registry, path);
  telemetry::install_global_recorder(&recorder);
  const core::TaskResult recorded = run_bofl_task(model);
  telemetry::install_global_recorder(nullptr);

  expect_identical(baseline, recorded);
  // And the instrumentation actually fired.
  EXPECT_EQ(registry.counter("core.rounds").total(), 12u);
  EXPECT_GT(recorder.events_written(), 0u);
}

fl::FlSimulationResult run_fleet(std::size_t threads) {
  const device::DeviceModel model = device::jetson_agx();
  fl::FlSimulationConfig config;
  config.num_clients = 6;
  config.clients_per_round = 3;
  config.rounds = 4;
  config.shard_examples = 64;
  config.test_examples = 64;
  config.seed = 5;
  config.threads = threads;
  fl::FederatedSimulation sim(model, config);
  return sim.run();
}

void expect_identical(const fl::FlSimulationResult& a,
                      const fl::FlSimulationResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].global_loss, b.rounds[r].global_loss);
    EXPECT_EQ(a.rounds[r].global_accuracy, b.rounds[r].global_accuracy);
    EXPECT_EQ(a.rounds[r].energy.value(), b.rounds[r].energy.value());
    EXPECT_EQ(a.rounds[r].participants, b.rounds[r].participants);
    EXPECT_EQ(a.rounds[r].accepted, b.rounds[r].accepted);
    EXPECT_EQ(a.rounds[r].deadline.value(), b.rounds[r].deadline.value());
  }
}

TEST(TelemetryDeterminism, FleetRunIsBitIdenticalWithRecorder) {
  const fl::FlSimulationResult baseline = run_fleet(1);

  telemetry::Registry registry;
  const std::string path =
      ::testing::TempDir() + "/determinism_fleet.jsonl";
  telemetry::RunRecorder recorder(registry, path);
  telemetry::install_global_recorder(&recorder);
  const fl::FlSimulationResult recorded = run_fleet(1);
  telemetry::install_global_recorder(nullptr);

  expect_identical(baseline, recorded);
  EXPECT_EQ(registry.counter("fl.rounds").total(), 4u);
}

TEST(TelemetryDeterminism, ParallelFleetMatchesSerialUnderRecorder) {
  // The parallel-determinism contract must survive instrumentation too:
  // with a recorder installed, a 4-thread fleet still reproduces the
  // serial fleet bit-for-bit.
  telemetry::Registry registry;
  telemetry::RunRecorder recorder(registry, "");
  telemetry::install_global_recorder(&recorder);
  const fl::FlSimulationResult serial = run_fleet(1);
  const fl::FlSimulationResult parallel = run_fleet(4);
  telemetry::install_global_recorder(nullptr);
  expect_identical(serial, parallel);
}

}  // namespace
}  // namespace bofl
