#include "bo/mbo_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "pareto/hypervolume.hpp"

namespace bofl::bo {
namespace {

/// A synthetic conflicting two-objective problem on a 2-D grid:
/// f1 favours the lower-left corner, f2 the upper-right; the Pareto set is
/// the diagonal band between them.
struct SyntheticProblem {
  std::vector<linalg::Vector> candidates;
  std::vector<pareto::Point2> values;

  explicit SyntheticProblem(std::size_t grid = 15) {
    for (std::size_t i = 0; i < grid; ++i) {
      for (std::size_t j = 0; j < grid; ++j) {
        const double x = static_cast<double>(i) / (grid - 1);
        const double y = static_cast<double>(j) / (grid - 1);
        candidates.push_back({x, y});
        const double f1 = 0.2 + (x - 0.1) * (x - 0.1) + 0.5 * y * y;
        const double f2 = 0.2 + (1.0 - x) * (1.0 - x) * 0.6 +
                          (1.0 - y) * (1.0 - y) * 0.4;
        values.push_back({f1, f2});
      }
    }
  }
};

MboEngine make_engine(const SyntheticProblem& problem,
                      std::size_t initial_observations,
                      std::uint64_t seed = 11) {
  MboOptions options;
  options.hyperopt.num_restarts = 2;
  options.hyperopt.max_iterations_per_start = 80;
  MboEngine engine(problem.candidates, options, seed);
  Rng rng(seed * 31);
  for (std::size_t i = 0; i < initial_observations; ++i) {
    const std::size_t c = rng.uniform_index(problem.candidates.size());
    engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
  }
  return engine;
}

TEST(MboEngine, RequiresCandidates) {
  EXPECT_THROW(MboEngine({}, {}, 1), std::invalid_argument);
}

TEST(MboEngine, RejectsOutOfRangeObservation) {
  SyntheticProblem problem;
  MboEngine engine(problem.candidates, {}, 1);
  EXPECT_THROW(engine.add_observation({problem.candidates.size(), 1.0, 1.0}),
               std::invalid_argument);
}

TEST(MboEngine, LogTransformRequiresPositiveObjectives) {
  SyntheticProblem problem;
  MboEngine engine(problem.candidates, {}, 1);
  EXPECT_THROW(engine.add_observation({0, -1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(engine.add_observation({0, 1.0, 0.0}), std::invalid_argument);
}

TEST(MboEngine, DefaultReferenceIsComponentWiseWorst) {
  SyntheticProblem problem;
  MboEngine engine(problem.candidates, {}, 1);
  engine.add_observation({0, 2.0, 3.0});
  engine.add_observation({1, 4.0, 1.0});
  const pareto::Point2 ref = engine.reference();
  EXPECT_DOUBLE_EQ(ref.f1, 4.0);
  EXPECT_DOUBLE_EQ(ref.f2, 3.0);
}

TEST(MboEngine, ExplicitReferenceWins) {
  SyntheticProblem problem;
  MboEngine engine(problem.candidates, {}, 1);
  engine.add_observation({0, 2.0, 3.0});
  engine.set_reference({9.0, 9.0});
  EXPECT_DOUBLE_EQ(engine.reference().f1, 9.0);
}

TEST(MboEngine, ProposeNeedsThreeObservations) {
  SyntheticProblem problem;
  MboEngine engine = make_engine(problem, 2);
  EXPECT_THROW((void)engine.propose_batch(3), std::invalid_argument);
}

TEST(MboEngine, BatchIsDistinctAndUnobserved) {
  SyntheticProblem problem;
  MboEngine engine = make_engine(problem, 8);
  const auto batch = engine.propose_batch(5);
  ASSERT_EQ(batch.size(), 5u);
  std::set<std::size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 5u);
  for (std::size_t c : batch) {
    EXPECT_FALSE(engine.is_observed(c));
  }
}

TEST(MboEngine, BatchRespectsCap) {
  SyntheticProblem problem;
  MboOptions options;
  options.max_batch_size = 3;
  options.hyperopt.num_restarts = 1;
  options.hyperopt.max_iterations_per_start = 50;
  MboEngine engine(problem.candidates, options, 5);
  Rng rng(6);
  for (int i = 0; i < 6; ++i) {
    const std::size_t c = rng.uniform_index(problem.candidates.size());
    engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
  }
  EXPECT_LE(engine.propose_batch(10).size(), 3u);
}

TEST(MboEngine, ObservedFrontAndHypervolume) {
  SyntheticProblem problem;
  MboEngine engine(problem.candidates, {}, 1);
  engine.add_observation({0, 2.0, 3.0});
  engine.add_observation({1, 1.0, 4.0});
  engine.add_observation({2, 3.0, 1.0});
  engine.set_reference({5.0, 5.0});
  const auto front = engine.observed_front();
  EXPECT_EQ(front.size(), 3u);  // mutually non-dominated
  EXPECT_GT(engine.observed_hypervolume(), 0.0);
}

TEST(MboEngine, RandomAcquisitionReturnsUnobservedDistinct) {
  SyntheticProblem problem;
  MboOptions options;
  options.acquisition = AcquisitionKind::kRandomUnobserved;
  MboEngine engine(problem.candidates, options, 3);
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const std::size_t c = rng.uniform_index(problem.candidates.size());
    engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
  }
  const auto batch = engine.propose_batch(6);
  ASSERT_EQ(batch.size(), 6u);
  std::set<std::size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 6u);
  for (std::size_t c : batch) {
    EXPECT_FALSE(engine.is_observed(c));
  }
  // The random strategy must not report an EHVI value.
  EXPECT_FALSE(engine.last_best_ehvi().has_value());
}

TEST(MboEngine, AcquisitionKindNames) {
  EXPECT_STREQ(to_string(AcquisitionKind::kEhvi), "ehvi");
  EXPECT_STREQ(to_string(AcquisitionKind::kRandomUnobserved), "random");
  EXPECT_STREQ(to_string(AcquisitionKind::kThompsonMarginal), "thompson");
}

TEST(MboEngine, ThompsonAcquisitionProposesValidBatches) {
  SyntheticProblem problem;
  MboOptions options;
  options.acquisition = AcquisitionKind::kThompsonMarginal;
  options.hyperopt.num_restarts = 1;
  options.hyperopt.max_iterations_per_start = 60;
  MboEngine engine(problem.candidates, options, 21);
  Rng rng(22);
  for (int i = 0; i < 8; ++i) {
    const std::size_t c = rng.uniform_index(problem.candidates.size());
    engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
  }
  const auto batch = engine.propose_batch(5);
  ASSERT_EQ(batch.size(), 5u);
  std::set<std::size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 5u);
  for (std::size_t c : batch) {
    EXPECT_FALSE(engine.is_observed(c));
  }
}

TEST(MboEngine, ThompsonEventuallyFindsTheFront) {
  // Thompson draws are randomized; over a modest budget the observed
  // hypervolume must still climb toward the EHVI level.
  SyntheticProblem problem;
  const pareto::Point2 ref{2.0, 2.0};
  MboOptions options;
  options.acquisition = AcquisitionKind::kThompsonMarginal;
  options.hyperopt.num_restarts = 1;
  options.hyperopt.max_iterations_per_start = 60;
  MboEngine engine(problem.candidates, options, 23);
  Rng rng(24);
  for (int i = 0; i < 8; ++i) {
    const std::size_t c = rng.uniform_index(problem.candidates.size());
    engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
  }
  engine.set_reference(ref);
  const double before = engine.observed_hypervolume();
  for (int round = 0; round < 5; ++round) {
    for (std::size_t c : engine.propose_batch(5)) {
      engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
    }
  }
  EXPECT_GT(engine.observed_hypervolume(), before);
}

TEST(MboEngine, LastBestEhviIsPopulated) {
  SyntheticProblem problem;
  MboEngine engine = make_engine(problem, 8);
  EXPECT_FALSE(engine.last_best_ehvi().has_value());
  (void)engine.propose_batch(2);
  ASSERT_TRUE(engine.last_best_ehvi().has_value());
  EXPECT_GE(*engine.last_best_ehvi(), 0.0);
}

// The headline behaviour: MBO-guided exploration reaches a higher
// hypervolume than uniform random exploration with the same budget.
TEST(MboEngine, BeatsRandomSearchOnHypervolume) {
  SyntheticProblem problem;
  const pareto::Point2 ref{2.0, 2.0};
  const std::size_t kInitial = 8;
  const std::size_t kBudget = 20;

  double mbo_hv = 0.0;
  double random_hv = 0.0;
  int mbo_wins = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    // MBO run.
    MboEngine engine = make_engine(problem, kInitial, seed);
    engine.set_reference(ref);
    std::size_t spent = 0;
    while (spent < kBudget) {
      const auto batch =
          engine.propose_batch(std::min<std::size_t>(5, kBudget - spent));
      ASSERT_FALSE(batch.empty());
      for (std::size_t c : batch) {
        engine.add_observation({c, problem.values[c].f1,
                                problem.values[c].f2});
      }
      spent += batch.size();
    }
    mbo_hv = engine.observed_hypervolume();

    // Random run with identical budget.
    Rng rng(seed * 31);  // same initial points as make_engine
    std::vector<pareto::Point2> seen;
    for (std::size_t i = 0; i < kInitial + kBudget; ++i) {
      const std::size_t c = rng.uniform_index(problem.candidates.size());
      seen.push_back(problem.values[c]);
    }
    random_hv = pareto::hypervolume_2d(seen, ref);
    if (mbo_hv >= random_hv) {
      ++mbo_wins;
    }
  }
  EXPECT_GE(mbo_wins, 2) << "last mbo=" << mbo_hv
                         << " random=" << random_hv;
}

TEST(MboEngine, ParallelScoringMatchesSerialBatches) {
  // Candidate scoring on a pool must pick the exact batch the serial loop
  // picks — for both the deterministic (EHVI) and the sampling (Thompson)
  // acquisitions, and for every pool size (the --threads invariance the
  // blocked scoring path promises).
  SyntheticProblem problem;
  for (const AcquisitionKind kind :
       {AcquisitionKind::kEhvi, AcquisitionKind::kThompsonMarginal}) {
    SCOPED_TRACE(to_string(kind));
    MboOptions options;
    options.acquisition = kind;
    options.hyperopt.num_restarts = 2;
    options.hyperopt.max_iterations_per_start = 80;
    auto propose = [&](runtime::ThreadPool* pool) {
      MboEngine engine(problem.candidates, options, 11);
      if (pool != nullptr) {
        engine.set_parallel_pool(pool);
      }
      Rng rng(11 * 31);
      for (std::size_t i = 0; i < 8; ++i) {
        const std::size_t c = rng.uniform_index(problem.candidates.size());
        engine.add_observation(
            {c, problem.values[c].f1, problem.values[c].f2});
      }
      return engine.propose_batch(6);
    };
    const std::vector<std::size_t> serial = propose(nullptr);
    for (const std::size_t threads : {2u, 4u, 7u}) {
      SCOPED_TRACE(threads);
      runtime::ThreadPool pool(threads);
      EXPECT_EQ(serial, propose(&pool));
    }
  }
}

TEST(MboEngine, FullRefitEscapeHatchProposesEquivalentBatches) {
  // The incremental algebra (rank-1 Cholesky updates, cached
  // cross-covariances, blocked solves) only reorders floating-point work:
  // against the reference full-refit path it must pick the same
  // candidates.
  SyntheticProblem problem;
  for (const std::uint64_t seed : {11ull, 29ull}) {
    SCOPED_TRACE(seed);
    MboOptions incremental_options;
    incremental_options.hyperopt.num_restarts = 2;
    incremental_options.hyperopt.max_iterations_per_start = 80;
    MboOptions reference_options = incremental_options;
    reference_options.full_refit = true;
    MboEngine incremental(problem.candidates, incremental_options, seed);
    MboEngine reference(problem.candidates, reference_options, seed);
    Rng rng(seed * 31);
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t c = rng.uniform_index(problem.candidates.size());
      incremental.add_observation(
          {c, problem.values[c].f1, problem.values[c].f2});
      reference.add_observation(
          {c, problem.values[c].f1, problem.values[c].f2});
    }
    EXPECT_EQ(incremental.propose_batch(5), reference.propose_batch(5));
  }
}

TEST(MboEngine, WarmStartedRoundsStayDeterministicAcrossPools) {
  // Rounds after the first use warm-started hyperparameter fits (see
  // MboOptions::hyperopt_refresh_period).  A full observe/propose cycle
  // repeated over several rounds must still pick identical batches for
  // every pool size, and the full-refit escape hatch must keep agreeing
  // with the incremental algebra on those warm rounds too.
  SyntheticProblem problem;
  MboOptions options;
  options.hyperopt.num_restarts = 2;
  options.hyperopt.max_iterations_per_start = 80;
  auto run_rounds = [&](const MboOptions& opts, runtime::ThreadPool* pool) {
    MboEngine engine(problem.candidates, opts, 17);
    if (pool != nullptr) {
      engine.set_parallel_pool(pool);
    }
    Rng rng(17 * 31);
    for (std::size_t i = 0; i < 6; ++i) {
      const std::size_t c = rng.uniform_index(problem.candidates.size());
      engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
    }
    std::vector<std::size_t> trace;
    for (int round = 0; round < 3; ++round) {
      const std::vector<std::size_t> batch = engine.propose_batch(4);
      trace.insert(trace.end(), batch.begin(), batch.end());
      for (const std::size_t c : batch) {
        engine.add_observation(
            {c, problem.values[c].f1, problem.values[c].f2});
      }
    }
    return trace;
  };
  const std::vector<std::size_t> serial = run_rounds(options, nullptr);
  for (const std::size_t threads : {2u, 5u}) {
    SCOPED_TRACE(threads);
    runtime::ThreadPool pool(threads);
    EXPECT_EQ(serial, run_rounds(options, &pool));
  }
  MboOptions reference = options;
  reference.full_refit = true;
  EXPECT_EQ(serial, run_rounds(reference, nullptr));
}

TEST(MboEngine, RefreshPeriodZeroAlwaysRunsFullSearch) {
  // hyperopt_refresh_period = 0 disables warm starts entirely: every round
  // re-runs the multi-restart search.  With the RNG consumption that
  // implies, the engine must still produce valid, deterministic batches.
  SyntheticProblem problem;
  MboOptions options;
  options.hyperopt_refresh_period = 0;
  options.hyperopt.num_restarts = 2;
  options.hyperopt.max_iterations_per_start = 80;
  auto run_rounds = [&]() {
    MboEngine engine(problem.candidates, options, 23);
    Rng rng(23 * 31);
    for (std::size_t i = 0; i < 6; ++i) {
      const std::size_t c = rng.uniform_index(problem.candidates.size());
      engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
    }
    std::vector<std::size_t> trace;
    for (int round = 0; round < 2; ++round) {
      const std::vector<std::size_t> batch = engine.propose_batch(3);
      trace.insert(trace.end(), batch.begin(), batch.end());
      for (const std::size_t c : batch) {
        engine.add_observation(
            {c, problem.values[c].f1, problem.values[c].f2});
      }
    }
    return trace;
  };
  const std::vector<std::size_t> a = run_rounds();
  const std::vector<std::size_t> b = run_rounds();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(MboEngine, ExactEhviEscapeHatchPicksTheSameBatches) {
  // The default acquisition scores candidates with the fast polynomial
  // normal kernel; exact_ehvi routes through the libm reference.  The
  // kernel's relative error (~1e-8) is far below the EHVI gaps between
  // distinct grid candidates here, so both modes must select identical
  // batches over several warm rounds.
  SyntheticProblem problem;
  MboOptions fast_options;
  fast_options.hyperopt.num_restarts = 2;
  fast_options.hyperopt.max_iterations_per_start = 80;
  MboOptions exact_options = fast_options;
  exact_options.exact_ehvi = true;
  auto run_rounds = [&](const MboOptions& opts) {
    MboEngine engine(problem.candidates, opts, 13);
    Rng rng(13 * 31);
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t c = rng.uniform_index(problem.candidates.size());
      engine.add_observation({c, problem.values[c].f1, problem.values[c].f2});
    }
    std::vector<std::size_t> trace;
    for (int round = 0; round < 3; ++round) {
      const std::vector<std::size_t> batch = engine.propose_batch(4);
      trace.insert(trace.end(), batch.begin(), batch.end());
      for (const std::size_t c : batch) {
        engine.add_observation(
            {c, problem.values[c].f1, problem.values[c].f2});
      }
    }
    return trace;
  };
  EXPECT_EQ(run_rounds(fast_options), run_rounds(exact_options));
}

TEST(MboEngine, NumObservedCandidatesCountsDistinct) {
  SyntheticProblem problem;
  MboEngine engine(problem.candidates, {}, 1);
  EXPECT_EQ(engine.num_observed_candidates(), 0u);
  engine.add_observation({3, 1.0, 2.0});
  engine.add_observation({3, 1.1, 2.1});  // re-observation of the same cell
  engine.add_observation({7, 1.0, 2.0});
  EXPECT_EQ(engine.num_observed_candidates(), 2u);
  EXPECT_EQ(engine.num_observations(), 3u);
}

}  // namespace
}  // namespace bofl::bo
