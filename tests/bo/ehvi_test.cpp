#include "bo/ehvi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pareto/hypervolume.hpp"

namespace bofl::bo {
namespace {

std::vector<std::pair<double, double>> normal_samples(std::size_t n,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.emplace_back(rng.normal(), rng.normal());
  }
  return samples;
}

TEST(Ehvi, DegeneratesToHviWhenDeterministic) {
  const std::vector<pareto::Point2> front{{2.0, 2.0}};
  const pareto::Point2 ref{4.0, 4.0};
  const GaussianPair deterministic{1.0, 0.0, 3.0, 0.0};
  EXPECT_NEAR(ehvi_2d(deterministic, front, ref),
              pareto::hypervolume_improvement(front, {{1.0, 3.0}}, ref),
              1e-12);
}

TEST(Ehvi, EmptyFrontEqualsProductOfExpectedSides) {
  // With no front, EHVI = E[(r1-Y1)^+] * E[(r2-Y2)^+].
  const pareto::Point2 ref{1.0, 2.0};
  const GaussianPair belief{0.0, 1.0, 0.0, 1.0};
  const double mc =
      ehvi_2d_monte_carlo(belief, {}, ref, normal_samples(400000, 7));
  EXPECT_NEAR(ehvi_2d(belief, {}, ref), mc, 0.01);
}

TEST(Ehvi, AlwaysNonNegative) {
  const std::vector<pareto::Point2> front{{1.0, 3.0}, {2.0, 1.0}};
  const pareto::Point2 ref{4.0, 4.0};
  // A candidate that is almost surely far outside the box.
  const GaussianPair hopeless{50.0, 0.1, 50.0, 0.1};
  EXPECT_GE(ehvi_2d(hopeless, front, ref), 0.0);
  EXPECT_NEAR(ehvi_2d(hopeless, front, ref), 0.0, 1e-9);
}

TEST(Ehvi, BetterMeanGivesHigherValue) {
  const std::vector<pareto::Point2> front{{1.0, 3.0}, {2.0, 1.0}};
  const pareto::Point2 ref{4.0, 4.0};
  const GaussianPair good{0.5, 0.3, 0.5, 0.3};
  const GaussianPair mediocre{1.8, 0.3, 2.5, 0.3};
  EXPECT_GT(ehvi_2d(good, front, ref), ehvi_2d(mediocre, front, ref));
}

TEST(Ehvi, UncertaintyHelpsDominatedMean) {
  // A candidate whose mean is dominated still has positive EHVI if its
  // uncertainty reaches into the improving region.
  const std::vector<pareto::Point2> front{{1.0, 1.0}};
  const pareto::Point2 ref{4.0, 4.0};
  const GaussianPair certain{2.0, 1e-6, 2.0, 1e-6};
  const GaussianPair uncertain{2.0, 1.0, 2.0, 1.0};
  EXPECT_NEAR(ehvi_2d(certain, front, ref), 0.0, 1e-9);
  EXPECT_GT(ehvi_2d(uncertain, front, ref), 0.01);
}

TEST(Ehvi, IgnoresFrontPointsOutsideReferenceBox) {
  const pareto::Point2 ref{4.0, 4.0};
  const std::vector<pareto::Point2> inside{{1.0, 1.0}};
  const std::vector<pareto::Point2> with_outside{
      {1.0, 1.0}, {5.0, 0.5}, {0.5, 9.0}};
  const GaussianPair belief{1.5, 0.5, 1.5, 0.5};
  // Outside points still dominate area outside the box only... they are
  // clipped, so the EHVI must not change.
  EXPECT_NEAR(ehvi_2d(belief, inside, ref),
              ehvi_2d(belief, with_outside, ref), 1e-12);
}

TEST(Ehvi, RejectsNegativeSigma) {
  EXPECT_THROW(
      (void)ehvi_2d({0.0, -1.0, 0.0, 1.0}, {}, {1.0, 1.0}),
      std::invalid_argument);
}

// The heavyweight property: exact EHVI matches Monte-Carlo estimates over
// randomized fronts, beliefs and reference points.
class EhviMonteCarlo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EhviMonteCarlo, MatchesSimulation) {
  Rng rng(GetParam() * 1337 + 5);
  const pareto::Point2 ref{rng.uniform(3.0, 6.0), rng.uniform(3.0, 6.0)};
  std::vector<pareto::Point2> front;
  const std::size_t n = 1 + rng.uniform_index(8);
  for (std::size_t i = 0; i < n; ++i) {
    front.push_back({rng.uniform(0.0, ref.f1), rng.uniform(0.0, ref.f2)});
  }
  const GaussianPair belief{rng.uniform(0.0, ref.f1), rng.uniform(0.05, 1.0),
                            rng.uniform(0.0, ref.f2), rng.uniform(0.05, 1.0)};
  const double exact = ehvi_2d(belief, front, ref);
  const double mc = ehvi_2d_monte_carlo(belief, front, ref,
                                        normal_samples(200000, GetParam()));
  const double scale = std::max(1.0, exact);
  EXPECT_NEAR(exact, mc, 0.02 * scale)
      << "seed=" << GetParam() << " exact=" << exact << " mc=" << mc;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EhviMonteCarlo,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bofl::bo
