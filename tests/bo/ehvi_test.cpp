#include "bo/ehvi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pareto/hypervolume.hpp"

namespace bofl::bo {
namespace {

std::vector<std::pair<double, double>> normal_samples(std::size_t n,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.emplace_back(rng.normal(), rng.normal());
  }
  return samples;
}

TEST(Ehvi, DegeneratesToHviWhenDeterministic) {
  const std::vector<pareto::Point2> front{{2.0, 2.0}};
  const pareto::Point2 ref{4.0, 4.0};
  const GaussianPair deterministic{1.0, 0.0, 3.0, 0.0};
  EXPECT_NEAR(ehvi_2d(deterministic, front, ref),
              pareto::hypervolume_improvement(front, {{1.0, 3.0}}, ref),
              1e-12);
}

TEST(Ehvi, EmptyFrontEqualsProductOfExpectedSides) {
  // With no front, EHVI = E[(r1-Y1)^+] * E[(r2-Y2)^+].
  const pareto::Point2 ref{1.0, 2.0};
  const GaussianPair belief{0.0, 1.0, 0.0, 1.0};
  const double mc =
      ehvi_2d_monte_carlo(belief, {}, ref, normal_samples(400000, 7));
  EXPECT_NEAR(ehvi_2d(belief, {}, ref), mc, 0.01);
}

TEST(Ehvi, AlwaysNonNegative) {
  const std::vector<pareto::Point2> front{{1.0, 3.0}, {2.0, 1.0}};
  const pareto::Point2 ref{4.0, 4.0};
  // A candidate that is almost surely far outside the box.
  const GaussianPair hopeless{50.0, 0.1, 50.0, 0.1};
  EXPECT_GE(ehvi_2d(hopeless, front, ref), 0.0);
  EXPECT_NEAR(ehvi_2d(hopeless, front, ref), 0.0, 1e-9);
}

TEST(Ehvi, BetterMeanGivesHigherValue) {
  const std::vector<pareto::Point2> front{{1.0, 3.0}, {2.0, 1.0}};
  const pareto::Point2 ref{4.0, 4.0};
  const GaussianPair good{0.5, 0.3, 0.5, 0.3};
  const GaussianPair mediocre{1.8, 0.3, 2.5, 0.3};
  EXPECT_GT(ehvi_2d(good, front, ref), ehvi_2d(mediocre, front, ref));
}

TEST(Ehvi, UncertaintyHelpsDominatedMean) {
  // A candidate whose mean is dominated still has positive EHVI if its
  // uncertainty reaches into the improving region.
  const std::vector<pareto::Point2> front{{1.0, 1.0}};
  const pareto::Point2 ref{4.0, 4.0};
  const GaussianPair certain{2.0, 1e-6, 2.0, 1e-6};
  const GaussianPair uncertain{2.0, 1.0, 2.0, 1.0};
  EXPECT_NEAR(ehvi_2d(certain, front, ref), 0.0, 1e-9);
  EXPECT_GT(ehvi_2d(uncertain, front, ref), 0.01);
}

TEST(Ehvi, IgnoresFrontPointsOutsideReferenceBox) {
  const pareto::Point2 ref{4.0, 4.0};
  const std::vector<pareto::Point2> inside{{1.0, 1.0}};
  const std::vector<pareto::Point2> with_outside{
      {1.0, 1.0}, {5.0, 0.5}, {0.5, 9.0}};
  const GaussianPair belief{1.5, 0.5, 1.5, 0.5};
  // Outside points still dominate area outside the box only... they are
  // clipped, so the EHVI must not change.
  EXPECT_NEAR(ehvi_2d(belief, inside, ref),
              ehvi_2d(belief, with_outside, ref), 1e-12);
}

TEST(Ehvi, RejectsNegativeSigma) {
  EXPECT_THROW(
      (void)ehvi_2d({0.0, -1.0, 0.0, 1.0}, {}, {1.0, 1.0}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CompiledFront: the strip-compiled scorer introduced by the steady-state
// hot-path work.  kExact must be bitwise-equal to the ehvi_2d reference;
// kFast trades libm for the batched polynomial kernel and is pinned to a
// tight relative tolerance instead.
// ---------------------------------------------------------------------------

std::vector<pareto::Point2> random_front(Rng& rng, const pareto::Point2& ref,
                                         std::size_t max_points) {
  std::vector<pareto::Point2> front;
  const std::size_t n = rng.uniform_index(max_points + 1);
  for (std::size_t i = 0; i < n; ++i) {
    // Mostly inside the reference box, occasionally outside to exercise the
    // clipping path the reference applies.
    front.push_back({rng.uniform(0.0, ref.f1 * 1.2),
                     rng.uniform(0.0, ref.f2 * 1.2)});
  }
  return front;
}

GaussianPair random_belief(Rng& rng, const pareto::Point2& ref) {
  // sigma == 0 shows up with probability ~1/4 per axis: degenerate beliefs
  // are common in practice (repeat measurements collapse the posterior).
  const double s1 = rng.uniform() < 0.25 ? 0.0 : rng.uniform(0.05, 1.5);
  const double s2 = rng.uniform() < 0.25 ? 0.0 : rng.uniform(0.05, 1.5);
  return {rng.uniform(-0.5, ref.f1 * 1.1), s1,
          rng.uniform(-0.5, ref.f2 * 1.1), s2};
}

TEST(CompiledFront, ExactModeIsBitwiseEqualToReference) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const pareto::Point2 ref{rng.uniform(2.0, 6.0), rng.uniform(2.0, 6.0)};
    const std::vector<pareto::Point2> front = random_front(rng, ref, 8);
    const CompiledFront compiled(front, ref, EhviMode::kExact);
    for (int b = 0; b < 5; ++b) {
      const GaussianPair belief = random_belief(rng, ref);
      EXPECT_EQ(compiled.ehvi(belief), ehvi_2d(belief, front, ref))
          << "trial " << trial;
    }
  }
}

TEST(CompiledFront, FastModeTracksReferenceTightly) {
  Rng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    const pareto::Point2 ref{rng.uniform(2.0, 6.0), rng.uniform(2.0, 6.0)};
    const std::vector<pareto::Point2> front = random_front(rng, ref, 8);
    const CompiledFront compiled(front, ref, EhviMode::kFast);
    for (int b = 0; b < 5; ++b) {
      const GaussianPair belief = random_belief(rng, ref);
      const double exact = ehvi_2d(belief, front, ref);
      const double fast = compiled.ehvi(belief);
      EXPECT_NEAR(fast, exact, 1e-6 * std::max(1.0, std::abs(exact)))
          << "trial " << trial;
      if (belief.sigma1 == 0.0 && belief.sigma2 == 0.0) {
        // Fully degenerate beliefs take the exact scalar path even in kFast.
        EXPECT_EQ(fast, exact);
      }
    }
  }
}

TEST(CompiledFront, DegenerateCasesMatchReferenceExactly) {
  const pareto::Point2 ref{4.0, 4.0};
  const std::vector<pareto::Point2> front{{1.0, 3.0}, {2.0, 1.0}};
  for (const EhviMode mode : {EhviMode::kExact, EhviMode::kFast}) {
    // Empty front.
    const CompiledFront empty({}, ref, mode);
    const GaussianPair belief{1.0, 0.5, 1.0, 0.5};
    if (mode == EhviMode::kExact) {
      EXPECT_EQ(empty.ehvi(belief), ehvi_2d(belief, {}, ref));
    } else {
      EXPECT_NEAR(empty.ehvi(belief), ehvi_2d(belief, {}, ref), 1e-8);
    }
    const CompiledFront compiled(front, ref, mode);
    // Both sigmas zero: the EHVI is the deterministic HVI, exactly.
    const GaussianPair deterministic{0.5, 0.0, 0.5, 0.0};
    EXPECT_EQ(compiled.ehvi(deterministic),
              ehvi_2d(deterministic, front, ref));
    // Deterministic mean exactly on the reference boundary: zero both ways.
    const GaussianPair on_boundary{ref.f1, 0.0, 1.0, 0.0};
    EXPECT_EQ(compiled.ehvi(on_boundary), 0.0);
    EXPECT_EQ(ehvi_2d(on_boundary, front, ref), 0.0);
    // Mean exactly on a front point with zero sigma: no improvement.
    const GaussianPair on_front{1.0, 0.0, 3.0, 0.0};
    EXPECT_EQ(compiled.ehvi(on_front), ehvi_2d(on_front, front, ref));
  }
}

TEST(CompiledFront, BlockScoringEqualsPerCandidateScoring) {
  Rng rng(303);
  for (const EhviMode mode : {EhviMode::kExact, EhviMode::kFast}) {
    const pareto::Point2 ref{5.0, 5.0};
    const std::vector<pareto::Point2> front = random_front(rng, ref, 6);
    const CompiledFront compiled(front, ref, mode);
    std::vector<GaussianPair> beliefs;
    for (int i = 0; i < 37; ++i) {
      beliefs.push_back(random_belief(rng, ref));
    }
    std::vector<double> block(beliefs.size());
    compiled.ehvi_block(beliefs.data(), beliefs.size(), block.data());
    for (std::size_t i = 0; i < beliefs.size(); ++i) {
      // Block size must never change an element's bits (this is what makes
      // batched scoring safe inside the deterministic parallel engine).
      EXPECT_EQ(block[i], compiled.ehvi(beliefs[i])) << "i = " << i;
    }
  }
}

TEST(CompiledFront, RejectsNegativeSigma) {
  const CompiledFront compiled({}, {1.0, 1.0}, EhviMode::kFast);
  EXPECT_THROW((void)compiled.ehvi({0.0, 1.0, 0.0, -1.0}),
               std::invalid_argument);
}

TEST(CompiledFront, HviMatchesParetoHypervolumeImprovement) {
  Rng rng(404);
  for (int trial = 0; trial < 300; ++trial) {
    const pareto::Point2 ref{rng.uniform(2.0, 6.0), rng.uniform(2.0, 6.0)};
    const std::vector<pareto::Point2> front = random_front(rng, ref, 8);
    const CompiledFront compiled(front, ref, EhviMode::kFast);
    pareto::Point2 y{rng.uniform(-0.5, ref.f1 * 1.2),
                     rng.uniform(-0.5, ref.f2 * 1.2)};
    if (!front.empty() && trial % 3 == 0) {
      // Force duplicates and shared coordinates — the sharp edges of the
      // O(n) incremental derivation.
      y = front[rng.uniform_index(front.size())];
      if (trial % 6 == 0) {
        y.f2 = rng.uniform(0.0, ref.f2);
      }
    }
    EXPECT_EQ(compiled.hvi(y),
              pareto::hypervolume_improvement(front, {y}, ref))
        << "trial " << trial << " y = (" << y.f1 << ", " << y.f2 << ")";
  }
}

TEST(CompiledFront, MonteCarloEstimatorUnchangedByCompilation) {
  // The MC estimator now routes through CompiledFront::hvi; it must return
  // the same bits as the direct hypervolume_improvement loop it replaced.
  const pareto::Point2 ref{4.0, 4.0};
  const std::vector<pareto::Point2> front{{1.0, 3.0}, {2.5, 0.7}};
  const GaussianPair belief{1.5, 0.6, 1.5, 0.8};
  const auto samples = normal_samples(5000, 99);
  double sum = 0.0;
  for (const auto& [z1, z2] : samples) {
    sum += pareto::hypervolume_improvement(
        front,
        {{belief.mu1 + belief.sigma1 * z1, belief.mu2 + belief.sigma2 * z2}},
        ref);
  }
  const double manual = sum / static_cast<double>(samples.size());
  EXPECT_EQ(ehvi_2d_monte_carlo(belief, front, ref, samples), manual);
}

// The heavyweight property: exact EHVI matches Monte-Carlo estimates over
// randomized fronts, beliefs and reference points.
class EhviMonteCarlo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EhviMonteCarlo, MatchesSimulation) {
  Rng rng(GetParam() * 1337 + 5);
  const pareto::Point2 ref{rng.uniform(3.0, 6.0), rng.uniform(3.0, 6.0)};
  std::vector<pareto::Point2> front;
  const std::size_t n = 1 + rng.uniform_index(8);
  for (std::size_t i = 0; i < n; ++i) {
    front.push_back({rng.uniform(0.0, ref.f1), rng.uniform(0.0, ref.f2)});
  }
  const GaussianPair belief{rng.uniform(0.0, ref.f1), rng.uniform(0.05, 1.0),
                            rng.uniform(0.0, ref.f2), rng.uniform(0.05, 1.0)};
  const double exact = ehvi_2d(belief, front, ref);
  const double mc = ehvi_2d_monte_carlo(belief, front, ref,
                                        normal_samples(200000, GetParam()));
  const double scale = std::max(1.0, exact);
  EXPECT_NEAR(exact, mc, 0.02 * scale)
      << "seed=" << GetParam() << " exact=" << exact << " mc=" << mc;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EhviMonteCarlo,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bofl::bo
