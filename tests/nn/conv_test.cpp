#include "nn/conv.hpp"

#include <gtest/gtest.h>

#include "nn/data.hpp"
#include "nn/gradient_check.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace bofl::nn {
namespace {

struct LinearLoss {
  Tensor weights;

  LinearLoss(const std::vector<std::size_t>& shape, Rng& rng)
      : weights(Tensor::randn(shape, rng, 1.0f)) {}

  [[nodiscard]] double value(const Tensor& out) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      sum += static_cast<double>(weights[i]) * out[i];
    }
    return sum;
  }
};

TEST(Conv2d, OutputShapeIsValidConvolution) {
  Rng rng(1);
  Conv2d conv(2, 4, 3, rng);
  const Tensor x = Tensor::randn({2, 2, 8, 6}, rng, 1.0f);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 4, 6, 4}));
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  Rng rng(2);
  Conv2d conv(1, 1, 1, rng);  // 1x1 kernel
  Tensor* w = conv.parameters()[0];
  (*w)[0] = 1.0f;
  conv.parameters()[1]->fill(0.0f);
  Tensor x = Tensor::randn({1, 1, 4, 4}, rng, 1.0f);
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST(Conv2d, KnownSumKernel) {
  Rng rng(3);
  Conv2d conv(1, 1, 2, rng);
  conv.parameters()[0]->fill(1.0f);  // all-ones 2x2 kernel
  conv.parameters()[1]->fill(0.5f);
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 2.0f;
  x[2] = 3.0f;
  x[3] = 4.0f;
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
}

TEST(Conv2d, GradientCheck) {
  Rng rng(4);
  Conv2d conv(2, 3, 2, rng);
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng, 0.8f);
  LinearLoss loss({2, 3, 3, 3}, rng);
  const auto forward_loss = [&]() { return loss.value(conv.forward(x)); };
  conv.zero_gradients();
  (void)conv.forward(x);
  const Tensor grad_input = conv.backward(loss.weights);
  for (std::size_t p = 0; p < conv.parameters().size(); ++p) {
    EXPECT_LT(testing::max_gradient_error(*conv.parameters()[p],
                                          *conv.gradients()[p], forward_loss),
              5e-2)
        << "parameter " << p;
  }
  EXPECT_LT(testing::max_gradient_error(x, grad_input, forward_loss), 5e-2);
}

TEST(Conv2d, RejectsBadShapes) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, rng);
  EXPECT_THROW((void)conv.forward(Tensor({1, 3, 8, 8})),
               std::invalid_argument);  // wrong channel count
  EXPECT_THROW((void)conv.forward(Tensor({1, 2, 2, 2})),
               std::invalid_argument);  // smaller than kernel
}

TEST(MaxPool2d, PicksWindowMaxima) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 4});
  // windows: [1 5 / 2 3] and [0 -1 / 4 2]
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = 0.0f;
  x[3] = -1.0f;
  x[4] = 2.0f;
  x[5] = 3.0f;
  x[6] = 4.0f;
  x[7] = 2.0f;
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
}

TEST(MaxPool2d, RoutesGradientToWinner) {
  MaxPool2d pool;
  Rng rng(6);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng, 1.0f);
  (void)pool.forward(x);
  Tensor g({1, 2, 2, 2}, 1.0f);
  const Tensor gx = pool.backward(g);
  // Exactly one nonzero per window, each equal to 1.
  float total = 0.0f;
  for (std::size_t i = 0; i < gx.size(); ++i) {
    EXPECT_TRUE(gx[i] == 0.0f || gx[i] == 1.0f);
    total += gx[i];
  }
  EXPECT_FLOAT_EQ(total, 8.0f);
}

TEST(MaxPool2d, RejectsOddDimensions) {
  MaxPool2d pool;
  EXPECT_THROW((void)pool.forward(Tensor({1, 1, 3, 4})),
               std::invalid_argument);
}

TEST(Flatten, RoundTripsShapes) {
  Flatten flatten;
  Rng rng(7);
  const Tensor x = Tensor::randn({3, 2, 4, 5}, rng, 1.0f);
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{3, 40}));
  const Tensor back = flatten.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(back[i], y[i]);
  }
}

TEST(CnnTraining, LearnsSpatialBlobClasses) {
  Rng rng(8);
  Sequential model = make_cnn_classifier(1, 9, 9, 6, 2, 4, rng);
  const Dataset train = make_images(320, 1, 9, 9, 4, 111, 0.35);
  const Dataset test = make_images(160, 1, 9, 9, 4, 222, 0.35);

  SgdOptimizer optimizer(0.05, 0.9);
  SoftmaxCrossEntropy loss;
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t b = 0; b + 16 <= train.size(); b += 16) {
      const Dataset mini = train.slice(b, 16);
      model.zero_gradients();
      (void)loss.forward(model.forward(mini.features), mini.labels);
      model.backward(loss.backward());
      optimizer.step(model);
    }
  }
  double accuracy_sum = 0.0;
  std::size_t batches = 0;
  for (std::size_t b = 0; b + 16 <= test.size(); b += 16) {
    const Dataset mini = test.slice(b, 16);
    (void)loss.forward(model.forward(mini.features), mini.labels);
    accuracy_sum += accuracy(loss.predictions(), mini.labels);
    ++batches;
  }
  EXPECT_GT(accuracy_sum / static_cast<double>(batches), 0.8);
}

TEST(CnnFactory, ValidatesGeometry) {
  Rng rng(9);
  // 8x8 with 3x3 kernel -> 6x6 conv output: even, fine.
  (void)make_cnn_classifier(1, 8, 8, 2, 3, 3, rng);
  // 9x9 with 3x3 kernel -> 7x7: odd, must be rejected.
  EXPECT_THROW((void)make_cnn_classifier(1, 9, 9, 2, 3, 3, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_cnn_classifier(1, 2, 2, 2, 3, 3, rng),
               std::invalid_argument);
}

TEST(ImageData, ShapesAndDeterminism) {
  const Dataset a = make_images(10, 2, 6, 6, 3, 77);
  EXPECT_EQ(a.features.shape(), (std::vector<std::size_t>{10, 2, 6, 6}));
  EXPECT_EQ(a.labels.size(), 10u);
  const Dataset b = make_images(10, 2, 6, 6, 3, 77);
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_FLOAT_EQ(a.features[i], b.features[i]);
  }
}

}  // namespace
}  // namespace bofl::nn
