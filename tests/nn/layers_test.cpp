#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "nn/gradient_check.hpp"

namespace bofl::nn {
namespace {

/// Scalar test loss: L = sum_ij w_ij * out_ij for fixed random w, so
/// dL/dout = w exactly.
struct LinearLoss {
  Tensor weights;

  explicit LinearLoss(const std::vector<std::size_t>& shape, Rng& rng)
      : weights(Tensor::randn(shape, rng, 1.0f)) {}

  [[nodiscard]] double value(const Tensor& out) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      sum += static_cast<double>(weights[i]) * out[i];
    }
    return sum;
  }
};

TEST(Dense, ForwardKnownValues) {
  Rng rng(1);
  Dense dense(2, 2, rng);
  // Overwrite parameters with known values.
  Tensor* w = dense.parameters()[0];
  Tensor* b = dense.parameters()[1];
  (*w).at(0, 0) = 1.0f;
  (*w).at(0, 1) = 2.0f;
  (*w).at(1, 0) = 3.0f;
  (*w).at(1, 1) = 4.0f;
  (*b)[0] = 0.5f;
  (*b)[1] = -0.5f;
  Tensor x({1, 2});
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  const Tensor y = dense.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 7.5f);   // 1*1 + 2*3 + 0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 9.5f);   // 1*2 + 2*4 - 0.5
}

TEST(Dense, GradientCheckParametersAndInput) {
  Rng rng(2);
  Dense dense(4, 3, rng);
  Tensor x = Tensor::randn({5, 4}, rng, 1.0f);
  LinearLoss loss({5, 3}, rng);

  const auto forward_loss = [&]() { return loss.value(dense.forward(x)); };

  dense.zero_gradients();
  (void)dense.forward(x);
  const Tensor grad_input = dense.backward(loss.weights);

  // Parameter gradients.
  for (std::size_t p = 0; p < dense.parameters().size(); ++p) {
    const double err = testing::max_gradient_error(
        *dense.parameters()[p], *dense.gradients()[p], forward_loss);
    EXPECT_LT(err, 5e-2) << "parameter " << p;
  }
  // Input gradient.
  const double err =
      testing::max_gradient_error(x, grad_input, forward_loss);
  EXPECT_LT(err, 5e-2);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(3);
  Dense dense(2, 2, rng);
  Tensor x = Tensor::randn({1, 2}, rng, 1.0f);
  Tensor g({1, 2}, 1.0f);
  dense.zero_gradients();
  (void)dense.forward(x);
  (void)dense.backward(g);
  const float once = (*dense.gradients()[0])[0];
  (void)dense.forward(x);
  (void)dense.backward(g);
  EXPECT_FLOAT_EQ((*dense.gradients()[0])[0], 2.0f * once);
  dense.zero_gradients();
  EXPECT_FLOAT_EQ((*dense.gradients()[0])[0], 0.0f);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x({1, 4});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  x[3] = -0.5f;
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, GradientMasksNegativeInputs) {
  ReLU relu;
  Tensor x({1, 3});
  x[0] = -1.0f;
  x[1] = 3.0f;
  x[2] = -2.0f;
  (void)relu.forward(x);
  Tensor g({1, 3}, 1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(Tanh, GradientCheck) {
  Rng rng(4);
  Tanh tanh_layer;
  Tensor x = Tensor::randn({3, 4}, rng, 0.8f);
  LinearLoss loss({3, 4}, rng);
  const auto forward_loss = [&]() {
    return loss.value(tanh_layer.forward(x));
  };
  (void)tanh_layer.forward(x);
  const Tensor grad_input = tanh_layer.backward(loss.weights);
  const double err =
      testing::max_gradient_error(x, grad_input, forward_loss);
  EXPECT_LT(err, 5e-2);
}

TEST(Layers, ShapeMismatchesThrow) {
  Rng rng(5);
  Dense dense(3, 2, rng);
  EXPECT_THROW((void)dense.forward(Tensor({1, 4})), std::invalid_argument);
  (void)dense.forward(Tensor({2, 3}));
  EXPECT_THROW((void)dense.backward(Tensor({2, 3})), std::invalid_argument);
}

}  // namespace
}  // namespace bofl::nn
