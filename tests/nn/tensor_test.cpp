#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace bofl::nn {
namespace {

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.fill(0.25f);
  EXPECT_FLOAT_EQ(t[0], 0.25f);
}

TEST(Tensor, RankThreeIndexing) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  const Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / static_cast<double>(t.size());
  const double var = sq / static_cast<double>(t.size()) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Tensor, AddScaled) {
  Tensor a({2, 2}, 1.0f);
  const Tensor b({2, 2}, 2.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  Tensor c({2, 3});
  EXPECT_THROW(a.add_scaled(c, 1.0f), std::invalid_argument);
}

TEST(Tensor, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Matmul, KnownProduct) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  for (std::size_t i = 0; i < 6; ++i) {
    a[i] = static_cast<float>(i + 1);       // [[1,2,3],[4,5,6]]
    b[i] = static_cast<float>(6 - i);       // [[6,5],[4,3],[2,1]]
  }
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 14.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 56.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 41.0f);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(7);
  const Tensor a = Tensor::randn({4, 3}, rng, 1.0f);
  const Tensor b = Tensor::randn({3, 5}, rng, 1.0f);
  const Tensor c = matmul(a, b);

  // matmul_transposed_b(a, b^T) == a b.
  Tensor bt({5, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      bt.at(j, i) = b.at(i, j);
    }
  }
  const Tensor c2 = matmul_transposed_b(a, bt);
  // matmul_transposed_a(a^T, b) == a b.
  Tensor at({3, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      at.at(j, i) = a.at(i, j);
    }
  }
  const Tensor c3 = matmul_transposed_a(at, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c2[i], c[i], 1e-5);
    EXPECT_NEAR(c3[i], c[i], 1e-5);
  }
}

TEST(Matmul, ShapeMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace bofl::nn
