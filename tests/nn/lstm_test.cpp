#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include "nn/gradient_check.hpp"

namespace bofl::nn {
namespace {

struct LinearLoss {
  Tensor weights;

  LinearLoss(const std::vector<std::size_t>& shape, Rng& rng)
      : weights(Tensor::randn(shape, rng, 1.0f)) {}

  [[nodiscard]] double value(const Tensor& out) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      sum += static_cast<double>(weights[i]) * out[i];
    }
    return sum;
  }
};

TEST(Lstm, OutputShape) {
  Rng rng(1);
  LstmCell lstm(3, 5, rng);
  const Tensor x = Tensor::randn({2, 4, 3}, rng, 1.0f);
  const Tensor h = lstm.forward(x);
  EXPECT_EQ(h.shape(), (std::vector<std::size_t>{2, 5}));
}

TEST(Lstm, RejectsWrongRank) {
  Rng rng(2);
  LstmCell lstm(3, 5, rng);
  EXPECT_THROW((void)lstm.forward(Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW((void)lstm.forward(Tensor({2, 4, 7})), std::invalid_argument);
}

TEST(Lstm, BackwardBeforeForwardThrows) {
  Rng rng(3);
  LstmCell lstm(2, 3, rng);
  EXPECT_THROW((void)lstm.backward(Tensor({1, 3})), std::invalid_argument);
}

TEST(Lstm, ForgetGateBiasInitialized) {
  Rng rng(4);
  LstmCell lstm(2, 3, rng);
  const Tensor* bias = lstm.parameters()[1];
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_FLOAT_EQ((*bias)[3 + h], 1.0f);  // forget block is the 2nd
  }
}

TEST(Lstm, GradientCheckWeightsBiasInput) {
  Rng rng(5);
  LstmCell lstm(2, 3, rng);
  Tensor x = Tensor::randn({2, 3, 2}, rng, 0.7f);
  LinearLoss loss({2, 3}, rng);
  const auto forward_loss = [&]() { return loss.value(lstm.forward(x)); };

  lstm.zero_gradients();
  (void)lstm.forward(x);
  const Tensor grad_input = lstm.backward(loss.weights);

  const double weight_err = testing::max_gradient_error(
      *lstm.parameters()[0], *lstm.gradients()[0], forward_loss, 2e-3f);
  EXPECT_LT(weight_err, 6e-2);
  const double bias_err = testing::max_gradient_error(
      *lstm.parameters()[1], *lstm.gradients()[1], forward_loss, 2e-3f);
  EXPECT_LT(bias_err, 6e-2);
  const double input_err =
      testing::max_gradient_error(x, grad_input, forward_loss, 2e-3f);
  EXPECT_LT(input_err, 6e-2);
}

TEST(Lstm, LongerSequencesChangeOutput) {
  Rng rng(6);
  LstmCell lstm(2, 4, rng);
  Tensor x3 = Tensor::randn({1, 3, 2}, rng, 1.0f);
  // Extend with one more step: the final hidden state must differ.
  Tensor x4({1, 4, 2});
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t d = 0; d < 2; ++d) {
      x4.at(0, t, d) = x3.at(0, t, d);
    }
  }
  x4.at(0, 3, 0) = 2.0f;
  x4.at(0, 3, 1) = -2.0f;
  const Tensor h3 = lstm.forward(x3);
  const Tensor h4 = lstm.forward(x4);
  double diff = 0.0;
  for (std::size_t i = 0; i < h3.size(); ++i) {
    diff += std::abs(h3[i] - h4[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(Lstm, StateIsBoundedByTanh) {
  Rng rng(7);
  LstmCell lstm(2, 4, rng);
  const Tensor x = Tensor::randn({3, 10, 2}, rng, 5.0f);  // wild inputs
  const Tensor h = lstm.forward(x);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_LE(std::abs(h[i]), 1.0f + 1e-6f);  // |o * tanh(c)| <= 1
  }
}

}  // namespace
}  // namespace bofl::nn
