// Shared numerical-gradient checking helper for layer tests.
#pragma once

#include <cmath>
#include <functional>

#include "nn/tensor.hpp"

namespace bofl::nn::testing {

/// Central-difference gradient of scalar-valued `loss` w.r.t. `target`,
/// compared against `analytic` element-wise.  Returns the max abs error.
inline double max_gradient_error(
    Tensor& target, const Tensor& analytic,
    const std::function<double()>& loss, float epsilon = 1e-3f) {
  double worst = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    const float saved = target[i];
    target[i] = saved + epsilon;
    const double up = loss();
    target[i] = saved - epsilon;
    const double down = loss();
    target[i] = saved;
    const double numeric = (up - down) / (2.0 * epsilon);
    worst = std::max(worst, std::abs(numeric - analytic[i]));
  }
  return worst;
}

}  // namespace bofl::nn::testing
