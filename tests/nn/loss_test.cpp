#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradient_check.hpp"

namespace bofl::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4}, 0.0f);
  const double value = loss.forward(logits, {0, 3});
  EXPECT_NEAR(value, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 0) = 10.0f;
  logits.at(0, 1) = 0.0f;
  logits.at(0, 2) = 0.0f;
  EXPECT_LT(loss.forward(logits, {0}), 1e-3);
  EXPECT_GT(loss.forward(logits, {1}), 5.0);
}

TEST(SoftmaxCrossEntropy, ShiftInvariance) {
  SoftmaxCrossEntropy loss;
  Tensor a({1, 3});
  a.at(0, 0) = 1.0f;
  a.at(0, 1) = 2.0f;
  a.at(0, 2) = 3.0f;
  Tensor b = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] += 100.0f;
  }
  EXPECT_NEAR(loss.forward(a, {2}), loss.forward(b, {2}), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientCheck) {
  Rng rng(9);
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::randn({4, 5}, rng, 1.0f);
  const std::vector<std::int64_t> labels{0, 2, 4, 1};
  const auto forward_loss = [&]() { return loss.forward(logits, labels); };
  (void)forward_loss();
  const Tensor analytic = loss.backward();
  const double err =
      testing::max_gradient_error(logits, analytic, forward_loss);
  EXPECT_LT(err, 1e-2);
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  Rng rng(10);
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::randn({3, 4}, rng, 1.0f);
  (void)loss.forward(logits, {1, 2, 0});
  const Tensor grad = loss.backward();
  for (std::size_t r = 0; r < 3; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      row_sum += grad.at(r, c);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, PredictionsAreArgmax) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  logits.at(0, 1) = 5.0f;
  logits.at(1, 2) = 3.0f;
  (void)loss.forward(logits, {0, 0});
  EXPECT_EQ(loss.predictions(), (std::vector<std::int64_t>{1, 2}));
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  EXPECT_THROW((void)loss.forward(logits, {3}), std::invalid_argument);
  EXPECT_THROW((void)loss.forward(logits, {0, 1}), std::invalid_argument);
}

TEST(Accuracy, CountsMatches) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({0}, {1}), 0.0);
  EXPECT_THROW((void)accuracy({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace bofl::nn
