// End-to-end learning tests for the nn substrate: models must actually fit
// the synthetic datasets they were built for.
#include <gtest/gtest.h>

#include "nn/data.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace bofl::nn {
namespace {

double train_epochs(Sequential& model, const Dataset& data,
                    std::int64_t batch, int epochs, double lr) {
  SgdOptimizer optimizer(lr, 0.9);
  SoftmaxCrossEntropy loss;
  double last_epoch_loss = 0.0;
  const std::size_t batches = data.size() / static_cast<std::size_t>(batch);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    last_epoch_loss = 0.0;
    for (std::size_t b = 0; b < batches; ++b) {
      const Dataset mini = data.slice(b * batch, batch);
      model.zero_gradients();
      const Tensor logits = model.forward(mini.features);
      last_epoch_loss += loss.forward(logits, mini.labels);
      model.backward(loss.backward());
      optimizer.step(model);
    }
    last_epoch_loss /= static_cast<double>(batches);
  }
  return last_epoch_loss;
}

double eval_accuracy(Sequential& model, const Dataset& data,
                     std::int64_t batch) {
  SoftmaxCrossEntropy loss;
  double acc = 0.0;
  const std::size_t batches = data.size() / static_cast<std::size_t>(batch);
  for (std::size_t b = 0; b < batches; ++b) {
    const Dataset mini = data.slice(b * batch, batch);
    (void)loss.forward(model.forward(mini.features), mini.labels);
    acc += accuracy(loss.predictions(), mini.labels);
  }
  return acc / static_cast<double>(batches);
}

TEST(Training, MlpLearnsGaussianBlobs) {
  Rng rng(17);
  Sequential model = make_mlp_classifier(8, 24, 2, 5, rng);
  const Dataset train = make_classification(400, 8, 5, 1001, 0.5);
  const Dataset test = make_classification(200, 8, 5, 2002, 0.5);

  const double before = eval_accuracy(model, test, 20);
  const double final_loss = train_epochs(model, train, 20, 25, 0.05);
  const double after = eval_accuracy(model, test, 20);

  EXPECT_LT(final_loss, 0.6);
  EXPECT_GT(after, before + 0.3);
  EXPECT_GT(after, 0.8);
}

TEST(Training, LstmLearnsSequenceClasses) {
  Rng rng(19);
  Sequential model = make_lstm_classifier(4, 12, 3, rng);
  const Dataset train = make_sequences(240, 8, 4, 3, 3003, 0.4);
  const Dataset test = make_sequences(120, 8, 4, 3, 4004, 0.4);

  (void)train_epochs(model, train, 12, 20, 0.05);
  EXPECT_GT(eval_accuracy(model, test, 12), 0.7);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  Rng rng(23);
  Sequential model = make_mlp_classifier(6, 16, 1, 4, rng);
  const Dataset train = make_classification(200, 6, 4, 5005, 0.6);
  const double first = train_epochs(model, train, 20, 1, 0.05);
  const double later = train_epochs(model, train, 20, 10, 0.05);
  EXPECT_LT(later, first);
}

TEST(Training, FlatParameterRoundTrip) {
  Rng rng(29);
  Sequential a = make_mlp_classifier(5, 10, 2, 3, rng);
  Rng rng2(31);
  Sequential b = make_mlp_classifier(5, 10, 2, 3, rng2);
  const std::vector<float> params = a.get_flat_parameters();
  EXPECT_EQ(params.size(), a.num_parameters());
  b.set_flat_parameters(params);
  EXPECT_EQ(b.get_flat_parameters(), params);
  // Same parameters -> identical outputs.
  Rng rng3(37);
  const Tensor x = Tensor::randn({4, 5}, rng3, 1.0f);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(Training, SetFlatParametersValidatesLength) {
  Rng rng(41);
  Sequential model = make_mlp_classifier(5, 10, 1, 3, rng);
  std::vector<float> tooShort(model.num_parameters() - 1, 0.0f);
  EXPECT_THROW(model.set_flat_parameters(tooShort), std::invalid_argument);
  std::vector<float> tooLong(model.num_parameters() + 1, 0.0f);
  EXPECT_THROW(model.set_flat_parameters(tooLong), std::invalid_argument);
}

TEST(Sgd, MomentumAcceleratesOnQuadratic) {
  // Minimal check of the optimizer math on a single Dense layer pulled
  // toward zero output: with momentum the parameter norm shrinks faster.
  const auto run = [](double momentum) {
    Rng rng(43);
    Sequential model;
    model.add(std::make_unique<Dense>(2, 2, rng));
    SgdOptimizer optimizer(0.05, momentum);
    Rng data_rng(47);
    const Tensor x = Tensor::randn({8, 2}, data_rng, 1.0f);
    SoftmaxCrossEntropy loss;
    for (int step = 0; step < 30; ++step) {
      model.zero_gradients();
      const Tensor y = model.forward(x);
      (void)loss.forward(y, std::vector<std::int64_t>(8, 0));
      model.backward(loss.backward());
      optimizer.step(model);
    }
    const Tensor final_logits = model.forward(x);
    double class0_margin = 0.0;
    for (std::size_t r = 0; r < 8; ++r) {
      class0_margin += final_logits.at(r, 0) - final_logits.at(r, 1);
    }
    return class0_margin;
  };
  EXPECT_GT(run(0.9), run(0.0));
}

TEST(Sgd, RejectsInvalidHyperparameters) {
  EXPECT_THROW(SgdOptimizer(0.0), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer(0.1, -0.1), std::invalid_argument);
}

TEST(Data, SliceExtractsRows) {
  const Dataset ds = make_classification(20, 4, 3, 7007);
  const Dataset slice = ds.slice(5, 10);
  EXPECT_EQ(slice.size(), 10u);
  EXPECT_EQ(slice.features.dim(0), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(slice.labels[i], ds.labels[5 + i]);
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(slice.features.at(i, d), ds.features.at(5 + i, d));
    }
  }
  EXPECT_THROW((void)ds.slice(15, 10), std::invalid_argument);
}

TEST(Data, ShardsShareConcept) {
  // Two shards from different seeds draw from the same class prototypes: a
  // model trained on shard A transfers to shard B.
  Rng rng(53);
  Sequential model = make_mlp_classifier(8, 24, 2, 5, rng);
  const Dataset shard_a = make_classification(400, 8, 5, 111, 0.5);
  const Dataset shard_b = make_classification(200, 8, 5, 222, 0.5);
  (void)train_epochs(model, shard_a, 20, 20, 0.05);
  EXPECT_GT(eval_accuracy(model, shard_b, 20), 0.75);
}

TEST(Data, SkewBiasesLabelMarginal) {
  const Dataset skewed = make_classification(600, 4, 4, 888, 0.5, 5.0);
  std::vector<int> counts(4, 0);
  for (const auto label : skewed.labels) {
    counts[static_cast<std::size_t>(label)]++;
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 300);  // one class clearly dominates
}

TEST(Data, SequencesHaveRequestedShape) {
  const Dataset ds = make_sequences(10, 6, 3, 2, 999);
  EXPECT_EQ(ds.features.shape(), (std::vector<std::size_t>{10, 6, 3}));
  EXPECT_EQ(ds.labels.size(), 10u);
}

}  // namespace
}  // namespace bofl::nn
