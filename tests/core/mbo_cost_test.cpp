#include "core/mbo_cost.hpp"

#include <gtest/gtest.h>

namespace bofl::core {
namespace {

TEST(MboCost, LatencyGrowsWithInputs) {
  const MboCostModel model{5.0, 0.02, 0.1, 9.0};
  EXPECT_DOUBLE_EQ(model.latency(0, 0).value(), 5.0);
  EXPECT_DOUBLE_EQ(model.latency(50, 10).value(), 5.0 + 1.0 + 1.0);
  EXPECT_LT(model.latency(10, 2).value(), model.latency(100, 2).value());
}

TEST(MboCost, EnergyIsPowerTimesLatency) {
  const MboCostModel model{5.0, 0.0, 0.0, 10.0};
  EXPECT_DOUBLE_EQ(model.energy(0, 0).value(), 50.0);
}

TEST(MboCost, DeviceDefaultsMatchFigure13) {
  // Fig. 13a: updates take ~6 s on AGX, ~8.5 s on TX2, 50-70 J each.
  const MboCostModel agx = mbo_cost_for_device("jetson-agx");
  const MboCostModel tx2 = mbo_cost_for_device("jetson-tx2");
  const double agx_latency = agx.latency(40, 8).value();
  const double tx2_latency = tx2.latency(40, 8).value();
  EXPECT_GT(tx2_latency, agx_latency);
  EXPECT_NEAR(agx_latency, 6.4, 1.0);
  EXPECT_NEAR(tx2_latency, 9.4, 1.5);
  EXPECT_GT(agx.energy(40, 8).value(), 40.0);
  EXPECT_LT(agx.energy(40, 8).value(), 80.0);
}

TEST(MboCost, FleetDeviceClassesAreCalibrated) {
  // The fleet-scenario calibration points: the phone's weak SoC makes an
  // MBO update slower than either Jetson but far cheaper in watts; the
  // edge server turns updates around fastest at tens of watts.
  const MboCostModel agx = mbo_cost_for_device("jetson-agx");
  const MboCostModel phone = mbo_cost_for_device("pixel-phone");
  const MboCostModel server = mbo_cost_for_device("edge-server");
  EXPECT_GT(phone.latency(40, 8).value(), agx.latency(40, 8).value());
  EXPECT_LT(server.latency(40, 8).value(), agx.latency(40, 8).value());
  EXPECT_LT(phone.power_watts, agx.power_watts);
  EXPECT_GT(server.power_watts, 10.0);
  // Despite its power envelope the server's energy per update stays the
  // same order as the Jetsons' — it finishes fast.
  EXPECT_LT(server.energy(40, 8).value(), 4.0 * agx.energy(40, 8).value());
  // And the phone's per-update energy is the cheapest in the fleet.
  EXPECT_LT(phone.energy(40, 8).value(), agx.energy(40, 8).value());
}

TEST(MboCost, UnknownDeviceRejected) {
  EXPECT_THROW((void)mbo_cost_for_device("abacus"), std::invalid_argument);
}

}  // namespace
}  // namespace bofl::core
