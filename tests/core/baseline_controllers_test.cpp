#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/linear_controller.hpp"
#include "core/oracle_controller.hpp"
#include "core/performant_controller.hpp"

namespace bofl::core {
namespace {

std::vector<RoundSpec> short_rounds(const device::DeviceModel& model,
                                    const FlTaskSpec& task, double ratio,
                                    std::int64_t rounds,
                                    std::uint64_t seed = 3) {
  FlTaskSpec copy = task;
  copy.num_rounds = rounds;
  return make_rounds(copy, model, ratio, seed);
}

TEST(Performant, AlwaysRunsXmax) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  PerformantController controller(agx, task.profile, {}, 1);
  const auto rounds = short_rounds(agx, task, 2.0, 5);
  const TaskResult result = run_task(controller, rounds);
  for (const RoundTrace& trace : result.rounds) {
    ASSERT_EQ(trace.runs.size(), 1u);
    EXPECT_EQ(trace.runs[0].config, agx.space().max_config());
    EXPECT_EQ(trace.runs[0].jobs, task.jobs_per_round());
    EXPECT_TRUE(trace.deadline_met());
  }
}

TEST(Performant, EnergyMatchesModel) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  PerformantController controller(agx, task.profile, {}, 1);
  const auto rounds = short_rounds(agx, task, 2.0, 3);
  const TaskResult result = run_task(controller, rounds);
  const double per_round =
      agx.energy(task.profile, agx.space().max_config()).value() *
      static_cast<double>(task.jobs_per_round());
  for (const RoundTrace& trace : result.rounds) {
    EXPECT_NEAR(trace.energy().value(), per_round, 1e-6);
  }
}

TEST(Oracle, BeatsPerformantAndMeetsDeadlines) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = imagenet_resnet50_task(agx.name());
  const auto rounds = short_rounds(agx, task, 2.5, 10);
  PerformantController performant(agx, task.profile, {}, 1);
  OracleController oracle(agx, task.profile, {}, 2);
  const TaskResult rp = run_task(performant, rounds);
  const TaskResult ro = run_task(oracle, rounds);
  EXPECT_TRUE(ro.all_deadlines_met());
  EXPECT_LT(total_energy(ro).value(), total_energy(rp).value());
  EXPECT_GT(improvement_vs(ro, rp), 0.1);
}

TEST(Oracle, ParetoProfilesAreMutuallyNonDominated) {
  const device::DeviceModel tx2 = device::jetson_tx2();
  const auto profiles =
      true_pareto_profiles(tx2, device::lstm_profile());
  ASSERT_GT(profiles.size(), 5u);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = 0; j < profiles.size(); ++j) {
      if (i == j) {
        continue;
      }
      const bool dominates =
          profiles[j].energy_per_job <= profiles[i].energy_per_job &&
          profiles[j].latency_per_job <= profiles[i].latency_per_job &&
          (profiles[j].energy_per_job < profiles[i].energy_per_job ||
           profiles[j].latency_per_job < profiles[i].latency_per_job);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Oracle, ExactDeadlineRoundsAreStillFeasible) {
  // Deadline == T_min forces the all-x_max schedule.
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  OracleController oracle(agx, task.profile, {}, 2);
  const Seconds t_min =
      agx.round_t_min(task.profile, task.jobs_per_round());
  const RoundTrace trace =
      oracle.run_round({0, task.jobs_per_round(), t_min});
  EXPECT_TRUE(trace.deadline_met());
  EXPECT_EQ(trace.jobs(), task.jobs_per_round());
}

TEST(Oracle, ImpossibleDeadlineDegradesToXmax) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  OracleController oracle(agx, task.profile, {}, 2);
  const RoundTrace trace =
      oracle.run_round({0, task.jobs_per_round(), Seconds{1.0}});
  // All jobs still execute (FL semantics: training always completes; the
  // update is just late), at maximum speed.
  ASSERT_EQ(trace.runs.size(), 1u);
  EXPECT_EQ(trace.runs[0].config, agx.space().max_config());
  EXPECT_FALSE(trace.deadline_met());
}

TEST(Oracle, LooserDeadlinesNeverCostMoreEnergy) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = imdb_lstm_task(agx.name());
  OracleController oracle(agx, task.profile, {}, 2);
  const Seconds t_min =
      agx.round_t_min(task.profile, task.jobs_per_round());
  double previous = std::numeric_limits<double>::infinity();
  std::int64_t index = 0;
  for (double ratio = 1.0; ratio <= 4.01; ratio += 0.5) {
    const RoundTrace trace = oracle.run_round(
        {index++, task.jobs_per_round(), t_min * ratio});
    EXPECT_LE(trace.energy().value(), previous + 1e-6) << "ratio " << ratio;
    previous = trace.energy().value();
  }
}

TEST(LinearModel, MeetsDeadlinesViaGuardian) {
  const device::DeviceModel agx = device::jetson_agx();
  // The GPU-bound ViT breaks the linear CPU-only latency assumption.
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  LinearModelController controller(agx, task.profile, {}, 5);
  const auto rounds = short_rounds(agx, task, 2.0, 8);
  const TaskResult result = run_task(controller, rounds);
  EXPECT_TRUE(result.all_deadlines_met());
}

TEST(LinearModel, SavesLessThanOracleOnGpuBoundModel) {
  // The ablation's point: the 1-D linear model leaves most of the energy
  // savings on the table for GPU-bound workloads.
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = short_rounds(agx, task, 3.0, 10);
  LinearModelController linear(agx, task.profile, {}, 5);
  OracleController oracle(agx, task.profile, {}, 6);
  PerformantController performant(agx, task.profile, {}, 7);
  const TaskResult rl = run_task(linear, rounds);
  const TaskResult ro = run_task(oracle, rounds);
  const TaskResult rp = run_task(performant, rounds);
  EXPECT_GT(total_energy(rl).value(), total_energy(ro).value());
  const double linear_improvement = improvement_vs(rl, rp);
  const double oracle_improvement = improvement_vs(ro, rp);
  EXPECT_LT(linear_improvement, 0.6 * oracle_improvement);
}

TEST(Harness, MetricsAreConsistent) {
  TaskResult subject;
  subject.rounds.push_back({});
  subject.rounds[0].runs.push_back(
      {{0, 0, 0}, 1, Seconds{1.0}, Joules{80.0}, false});
  TaskResult baseline;
  baseline.rounds.push_back({});
  baseline.rounds[0].runs.push_back(
      {{0, 0, 0}, 1, Seconds{1.0}, Joules{100.0}, false});
  EXPECT_DOUBLE_EQ(improvement_vs(subject, baseline), 0.2);
  EXPECT_DOUBLE_EQ(regret_vs(baseline, subject), 0.25);
}

}  // namespace
}  // namespace bofl::core
