#include "core/bofl_controller.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/harness.hpp"
#include "core/oracle_controller.hpp"
#include "core/performant_controller.hpp"
#include "pareto/hypervolume.hpp"

namespace bofl::core {
namespace {

BoflOptions fast_options(const std::string& device_name) {
  BoflOptions options;
  options.mbo_cost = mbo_cost_for_device(device_name);
  // Lighter hyperparameter fitting keeps the suite quick without changing
  // behaviourally relevant settings.
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  return options;
}

std::vector<RoundSpec> rounds_for(const device::DeviceModel& model,
                                  const FlTaskSpec& task, double ratio,
                                  std::int64_t rounds, std::uint64_t seed) {
  FlTaskSpec copy = task;
  copy.num_rounds = rounds;
  return make_rounds(copy, model, ratio, seed);
}

TEST(BoflController, PhasesProgressInOrder) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflController controller(agx, task.profile, {},
                            fast_options(agx.name()), 11);
  const auto rounds = rounds_for(agx, task, 2.0, 40, 21);
  const TaskResult result = run_task(controller, rounds);
  // Phase indices must be non-decreasing over rounds.
  int previous = 1;
  for (const RoundTrace& trace : result.rounds) {
    const int phase = static_cast<int>(trace.phase);
    EXPECT_GE(phase, previous);
    previous = phase;
  }
  EXPECT_GT(result.rounds_in_phase(Phase::kSafeRandomExploration), 0);
  EXPECT_GT(result.rounds_in_phase(Phase::kParetoConstruction), 0);
  EXPECT_GT(result.rounds_in_phase(Phase::kExploitation), 20);
  EXPECT_EQ(controller.phase(), Phase::kExploitation);
}

TEST(BoflController, XmaxIsMeasuredFirst) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflController controller(agx, task.profile, {},
                            fast_options(agx.name()), 13);
  const auto rounds = rounds_for(agx, task, 2.0, 1, 23);
  const RoundTrace trace = controller.run_round(rounds[0]);
  ASSERT_FALSE(trace.explored_flat_ids.empty());
  EXPECT_EQ(trace.explored_flat_ids[0],
            agx.space().to_flat(agx.space().max_config()));
  ASSERT_FALSE(trace.runs.empty());
  EXPECT_EQ(trace.runs[0].config, agx.space().max_config());
}

TEST(BoflController, EveryRoundRunsAllJobs) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = imdb_lstm_task(agx.name());
  BoflController controller(agx, task.profile, {},
                            fast_options(agx.name()), 17);
  const auto rounds = rounds_for(agx, task, 2.5, 25, 29);
  const TaskResult result = run_task(controller, rounds);
  for (const RoundTrace& trace : result.rounds) {
    EXPECT_EQ(trace.jobs(), task.jobs_per_round());
  }
}

TEST(BoflController, BeatsPerformantOverTask) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = rounds_for(agx, task, 2.0, 40, 31);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 19);
  PerformantController performant(agx, task.profile, {}, 20);
  const TaskResult rb = run_task(bofl, rounds);
  const TaskResult rp = run_task(performant, rounds);
  EXPECT_GT(improvement_vs(rb, rp), 0.10);
}

TEST(BoflController, SmallRegretVsOracleInSteadyState) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = rounds_for(agx, task, 3.0, 40, 37);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 23);
  OracleController oracle(agx, task.profile, {}, 24);
  const TaskResult rb = run_task(bofl, rounds);
  const TaskResult ro = run_task(oracle, rounds);
  // Over exploitation rounds only, BoFL must be within ~8 % of the oracle.
  double bofl_energy = 0.0;
  double oracle_energy = 0.0;
  for (std::size_t i = 0; i < rb.rounds.size(); ++i) {
    if (rb.rounds[i].phase == Phase::kExploitation) {
      bofl_energy += rb.rounds[i].energy().value();
      oracle_energy += ro.rounds[i].energy().value();
    }
  }
  ASSERT_GT(oracle_energy, 0.0);
  EXPECT_LT(bofl_energy / oracle_energy - 1.0, 0.08);
}

TEST(BoflController, ParetoFrontCoversTrueFrontHypervolume) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = rounds_for(agx, task, 2.0, 20, 41);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 29);
  (void)run_task(bofl, rounds);

  // Compare hypervolume of the constructed front vs the true front, using
  // the true objective values of the identified configurations.
  std::vector<pareto::Point2> constructed;
  for (std::size_t flat : bofl.pareto_flat_ids()) {
    const device::DvfsConfig config = agx.space().from_flat(flat);
    constructed.push_back({agx.energy(task.profile, config).value(),
                           agx.latency(task.profile, config).value()});
  }
  std::vector<pareto::Point2> truth;
  for (const auto& p : true_pareto_profiles(agx, task.profile)) {
    truth.push_back({p.energy_per_job, p.latency_per_job});
  }
  const pareto::Point2 ref{12.0, 2.5};
  const double hv_constructed = pareto::hypervolume_2d(constructed, ref);
  const double hv_truth = pareto::hypervolume_2d(truth, ref);
  EXPECT_GT(hv_constructed, 0.93 * hv_truth);
}

TEST(BoflController, ExplorationStaysNearBudget) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = rounds_for(agx, task, 2.0, 30, 43);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 31);
  (void)run_task(bofl, rounds);
  const double explored =
      static_cast<double>(bofl.engine().num_observed_candidates());
  const double space = static_cast<double>(agx.space().size());
  // Paper §6.3: the front is built after exploring ~3 % of the space; the
  // controller must not blow past a small multiple of that.
  EXPECT_GE(explored / space, 0.01);
  EXPECT_LE(explored / space, 0.12);
}

TEST(BoflController, MboCostOnlyChargedInParetoPhase) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = rounds_for(agx, task, 2.0, 30, 47);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 37);
  const TaskResult result = run_task(bofl, rounds);
  for (const RoundTrace& trace : result.rounds) {
    if (trace.phase == Phase::kParetoConstruction) {
      EXPECT_GT(trace.mbo_energy.value(), 0.0);
      EXPECT_GT(trace.mbo_latency.value(), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(trace.mbo_energy.value(), 0.0);
    }
  }
  // Fig. 13b reports 0.4-0.7 % over 100 rounds; over this shortened
  // 30-round task the fixed exploration cost amortizes less, so allow 2.5 %.
  EXPECT_LT(result.total_mbo_energy().value(),
            0.025 * result.total_training_energy().value());
}

TEST(BoflController, ObservedProfilesAggregateAcrossRounds) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = rounds_for(agx, task, 2.0, 12, 53);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 41);
  (void)run_task(bofl, rounds);
  const auto profiles = bofl.observed_profiles();
  EXPECT_GE(profiles.size(), 10u);
  std::set<std::size_t> ids;
  for (const auto& p : profiles) {
    EXPECT_GT(p.energy_per_job, 0.0);
    EXPECT_GT(p.latency_per_job, 0.0);
    EXPECT_TRUE(ids.insert(p.config_id).second) << "duplicate profile";
  }
}

TEST(BoflController, RejectsEmptyRound) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 43);
  EXPECT_THROW((void)bofl.run_round({0, 0, Seconds{10.0}}),
               std::invalid_argument);
}

// The safety property (§4.2): across seeds, tasks and deadline ratios, no
// round with a feasible deadline is ever missed.
struct SafetyCase {
  std::string task_name;
  double ratio;
  std::uint64_t seed;
  double tau = 5.0;
};

class BoflSafety : public ::testing::TestWithParam<SafetyCase> {};

TEST_P(BoflSafety, NeverMissesFeasibleDeadlines) {
  const SafetyCase param = GetParam();
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  for (const FlTaskSpec& t : paper_tasks(agx.name())) {
    if (t.name == param.task_name) {
      task = t;
    }
  }
  const auto rounds = rounds_for(agx, task, param.ratio, 30, param.seed);
  BoflOptions options = fast_options(agx.name());
  options.tau = Seconds{param.tau};
  BoflController bofl(agx, task.profile, {}, options, param.seed * 3 + 1);
  const TaskResult result = run_task(bofl, rounds);
  for (const RoundTrace& trace : result.rounds) {
    EXPECT_TRUE(trace.deadline_met())
        << task.name << " ratio=" << param.ratio << " seed=" << param.seed
        << " round=" << trace.index << " over by "
        << trace.elapsed().value() - trace.deadline.value() << "s";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoflSafety,
    ::testing::Values(SafetyCase{"CIFAR10-ViT", 2.0, 1},
                      SafetyCase{"CIFAR10-ViT", 4.0, 2},
                      SafetyCase{"ImageNet-ResNet50", 2.0, 3},
                      SafetyCase{"ImageNet-ResNet50", 3.0, 4},
                      SafetyCase{"IMDB-LSTM", 2.0, 5},
                      SafetyCase{"IMDB-LSTM", 3.5, 6},
                      SafetyCase{"CIFAR10-ViT", 2.5, 7},
                      SafetyCase{"IMDB-LSTM", 2.0, 8},
                      // Short measurement windows amplify noise; the
                      // closed-loop exploitation must stay safe anyway.
                      SafetyCase{"CIFAR10-ViT", 2.0, 9, 2.5},
                      SafetyCase{"CIFAR10-ViT", 2.0, 10, 1.0},
                      SafetyCase{"ImageNet-ResNet50", 2.0, 11, 2.5}),
    [](const auto& info) {
      std::string name = info.param.task_name + "_r" +
                         std::to_string(static_cast<int>(info.param.ratio * 10)) +
                         "_s" + std::to_string(info.param.seed) + "_t" +
                         std::to_string(static_cast<int>(info.param.tau * 10));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace bofl::core
