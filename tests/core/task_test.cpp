#include "core/task.hpp"

#include <gtest/gtest.h>

namespace bofl::core {
namespace {

TEST(TaskSpecs, Table2Parameters) {
  const FlTaskSpec vit = cifar10_vit_task("jetson-agx");
  EXPECT_EQ(vit.minibatch_size, 32);
  EXPECT_EQ(vit.epochs, 5);
  EXPECT_EQ(vit.num_minibatches, 40);
  EXPECT_EQ(vit.jobs_per_round(), 200);
  EXPECT_EQ(vit.num_rounds, 100);

  const FlTaskSpec resnet = imagenet_resnet50_task("jetson-agx");
  EXPECT_EQ(resnet.minibatch_size, 8);
  EXPECT_EQ(resnet.epochs, 2);
  EXPECT_EQ(resnet.num_minibatches, 90);
  EXPECT_EQ(resnet.jobs_per_round(), 180);

  const FlTaskSpec lstm = imdb_lstm_task("jetson-agx");
  EXPECT_EQ(lstm.epochs, 4);
  EXPECT_EQ(lstm.num_minibatches, 40);
  EXPECT_EQ(lstm.jobs_per_round(), 160);
}

TEST(TaskSpecs, Tx2ShardSizes) {
  EXPECT_EQ(cifar10_vit_task("jetson-tx2").num_minibatches, 15);
  EXPECT_EQ(imagenet_resnet50_task("jetson-tx2").num_minibatches, 30);
  EXPECT_EQ(imdb_lstm_task("jetson-tx2").num_minibatches, 20);
}

TEST(TaskSpecs, UnknownDeviceRejected) {
  EXPECT_THROW((void)cifar10_vit_task("toaster"), std::invalid_argument);
}

TEST(TaskSpecs, PaperTasksInOrder) {
  const auto tasks = paper_tasks("jetson-agx");
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].name, "CIFAR10-ViT");
  EXPECT_EQ(tasks[1].name, "ImageNet-ResNet50");
  EXPECT_EQ(tasks[2].name, "IMDB-LSTM");
}

TEST(DeadlineGenerator, SamplesWithinRange) {
  DeadlineGenerator gen(Seconds{10.0}, 3.0, 42);
  for (int i = 0; i < 1000; ++i) {
    const Seconds d = gen.next();
    EXPECT_GE(d.value(), 10.0);
    EXPECT_LE(d.value(), 30.0);
  }
}

TEST(DeadlineGenerator, RatioOneIsDegenerate) {
  DeadlineGenerator gen(Seconds{10.0}, 1.0, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(gen.next().value(), 10.0);
  }
}

TEST(DeadlineGenerator, DeterministicBySeed) {
  DeadlineGenerator a(Seconds{10.0}, 2.0, 7);
  DeadlineGenerator b(Seconds{10.0}, 2.0, 7);
  const auto da = a.generate(20);
  const auto db = b.generate(20);
  EXPECT_EQ(da.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(da[i].value(), db[i].value());
  }
}

TEST(DeadlineGenerator, RejectsInvalidArguments) {
  EXPECT_THROW(DeadlineGenerator(Seconds{0.0}, 2.0, 1),
               std::invalid_argument);
  EXPECT_THROW(DeadlineGenerator(Seconds{1.0}, 0.5, 1),
               std::invalid_argument);
}

TEST(MakeRounds, ProducesFeasibleRoundList) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  const auto rounds = make_rounds(task, agx, 2.0, 9);
  ASSERT_EQ(rounds.size(), 100u);
  const double t_min =
      agx.round_t_min(task.profile, task.jobs_per_round()).value();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].index, static_cast<std::int64_t>(i));
    EXPECT_EQ(rounds[i].num_jobs, task.jobs_per_round());
    EXPECT_GE(rounds[i].deadline.value(), t_min - 1e-9);
    EXPECT_LE(rounds[i].deadline.value(), 2.0 * t_min + 1e-9);
  }
}

}  // namespace
}  // namespace bofl::core
