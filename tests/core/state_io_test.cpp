// Controller state persistence: export/import and the CSV round trip.
#include "core/state_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/harness.hpp"
#include "core/oracle_controller.hpp"
#include "faults/fault_injector.hpp"

namespace bofl::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

BoflOptions fast_options(const std::string& device_name) {
  BoflOptions options;
  options.mbo_cost = mbo_cost_for_device(device_name);
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  return options;
}

TEST(StateIo, ExportContainsEveryExploredConfig) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 12;
  const auto rounds = make_rounds(task, agx, 2.0, 51);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 52);
  (void)run_task(bofl, rounds);

  const auto saved = bofl.export_state();
  EXPECT_EQ(saved.size(), bofl.observed_profiles().size());
  for (const auto& obs : saved) {
    EXPECT_GT(obs.jobs, 0.0);
    EXPECT_GT(obs.mean_energy, 0.0);
    EXPECT_GT(obs.mean_latency, 0.0);
    EXPECT_LT(obs.config_flat, agx.space().size());
  }
  // Sorted by config id for stable files.
  for (std::size_t i = 1; i < saved.size(); ++i) {
    EXPECT_LT(saved[i - 1].config_flat, saved[i].config_flat);
  }
}

TEST(StateIo, CsvRoundTripPreservesValues) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = imdb_lstm_task(agx.name());
  task.num_rounds = 10;
  const auto rounds = make_rounds(task, agx, 2.5, 53);
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 54);
  (void)run_task(bofl, rounds);

  const std::string path = ::testing::TempDir() + "/bofl_state_test.csv";
  save_state(bofl, path);
  const auto loaded = load_state(path);
  const auto original = bofl.export_state();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].config_flat, original[i].config_flat);
    EXPECT_NEAR(loaded[i].jobs, original[i].jobs, 1e-6);
    EXPECT_NEAR(loaded[i].mean_energy, original[i].mean_energy, 1e-9);
    EXPECT_NEAR(loaded[i].mean_latency, original[i].mean_latency, 1e-9);
  }
  std::remove(path.c_str());
}

// Golden round trip: save -> load -> import -> save must reproduce the
// first file byte for byte.  A one-ulp drift per save/load generation
// would silently corrupt long-lived profiles (devices save and resume
// hundreds of times over a task's 500-10000 rounds).
void expect_byte_stable_round_trip(const BoflController& controller,
                                   const device::DeviceModel& model,
                                   const FlTaskSpec& task,
                                   const std::string& tag) {
  const std::string path_a =
      ::testing::TempDir() + "/state_golden_" + tag + "_a.csv";
  const std::string path_b =
      ::testing::TempDir() + "/state_golden_" + tag + "_b.csv";
  save_state(controller, path_a);
  BoflController resumed(model, task.profile, {}, fast_options(model.name()),
                         991);
  resumed.import_state(load_state(path_a));
  save_state(resumed, path_b);
  EXPECT_EQ(slurp(path_a), slurp(path_b)) << "snapshot " << tag;
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(StateIo, GoldenRoundTripIsByteIdenticalAcrossPhases) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 30;
  const auto rounds = make_rounds(task, agx, 2.5, 71);

  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 72);
  Phase seen_phase1 = Phase::kExploitation;
  for (std::int64_t i = 0; i < task.num_rounds; ++i) {
    if (i == 2) {
      seen_phase1 = bofl.phase();
      expect_byte_stable_round_trip(bofl, agx, task, "phase1");
    } else if (bofl.phase() == Phase::kParetoConstruction && i > 2) {
      expect_byte_stable_round_trip(bofl, agx, task, "phase2");
    }
    (void)bofl.run_round(rounds[i]);
  }
  EXPECT_EQ(seen_phase1, Phase::kSafeRandomExploration);
  ASSERT_EQ(bofl.phase(), Phase::kExploitation);
  expect_byte_stable_round_trip(bofl, agx, task, "phase3");
}

TEST(StateIo, GoldenRoundTripMidFaultEpisode) {
  // Snapshot while a thermal storm is active and the sensor is flaky: the
  // aggregates then hold demoted / winsorized values — exactly the state a
  // device rebooting mid-incident would persist.
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 8;
  const auto rounds = make_rounds(task, agx, 2.5, 73);

  faults::FaultPlan plan;
  plan.seed = 9;
  faults::FaultSpec storm;
  storm.kind = faults::FaultKind::kThermalStorm;
  storm.start_s = 0.0;
  storm.duration_s = 1e9;  // active for the whole run
  storm.magnitude = 1.4;
  plan.faults.push_back(storm);
  faults::FaultSpec flaky;
  flaky.kind = faults::FaultKind::kSensorDropout;
  flaky.start_s = 0.0;
  flaky.duration_s = 1e9;
  flaky.magnitude = 4.0;
  flaky.probability = 0.3;
  plan.faults.push_back(flaky);
  const faults::FaultInjector injector(plan, 74);
  const auto channel = injector.make_device_channel(0);

  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 74);
  bofl.install_fault_model(channel.get());
  for (const RoundSpec& spec : rounds) {
    (void)bofl.run_round(spec);
  }
  EXPECT_FALSE(bofl.export_state().empty());
  expect_byte_stable_round_trip(bofl, agx, task, "mid_fault");
}

TEST(StateIo, LoadRejectsMissingFile) {
  EXPECT_THROW((void)load_state("/no/such/state.csv"),
               std::invalid_argument);
}

TEST(StateIo, ResumedControllerSkipsExploration) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 25;
  const auto rounds = make_rounds(task, agx, 2.0, 55);

  // First life: run long enough to converge, then persist.
  BoflController first(agx, task.profile, {}, fast_options(agx.name()), 56);
  (void)run_task(first, rounds);
  ASSERT_EQ(first.phase(), Phase::kExploitation);
  const auto saved = first.export_state();

  // Second life: resume and verify it never re-explores.
  BoflController resumed(agx, task.profile, {}, fast_options(agx.name()), 57);
  resumed.import_state(saved);
  EXPECT_EQ(resumed.phase(), Phase::kExploitation);
  const auto more_rounds = make_rounds(task, agx, 2.0, 58);
  const TaskResult result = run_task(resumed, more_rounds);
  EXPECT_TRUE(result.all_deadlines_met());
  EXPECT_EQ(result.rounds_in_phase(Phase::kSafeRandomExploration), 0);
  EXPECT_EQ(result.rounds_in_phase(Phase::kParetoConstruction), 0);
  for (const RoundTrace& trace : result.rounds) {
    EXPECT_TRUE(trace.explored_flat_ids.empty());
  }
}

TEST(StateIo, ResumedControllerMatchesWarmEnergy) {
  // A resumed controller's energy over N rounds should match the original
  // controller's exploitation-phase energy, not its cold-start energy.
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 25;
  const auto rounds = make_rounds(task, agx, 2.5, 59);

  BoflController first(agx, task.profile, {}, fast_options(agx.name()), 60);
  const TaskResult cold = run_task(first, rounds);

  BoflController resumed(agx, task.profile, {}, fast_options(agx.name()), 61);
  resumed.import_state(first.export_state());
  const TaskResult warm = run_task(resumed, rounds);

  EXPECT_LT(total_energy(warm).value(), total_energy(cold).value());
  OracleController oracle(agx, task.profile, {}, 62);
  const TaskResult ideal = run_task(oracle, rounds);
  EXPECT_LT(regret_vs(warm, ideal), 0.05);
}

TEST(StateIo, PartialStateResumesInParetoPhase) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  // A minimal save: x_max plus two other points — not enough coverage.
  const std::size_t x_max_flat =
      agx.space().to_flat(agx.space().max_config());
  std::vector<BoflController::SavedObservation> saved{
      {x_max_flat, 50.0,
       agx.energy(task.profile, agx.space().max_config()).value(),
       agx.latency(task.profile, agx.space().max_config()).value()},
      {100, 10.0, 5.0, 0.5},
      {200, 10.0, 4.5, 0.6}};
  BoflController resumed(agx, task.profile, {}, fast_options(agx.name()), 63);
  resumed.import_state(saved);
  EXPECT_EQ(resumed.phase(), Phase::kParetoConstruction);
}

TEST(StateIo, StateWithoutXmaxRestartsExploration) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  std::vector<BoflController::SavedObservation> saved{
      {100, 10.0, 5.0, 0.5}};
  BoflController resumed(agx, task.profile, {}, fast_options(agx.name()), 64);
  resumed.import_state(saved);
  EXPECT_EQ(resumed.phase(), Phase::kSafeRandomExploration);
}

TEST(StateIo, ImportRejectsUsedControllerAndBadData) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 1;
  const auto rounds = make_rounds(task, agx, 2.0, 65);
  BoflController used(agx, task.profile, {}, fast_options(agx.name()), 66);
  (void)used.run_round(rounds[0]);
  EXPECT_THROW(used.import_state({}), std::invalid_argument);

  BoflController fresh(agx, task.profile, {}, fast_options(agx.name()), 67);
  EXPECT_THROW(
      fresh.import_state({{agx.space().size(), 1.0, 1.0, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW(fresh.import_state({{0, 0.0, 1.0, 1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bofl::core
