// Golden round trip for state_io under churn (ISSUE: fleet scenarios let
// clients leave and re-join mid-task; the persisted profile is the only
// thing that survives).  The churn episode modelled here is save -> leave
// (controller destroyed) -> re-join (fresh controller + import), exercised
// mid-Phase-2, mid-exploitation and mid-fault.  Contract:
//   1. The snapshot round-trips byte for byte through the re-join, so a
//      client can churn any number of times without profile drift.
//   2. Re-joining is deterministic: two clients restored from the same
//      snapshot replay bit-identical traces for the rest of the task.
//   3. The re-joined client stays on the trajectory: it never re-explores
//      a config the snapshot already covers, never regresses to Phase 1,
//      meets every deadline, and lands in exploitation with energy within
//      a few percent of the uninterrupted run (exact per-round equality is
//      NOT promised mid-Phase-2 — the uninterrupted controller's hyperopt
//      RNG stream is mid-flight while the re-joined one restarts — but
//      from an exploitation-phase snapshot the phase sequence matches the
//      uninterrupted run round for round).
#include "core/state_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "faults/fault_injector.hpp"

namespace bofl::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

BoflOptions fast_options(const std::string& device_name) {
  BoflOptions options;
  options.mbo_cost = mbo_cost_for_device(device_name);
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  return options;
}

bool same_trace(const RoundTrace& a, const RoundTrace& b) {
  if (a.phase != b.phase || a.runs.size() != b.runs.size() ||
      a.explored_flat_ids != b.explored_flat_ids) {
    return false;
  }
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (!(a.runs[i].config == b.runs[i].config) ||
        a.runs[i].jobs != b.runs[i].jobs ||
        a.runs[i].true_time.value() != b.runs[i].true_time.value() ||
        a.runs[i].true_energy.value() != b.runs[i].true_energy.value()) {
      return false;
    }
  }
  return true;
}

/// The full churn episode from a controller interrupted after `cut`
/// rounds: save, drop the original, re-join twice from the file, finish
/// the task on both, and check every clause of the contract against the
/// uninterrupted traces.
void run_churn_episode(const device::DeviceModel& model,
                       const FlTaskSpec& task,
                       const std::vector<RoundSpec>& rounds,
                       const std::vector<RoundTrace>& uninterrupted,
                       std::int64_t cut, Phase expected_phase_at_cut,
                       double energy_tolerance, const std::string& tag) {
  const std::string path_a =
      ::testing::TempDir() + "/churn_" + tag + "_a.csv";
  const std::string path_b =
      ::testing::TempDir() + "/churn_" + tag + "_b.csv";
  std::set<std::size_t> known;
  {
    // First life: interrupted at `cut`, persists, leaves.
    BoflController first(model, task.profile, {},
                         fast_options(model.name()), 72);
    for (std::int64_t i = 0; i < cut; ++i) {
      (void)first.run_round(rounds[static_cast<std::size_t>(i)]);
    }
    ASSERT_EQ(first.phase(), expected_phase_at_cut) << tag;
    save_state(first, path_a);
    for (const auto& obs : first.export_state()) {
      known.insert(obs.config_flat);
    }
  }

  // Re-join: two independent restores from the same snapshot.
  const auto saved = load_state(path_a);
  BoflController rejoined(model, task.profile, {},
                          fast_options(model.name()), 991);
  rejoined.import_state(saved);
  BoflController twin(model, task.profile, {},
                      fast_options(model.name()), 991);
  twin.import_state(saved);

  // Clause 1: the re-joined profile re-saves byte for byte.
  save_state(rejoined, path_b);
  EXPECT_EQ(slurp(path_a), slurp(path_b)) << tag;
  EXPECT_EQ(rejoined.phase(), expected_phase_at_cut) << tag;

  double resumed_energy = 0.0;
  double uninterrupted_energy = 0.0;
  std::size_t phase_matches = 0;
  const std::size_t tail = rounds.size() - static_cast<std::size_t>(cut);
  for (std::size_t i = static_cast<std::size_t>(cut); i < rounds.size();
       ++i) {
    const RoundTrace trace = rejoined.run_round(rounds[i]);
    const RoundTrace twin_trace = twin.run_round(rounds[i]);
    // Clause 2: bit-identical replay across re-joins.
    EXPECT_TRUE(same_trace(trace, twin_trace))
        << tag << ": re-join replay diverged at round " << i;
    // Clause 3: on-trajectory.
    EXPECT_TRUE(trace.deadline_met()) << tag << " round " << i;
    EXPECT_NE(trace.phase, Phase::kSafeRandomExploration)
        << tag << ": re-join regressed to Phase 1 at round " << i;
    for (const std::size_t flat : trace.explored_flat_ids) {
      EXPECT_EQ(known.count(flat), 0U)
          << tag << ": re-explored config " << flat << " at round " << i;
    }
    if (trace.phase == uninterrupted[i].phase) {
      ++phase_matches;
    }
    resumed_energy += trace.energy().value() + trace.mbo_energy.value();
    uninterrupted_energy +=
        uninterrupted[i].energy().value() + uninterrupted[i].mbo_energy.value();
  }
  EXPECT_EQ(rejoined.phase(), Phase::kExploitation) << tag;
  EXPECT_NEAR(resumed_energy, uninterrupted_energy,
              energy_tolerance * uninterrupted_energy)
      << tag << ": resumed tail spent " << resumed_energy
      << " J vs uninterrupted " << uninterrupted_energy << " J";
  if (expected_phase_at_cut == Phase::kExploitation) {
    // From an exploitation snapshot the phase sequence is the
    // uninterrupted one, round for round.
    EXPECT_EQ(phase_matches, tail) << tag;
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(StateIoChurn, RejoinMidPhase2AndMidExploitationStaysOnTrajectory) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 30;
  const auto rounds = make_rounds(task, agx, 2.5, 71);

  BoflController full(agx, task.profile, {}, fast_options(agx.name()), 72);
  std::vector<RoundTrace> uninterrupted;
  for (const RoundSpec& spec : rounds) {
    uninterrupted.push_back(full.run_round(spec));
  }
  ASSERT_EQ(full.phase(), Phase::kExploitation);

  run_churn_episode(agx, task, rounds, uninterrupted, 8,
                    Phase::kParetoConstruction, 0.10, "mid_phase2");
  run_churn_episode(agx, task, rounds, uninterrupted, 14,
                    Phase::kExploitation, 0.05, "mid_phase3");
}

// Mid-fault churn: the client leaves while a thermal storm is demoting its
// measurements and re-joins INTO the same storm.  The snapshot holds the
// demoted aggregates; the round trip must still be byte-stable and the
// re-joined client must replay deterministically under the fault channel.
TEST(StateIoChurn, RejoinMidFaultIsByteStableAndDeterministic) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 16;
  const auto rounds = make_rounds(task, agx, 2.5, 73);

  faults::FaultPlan plan;
  plan.seed = 9;
  faults::FaultSpec storm;
  storm.kind = faults::FaultKind::kThermalStorm;
  storm.start_s = 0.0;
  storm.duration_s = 1e9;  // active across the leave AND the re-join
  storm.magnitude = 1.3;
  plan.faults.push_back(storm);
  const faults::FaultInjector injector(plan, 74);
  const auto channel = injector.make_device_channel(0);

  const std::string path_a = ::testing::TempDir() + "/churn_fault_a.csv";
  const std::string path_b = ::testing::TempDir() + "/churn_fault_b.csv";
  {
    BoflController first(agx, task.profile, {}, fast_options(agx.name()),
                         74);
    first.install_fault_model(channel.get());
    for (std::size_t i = 0; i < 8; ++i) {
      (void)first.run_round(rounds[i]);
    }
    ASSERT_FALSE(first.export_state().empty());
    save_state(first, path_a);
  }

  const auto saved = load_state(path_a);
  BoflController rejoined(agx, task.profile, {}, fast_options(agx.name()),
                          991);
  rejoined.import_state(saved);
  save_state(rejoined, path_b);
  EXPECT_EQ(slurp(path_a), slurp(path_b));

  BoflController twin(agx, task.profile, {}, fast_options(agx.name()), 991);
  twin.import_state(saved);
  rejoined.install_fault_model(channel.get());
  twin.install_fault_model(channel.get());
  for (std::size_t i = 8; i < rounds.size(); ++i) {
    const RoundTrace a = rejoined.run_round(rounds[i]);
    const RoundTrace b = twin.run_round(rounds[i]);
    EXPECT_TRUE(same_trace(a, b)) << "mid-fault replay diverged at round "
                                  << i;
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace bofl::core
