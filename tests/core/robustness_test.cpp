// Failure-injection robustness of the BoFL controller: latency spikes,
// thermal throttling, and their interaction with the deadline machinery.
// Hard real-time guarantees are impossible once the *true* execution times
// are adversarial; these tests pin down graceful degradation instead —
// bounded miss rates, bounded overshoots, and intact energy wins.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/performant_controller.hpp"

namespace bofl::core {
namespace {

BoflOptions fast_options(const std::string& device_name) {
  BoflOptions options;
  options.mbo_cost = mbo_cost_for_device(device_name);
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  return options;
}

TEST(Robustness, RareSpikesBarelyDentDeadlinePerformance) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 30;
  const auto rounds = make_rounds(task, agx, 2.5, 333);

  device::NoiseModel noise;
  noise.spike_probability = 0.005;  // 1 job in 200
  noise.spike_magnitude = 3.0;
  BoflController bofl(agx, task.profile, noise, fast_options(agx.name()), 9);
  const TaskResult result = run_task(bofl, rounds);

  int misses = 0;
  double worst_overshoot = 0.0;
  for (const RoundTrace& trace : result.rounds) {
    if (!trace.deadline_met()) {
      ++misses;
      worst_overshoot =
          std::max(worst_overshoot,
                   trace.elapsed().value() - trace.deadline.value());
    }
  }
  // ~1 spiked job per round at 2.5x slack: the closed-loop scheduler must
  // absorb nearly all of it.
  EXPECT_LE(misses, 2);
  EXPECT_LT(worst_overshoot, 1.0);
}

TEST(Robustness, HeavySpikesDegradeGracefully) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 25;
  const auto rounds = make_rounds(task, agx, 3.0, 444);

  device::NoiseModel noise;
  noise.spike_probability = 0.02;
  noise.spike_magnitude = 4.0;
  BoflController bofl(agx, task.profile, noise, fast_options(agx.name()), 10);
  PerformantController performant(agx, task.profile, noise, 11);
  const TaskResult rb = run_task(bofl, rounds);
  const TaskResult rp = run_task(performant, rounds);

  // Under a 6 % average slowdown the energy advantage must survive ...
  EXPECT_LT(total_energy(rb).value(), total_energy(rp).value());
  // ... and any overshoot stays within the spike mass itself (a few
  // seconds), never a systematic blowup.
  for (const RoundTrace& trace : rb.rounds) {
    EXPECT_LT(trace.elapsed().value() - trace.deadline.value(), 5.0);
  }
}

TEST(Robustness, SpikesInflateMeasuredProfilesNotCrash) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = imdb_lstm_task(agx.name());
  task.num_rounds = 15;
  const auto rounds = make_rounds(task, agx, 3.0, 555);
  device::NoiseModel noise;
  noise.spike_probability = 0.05;
  noise.spike_magnitude = 5.0;
  BoflController bofl(agx, task.profile, noise, fast_options(agx.name()), 12);
  const TaskResult result = run_task(bofl, rounds);
  for (const RoundTrace& trace : result.rounds) {
    EXPECT_EQ(trace.jobs(), task.jobs_per_round());
  }
  // The aggregates absorb the spikes; profiles stay positive and finite.
  for (const auto& profile : bofl.observed_profiles()) {
    EXPECT_GT(profile.latency_per_job, 0.0);
    EXPECT_TRUE(std::isfinite(profile.energy_per_job));
  }
}

TEST(Robustness, ThermalThrottlingIsAbsorbedByClosedLoop) {
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 25;
  // Plenty of slack: throttling slows the device by up to ~40 %.
  const auto rounds = make_rounds(task, agx, 4.0, 666);

  device::NoiseModel noise;
  device::ThermalParams thermal;
  thermal.throttle_temp_c = 60.0;
  thermal.time_constant_s = 120.0;
  thermal.thermal_resistance_c_per_w = 1.6;
  noise.thermal = thermal;
  BoflController bofl(agx, task.profile, noise, fast_options(agx.name()), 13);
  const TaskResult result = run_task(bofl, rounds);

  // All jobs always run; misses (if any) are confined to the hot tail and
  // small relative to the round length.
  int misses = 0;
  for (const RoundTrace& trace : result.rounds) {
    EXPECT_EQ(trace.jobs(), task.jobs_per_round());
    if (!trace.deadline_met()) {
      ++misses;
      EXPECT_LT(trace.elapsed() / trace.deadline, 1.10);
    }
  }
  EXPECT_LE(misses, 3);
}

TEST(Robustness, ThermalThrottlingShiftsMeasuredLatenciesUp) {
  // The controller's aggregates must track the hot-die reality: after
  // sustained running, the measured x_max latency exceeds the cool-die
  // model value, because the hardware silently caps the clocks.
  const device::DeviceModel agx = device::jetson_agx();
  FlTaskSpec task = cifar10_vit_task(agx.name());
  task.num_rounds = 20;
  const auto rounds = make_rounds(task, agx, 3.0, 777);
  device::NoiseModel noise;
  device::ThermalParams thermal;
  thermal.throttle_temp_c = 50.0;  // aggressive: throttles almost instantly
  thermal.time_constant_s = 30.0;
  noise.thermal = thermal;
  BoflController bofl(agx, task.profile, noise, fast_options(agx.name()), 14);
  (void)run_task(bofl, rounds);
  const double cool =
      agx.latency(task.profile, agx.space().max_config()).value();
  const std::size_t x_max_flat =
      agx.space().to_flat(agx.space().max_config());
  // The aggregate blends early (cool) and late (hot) measurements, so the
  // shift is modest but must be clearly upward.
  for (const auto& profile : bofl.observed_profiles()) {
    if (profile.config_id == x_max_flat) {
      EXPECT_GT(profile.latency_per_job, cool * 1.05);
    }
  }
}

}  // namespace
}  // namespace bofl::core
