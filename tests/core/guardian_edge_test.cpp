// Eqn. 2 deadline-guardian boundary cases.  The guardian is the safety
// property everything else leans on, so its edges get their own tests:
// zero-job rounds, a round budget of exactly tau, and a believed T(x_max)
// so large that no exploration can ever fit — each must refuse exploration
// cleanly (no underflow, no crash, no exploratory run) and fall back to
// x_max for the whole round.  import_state plants the beliefs, which is
// exactly how a device resuming with stale profiles would hit these edges.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bofl_controller.hpp"
#include "core/task.hpp"

namespace bofl::core {
namespace {

BoflOptions fast_options(const std::string& device_name) {
  BoflOptions options;
  options.mbo_cost = mbo_cost_for_device(device_name);
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  return options;
}

/// x_max plus two extra points: enough observations for the MBO engine
/// (propose_batch needs >= 3) but far below the exploitation coverage
/// floor, so the resumed controller lands in Pareto construction and
/// still *wants* to explore — the guardian is what must stop it.
std::vector<BoflController::SavedObservation> planted_state(
    const device::DeviceModel& model, double x_max_latency) {
  const std::size_t x_max_flat =
      model.space().to_flat(model.space().max_config());
  return {{100, 10.0, 4.0, x_max_latency * 2.0},
          {200, 10.0, 3.5, x_max_latency * 3.0},
          {x_max_flat, 10.0, 5.0, x_max_latency}};
}

void expect_all_jobs_ran_at_x_max(const RoundTrace& trace,
                                  const device::DeviceModel& model,
                                  std::int64_t jobs) {
  EXPECT_TRUE(trace.explored_flat_ids.empty());
  EXPECT_EQ(trace.jobs(), jobs);
  for (const ConfigRun& run : trace.runs) {
    EXPECT_FALSE(run.exploratory);
    EXPECT_EQ(run.config, model.space().max_config());
  }
}

TEST(GuardianEdge, ZeroJobRoundIsRejected) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 1);
  EXPECT_THROW((void)bofl.run_round({0, 0, Seconds{10.0}}),
               std::invalid_argument);
}

TEST(GuardianEdge, HugeBelievedTxMaxRefusesExplorationWithoutUnderflow) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 2);
  // Believed T(x_max) of 1e6 s/job: W_remain * T(x_max) dwarfs any
  // deadline, so every guardian check must refuse.
  bofl.import_state(planted_state(agx, 1e6));
  ASSERT_EQ(bofl.phase(), Phase::kParetoConstruction);
  ASSERT_TRUE(bofl.t_x_max().has_value());

  const RoundTrace trace = bofl.run_round({0, 10, Seconds{100.0}});
  expect_all_jobs_ran_at_x_max(trace, agx, 10);
  // The *true* device is fast, so the fallback still lands in budget; the
  // point is that the refusal arithmetic never underflowed or wrapped.
  EXPECT_GT(trace.elapsed().value(), 0.0);
  EXPECT_TRUE(std::isfinite(trace.slack().value()));
  EXPECT_TRUE(trace.deadline_met());
}

TEST(GuardianEdge, DeadlineOfExactlyTauRefusesExploration) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflOptions options = fast_options(agx.name());
  BoflController bofl(agx, task.profile, {}, options, 3);
  const double true_t_x_max =
      agx.latency(task.profile, agx.space().max_config()).value();
  bofl.import_state(planted_state(agx, true_t_x_max));
  ASSERT_EQ(bofl.phase(), Phase::kParetoConstruction);

  // T_remain == tau exactly: the exploration budget alone consumes the
  // whole round, so the guardian must refuse even before the rescue term.
  const RoundTrace trace = bofl.run_round({0, 1, options.tau});
  expect_all_jobs_ran_at_x_max(trace, agx, 1);
  EXPECT_TRUE(std::isfinite(trace.slack().value()));
}

TEST(GuardianEdge, InfeasibleRoundRunsXmaxAndFlagsOverrun) {
  const device::DeviceModel agx = device::jetson_agx();
  const FlTaskSpec task = cifar10_vit_task(agx.name());
  BoflController bofl(agx, task.profile, {}, fast_options(agx.name()), 4);
  const double true_t_x_max =
      agx.latency(task.profile, agx.space().max_config()).value();
  bofl.import_state(planted_state(agx, true_t_x_max));

  // Deadline below W * T(x_max): nothing can meet it.  The controller must
  // still finish the round at x_max (damage control), and the trace's
  // miss accounting must be consistent: signed slack negative, clamped
  // slack zero, overrun positive and equal to -slack.
  const std::int64_t jobs = 20;
  const Seconds deadline{0.5 * static_cast<double>(jobs) * true_t_x_max};
  const RoundTrace trace = bofl.run_round({0, jobs, deadline});
  expect_all_jobs_ran_at_x_max(trace, agx, jobs);
  EXPECT_FALSE(trace.deadline_met());
  EXPECT_LT(trace.slack().value(), 0.0);
  EXPECT_DOUBLE_EQ(trace.safe_slack().value(), 0.0);
  EXPECT_NEAR(trace.overrun().value(), -trace.slack().value(), 1e-12);
}

}  // namespace
}  // namespace bofl::core
