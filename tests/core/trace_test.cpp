#include "core/trace.hpp"

#include <gtest/gtest.h>

namespace bofl::core {
namespace {

RoundTrace sample_trace() {
  RoundTrace trace;
  trace.index = 3;
  trace.deadline = Seconds{10.0};
  trace.phase = Phase::kParetoConstruction;
  trace.runs.push_back({{0, 0, 0}, 5, Seconds{2.0}, Joules{20.0}, true});
  trace.runs.push_back({{1, 1, 1}, 10, Seconds{6.0}, Joules{30.0}, false});
  trace.mbo_latency = Seconds{4.0};
  trace.mbo_energy = Joules{40.0};
  return trace;
}

TEST(RoundTrace, Accounting) {
  const RoundTrace trace = sample_trace();
  EXPECT_DOUBLE_EQ(trace.elapsed().value(), 8.0);
  EXPECT_DOUBLE_EQ(trace.energy().value(), 50.0);
  EXPECT_EQ(trace.jobs(), 15);
  EXPECT_TRUE(trace.deadline_met());
}

TEST(RoundTrace, DeadlineMissDetected) {
  RoundTrace trace = sample_trace();
  trace.deadline = Seconds{7.9};
  EXPECT_FALSE(trace.deadline_met());
}

TEST(RoundTrace, ExactBoundaryCounts) {
  RoundTrace trace = sample_trace();
  trace.deadline = Seconds{8.0};
  EXPECT_TRUE(trace.deadline_met());
}

TEST(RoundTrace, SlackSignedButSafeSlackClamped) {
  RoundTrace trace = sample_trace();  // elapsed 8.0
  trace.deadline = Seconds{10.0};
  EXPECT_DOUBLE_EQ(trace.slack().value(), 2.0);
  EXPECT_DOUBLE_EQ(trace.safe_slack().value(), 2.0);
  EXPECT_DOUBLE_EQ(trace.overrun().value(), 0.0);

  trace.deadline = Seconds{6.5};  // missed by 1.5 s
  EXPECT_DOUBLE_EQ(trace.slack().value(), -1.5);
  EXPECT_DOUBLE_EQ(trace.safe_slack().value(), 0.0);
  EXPECT_DOUBLE_EQ(trace.overrun().value(), 1.5);
}

TEST(RoundTrace, OverrunRespectsDeadlineTolerance) {
  // elapsed lands a hair past the deadline but inside deadline_met()'s
  // float tolerance: the round is met, so overrun must be exactly zero
  // even though raw slack is (barely) negative.
  RoundTrace trace = sample_trace();
  trace.deadline = Seconds{8.0 - 1e-10};
  EXPECT_TRUE(trace.deadline_met());
  EXPECT_DOUBLE_EQ(trace.overrun().value(), 0.0);
  EXPECT_DOUBLE_EQ(trace.safe_slack().value(), 0.0);
}

TEST(RoundTrace, EmptyTraceIsZero) {
  const RoundTrace trace;
  EXPECT_DOUBLE_EQ(trace.elapsed().value(), 0.0);
  EXPECT_DOUBLE_EQ(trace.energy().value(), 0.0);
  EXPECT_EQ(trace.jobs(), 0);
  EXPECT_TRUE(trace.deadline_met());
}

TEST(TaskResult, Totals) {
  TaskResult result;
  result.rounds.push_back(sample_trace());
  result.rounds.push_back(sample_trace());
  result.rounds[1].phase = Phase::kExploitation;
  result.rounds[1].mbo_energy = Joules{0.0};
  result.rounds[1].mbo_latency = Seconds{0.0};

  EXPECT_DOUBLE_EQ(result.total_training_energy().value(), 100.0);
  EXPECT_DOUBLE_EQ(result.total_mbo_energy().value(), 40.0);
  EXPECT_DOUBLE_EQ(result.total_mbo_latency().value(), 4.0);
  EXPECT_TRUE(result.all_deadlines_met());
  EXPECT_EQ(result.rounds_in_phase(Phase::kParetoConstruction), 1);
  EXPECT_EQ(result.rounds_in_phase(Phase::kExploitation), 1);
  EXPECT_EQ(result.rounds_in_phase(Phase::kSafeRandomExploration), 0);
}

TEST(TaskResult, DeadlineViolationPropagates) {
  TaskResult result;
  result.rounds.push_back(sample_trace());
  result.rounds.back().deadline = Seconds{1.0};
  EXPECT_FALSE(result.all_deadlines_met());
}

}  // namespace
}  // namespace bofl::core
