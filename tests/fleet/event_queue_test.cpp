#include "fleet/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

namespace bofl::fleet {
namespace {

TEST(CompletionQueue, DrainsInTimestampOrder) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({30, 1});
  queue.push({10, 2});
  queue.push({20, 3});
  std::vector<std::uint64_t> times;
  while (!queue.empty()) {
    times.push_back(queue.pop_next().time);
  }
  EXPECT_EQ(times, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(CompletionQueue, BreaksTimestampTiesByClientId) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({5, 42});
  queue.push({5, 7});
  queue.push({5, 19});
  EXPECT_EQ(queue.pop_next().client, 7u);
  EXPECT_EQ(queue.pop_next().client, 19u);
  EXPECT_EQ(queue.pop_next().client, 42u);
}

TEST(CompletionQueue, DrainOrderIndependentOfPushOrder) {
  const std::vector<CompletionEvent<std::uint64_t>> events{
      {7, 3}, {1, 9}, {7, 1}, {4, 4}, {1, 2}};
  std::vector<CompletionEvent<std::uint64_t>> forward;
  std::vector<CompletionEvent<std::uint64_t>> backward;
  CompletionQueue<std::uint64_t> queue;
  for (const auto& e : events) {
    queue.push(e);
  }
  while (!queue.empty()) {
    forward.push_back(queue.pop_next());
  }
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    queue.push(*it);
  }
  while (!queue.empty()) {
    backward.push_back(queue.pop_next());
  }
  EXPECT_EQ(forward, backward);
}

TEST(CompletionQueue, TracksPeakDepthAcrossRounds) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({1, 1});
  queue.push({2, 2});
  queue.push({3, 3});
  EXPECT_EQ(queue.peak_depth(), 3u);
  (void)queue.pop_next();
  (void)queue.pop_next();
  EXPECT_EQ(queue.peak_depth(), 3u);  // peak survives pops
  queue.reset_peak();
  EXPECT_EQ(queue.peak_depth(), 1u);  // reset to the current size
  queue.clear();
  queue.reset_peak();
  EXPECT_EQ(queue.peak_depth(), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(CloseRound, NoCutoffWaitsForLastArrival) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({100, 1});
  queue.push({250, 2});
  queue.push({50, 3});
  const RoundClose<std::uint64_t> close =
      close_round(queue, std::optional<std::uint64_t>{});
  EXPECT_EQ(close.wall, 250u);
  EXPECT_EQ(close.arrived, 3u);
  EXPECT_EQ(close.timed_out, 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(CloseRound, ArrivalPastCutoffTimesOutAndBoundsWall) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({100, 1});
  queue.push({900, 2});  // straggler: past the cutoff
  queue.push({150, 3});
  const RoundClose<std::uint64_t> close =
      close_round(queue, std::optional<std::uint64_t>{200});
  EXPECT_EQ(close.arrived, 2u);
  EXPECT_EQ(close.timed_out, 1u);
  EXPECT_EQ(close.wall, 200u);  // the server stopped waiting at the cutoff
}

TEST(CloseRound, ArrivalExactlyAtCutoffStillCounts) {
  // The cutoff is inclusive: only strictly-later arrivals time out (same
  // comparison as the fl::Simulation accounting this replaced).
  CompletionQueue<std::uint64_t> queue;
  queue.push({200, 1});
  const RoundClose<std::uint64_t> close =
      close_round(queue, std::optional<std::uint64_t>{200});
  EXPECT_EQ(close.arrived, 1u);
  EXPECT_EQ(close.timed_out, 0u);
  EXPECT_EQ(close.wall, 200u);
}

TEST(CloseRound, EmptyQueueClosesAtZero) {
  CompletionQueue<double> queue;
  const RoundClose<double> close =
      close_round(queue, std::optional<double>{1.5});
  EXPECT_EQ(close.wall, 0.0);
  EXPECT_EQ(close.arrived, 0u);
  EXPECT_EQ(close.timed_out, 0u);
}

TEST(CloseRound, DoubleTimeMatchesPollingSemantics) {
  // fl::Simulation's arrival loop, re-expressed: max over counted arrivals,
  // strictly-late reports clamp the wall to the cutoff.
  CompletionQueue<double> queue;
  queue.push({1.25, 0});
  queue.push({3.5, 1});
  queue.push({2.0, 2});
  const RoundClose<double> close =
      close_round(queue, std::optional<double>{2.5});
  EXPECT_DOUBLE_EQ(close.wall, 2.5);
  EXPECT_EQ(close.arrived, 2u);
  EXPECT_EQ(close.timed_out, 1u);
}

}  // namespace
}  // namespace bofl::fleet
