// Regression pin for the deadline-pressure finding from the fleet-engine
// PR: the canonical controller only reaches Phase-3 exploitation promptly
// when the fleet's deadline_ratio leaves slack for safe exploration.  On
// this pinned fleet (2k clients, cohort 0.5, 32 rounds, seed 17) a tight
// ratio of 2.0 makes the pessimistic Eqn. 2 gate reject most candidates:
// exploitation first appears only at round 20, covers ~7% of all
// participations, and the FINAL round is still Phase-2 majority.  At the
// default ratio 8.0 exploitation starts at round 7, covers ~56%, and the
// final round replays exploitation entries exclusively.  If a controller
// or gate change moves this boundary, this test is the tripwire.
#include <gtest/gtest.h>

#include <cstdint>

#include "fleet/fleet_engine.hpp"

namespace bofl::fleet {
namespace {

/// Deep-trajectory fleet: a large cohort fraction so the canonical
/// trajectory extends every round and 32 rounds is enough to reach
/// exploitation when the deadline allows it.
FleetResult run_at_ratio(double deadline_ratio) {
  FleetConfig config;
  config.num_clients = 2'000;
  config.rounds = 32;
  config.cohort_fraction = 0.5;
  config.deadline_ratio = deadline_ratio;
  config.seed = 17;
  FleetEngine engine(std::move(config));
  return engine.run();
}

std::uint64_t phase3_participations(const FleetResult& result) {
  std::uint64_t total = 0;
  for (const FleetRoundStats& round : result.rounds) {
    total += round.phase3;
  }
  return total;
}

/// First round whose cohort replayed any exploitation entry, or -1.
std::int64_t first_phase3_round(const FleetResult& result) {
  for (const FleetRoundStats& round : result.rounds) {
    if (round.phase3 > 0) {
      return round.round;
    }
  }
  return -1;
}

TEST(DeadlineRatioRegression, TightDeadlineStarvesExploitation) {
  const FleetResult tight = run_at_ratio(2.0);
  // The gate admits so few configs that Phase 2 drags: no exploitation at
  // all through the first half of the run (measured onset: round 20).
  const std::int64_t onset = first_phase3_round(tight);
  EXPECT_TRUE(onset == -1 || onset >= 16)
      << "ratio 2.0 reached exploitation at round " << onset
      << " — the deadline-pressure boundary moved; update DESIGN.md if "
         "this is intentional";
  // Exploitation never becomes the dominant regime under pressure.
  EXPECT_LT(tight.phase3_fraction(), 0.15);
  const FleetRoundStats& last = tight.rounds.back();
  EXPECT_GT(last.phase1 + last.phase2, 0U)
      << "final round fully converged despite ratio 2.0";
}

TEST(DeadlineRatioRegression, DefaultRatioExploitsInTheTail) {
  const FleetResult relaxed = run_at_ratio(8.0);
  // Prompt onset (measured: round 7) and a majority of ALL participations
  // in exploitation by the end of the run.
  const std::int64_t onset = first_phase3_round(relaxed);
  ASSERT_NE(onset, -1);
  EXPECT_LE(onset, 10);
  EXPECT_GT(relaxed.phase3_fraction(), 0.4);
  // The final round replays exploitation entries exclusively.
  const FleetRoundStats& last = relaxed.rounds.back();
  EXPECT_EQ(last.phase1, 0U);
  EXPECT_EQ(last.phase2, 0U);
  EXPECT_GT(last.phase3, 0U);
}

TEST(DeadlineRatioRegression, PressureBoundaryIsMonotone) {
  // Sanity on the shape of the boundary itself: more slack never yields
  // fewer exploitation participations on this pinned fleet.
  const std::uint64_t at2 = phase3_participations(run_at_ratio(2.0));
  const std::uint64_t at8 = phase3_participations(run_at_ratio(8.0));
  const std::uint64_t at12 = phase3_participations(run_at_ratio(12.0));
  EXPECT_LE(at2, at8);
  EXPECT_LE(at8, at12);
  EXPECT_GT(at12, 0U);
}

}  // namespace
}  // namespace bofl::fleet
