// Fleet-level knowledge plane: two-generation warm starts through the
// engine's publish/admit seam, the kCold read-only differential guarantee,
// and layout invariance of warm traces.
//
// Store-mutation rule baked into every comparison here: `run()` publishes
// back into an attached store, so determinism checks always hand each
// engine its OWN COPY of the pristine store — comparing against a store a
// previous run already merged into is meaningless.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fleet/fleet_engine.hpp"
#include "priors/knowledge_store.hpp"

namespace bofl::fleet {
namespace {

FleetConfig priors_config() {
  FleetConfig config;
  config.num_clients = 400;
  config.rounds = 20;
  config.cohort_fraction = 0.5;
  config.seed = 5;
  return config;  // default mix: one AGX/ViT cluster, deadline_ratio 8
}

/// Run one engine generation against `store` (nullptr = no knowledge plane).
FleetResult run_generation(priors::KnowledgeStore* store,
                           priors::PriorPolicy policy) {
  FleetConfig config = priors_config();
  config.knowledge = store;
  config.prior_policy = policy;
  FleetEngine engine(config);
  return engine.run();
}

TEST(FleetPriors, EmptyStoreGenerationIsBitIdenticalToCold) {
  const FleetResult cold = run_generation(nullptr, priors::PriorPolicy::kCold);

  // Generation 1: empty store, kVerify requested.  Admission declines (no
  // cluster knowledge yet), so the trajectory must be the cold one bit for
  // bit — the store only gains content on the publish after the run.
  priors::KnowledgeStore store;
  const FleetResult gen1 = run_generation(&store, priors::PriorPolicy::kVerify);
  EXPECT_EQ(gen1.trace_hash, cold.trace_hash);
  ASSERT_EQ(gen1.rounds.size(), cold.rounds.size());
  for (std::size_t i = 0; i < cold.rounds.size(); ++i) {
    EXPECT_EQ(gen1.rounds[i], cold.rounds[i]) << "round " << i;
  }
  EXPECT_EQ(gen1.warm_clusters, 0u);
  EXPECT_EQ(gen1.exploration_rounds, cold.exploration_rounds);
  EXPECT_EQ(store.num_clusters(), 1u);
}

TEST(FleetPriors, SecondGenerationWarmStartsAndKColdStaysReadOnly) {
  const FleetResult cold = run_generation(nullptr, priors::PriorPolicy::kCold);
  ASSERT_GT(cold.exploration_rounds, 0u);

  priors::KnowledgeStore store;
  (void)run_generation(&store, priors::PriorPolicy::kVerify);
  ASSERT_EQ(store.num_clusters(), 1u);
  const std::string pristine = store.to_json();

  // Generation 2 admits the cluster prior and collapses exploration to the
  // verification pass.
  priors::KnowledgeStore gen2_store = store;
  const FleetResult warm =
      run_generation(&gen2_store, priors::PriorPolicy::kVerify);
  EXPECT_EQ(warm.warm_clusters, 1u);
  EXPECT_LT(warm.exploration_rounds, cold.exploration_rounds);
  // The second generation merged fresh knowledge back in.
  EXPECT_NE(gen2_store.to_json(), pristine);

  // kCold with a POPULATED store: the differential guarantee.  The store is
  // ignored on admit and left untouched on publish — trace and store bytes
  // both match the cold run exactly.
  priors::KnowledgeStore kcold_store = store;
  const FleetResult kcold =
      run_generation(&kcold_store, priors::PriorPolicy::kCold);
  EXPECT_EQ(kcold.trace_hash, cold.trace_hash);
  EXPECT_EQ(kcold.warm_clusters, 0u);
  EXPECT_EQ(kcold_store.to_json(), pristine);
}

TEST(FleetPriors, WarmTracesAreLayoutInvariant) {
  priors::KnowledgeStore store;
  (void)run_generation(&store, priors::PriorPolicy::kVerify);

  // Each layout gets its own pristine copy (run() merges publish-back into
  // whichever store it was handed).
  priors::KnowledgeStore store_a = store;
  priors::KnowledgeStore store_b = store;
  FleetConfig serial = priors_config();
  serial.shards = 1;
  serial.threads = 1;
  serial.knowledge = &store_a;
  serial.prior_policy = priors::PriorPolicy::kVerify;
  FleetConfig sharded = priors_config();
  sharded.shards = 5;
  sharded.threads = 4;
  sharded.knowledge = &store_b;
  sharded.prior_policy = priors::PriorPolicy::kVerify;

  FleetEngine a(serial);
  FleetEngine b(sharded);
  const FleetResult ra = a.run();
  const FleetResult rb = b.run();
  EXPECT_EQ(ra.trace_hash, rb.trace_hash);
  EXPECT_EQ(ra.warm_clusters, 1u);
  EXPECT_EQ(rb.warm_clusters, 1u);
  EXPECT_EQ(ra.exploration_rounds, rb.exploration_rounds);
  // Publish-back runs in cluster-index order, so the merged stores are
  // byte-identical too.
  EXPECT_EQ(store_a.to_json(), store_b.to_json());
}

}  // namespace
}  // namespace bofl::fleet
