#include "fleet/fleet_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "faults/scenarios.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/process.hpp"

namespace bofl::fleet {
namespace {

FleetConfig tiny_config() {
  FleetConfig config;
  config.num_clients = 400;
  config.rounds = 10;
  config.cohort_fraction = 0.25;
  config.seed = 5;
  return config;  // default mix: one AGX/ViT cluster owned by the engine
}

TEST(FleetEngine, RejectsInvalidConfigs) {
  FleetConfig config = tiny_config();
  config.num_clients = 0;
  EXPECT_THROW(FleetEngine{config}, std::invalid_argument);
  config = tiny_config();
  config.cohort_fraction = 0.0;
  EXPECT_THROW(FleetEngine{config}, std::invalid_argument);
  config = tiny_config();
  config.clusters.push_back({nullptr, device::vit_profile(), 1.0});
  EXPECT_THROW(FleetEngine{config}, std::invalid_argument);
}

TEST(FleetEngine, CohortSizeTracksTheParticipationFraction) {
  FleetConfig config = tiny_config();
  config.rounds = 20;
  FleetEngine engine(config);
  const FleetResult result = engine.run();
  const double expected = config.cohort_fraction *
                          static_cast<double>(config.num_clients) *
                          static_cast<double>(config.rounds);
  const auto actual = static_cast<double>(result.total_participants());
  // Bernoulli draws: allow 4 standard deviations of slack.
  const double sd = std::sqrt(expected * (1.0 - config.cohort_fraction));
  EXPECT_NEAR(actual, expected, 4.0 * sd);
}

TEST(FleetEngine, ReachesExploitationAndHoldsDeadlines) {
  // Every client participates every round, so the cohort walks the
  // canonical trajectory to steady state within the run.
  FleetConfig config = tiny_config();
  config.num_clients = 200;
  config.cohort_fraction = 1.0;
  config.rounds = 40;
  FleetEngine engine(config);
  const FleetResult result = engine.run();
  ASSERT_EQ(result.rounds.size(), 40u);
  // Early rounds explore; by the end the whole cohort replays phase-3
  // entries (deadline_ratio 8 — the steady-state regime, PR 5's finding).
  EXPECT_EQ(result.rounds.front().phase1, result.rounds.front().participants);
  EXPECT_EQ(result.rounds.back().phase3, result.rounds.back().participants);
  EXPECT_GT(result.phase3_fraction(), 0.3);
  // The guardian keeps exploration safe and exploitation feasible.
  EXPECT_LT(result.miss_rate(), 0.05);
  EXPECT_GT(result.total_energy_j(), 0.0);
}

TEST(FleetEngine, OracleEntriesNeverCostMoreThanPerformant) {
  // Same seed => identical per-entry deadlines (the deadline stream hashes
  // only (seed, cluster, k)); the oracle's ILP schedule can then only save
  // energy relative to running every job flat-out.
  FleetConfig oracle = tiny_config();
  oracle.cohort_fraction = 1.0;
  oracle.rounds = 8;
  oracle.controller = FleetControllerKind::kOracle;
  FleetConfig performant = oracle;
  performant.controller = FleetControllerKind::kPerformant;
  FleetEngine oracle_engine(oracle);
  FleetEngine performant_engine(performant);
  (void)oracle_engine.run();
  (void)performant_engine.run();
  const ClusterEngine& opt = oracle_engine.cluster(0);
  const ClusterEngine& max = performant_engine.cluster(0);
  ASSERT_EQ(opt.size(), max.size());
  ASSERT_GE(opt.size(), 8u);
  for (std::size_t k = 0; k < opt.size(); ++k) {
    EXPECT_EQ(opt.entry(k).deadline_us, max.entry(k).deadline_us) << k;
    EXPECT_LE(opt.entry(k).energy_uj, max.entry(k).energy_uj) << k;
  }
}

TEST(FleetEngine, PerClientMemoryStaysFlatAcrossFleetSizes) {
  FleetConfig small = tiny_config();
  small.num_clients = 1'000;
  small.rounds = 2;
  FleetConfig large = tiny_config();
  large.num_clients = 16'000;
  large.rounds = 2;
  FleetEngine small_engine(small);
  FleetEngine large_engine(large);
  const FleetResult a = small_engine.run();
  const FleetResult b = large_engine.run();
  // The SoA layout is ~30 B/client at any scale: O(1) bytes per client,
  // no per-client heap objects.
  EXPECT_LE(a.bytes_per_client(), 64.0);
  EXPECT_LE(b.bytes_per_client(), 64.0);
  EXPECT_NEAR(a.bytes_per_client(), b.bytes_per_client(), 4.0);
  EXPECT_GT(b.peak_rss_bytes, 0u);
}

TEST(FleetEngine, StragglerCutoffBoundsTheRoundWall) {
  FleetConfig config = tiny_config();
  config.fault_plan = faults::make_scenario("straggler-heavy", 3, 100.0);
  // Deadlines are uniform in [T_min, 8 T_min] and the cutoff scales the
  // cohort MAX; a tight multiple is needed for stragglers (delayed by half
  // their OWN deadline) to actually cross it.
  config.straggler_timeout = 0.5;
  config.rounds = 12;
  FleetEngine engine(config);
  const FleetResult result = engine.run();
  std::uint64_t timed_out = 0;
  for (const FleetRoundStats& round : result.rounds) {
    const auto cutoff_us = static_cast<std::uint64_t>(
        std::llround(config.straggler_timeout *
                     static_cast<double>(round.deadline_ref_us)));
    EXPECT_LE(round.wall_us, cutoff_us) << "round " << round.round;
    timed_out += round.timed_out;
  }
  EXPECT_GT(timed_out, 0u);
  EXPECT_GT(result.timeout_rate(), 0.0);
}

TEST(FleetEngine, PublishesFleetTelemetry) {
  telemetry::Registry registry;
  telemetry::set_global_registry(&registry);
  {
    FleetEngine engine(tiny_config());
    const FleetResult result = engine.run();
    const telemetry::RegistrySnapshot snap = registry.snapshot();
    std::uint64_t participants = 0;
    double peak_rss = 0.0;
    double soa_bytes = 0.0;
    for (const auto& counter : snap.counters) {
      if (counter.name == "fleet.participants") {
        participants = counter.value;
      }
    }
    for (const auto& gauge : snap.gauges) {
      if (gauge.name == "fleet.peak_rss_bytes") {
        peak_rss = gauge.value;
      }
      if (gauge.name == "fleet.soa_bytes") {
        soa_bytes = gauge.value;
      }
    }
    EXPECT_EQ(participants, result.total_participants());
    EXPECT_GT(peak_rss, 0.0);
    EXPECT_EQ(soa_bytes, static_cast<double>(result.soa_bytes));
    bool found_depth_histogram = false;
    for (const auto& hist : snap.histograms) {
      if (hist.name == "fleet.event_queue_depth") {
        found_depth_histogram = true;
        // One observation per shard per round.
        EXPECT_EQ(hist.histogram.count,
                  static_cast<std::uint64_t>(result.num_shards) *
                      result.rounds.size());
      }
    }
    EXPECT_TRUE(found_depth_histogram);
  }
  telemetry::set_global_registry(nullptr);
}

TEST(FleetEngine, PeakRssProbeIsMonotoneAndPositive) {
  const std::uint64_t first = telemetry::peak_rss_bytes();
  EXPECT_GT(first, 0u);
  EXPECT_GE(telemetry::peak_rss_bytes(), first);
  EXPECT_GT(telemetry::current_rss_bytes(), 0u);
}

}  // namespace
}  // namespace bofl::fleet
