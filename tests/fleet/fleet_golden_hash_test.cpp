// Golden-trace regression for the kernel dispatch override: under a forced
// scalar level (the same effect as BOFL_SIMD=scalar) the fleet engine must
// reproduce the committed trace hash bit-for-bit, on every machine, at every
// compiled dispatch level.  This is the repo's proof that introducing the
// vectorized kernel layer did not silently change scalar-mode numerics —
// and that `BOFL_SIMD=scalar` is a real escape hatch, not a best-effort one.
//
// If an intentional numeric change lands (new kernel math, different
// accumulation order in the scalar reference), regenerate the constant by
// running this test and copying the printed actual hash.
#include <gtest/gtest.h>

#include <cstdint>

#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "fleet/fleet_engine.hpp"
#include "linalg/simd/dispatch.hpp"

namespace bofl::fleet {
namespace {

/// The small_config fleet from fleet_determinism_test.cpp, run at scalar
/// level: 3000 clients, 6 rounds, two device clusters, seed 11.
constexpr std::uint64_t kGoldenScalarTraceHash = 0xf377e83667a5a709ULL;

/// Pins the dispatch level for the test body and restores the ambient level
/// on exit, so ordering against other tests in this binary doesn't matter.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(linalg::simd::Level level)
      : previous_(linalg::simd::active_level()) {
    linalg::simd::force_level(level);
  }
  ~ScopedSimdLevel() { linalg::simd::force_level(previous_); }

 private:
  linalg::simd::Level previous_;
};

FleetResult run_small_fleet() {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FleetConfig config;
  config.num_clients = 3000;
  config.rounds = 6;
  config.cohort_fraction = 0.05;
  config.seed = 11;
  config.clusters.push_back({&agx, device::vit_profile(), 0.7});
  config.clusters.push_back({&tx2, device::lstm_profile(), 0.3});
  config.shards = 4;
  config.threads = 4;
  FleetEngine engine(std::move(config));
  return engine.run();
}

TEST(FleetGoldenHash, ScalarLevelReproducesCommittedTraceHash) {
  ScopedSimdLevel scalar(linalg::simd::Level::kScalar);
  const FleetResult result = run_small_fleet();
  EXPECT_EQ(result.trace_hash, kGoldenScalarTraceHash)
      << "actual hash 0x" << std::hex << result.trace_hash;
}

TEST(FleetGoldenHash, NativeLevelMatchesScalarTrace) {
  // The trace is built from integer round fields; the float kernels feed it
  // only through tolerance-insensitive decisions.  Both dispatch levels must
  // therefore land on the same committed trace for this config — a drift
  // here means an AVX2 kernel crossed a decision boundary the scalar path
  // does not.
  const FleetResult result = run_small_fleet();
  EXPECT_EQ(result.trace_hash, kGoldenScalarTraceHash)
      << "active level "
      << linalg::simd::to_string(linalg::simd::active_level())
      << ", actual hash 0x" << std::hex << result.trace_hash;
}

}  // namespace
}  // namespace bofl::fleet
