// The fleet engine's bit-identity contract: the full per-round trace is the
// same at any shard count and any worker count, clean and under FL-level
// fault plans routed through the per-shard event queues.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "faults/scenarios.hpp"
#include "fleet/fleet_engine.hpp"

namespace bofl::fleet {
namespace {

FleetConfig small_config(const device::DeviceModel* agx,
                         const device::DeviceModel* tx2) {
  FleetConfig config;
  config.num_clients = 3000;
  config.rounds = 6;
  config.cohort_fraction = 0.05;
  config.seed = 11;
  // Two clusters so the weighted assignment and per-cluster trajectory
  // extension are exercised, not just the single-cluster fast path.
  config.clusters.push_back({agx, device::vit_profile(), 0.7});
  config.clusters.push_back({tx2, device::lstm_profile(), 0.3});
  return config;
}

FleetResult run_with(FleetConfig config, std::size_t shards,
                     std::size_t threads) {
  config.shards = shards;
  config.threads = threads;
  FleetEngine engine(std::move(config));
  return engine.run();
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r], b.rounds[r]) << "round " << r;
  }
  EXPECT_EQ(a.telemetry.events_pushed, b.telemetry.events_pushed);
  EXPECT_EQ(a.telemetry.selections, b.telemetry.selections);
  EXPECT_EQ(a.telemetry.dropouts, b.telemetry.dropouts);
  EXPECT_EQ(a.telemetry.deadline_misses, b.telemetry.deadline_misses);
}

TEST(FleetDeterminism, TraceBitIdenticalAcrossShardAndThreadCounts) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  const FleetResult reference =
      run_with(small_config(&agx, &tx2), /*shards=*/1, /*threads=*/1);
  ASSERT_GT(reference.total_participants(), 0u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const FleetResult result =
          run_with(small_config(&agx, &tx2), shards, threads);
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      EXPECT_EQ(result.num_shards, shards);
      expect_identical(reference, result);
    }
  }
}

TEST(FleetDeterminism, StragglerHeavyPlanThroughEventQueuesIsShardInvariant) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FleetConfig base = small_config(&agx, &tx2);
  base.fault_plan = faults::make_scenario("straggler-heavy", 99, 100.0);
  base.straggler_timeout = 1.2;

  const FleetResult reference = run_with(base, 1, 1);
  // The plan must actually bite for this test to mean anything: late
  // reports, dropouts, and cutoff-driven timeouts all present.
  std::uint64_t stragglers = 0;
  std::uint64_t dropped = 0;
  std::uint64_t timed_out = 0;
  for (const FleetRoundStats& round : reference.rounds) {
    stragglers += round.stragglers;
    dropped += round.dropped;
    timed_out += round.timed_out;
  }
  EXPECT_GT(stragglers, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(timed_out, 0u);

  for (const std::size_t shards : {std::size_t{4}, std::size_t{16}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const FleetResult result = run_with(base, shards, threads);
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      expect_identical(reference, result);
    }
  }
}

TEST(FleetDeterminism, RerunOfSameConfigReproduces) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  const FleetResult a = run_with(small_config(&agx, &tx2), 4, 8);
  const FleetResult b = run_with(small_config(&agx, &tx2), 4, 8);
  expect_identical(a, b);
}

TEST(FleetDeterminism, SeedChangesTheTrace) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FleetConfig other = small_config(&agx, &tx2);
  other.seed = 12;
  const FleetResult a = run_with(small_config(&agx, &tx2), 2, 2);
  const FleetResult b = run_with(other, 2, 2);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

}  // namespace
}  // namespace bofl::fleet
