// Regression tests for the straggler-timeout replay-cursor resync: a report
// past the cutoff was discarded by the server, so the client must retry the
// SAME trajectory entry at its next selection.  Before the fix the client
// re-entered the next round pointing one entry past work that never
// counted, silently skipping trajectory indices.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "fleet/event_queue.hpp"
#include "fleet/fleet_engine.hpp"

namespace bofl::fleet {
namespace {

faults::FaultPlan straggler_plan(double probability, double magnitude) {
  faults::FaultSpec spec;
  spec.kind = faults::FaultKind::kStraggler;
  spec.magnitude = magnitude;
  spec.probability = probability;
  faults::FaultPlan plan;
  plan.seed = 3;
  plan.faults.push_back(spec);
  return plan;
}

TEST(CloseRound, ReportsTimedOutClientsInDrainOrder) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({900, 5});
  queue.push({100, 2});
  queue.push({300, 9});
  queue.push({900, 1});  // same arrival as client 5: id breaks the tie
  std::vector<std::uint64_t> timed_out;
  const RoundClose<std::uint64_t> close =
      close_round(queue, std::optional<std::uint64_t>{200}, &timed_out);
  EXPECT_EQ(close.arrived, 1u);
  EXPECT_EQ(close.timed_out, 3u);
  // Drain order = (time, client) order — a pure function of the event set,
  // so the resync list is shard/thread-layout invariant.
  EXPECT_EQ(timed_out, (std::vector<std::uint64_t>{9, 1, 5}));
}

TEST(TimeoutResync, TimedOutClientsRetryTheSameTrajectoryEntry) {
  // Every participant stragglers past the cutoff every round: arrivals land
  // at elapsed + 2 x deadline while the server stops at 1.2 x deadline.
  // With the cursor resync nobody's participation ever counts, so the whole
  // cohort keeps replaying trajectory entry 0 and the canonical trajectory
  // never needs a second entry.  Before the fix, cursors advanced anyway
  // and the trajectory grew one entry per round.
  FleetConfig config;
  config.num_clients = 300;
  config.rounds = 6;
  config.cohort_fraction = 1.0;
  config.seed = 5;
  config.straggler_timeout = 1.2;
  config.fault_plan = straggler_plan(/*probability=*/1.0, /*magnitude=*/3.0);
  FleetEngine engine(config);
  const FleetResult result = engine.run();
  ASSERT_EQ(result.rounds.size(), 6u);
  for (const FleetRoundStats& round : result.rounds) {
    EXPECT_GT(round.participants, 0u) << "round " << round.round;
    EXPECT_EQ(round.timed_out, round.participants) << "round " << round.round;
  }
  EXPECT_EQ(result.timeout_rate(), 1.0);
  EXPECT_EQ(engine.cluster(0).size(), 1u);
}

TEST(TimeoutResync, PartialTimeoutsStayLayoutInvariant) {
  // Half the cohort stragglers each round, so cursors diverge: some clients
  // advance, some retry.  The resync list comes out of the deterministic
  // queue drain, so the whole trace — including which clients rolled back —
  // must be bit-identical across shard/thread layouts.
  FleetConfig base;
  base.num_clients = 400;
  base.rounds = 8;
  base.cohort_fraction = 0.5;
  base.seed = 9;
  base.straggler_timeout = 1.2;
  base.fault_plan = straggler_plan(/*probability=*/0.5, /*magnitude=*/3.0);

  FleetConfig serial = base;
  serial.shards = 1;
  serial.threads = 1;
  FleetConfig sharded = base;
  sharded.shards = 7;
  sharded.threads = 4;

  FleetEngine a(serial);
  FleetEngine b(sharded);
  const FleetResult ra = a.run();
  const FleetResult rb = b.run();
  EXPECT_EQ(ra.trace_hash, rb.trace_hash);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_EQ(ra.rounds[i], rb.rounds[i]) << "round " << i;
  }
  // The run actually mixed outcomes (some arrived, some timed out).
  std::uint64_t timed_out = 0;
  std::uint64_t participants = 0;
  for (const FleetRoundStats& round : ra.rounds) {
    timed_out += round.timed_out;
    participants += round.participants;
  }
  EXPECT_GT(timed_out, 0u);
  EXPECT_GT(participants, timed_out);
}

}  // namespace
}  // namespace bofl::fleet
