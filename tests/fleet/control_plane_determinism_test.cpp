// The parallel cluster control plane's bit-identity contract: fanning the
// per-round needed-depth reduction, trajectory extension and end-of-run
// prior distillation over the worker pool must leave every trace, counter
// and warm-store byte exactly where the serial control plane
// (--serial-control-plane) puts them, at any shards x threads layout.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "faults/fleet_scenario.hpp"
#include "faults/scenarios.hpp"
#include "fleet/fleet_engine.hpp"
#include "priors/knowledge_store.hpp"

namespace bofl::fleet {
namespace {

/// Four clusters across two device models and three workloads, so the
/// control plane has genuinely concurrent per-cluster work (each cluster
/// owns its controller, RNG streams and fault channel).
FleetConfig four_cluster_config(const device::DeviceModel* agx,
                                const device::DeviceModel* tx2) {
  FleetConfig config;
  config.num_clients = 3000;
  config.rounds = 6;
  config.cohort_fraction = 0.05;
  config.seed = 23;
  config.clusters.push_back({agx, device::vit_profile(), 0.4});
  config.clusters.push_back({agx, device::resnet50_profile(), 0.2});
  config.clusters.push_back({tx2, device::lstm_profile(), 0.3});
  config.clusters.push_back({tx2, device::vit_profile(), 0.1});
  return config;
}

FleetResult run_with(FleetConfig config, std::size_t shards,
                     std::size_t threads, bool serial_control_plane) {
  config.shards = shards;
  config.threads = threads;
  config.serial_control_plane = serial_control_plane;
  FleetEngine engine(std::move(config));
  return engine.run();
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r], b.rounds[r]) << "round " << r;
  }
  EXPECT_EQ(a.telemetry.events_pushed, b.telemetry.events_pushed);
  EXPECT_EQ(a.telemetry.selections, b.telemetry.selections);
  EXPECT_EQ(a.telemetry.dropouts, b.telemetry.dropouts);
  EXPECT_EQ(a.telemetry.deadline_misses, b.telemetry.deadline_misses);
}

/// Every tested layout, parallel control plane vs the serial escape hatch
/// at the SAME layout, plus everything vs the 1x1 serial reference.
void expect_layout_sweep_identical(const FleetConfig& base) {
  const FleetResult reference = run_with(base, 1, 1, /*serial=*/true);
  ASSERT_GT(reference.total_participants(), 0u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{16}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      const FleetResult parallel = run_with(base, shards, threads, false);
      const FleetResult serial = run_with(base, shards, threads, true);
      expect_identical(reference, parallel);
      expect_identical(reference, serial);
    }
  }
}

TEST(ControlPlaneDeterminism, ParallelMatchesSerialAtEveryLayout) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  expect_layout_sweep_identical(four_cluster_config(&agx, &tx2));
}

TEST(ControlPlaneDeterminism, AllClusterTaskSwitchWorstCase) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FleetConfig base = four_cluster_config(&agx, &tx2);
  // Every cluster re-explores in the same round: the worst case for
  // concurrent extension (all controllers rebuild trajectories at once).
  faults::FleetScenario scenario;
  scenario.seed = 7;
  scenario.name = "all-switch";
  scenario.task_switches.push_back({/*round=*/2, /*cluster=*/-1, "resnet50"});
  base.scenario = scenario;

  // The switch must actually bite: pushing it past the run's last round
  // must change the trace.
  FleetConfig no_switch = base;
  no_switch.scenario->task_switches[0].round = base.rounds + 10;
  EXPECT_NE(run_with(base, 1, 1, true).trace_hash,
            run_with(no_switch, 1, 1, true).trace_hash);

  expect_layout_sweep_identical(base);
}

TEST(ControlPlaneDeterminism, StragglerHeavyFaultPlan) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FleetConfig base = four_cluster_config(&agx, &tx2);
  base.fault_plan = faults::make_scenario("straggler-heavy", 99, 100.0);
  base.straggler_timeout = 1.05;

  // The plan must bite (late reports, dropouts, cutoff timeouts) so the
  // buffered fault-event path is genuinely exercised under concurrency.
  const FleetResult reference = run_with(base, 1, 1, true);
  std::uint64_t stragglers = 0;
  std::uint64_t dropped = 0;
  std::uint64_t timed_out = 0;
  for (const FleetRoundStats& round : reference.rounds) {
    stragglers += round.stragglers;
    dropped += round.dropped;
    timed_out += round.timed_out;
  }
  EXPECT_GT(stragglers, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(timed_out, 0u);

  expect_layout_sweep_identical(base);
}

TEST(ControlPlaneDeterminism, WarmStoreBytesAreLayoutInvariant) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  // Small population, long run, big cohort: clusters reach exploitation so
  // the end-of-run publish contributes distilled snapshots, not just
  // outcome feedback (the parallelized prepare_publish path).
  FleetConfig base = four_cluster_config(&agx, &tx2);
  base.num_clients = 1200;
  base.rounds = 20;
  base.cohort_fraction = 0.5;
  base.prior_policy = priors::PriorPolicy::kVerify;

  const auto store_bytes = [&](std::size_t shards, std::size_t threads,
                               bool serial_cp) {
    priors::KnowledgeStore store;
    FleetConfig config = base;
    config.knowledge = &store;
    const FleetResult result = run_with(std::move(config), shards, threads,
                                        serial_cp);
    EXPECT_GT(result.total_participants(), 0u);
    EXPECT_GT(store.num_clusters(), 0u);
    return store.to_json();
  };

  const std::string reference = store_bytes(1, 1, /*serial=*/true);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{16}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      EXPECT_EQ(store_bytes(shards, threads, false), reference);
      EXPECT_EQ(store_bytes(shards, threads, true), reference);
    }
  }
}

}  // namespace
}  // namespace bofl::fleet
