// Property tests for fleet::CompletionQueue and close_round (ISSUE: the
// drain is the engine's event-driven round close, so the ordering rule and
// the cutoff arithmetic carry the determinism contract).  Three properties:
//   1. The drain sequence is a TOTAL order over the event set — for any
//      push permutation, it equals the sorted event set, with timestamp
//      ties broken by client id (never by arrival order).
//   2. Straggler-cutoff edges clamp exactly: an arrival AT the cutoff
//      counts, one tick past it times out and bounds the wall at the
//      cutoff; the close accounting is a pure function of the event set.
//   3. Queue depth is observability, NOT trace: two fleet runs whose shard
//      layouts produce different peak queue depths fold to the same trace
//      hash (depth tracks per-shard cohort size, so hashing it would break
//      the layout-invariance contract).
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "fleet/event_queue.hpp"
#include "fleet/fleet_engine.hpp"

namespace bofl::fleet {
namespace {

using Event = CompletionEvent<std::uint64_t>;

std::vector<Event> drain(CompletionQueue<std::uint64_t>& queue) {
  std::vector<Event> out;
  while (!queue.empty()) {
    out.push_back(queue.pop_next());
  }
  return out;
}

// Property 1: for any of 50 pseudo-random event sets (with deliberate
// timestamp collisions) and any of 20 push permutations each, the drain
// equals std::sort of the set.
TEST(CompletionQueueProperty, DrainIsTotalOrderForAnyPushPermutation) {
  Rng rng(0xC0FFEE);
  for (int set = 0; set < 50; ++set) {
    std::vector<Event> events;
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_index(40));
    for (std::size_t i = 0; i < n; ++i) {
      // Timestamps from a tiny range so ties are common; unique client ids
      // so the expected order is unambiguous.
      events.push_back(Event{rng.uniform_index(8), i});
    }
    std::vector<Event> expected = events;
    std::sort(expected.begin(), expected.end());

    std::vector<Event> permuted = events;
    for (int perm = 0; perm < 20; ++perm) {
      // Deterministic Fisher–Yates.
      for (std::size_t i = permuted.size(); i > 1; --i) {
        std::swap(permuted[i - 1], permuted[rng.uniform_index(i)]);
      }
      CompletionQueue<std::uint64_t> queue;
      for (const Event& event : permuted) {
        queue.push(event);
      }
      EXPECT_EQ(drain(queue), expected)
          << "set " << set << " permutation " << perm;
    }
  }
}

// Property 2a: the cutoff boundary is inclusive — an arrival exactly AT
// the cutoff is counted, one microsecond later is timed out.
TEST(CompletionQueueProperty, CutoffEdgeIsInclusive) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({100, 1});  // exactly at the cutoff
  queue.push({101, 2});  // one tick past
  queue.push({40, 3});
  std::vector<std::uint64_t> timed_out;
  const RoundClose<std::uint64_t> close =
      close_round(queue, std::optional<std::uint64_t>{100}, &timed_out);
  EXPECT_EQ(close.arrived, 2U);
  EXPECT_EQ(close.timed_out, 1U);
  EXPECT_EQ(close.wall, 100U);  // clamped at the cutoff, not 101
  EXPECT_EQ(timed_out, (std::vector<std::uint64_t>{2}));
}

// Property 2b: when every report beats the cutoff the wall is the last
// arrival (the server never waited out the full cutoff), and with no
// cutoff at all the wall is simply the maximum.
TEST(CompletionQueueProperty, WallIsLastArrivalWithinCutoff) {
  CompletionQueue<std::uint64_t> queue;
  queue.push({7, 1});
  queue.push({3, 2});
  const RoundClose<std::uint64_t> bounded =
      close_round(queue, std::optional<std::uint64_t>{100});
  EXPECT_EQ(bounded.wall, 7U);
  EXPECT_EQ(bounded.timed_out, 0U);

  queue.push({9, 1});
  queue.push({2, 2});
  const RoundClose<std::uint64_t> unbounded =
      close_round(queue, std::optional<std::uint64_t>{});
  EXPECT_EQ(unbounded.wall, 9U);
  EXPECT_EQ(unbounded.arrived, 2U);
}

// Property 2c: the close accounting and the timed-out id list are pure
// functions of the event set — any push permutation, same result.
TEST(CompletionQueueProperty, CloseIsPureFunctionOfEventSet) {
  Rng rng(0xBEEF);
  std::vector<Event> events;
  for (std::size_t i = 0; i < 32; ++i) {
    events.push_back(Event{rng.uniform_index(200), i});
  }
  const std::optional<std::uint64_t> cutoff{120};

  std::optional<RoundClose<std::uint64_t>> reference_close;
  std::vector<std::uint64_t> reference_ids;
  for (int perm = 0; perm < 10; ++perm) {
    for (std::size_t i = events.size(); i > 1; --i) {
      std::swap(events[i - 1], events[rng.uniform_index(i)]);
    }
    CompletionQueue<std::uint64_t> queue;
    for (const Event& event : events) {
      queue.push(event);
    }
    std::vector<std::uint64_t> ids;
    const RoundClose<std::uint64_t> close = close_round(queue, cutoff, &ids);
    if (!reference_close.has_value()) {
      reference_close = close;
      reference_ids = ids;
      continue;
    }
    EXPECT_EQ(close.wall, reference_close->wall) << "permutation " << perm;
    EXPECT_EQ(close.arrived, reference_close->arrived);
    EXPECT_EQ(close.timed_out, reference_close->timed_out);
    EXPECT_EQ(ids, reference_ids) << "timed-out list depends on push order";
  }
}

// Peak-depth bookkeeping: the high-water mark survives pops and clear()
// until reset_peak() rebases it on the live size.
TEST(CompletionQueueProperty, PeakDepthTracksHighWaterMark) {
  CompletionQueue<std::uint64_t> queue;
  for (std::uint64_t i = 0; i < 6; ++i) {
    queue.push({i, i});
  }
  (void)queue.pop_next();
  (void)queue.pop_next();
  EXPECT_EQ(queue.peak_depth(), 6U);
  queue.clear();
  EXPECT_EQ(queue.peak_depth(), 6U);
  queue.reset_peak();
  EXPECT_EQ(queue.peak_depth(), 0U);
}

// Property 3: shard layout changes the per-shard queue depths (one shard
// holds the whole cohort vs a sliver of it) but NOT the trace hash —
// depth is deliberately excluded from the folded fields.
TEST(CompletionQueueProperty, QueueDepthIsExcludedFromTraceHash) {
  const device::DeviceModel agx = device::jetson_agx();
  FleetConfig base;
  base.num_clients = 4'000;
  base.rounds = 6;
  base.cohort_fraction = 0.05;
  base.seed = 21;
  base.threads = 1;
  base.clusters.push_back({&agx, device::vit_profile(), 1.0});

  FleetConfig one_shard = base;
  one_shard.shards = 1;
  FleetConfig many_shards = base;
  many_shards.shards = 16;
  FleetEngine engine_a(std::move(one_shard));
  FleetEngine engine_b(std::move(many_shards));
  const FleetResult a = engine_a.run();
  const FleetResult b = engine_b.run();

  // One shard sees the whole cohort's events; sixteen see ~1/16 each.
  EXPECT_GT(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i], b.rounds[i]) << "round " << i;
  }
  // And the free-function fold reproduces the engine's hash from the
  // round list alone — no depth input anywhere in the signature.
  EXPECT_EQ(fold_trace_hash(a.rounds, false), a.trace_hash);
}

}  // namespace
}  // namespace bofl::fleet
