#include "common/quasirandom.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace bofl {
namespace {

/// Star-discrepancy estimate over axis-aligned boxes anchored at the
/// origin, with corners taken from the point coordinates themselves (plus
/// 1.0) — the standard corner-grid lower bound D*_N.  Both the open count
/// (points strictly inside) and the closed count (boundary included) are
/// compared against the box volume, so the supremum over box edges is not
/// missed.  O(N^3): fine for the N used here.
double star_discrepancy_2d(const std::vector<std::vector<double>>& points) {
  const double n = static_cast<double>(points.size());
  std::vector<double> xs{1.0};
  std::vector<double> ys{1.0};
  for (const auto& p : points) {
    xs.push_back(p[0]);
    ys.push_back(p[1]);
  }
  double worst = 0.0;
  for (const double x : xs) {
    for (const double y : ys) {
      double open = 0.0;
      double closed = 0.0;
      for (const auto& p : points) {
        if (p[0] < x && p[1] < y) {
          open += 1.0;
        }
        if (p[0] <= x && p[1] <= y) {
          closed += 1.0;
        }
      }
      const double volume = x * y;
      worst = std::max(worst, std::abs(open / n - volume));
      worst = std::max(worst, std::abs(closed / n - volume));
    }
  }
  return worst;
}

TEST(Halton, RadicalInverseBase2) {
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(4, 2), 0.125);
}

TEST(Halton, RadicalInverseBase3) {
  EXPECT_NEAR(HaltonSequence::radical_inverse(1, 3), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(HaltonSequence::radical_inverse(2, 3), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(HaltonSequence::radical_inverse(3, 3), 1.0 / 9.0, 1e-15);
}

TEST(Halton, PointsInUnitCube) {
  HaltonSequence seq(3);
  for (const auto& p : seq.take(500)) {
    ASSERT_EQ(p.size(), 3u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Halton, RejectsUnsupportedDimension) {
  EXPECT_THROW(HaltonSequence(0), std::invalid_argument);
  EXPECT_THROW(HaltonSequence(9), std::invalid_argument);
}

/// Quasi-random sequences should be noticeably more even than chance: every
/// cell of a coarse grid must receive points.
TEST(Halton, CoversCoarseGrid) {
  HaltonSequence seq(2);
  constexpr int kGrid = 4;
  std::set<int> cells;
  for (const auto& p : seq.take(128)) {
    const int cx = std::min(static_cast<int>(p[0] * kGrid), kGrid - 1);
    const int cy = std::min(static_cast<int>(p[1] * kGrid), kGrid - 1);
    cells.insert(cx * kGrid + cy);
  }
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(kGrid * kGrid));
}

TEST(Sobol, PointsInUnitCube) {
  SobolSequence seq(3);
  for (const auto& p : seq.take(1000)) {
    ASSERT_EQ(p.size(), 3u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Sobol, FirstDimensionIsVanDerCorput) {
  SobolSequence seq(1);
  const auto points = seq.take(5);
  EXPECT_DOUBLE_EQ(points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(points[1][0], 0.5);
  EXPECT_DOUBLE_EQ(points[2][0], 0.75);
  EXPECT_DOUBLE_EQ(points[3][0], 0.25);
  EXPECT_DOUBLE_EQ(points[4][0], 0.375);
}

TEST(Sobol, PointsAreDistinct) {
  SobolSequence seq(3);
  std::set<std::vector<double>> seen;
  for (const auto& p : seq.take(512)) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate Sobol point";
  }
}

TEST(Sobol, CoversCoarseGridFast) {
  SobolSequence seq(2);
  constexpr int kGrid = 4;
  std::set<int> cells;
  for (const auto& p : seq.take(64)) {
    const int cx = std::min(static_cast<int>(p[0] * kGrid), kGrid - 1);
    const int cy = std::min(static_cast<int>(p[1] * kGrid), kGrid - 1);
    cells.insert(cx * kGrid + cy);
  }
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(kGrid * kGrid));
}

TEST(Sobol, BalancedFirstCoordinate) {
  SobolSequence seq(3);
  int low = 0;
  const auto points = seq.take(256);
  for (const auto& p : points) {
    low += p[0] < 0.5 ? 1 : 0;
  }
  EXPECT_EQ(low, 128);  // exact balance is a defining Sobol property
}

TEST(Sobol, RejectsUnsupportedDimension) {
  EXPECT_THROW(SobolSequence(0), std::invalid_argument);
  EXPECT_THROW(SobolSequence(9), std::invalid_argument);
}

/// The property that justifies quasi-random phase-1 sampling: at N = 256
/// the low-discrepancy sequences sit well below the ~N^{-1/2} discrepancy a
/// pseudo-random sample converges at (E[D*] ≈ 0.06 here), while Sobol and
/// Halton scale as (log N)^2 / N ≈ 0.02.  The pseudo-random draw uses a
/// fixed seed, so the comparison is deterministic.
TEST(Discrepancy, SobolAndHaltonBeatPseudoRandom) {
  constexpr std::size_t kN = 256;

  SobolSequence sobol(2);
  std::vector<std::vector<double>> sobol_pts = sobol.take(kN);

  HaltonSequence halton(2);
  std::vector<std::vector<double>> halton_pts = halton.take(kN);

  Rng rng(12345);
  std::vector<std::vector<double>> random_pts(kN);
  for (auto& p : random_pts) {
    p = {rng.uniform(), rng.uniform()};
  }

  const double d_sobol = star_discrepancy_2d(sobol_pts);
  const double d_halton = star_discrepancy_2d(halton_pts);
  const double d_random = star_discrepancy_2d(random_pts);

  // Absolute quality: both sequences beat the Monte-Carlo rate by a wide
  // margin at this N.
  EXPECT_LT(d_sobol, 0.035) << "Sobol discrepancy " << d_sobol;
  EXPECT_LT(d_halton, 0.035) << "Halton discrepancy " << d_halton;
  // Relative quality: and both beat the concrete pseudo-random draw.
  EXPECT_LT(d_sobol, d_random);
  EXPECT_LT(d_halton, d_random);
  // Sanity on the estimator itself: a random sample at N=256 lands in the
  // Monte-Carlo regime, not accidentally low-discrepancy.
  EXPECT_GT(d_random, 0.035);
}

TEST(GridProjection, MapsUnitPointToIndices) {
  const auto idx = to_grid_indices({0.0, 0.5, 0.999}, {4, 4, 4});
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
  EXPECT_EQ(idx[2], 3u);
}

TEST(GridProjection, ClampsOutOfRange) {
  const auto idx = to_grid_indices({1.0, -0.2}, {5, 5});
  EXPECT_EQ(idx[0], 4u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(GridProjection, RejectsDimensionMismatch) {
  EXPECT_THROW((void)to_grid_indices({0.5}, {4, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace bofl
