#include "common/quasirandom.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bofl {
namespace {

TEST(Halton, RadicalInverseBase2) {
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(HaltonSequence::radical_inverse(4, 2), 0.125);
}

TEST(Halton, RadicalInverseBase3) {
  EXPECT_NEAR(HaltonSequence::radical_inverse(1, 3), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(HaltonSequence::radical_inverse(2, 3), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(HaltonSequence::radical_inverse(3, 3), 1.0 / 9.0, 1e-15);
}

TEST(Halton, PointsInUnitCube) {
  HaltonSequence seq(3);
  for (const auto& p : seq.take(500)) {
    ASSERT_EQ(p.size(), 3u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Halton, RejectsUnsupportedDimension) {
  EXPECT_THROW(HaltonSequence(0), std::invalid_argument);
  EXPECT_THROW(HaltonSequence(9), std::invalid_argument);
}

/// Quasi-random sequences should be noticeably more even than chance: every
/// cell of a coarse grid must receive points.
TEST(Halton, CoversCoarseGrid) {
  HaltonSequence seq(2);
  constexpr int kGrid = 4;
  std::set<int> cells;
  for (const auto& p : seq.take(128)) {
    const int cx = std::min(static_cast<int>(p[0] * kGrid), kGrid - 1);
    const int cy = std::min(static_cast<int>(p[1] * kGrid), kGrid - 1);
    cells.insert(cx * kGrid + cy);
  }
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(kGrid * kGrid));
}

TEST(Sobol, PointsInUnitCube) {
  SobolSequence seq(3);
  for (const auto& p : seq.take(1000)) {
    ASSERT_EQ(p.size(), 3u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Sobol, FirstDimensionIsVanDerCorput) {
  SobolSequence seq(1);
  const auto points = seq.take(5);
  EXPECT_DOUBLE_EQ(points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(points[1][0], 0.5);
  EXPECT_DOUBLE_EQ(points[2][0], 0.75);
  EXPECT_DOUBLE_EQ(points[3][0], 0.25);
  EXPECT_DOUBLE_EQ(points[4][0], 0.375);
}

TEST(Sobol, PointsAreDistinct) {
  SobolSequence seq(3);
  std::set<std::vector<double>> seen;
  for (const auto& p : seq.take(512)) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate Sobol point";
  }
}

TEST(Sobol, CoversCoarseGridFast) {
  SobolSequence seq(2);
  constexpr int kGrid = 4;
  std::set<int> cells;
  for (const auto& p : seq.take(64)) {
    const int cx = std::min(static_cast<int>(p[0] * kGrid), kGrid - 1);
    const int cy = std::min(static_cast<int>(p[1] * kGrid), kGrid - 1);
    cells.insert(cx * kGrid + cy);
  }
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(kGrid * kGrid));
}

TEST(Sobol, BalancedFirstCoordinate) {
  SobolSequence seq(3);
  int low = 0;
  const auto points = seq.take(256);
  for (const auto& p : points) {
    low += p[0] < 0.5 ? 1 : 0;
  }
  EXPECT_EQ(low, 128);  // exact balance is a defining Sobol property
}

TEST(Sobol, RejectsUnsupportedDimension) {
  EXPECT_THROW(SobolSequence(0), std::invalid_argument);
  EXPECT_THROW(SobolSequence(9), std::invalid_argument);
}

TEST(GridProjection, MapsUnitPointToIndices) {
  const auto idx = to_grid_indices({0.0, 0.5, 0.999}, {4, 4, 4});
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
  EXPECT_EQ(idx[2], 3u);
}

TEST(GridProjection, ClampsOutOfRange) {
  const auto idx = to_grid_indices({1.0, -0.2}, {5, 5});
  EXPECT_EQ(idx[0], 4u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(GridProjection, RejectsDimensionMismatch) {
  EXPECT_THROW((void)to_grid_indices({0.5}, {4, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace bofl
