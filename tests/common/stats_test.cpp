#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bofl {
namespace {

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-9);
  EXPECT_NEAR(normal_cdf(6.0), 1.0, 1e-9);
}

TEST(NormalQuantile, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

// psi_ei(a, b, mu, sigma) = E[(a - Y) 1{Y <= b}]: validate against a
// Monte-Carlo estimate across parameter combinations.
class PsiEiMonteCarlo
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PsiEiMonteCarlo, MatchesSimulation) {
  const auto [a, b, mu] = GetParam();
  const double sigma = 0.8;
  Rng rng(1234);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) {
    const double y = rng.normal(mu, sigma);
    if (y <= b) {
      sum += a - y;
    }
  }
  const double mc = sum / kSamples;
  EXPECT_NEAR(psi_ei(a, b, mu, sigma), mc, 0.02)
      << "a=" << a << " b=" << b << " mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsiEiMonteCarlo,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(1.0, 1.0, 0.0),
                      std::make_tuple(1.0, 0.5, 0.0),
                      std::make_tuple(-0.5, 0.5, 1.0),
                      std::make_tuple(2.0, 1.0, -1.0),
                      std::make_tuple(0.3, 2.0, 0.7)));

TEST(PsiEi, DegenerateSigmaZero) {
  EXPECT_DOUBLE_EQ(psi_ei(2.0, 1.0, 0.5, 0.0), 1.5);  // mu <= b: a - mu
  EXPECT_DOUBLE_EQ(psi_ei(2.0, 1.0, 1.5, 0.0), 0.0);  // mu > b
  EXPECT_DOUBLE_EQ(psi_ei(0.2, 1.0, 0.5, 0.0), 0.0);  // a < mu: clamped
}

TEST(PsiEi, RejectsNegativeSigma) {
  EXPECT_THROW((void)psi_ei(0.0, 0.0, 0.0, -1.0), std::invalid_argument);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double v : values) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  EXPECT_NEAR(stats.variance(), 29.76, 1e-12);
  EXPECT_NEAR(stats.sample_variance(), 37.2, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(5.0);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(VectorStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0, 6.0}), 4.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0, 6.0}), 2.0, 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of({1.0}), 0.0);
}

}  // namespace
}  // namespace bofl
