#include "common/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bofl {
namespace {

TEST(NelderMead, MinimizesQuadratic) {
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const NelderMeadResult result = nelder_mead(f, {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
  EXPECT_NEAR(result.f, 0.0, 1e-7);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto rosenbrock = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 2000;
  const NelderMeadResult result = nelder_mead(rosenbrock, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  const auto f = [](const std::vector<double>& x) {
    return std::cos(x[0]) + 0.01 * x[0] * x[0];
  };
  const NelderMeadResult result = nelder_mead(f, {2.5});
  EXPECT_NEAR(result.x[0], M_PI, 0.1);  // local minimum near pi
}

TEST(NelderMead, HandlesNanAsInfinity) {
  // A function returning NaN outside its domain must not break ordering.
  const auto f = [](const std::vector<double>& x) {
    if (x[0] < 0.0) {
      return std::nan("");
    }
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  const NelderMeadResult result = nelder_mead(f, {0.5});
  EXPECT_NEAR(result.x[0], 2.0, 1e-3);
}

TEST(NelderMead, ConvergesFlagOnEasyProblem) {
  const auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  const NelderMeadResult result = nelder_mead(f, {1.0});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(NelderMead, RespectsIterationBudget) {
  const auto rosenbrock = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 5;
  const NelderMeadResult result = nelder_mead(rosenbrock, {-1.2, 1.0}, options);
  EXPECT_LE(result.iterations, 5u);
  EXPECT_FALSE(result.converged);
}

TEST(NelderMead, RejectsEmptyStart) {
  const auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW((void)nelder_mead(f, {}), std::invalid_argument);
}

// Parameterized sweep: quadratic bowls with different centers all converge.
class NelderMeadBowl : public ::testing::TestWithParam<double> {};

TEST_P(NelderMeadBowl, FindsCenter) {
  const double center = GetParam();
  const auto f = [center](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) {
      s += (v - center) * (v - center);
    }
    return s;
  };
  const NelderMeadResult result = nelder_mead(f, {0.0, 0.0, 0.0});
  for (double v : result.x) {
    EXPECT_NEAR(v, center, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Centers, NelderMeadBowl,
                         ::testing::Values(-10.0, -1.0, 0.0, 0.5, 7.0, 42.0));

}  // namespace
}  // namespace bofl
