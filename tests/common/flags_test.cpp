#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace bofl {
namespace {

FlagParser parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return {static_cast<int>(args.size()), args.data()};
}

TEST(Flags, KeyValueForms) {
  const FlagParser flags = parse({"--a=1", "--b", "2", "--c"});
  EXPECT_EQ(flags.get("a", ""), "1");
  EXPECT_EQ(flags.get("b", ""), "2");
  EXPECT_EQ(flags.get("c", ""), "true");
  EXPECT_TRUE(flags.has("a"));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get("missing", "fallback"), "fallback");
}

TEST(Flags, PositionalArguments) {
  const FlagParser flags = parse({"first", "--k", "v", "second"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(Flags, NumericParsing) {
  const FlagParser flags = parse({"--ratio=2.5", "--rounds", "40"});
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(flags.get_int("rounds", 0), 40);
  EXPECT_DOUBLE_EQ(flags.get_double("absent", 7.5), 7.5);
  EXPECT_EQ(flags.get_int("absent", -3), -3);
}

TEST(Flags, NumericRejectsGarbage) {
  const FlagParser flags = parse({"--ratio=fast", "--rounds=many"});
  EXPECT_THROW((void)flags.get_double("ratio", 0.0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_int("rounds", 0), std::invalid_argument);
}

TEST(Flags, BooleanSwitches) {
  const FlagParser flags =
      parse({"--on", "--explicit=true", "--off=false", "--one=1"});
  EXPECT_TRUE(flags.get_bool("on"));
  EXPECT_TRUE(flags.get_bool("explicit"));
  EXPECT_FALSE(flags.get_bool("off"));
  EXPECT_TRUE(flags.get_bool("one"));
  EXPECT_FALSE(flags.get_bool("absent"));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(Flags, LastOccurrenceWins) {
  const FlagParser flags = parse({"--k=1", "--k=2"});
  EXPECT_EQ(flags.get("k", ""), "2");
}

TEST(Flags, KeysAreSorted) {
  const FlagParser flags = parse({"--zeta=1", "--alpha=2"});
  EXPECT_EQ(flags.keys(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(Flags, NegativeNumberAsValue) {
  // "-3" does not start with "--", so it is consumed as the value.
  const FlagParser flags = parse({"--offset", "-3"});
  EXPECT_EQ(flags.get_int("offset", 0), -3);
}

TEST(Flags, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

}  // namespace
}  // namespace bofl
