#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bofl {
namespace {

TEST(Units, ArithmeticOnLikeQuantities) {
  const Seconds a{2.0};
  const Seconds b{3.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 5.0);
  EXPECT_DOUBLE_EQ((b - a).value(), 1.0);
  EXPECT_DOUBLE_EQ((a * 4.0).value(), 8.0);
  EXPECT_DOUBLE_EQ((4.0 * a).value(), 8.0);
  EXPECT_DOUBLE_EQ((b / 3.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(b / a, 1.5);  // ratio is dimensionless
}

TEST(Units, Comparisons) {
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_EQ(Joules{5.0}, Joules{5.0});
  EXPECT_GE(Watts{3.0}, Watts{3.0});
}

TEST(Units, CompoundAssignment) {
  Joules e{1.0};
  e += Joules{2.0};
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
  e -= Joules{0.5};
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Units, PowerTimeEnergyRelations) {
  const Watts p{10.0};
  const Seconds t{3.0};
  const Joules e = p * t;
  EXPECT_DOUBLE_EQ(e.value(), 30.0);
  EXPECT_DOUBLE_EQ((t * p).value(), 30.0);
  EXPECT_DOUBLE_EQ((e / t).value(), 10.0);  // back to watts
  EXPECT_DOUBLE_EQ((e / p).value(), 3.0);   // back to seconds
}

TEST(Units, StreamOutputHasSuffix) {
  std::ostringstream os;
  os << Seconds{1.5} << " " << Joules{2.0} << " " << Watts{3.0} << " "
     << GigaHertz{1.38};
  EXPECT_EQ(os.str(), "1.5s 2J 3W 1.38GHz");
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Joules{}.value(), 0.0);
}

}  // namespace
}  // namespace bofl
