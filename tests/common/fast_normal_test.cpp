#include "common/fast_normal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace bofl {
namespace {

// Evaluate the batch kernel at a single point.
void fast_pair(double t, double* pdf, double* cdf) {
  normal_pdf_cdf_batch(&t, 1, pdf, cdf);
}

TEST(FastNormal, PdfMatchesReferenceAcrossTheRealLine) {
  for (double t = -37.0; t <= 37.0; t += 0.0137) {
    double pdf = 0.0;
    double cdf = 0.0;
    fast_pair(t, &pdf, &cdf);
    const double ref = normal_pdf(t);
    EXPECT_NEAR(pdf, ref, 5e-15) << "t = " << t;
    if (ref > 0.0) {
      EXPECT_NEAR(pdf / ref, 1.0, 1e-8) << "t = " << t;
    }
  }
}

TEST(FastNormal, CdfAbsoluteErrorTiny) {
  for (double t = -37.0; t <= 37.0; t += 0.0137) {
    double pdf = 0.0;
    double cdf = 0.0;
    fast_pair(t, &pdf, &cdf);
    EXPECT_NEAR(cdf, normal_cdf(t), 5e-15) << "t = " << t;
  }
}

TEST(FastNormal, CdfRelativeErrorInTheBody) {
  // Main rational branch: |t| below the series seam at 5/sqrt(2) ~ 7.07.
  for (double t = -7.0; t <= 7.0; t += 0.0041) {
    double pdf = 0.0;
    double cdf = 0.0;
    fast_pair(t, &pdf, &cdf);
    EXPECT_NEAR(cdf / normal_cdf(t), 1.0, 1e-8) << "t = " << t;
  }
}

TEST(FastNormal, CdfRelativeErrorAcrossTheTailSeam) {
  // The Mills-ratio series takes over past the seam; the hand-off region
  // is the least accurate part of the kernel.
  for (double t = -9.0; t <= -7.0; t += 0.0013) {
    double pdf = 0.0;
    double cdf = 0.0;
    fast_pair(t, &pdf, &cdf);
    const double ref = normal_cdf(t);
    ASSERT_GT(ref, 0.0);
    EXPECT_NEAR(cdf / ref, 1.0, 5e-6) << "t = " << t;
  }
}

TEST(FastNormal, SaturatesExactlyLikeLibm) {
  // Upper saturation: erfc underflows, cdf is exactly 1.
  double pdf = 0.0;
  double cdf = 0.0;
  fast_pair(8.4, &pdf, &cdf);
  EXPECT_EQ(cdf, 1.0);
  // Deep lower tail: both pdf and cdf flush to exact 0.0 (preserving
  // exact-zero acquisition ties with the libm path).
  fast_pair(-38.0, &pdf, &cdf);
  EXPECT_EQ(cdf, 0.0);
  EXPECT_EQ(pdf, 0.0);
  fast_pair(-1e300, &pdf, &cdf);
  EXPECT_EQ(cdf, 0.0);
  EXPECT_EQ(pdf, 0.0);
}

TEST(FastNormal, BatchBitwiseEqualsPerElement) {
  // Determinism contract: an element's output bits must not depend on the
  // batch size or its position (guards against divergent vectorized vs
  // scalar-epilogue code paths, e.g. FMA contraction differences).
  Rng rng(20260806);
  std::vector<double> t(1031);
  for (double& v : t) {
    v = rng.normal() * 8.0;
  }
  std::vector<double> pdf_batch(t.size());
  std::vector<double> cdf_batch(t.size());
  normal_pdf_cdf_batch(t.data(), t.size(), pdf_batch.data(), cdf_batch.data());
  for (std::size_t i = 0; i < t.size(); ++i) {
    double pdf = 0.0;
    double cdf = 0.0;
    fast_pair(t[i], &pdf, &cdf);
    EXPECT_EQ(pdf, pdf_batch[i]) << "i = " << i << " t = " << t[i];
    EXPECT_EQ(cdf, cdf_batch[i]) << "i = " << i << " t = " << t[i];
  }
}

TEST(FastNormal, SymmetryHolds) {
  for (double t = 0.0; t <= 8.0; t += 0.017) {
    double pdf_p = 0.0;
    double cdf_p = 0.0;
    double pdf_n = 0.0;
    double cdf_n = 0.0;
    fast_pair(t, &pdf_p, &cdf_p);
    fast_pair(-t, &pdf_n, &cdf_n);
    EXPECT_EQ(pdf_p, pdf_n) << "t = " << t;
    EXPECT_NEAR(cdf_p + cdf_n, 1.0, 1e-14) << "t = " << t;
  }
}

}  // namespace
}  // namespace bofl
