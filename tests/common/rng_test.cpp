#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stats.hpp"

namespace bofl {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(13);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(17);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal(3.0, 0.5));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(Rng, LognormalMean1HasUnitMean) {
  for (const double cv : {0.01, 0.05, 0.2, 0.5}) {
    Rng rng(31);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) {
      stats.add(rng.lognormal_mean1(cv));
    }
    EXPECT_NEAR(stats.mean(), 1.0, 0.01) << "cv=" << cv;
    EXPECT_NEAR(stats.stddev(), cv, 0.05 * cv + 0.003) << "cv=" << cv;
  }
}

TEST(Rng, LognormalMean1ZeroCvIsExact) {
  Rng rng(37);
  EXPECT_EQ(rng.lognormal_mean1(0.0), 1.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(30, 12);
    ASSERT_EQ(sample.size(), 12u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 12u);
    for (std::size_t v : sample) {
      EXPECT_LT(v, 30u);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(47);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(47);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4),
               std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.split();
  // The two streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix, KnownFirstOutput) {
  // Reference value from the SplitMix64 definition with state 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace bofl
