#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace bofl {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/bofl_csv_test.csv";
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter writer(path_, {"round", "energy", "label"});
    writer.write_row(std::vector<std::string>{"1", "42.5", "bofl"});
    writer.write_row(std::vector<double>{2.0, 43.25, 0.0});
    EXPECT_EQ(writer.rows_written(), 2u);
    EXPECT_EQ(writer.num_columns(), 3u);
  }
  EXPECT_EQ(read_all(path_),
            "round,energy,label\n1,42.5,bofl\n2,43.25,0\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter writer(path_, {"a", "b"});
  EXPECT_THROW(writer.write_row(std::vector<std::string>{"1"}),
               std::invalid_argument);
  EXPECT_THROW(writer.write_row(std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST_F(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST_F(CsvTest, RejectsUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::invalid_argument);
}

TEST(CsvEscape, Rfc4180Quoting) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("multi\nline"), "\"multi\nline\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST_F(CsvTest, QuotedCellsRoundTripInFile) {
  {
    CsvWriter writer(path_, {"text"});
    writer.write_row(std::vector<std::string>{"a,b \"c\""});
  }
  EXPECT_EQ(read_all(path_), "text\n\"a,b \"\"c\"\"\"\n");
}

}  // namespace
}  // namespace bofl
