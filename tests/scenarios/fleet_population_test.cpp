// Population-level safety properties over the named fleet scenarios
// (ISSUE: churn, diurnal waves, workload switches and battery budgets must
// disturb the population, never the guarantees).  Each scenario runs the
// sharded fleet engine through the FleetPopulationRunner; the properties
// asserted here are the contract:
//   1. Never-miss: no trajectory entry that was pessimistically feasible
//      (Eqn. 2 under the worst window effect) before it ran misses its
//      deadline — under ANY population dynamics.
//   2. Monotone hypervolume per cluster within each workload generation.
//   3. Bounded energy regret per participation vs the steady population.
//   4. Bit-identical traces across shard x thread layouts AND across
//      stepped vs single-shot execution (churn draws live in pure-hash RNG
//      domains, so population dynamics cannot depend on the layout).
//   5. Each scenario actually exercises its mechanism (no vacuous pass):
//      churn departs/rejoins/resets, diurnal swings the cohort, a task
//      switch bumps every cluster's generation, battery budgets block.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fleet_scenario.hpp"
#include "priors/knowledge_store.hpp"
#include "scenarios/fleet_scenario_runner.hpp"

namespace bofl::scenarios {
namespace {

FleetPopulationOptions quick_options() {
  FleetPopulationOptions opts;
  opts.num_clients = 8'000;
  opts.rounds = 20;
  opts.cohort_fraction = 0.01;
  opts.seed = 11;
  opts.threads = 1;
  return opts;
}

class NamedFleetScenario : public ::testing::TestWithParam<std::string> {};

TEST_P(NamedFleetScenario, SafetyPropertiesHold) {
  const FleetPopulationResult result =
      run_named_fleet_population(GetParam(), quick_options());
  ASSERT_EQ(result.fleet.rounds.size(), 20U);
  EXPECT_EQ(result.check_no_feasible_miss(), "");
  EXPECT_EQ(result.check_monotone_hypervolume(), "");
  // Not vacuous: the population must have trained.
  EXPECT_GT(result.fleet.total_participants(), 0U);
  for (const std::vector<ClusterRoundSample>& samples : result.clusters) {
    ASSERT_FALSE(samples.empty());
    EXPECT_GT(samples.back().entries, 0U)
        << "a cluster never extended its trajectory";
  }
}

TEST_P(NamedFleetScenario, EnergyRegretBounded) {
  FleetPopulationOptions opts = quick_options();
  const FleetPopulationResult run =
      run_named_fleet_population(GetParam(), opts);
  const FleetPopulationResult steady =
      run_named_fleet_population("steady", opts);
  EXPECT_EQ(check_energy_regret(run, steady, 1.5), "");
}

INSTANTIATE_TEST_SUITE_P(AllNamed, NamedFleetScenario,
                         ::testing::ValuesIn(faults::fleet_scenario_names()));

// Property 4: the trace hash is invariant across shard and thread layouts
// and across stepped vs single-shot execution.  Churn is the scenario with
// the most per-client draws, so it is the one that would betray a layout
// dependency first.
TEST(FleetScenarioDeterminism, BitIdenticalAcrossLayoutsAndStepping) {
  FleetPopulationOptions base = quick_options();
  base.rounds = 12;
  const FleetPopulationResult reference =
      run_named_fleet_population("churn", base);
  ASSERT_NE(reference.fleet.trace_hash, 0U);

  struct Layout {
    std::size_t shards;
    std::size_t threads;
    bool stepped;
  };
  const Layout layouts[] = {
      {1, 1, true}, {16, 1, true}, {1, 8, false}, {16, 8, false}};
  for (const Layout& layout : layouts) {
    FleetPopulationOptions opts = base;
    opts.shards = layout.shards;
    opts.threads = layout.threads;
    opts.stepped = layout.stepped;
    const FleetPopulationResult result =
        run_named_fleet_population("churn", opts);
    EXPECT_EQ(result.fleet.trace_hash, reference.fleet.trace_hash)
        << "shards=" << layout.shards << " threads=" << layout.threads
        << " stepped=" << layout.stepped;
    EXPECT_EQ(result.fleet.total_departed(), reference.fleet.total_departed());
    EXPECT_EQ(result.fleet.total_rejoined(), reference.fleet.total_rejoined());
    EXPECT_EQ(result.fleet.total_resets(), reference.fleet.total_resets());
  }
}

// Property 5, per scenario: the mechanism actually fires.
TEST(FleetScenarioMechanisms, ChurnDepartsRejoinsAndResets) {
  const FleetPopulationResult result =
      run_named_fleet_population("churn", quick_options());
  EXPECT_GT(result.fleet.total_departed(), 0U);
  EXPECT_GT(result.fleet.total_rejoined(), 0U);
  EXPECT_GT(result.fleet.total_resets(), 0U);
  // Churn starts at round 2: the first two rounds are a steady population.
  EXPECT_EQ(result.fleet.rounds[0].departed, 0U);
  EXPECT_EQ(result.fleet.rounds[1].departed, 0U);
  // The active population shrinks below the full fleet once churn bites.
  const std::uint32_t full =
      static_cast<std::uint32_t>(quick_options().num_clients);
  EXPECT_EQ(result.fleet.rounds[0].active_clients, full);
  EXPECT_LT(result.fleet.rounds.back().active_clients, full);
}

TEST(FleetScenarioMechanisms, DiurnalSwingsTheCohort) {
  const FleetPopulationResult result =
      run_named_fleet_population("diurnal", quick_options());
  std::uint32_t smallest = UINT32_MAX;
  std::uint32_t largest = 0;
  for (const fleet::FleetRoundStats& round : result.fleet.rounds) {
    smallest = std::min(smallest, round.participants);
    largest = std::max(largest, round.participants);
  }
  // +-60% around an expected cohort of 80: trough and peak must separate
  // far beyond sampling noise.
  EXPECT_GT(largest, 2 * smallest)
      << "diurnal wave did not move the cohort (min " << smallest << ", max "
      << largest << ")";
}

TEST(FleetScenarioMechanisms, TaskSwitchBumpsEveryGeneration) {
  const FleetPopulationResult result =
      run_named_fleet_population("task-switch", quick_options());
  for (const std::vector<ClusterRoundSample>& samples : result.clusters) {
    EXPECT_EQ(samples.front().generation, 0U);
    EXPECT_EQ(samples.back().generation, 1U)
        << "a cluster never switched workloads";
  }
  // The switch forces re-exploration: the new generation restarts its
  // trajectory from entry 0.
  bool saw_restart = false;
  for (const std::vector<ClusterRoundSample>& samples : result.clusters) {
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].generation != samples[i - 1].generation &&
          samples[i].entries < samples[i - 1].entries) {
        saw_restart = true;
      }
    }
  }
  EXPECT_TRUE(saw_restart) << "no cluster restarted its trajectory";
}

TEST(FleetScenarioMechanisms, BatteryBudgetBlocksDrainedClients) {
  const FleetPopulationResult result =
      run_named_fleet_population("battery-budget", quick_options());
  EXPECT_GT(result.fleet.total_battery_blocked(), 0U);
  // Blocked clients sit the round out; they are never counted as misses.
  EXPECT_EQ(result.check_no_feasible_miss(), "");
}

// Churned clients that lose their state re-admit through the knowledge
// store: a steady run populates the store, then a churn run warm-starts
// from it.  The safety properties must survive the warm start.
TEST(FleetScenarioPriors, ChurnResetsReadmitThroughWarmStore) {
  FleetPopulationOptions opts = quick_options();
  opts.stepped = false;  // publish-back happens once per run() call
  // Deep trajectories: a snapshot is only distilled once the canonical
  // controller reaches exploitation, which needs ~17+ entries.
  opts.num_clients = 2'000;
  opts.cohort_fraction = 0.5;
  opts.rounds = 30;
  priors::KnowledgeStore store;
  opts.knowledge = &store;
  opts.prior_policy = priors::PriorPolicy::kVerify;
  const FleetPopulationResult cold =
      run_named_fleet_population("steady", opts);
  EXPECT_EQ(cold.fleet.warm_clusters, 0U);  // store started empty
  ASSERT_GT(store.num_clusters(), 0U) << "steady run published nothing";

  const FleetPopulationResult warm =
      run_named_fleet_population("churn", opts);
  EXPECT_GT(warm.fleet.warm_clusters, 0U) << "churn run did not warm-start";
  EXPECT_GT(warm.fleet.total_resets(), 0U);
  EXPECT_EQ(warm.check_no_feasible_miss(), "");
  EXPECT_EQ(warm.check_monotone_hypervolume(), "");
}

}  // namespace
}  // namespace bofl::scenarios
