// Pins the fault-event telemetry schema.  Downstream tooling (the nightly
// CI job, notebooks reading run JSONL) greps for "fault" lines; this test
// freezes their exact bytes so a schema change is a conscious decision.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl::faults {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FaultEventSchema, GoldenBytes) {
  const std::string path = ::testing::TempDir() + "/fault_events.jsonl";
  telemetry::Registry registry;
  {
    telemetry::RunRecorder recorder(registry, path);
    telemetry::install_global_recorder(&recorder);
    emit_fault_event({FaultKind::kThermalStorm, 3, 0, 127.5, 1.6});
    emit_fault_event({FaultKind::kSensorDropout, -1, 2, 40.25, 4.0});
    emit_fault_event({FaultKind::kDeadlineJitter, 7, -1, 0.0, 0.125});
    telemetry::install_global_recorder(nullptr);
  }
  EXPECT_EQ(registry.counter("faults.events").total(), 3u);
  EXPECT_EQ(
      read_file(path),
      "{\"event\":\"fault\",\"seq\":0,\"kind\":\"thermal-storm\","
      "\"round\":3,\"client\":0,\"time_s\":127.5,\"magnitude\":1.6}\n"
      "{\"event\":\"fault\",\"seq\":1,\"kind\":\"sensor-dropout\","
      "\"round\":-1,\"client\":2,\"time_s\":40.25,\"magnitude\":4}\n"
      "{\"event\":\"fault\",\"seq\":2,\"kind\":\"deadline-jitter\","
      "\"round\":7,\"client\":-1,\"time_s\":0,\"magnitude\":0.125}\n");
}

TEST(FaultEventSchema, PlanJsonRoundTripIsByteStable) {
  FaultPlan plan;
  plan.name = "golden";
  plan.seed = 42;
  FaultSpec storm;
  storm.kind = FaultKind::kThermalStorm;
  storm.start_s = 10.0;
  storm.duration_s = 5.0;
  storm.period_s = 30.0;
  storm.magnitude = 1.5;
  plan.faults.push_back(storm);
  FaultSpec straggler;
  straggler.kind = FaultKind::kStraggler;
  straggler.start_s = 0.0;
  straggler.duration_s = 0.0;
  straggler.magnitude = 2.0;
  straggler.probability = 0.25;
  straggler.client = 1;
  plan.faults.push_back(straggler);

  const std::string once = plan.to_json();
  const FaultPlan reparsed = FaultPlan::from_json(once);
  EXPECT_EQ(reparsed, plan);
  EXPECT_EQ(reparsed.to_json(), once);
  EXPECT_EQ(
      once,
      "{\"seed\":42,\"name\":\"golden\",\"faults\":["
      "{\"kind\":\"thermal-storm\",\"start_s\":10,\"duration_s\":5,"
      "\"period_s\":30,\"magnitude\":1.5,\"probability\":1,\"client\":-1},"
      "{\"kind\":\"straggler\",\"start_s\":0,\"duration_s\":0,"
      "\"period_s\":0,\"magnitude\":2,\"probability\":0.25,\"client\":1}]}");
}

}  // namespace
}  // namespace bofl::faults
