#include "scenarios/scenario_runner.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "bo/mbo_engine.hpp"
#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/mbo_cost.hpp"
#include "core/task.hpp"
#include "device/device_model.hpp"
#include "device/frequency.hpp"
#include "faults/scenarios.hpp"
#include "pareto/hypervolume.hpp"
#include "priors/snapshot.hpp"

namespace bofl::scenarios {

namespace {

device::DeviceModel make_model(const std::string& device) {
  if (device == "agx") {
    return device::jetson_agx();
  }
  if (device == "tx2") {
    return device::jetson_tx2();
  }
  throw std::invalid_argument("unknown device: " + device);
}

core::FlTaskSpec make_task(const std::string& task,
                           const std::string& device_name) {
  if (task == "vit") {
    return core::cifar10_vit_task(device_name);
  }
  if (task == "resnet50") {
    return core::imagenet_resnet50_task(device_name);
  }
  if (task == "lstm") {
    return core::imdb_lstm_task(device_name);
  }
  throw std::invalid_argument("unknown task: " + task);
}

/// Fixed hypervolume reference: 1.5x the component-wise worst true per-job
/// (energy, latency) over the whole DVFS space.  Fixed across rounds so
/// per-round hypervolumes are comparable (the engine's own reference can
/// drift while phase 1 is still discovering the worst observation).
pareto::Point2 fixed_reference(const device::DeviceModel& model,
                               const device::WorkloadProfile& profile) {
  pareto::Point2 worst;
  const device::DvfsSpace& space = model.space();
  for (std::size_t flat = 0; flat < space.size(); ++flat) {
    const device::DvfsConfig config = space.from_flat(flat);
    worst.f1 = std::max(worst.f1, model.energy(profile, config).value());
    worst.f2 = std::max(worst.f2, model.latency(profile, config).value());
  }
  return {1.5 * worst.f1, 1.5 * worst.f2};
}

}  // namespace

Joules DeviceScenarioResult::total_energy() const {
  return task.total_training_energy() + task.total_mbo_energy();
}

std::string DeviceScenarioResult::check_no_feasible_miss() const {
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const DeviceRoundReport& report = rounds[i];
    const core::RoundTrace& trace = task.rounds[i];
    if (report.feasible_at_start && !trace.deadline_met()) {
      std::ostringstream out;
      out << "round " << report.index << " was pessimistically feasible "
          << "(T_pess " << report.t_pessimistic_s << " s, deadline "
          << trace.deadline.value() << " s) but missed by "
          << trace.overrun().value() << " s";
      return out.str();
    }
  }
  return "";
}

std::string DeviceScenarioResult::check_monotone_hypervolume() const {
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    if (rounds[i].hypervolume + 1e-9 < rounds[i - 1].hypervolume) {
      std::ostringstream out;
      out << "hypervolume regressed at round " << rounds[i].index << ": "
          << rounds[i - 1].hypervolume << " -> " << rounds[i].hypervolume;
      return out.str();
    }
  }
  return "";
}

DeviceScenarioResult run_device_scenario(const faults::FaultPlan& plan,
                                         const DeviceScenarioOptions& opts) {
  const device::DeviceModel model = make_model(opts.device);
  core::FlTaskSpec task = make_task(opts.task, model.name());
  task.num_rounds = opts.rounds;
  // Same schedule derivation as bofl_sim, so a scenario test reproduces
  // exactly what `bofl_sim --scenario` runs.
  const std::vector<core::RoundSpec> rounds =
      core::make_rounds(task, model, opts.ratio, opts.seed ^ 0xD1CE);

  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(model.name());
  options.tau = opts.tau;
  core::BoflController controller(model, task.profile, device::NoiseModel{},
                                  options, opts.seed);

  faults::FaultInjector injector(plan, opts.seed);
  std::unique_ptr<faults::DeviceFaultChannel> channel;
  if (!injector.empty()) {
    channel = injector.make_device_channel(0);
    controller.install_fault_model(channel.get());
  }
  if (opts.prior != nullptr) {
    controller.apply_prior(*opts.prior, opts.prior_policy);
  }

  const pareto::Point2 ref = fixed_reference(model, task.profile);
  const device::DvfsConfig x_max = model.space().max_config();

  DeviceScenarioResult result;
  result.plan = injector.plan();
  result.task.rounds.reserve(rounds.size());
  result.rounds.reserve(rounds.size());
  for (const core::RoundSpec& spec : rounds) {
    DeviceRoundReport report;
    report.index = spec.index;

    // Pessimistic Eqn. 2 before the round runs: the worst combined fault
    // effect any job inside [now, now + deadline) could see.
    const double t0 = controller.sim_time().value();
    faults::DeviceFaultChannel::WorstCase worst;
    if (channel != nullptr) {
      worst = channel->worst_case_in(t0, t0 + spec.deadline.value());
    }
    const device::DvfsConfig capped =
        device::clamp_config(model.space(), x_max, worst.config_cap);
    report.t_pessimistic_s = model.latency(task.profile, capped).value() *
                             worst.latency_multiplier;
    const double margin = options.deadline_safety_margin;
    const double reserve =
        opts.tau.value() +
        options.first_job_allowance * report.t_pessimistic_s;
    report.feasible_at_start =
        static_cast<double>(spec.num_jobs) * report.t_pessimistic_s *
            (1.0 + margin) <=
        spec.deadline.value() - reserve;

    result.task.rounds.push_back(controller.run_round(spec));

    report.hypervolume =
        pareto::hypervolume_2d(controller.engine().observed_front(), ref);
    result.rounds.push_back(report);

    if (channel != nullptr) {
      for (faults::FaultEvent& event : channel->drain_events(spec.index)) {
        result.events.push_back(event);
      }
    }
  }
  result.prior_state = controller.prior_state();
  result.snapshot = priors::distill(controller, opts.rounds);
  return result;
}

DeviceScenarioResult run_named_device_scenario(
    const std::string& name, const DeviceScenarioOptions& opts) {
  const device::DeviceModel model = make_model(opts.device);
  core::FlTaskSpec task = make_task(opts.task, model.name());
  task.num_rounds = opts.rounds;
  const std::vector<core::RoundSpec> rounds =
      core::make_rounds(task, model, opts.ratio, opts.seed ^ 0xD1CE);
  double horizon = 0.0;
  for (const core::RoundSpec& spec : rounds) {
    horizon += spec.deadline.value();
  }
  return run_device_scenario(
      faults::make_scenario(name, opts.seed ^ 0xFA17ULL, horizon), opts);
}

fl::FlSimulationResult run_fleet_scenario(const std::string& name,
                                          const FleetScenarioOptions& opts) {
  static const device::DeviceModel model = device::jetson_agx();

  fl::FlSimulationConfig config;
  config.num_clients = opts.num_clients;
  config.clients_per_round = opts.clients_per_round;
  config.rounds = opts.rounds;
  config.shard_examples = 64;
  config.test_examples = 128;
  config.seed = opts.seed;
  config.threads = opts.threads;
  config.straggler_timeout = opts.straggler_timeout;
  config.backfill_dropouts = opts.backfill_dropouts;

  // Device episode windows scale with the per-client simulated horizon:
  // rounds x (deadline_ratio x the round's minimum time).
  const std::int64_t jobs =
      config.epochs * static_cast<std::int64_t>(config.shard_examples) /
      config.minibatch_size;
  const double horizon =
      static_cast<double>(config.rounds) * config.deadline_ratio *
      model.round_t_min(config.profile, jobs).value();
  config.fault_plan =
      faults::make_scenario(name, opts.seed ^ 0xFA17ULL, horizon);

  fl::FederatedSimulation sim(model, config);
  return sim.run();
}

}  // namespace bofl::scenarios
