#include "scenarios/fleet_scenario_runner.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "bo/mbo_engine.hpp"
#include "core/bofl_controller.hpp"
#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "pareto/hypervolume.hpp"

namespace bofl::scenarios {

namespace {

/// Fixed hypervolume reference for one (cluster, generation): 1.5x the
/// component-wise worst true per-job (energy, latency) over the cluster's
/// CURRENT cost surface.  Recomputed after a workload switch — the new
/// surface has its own worst point, and cross-generation areas are never
/// compared anyway.
pareto::Point2 fixed_reference(const fleet::ClusterEngine& cluster) {
  pareto::Point2 worst;
  const device::FlatPerfTable& table = cluster.flat_table();
  for (std::size_t flat = 0; flat < table.size(); ++flat) {
    worst.f1 = std::max(worst.f1, table.energy_j[flat]);
    worst.f2 = std::max(worst.f2, table.latency_s[flat]);
  }
  return {1.5 * worst.f1, 1.5 * worst.f2};
}

/// Per-cluster audit cursor: how far into the trajectory the never-miss
/// sweep has looked, and which generation that position belongs to (a
/// workload switch clears the trajectory, so the cursor restarts).
struct AuditCursor {
  std::size_t generation = 0;
  std::size_t next_entry = 0;
  pareto::Point2 reference;
  bool reference_valid = false;
};

void audit_cluster(const fleet::ClusterEngine& cluster, std::int64_t round,
                   AuditCursor& cursor, std::vector<ClusterRoundSample>& out,
                   std::vector<std::string>& violations) {
  if (cluster.generation() != cursor.generation) {
    cursor.generation = cluster.generation();
    cursor.next_entry = 0;
    cursor.reference_valid = false;
  }
  for (; cursor.next_entry < cluster.size(); ++cursor.next_entry) {
    const fleet::ClusterEngine::RoundEntry& entry =
        cluster.entry(cursor.next_entry);
    if (entry.feasible && entry.elapsed_us > entry.deadline_us) {
      std::ostringstream msg;
      msg << "cluster " << cluster.index() << " gen " << cursor.generation
          << " entry " << cursor.next_entry << " (round " << round
          << "): pessimistically feasible but elapsed " << entry.elapsed_us
          << " us > deadline " << entry.deadline_us << " us";
      violations.push_back(msg.str());
    }
  }
  ClusterRoundSample sample;
  sample.round = round;
  sample.generation = cursor.generation;
  sample.entries = cluster.size();
  if (const core::BoflController* controller =
          cluster.canonical_controller()) {
    if (!cursor.reference_valid) {
      cursor.reference = fixed_reference(cluster);
      cursor.reference_valid = true;
    }
    sample.hypervolume = pareto::hypervolume_2d(
        controller->engine().observed_front(), cursor.reference);
  }
  out.push_back(sample);
}

}  // namespace

std::string FleetPopulationResult::check_no_feasible_miss() const {
  return feasible_misses.empty() ? std::string{} : feasible_misses.front();
}

std::string FleetPopulationResult::check_monotone_hypervolume() const {
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const std::vector<ClusterRoundSample>& samples = clusters[c];
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].generation != samples[i - 1].generation) {
        continue;  // new surface, areas not comparable
      }
      if (samples[i].hypervolume + 1e-9 < samples[i - 1].hypervolume) {
        std::ostringstream msg;
        msg << "cluster " << c << " gen " << samples[i].generation
            << ": hypervolume regressed at round " << samples[i].round << ": "
            << samples[i - 1].hypervolume << " -> " << samples[i].hypervolume;
        return msg.str();
      }
    }
  }
  return {};
}

double FleetPopulationResult::total_energy_j() const {
  return fleet.total_energy_j() + fleet.total_mbo_energy_j();
}

double FleetPopulationResult::energy_per_participation_j() const {
  const std::uint64_t participations = fleet.total_participants();
  return participations == 0
             ? 0.0
             : total_energy_j() / static_cast<double>(participations);
}

FleetPopulationResult run_fleet_population(
    const faults::FleetScenario& scenario,
    const FleetPopulationOptions& opts) {
  // The models must outlive the engine; they live on this frame, the
  // engine below.
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();

  fleet::FleetConfig config;
  config.num_clients = opts.num_clients;
  config.cohort_fraction = opts.cohort_fraction;
  config.jobs_per_round = opts.jobs_per_round;
  config.deadline_ratio = opts.deadline_ratio;
  config.seed = opts.seed;
  config.shards = opts.shards;
  config.threads = opts.threads;
  // Pinned: participants replay canonical entries exactly, so population
  // miss counters reduce to the trajectory verdicts the audit sweeps.
  config.heterogeneity_cv = 0.0;
  config.round_noise_cv = 0.0;
  config.scenario = scenario;
  config.knowledge = opts.knowledge;
  config.prior_policy = opts.prior_policy;
  if (opts.mix == "agx-vit") {
    config.clusters.push_back({&agx, device::vit_profile(), 1.0});
  } else if (opts.mix == "edge-mix") {
    config.clusters.push_back({&agx, device::vit_profile(), 0.40});
    config.clusters.push_back({&agx, device::resnet50_profile(), 0.20});
    config.clusters.push_back({&tx2, device::lstm_profile(), 0.25});
    config.clusters.push_back({&tx2, device::vit_profile(), 0.15});
  } else {
    throw std::invalid_argument("unknown fleet mix: " + opts.mix);
  }
  const std::int64_t steps = opts.stepped ? opts.rounds : 1;
  config.rounds = opts.stepped ? 1 : opts.rounds;

  fleet::FleetEngine engine(std::move(config));

  FleetPopulationResult result;
  result.scenario = scenario;
  result.clusters.resize(engine.num_clusters());
  std::vector<AuditCursor> cursors(engine.num_clusters());

  std::vector<fleet::FleetRoundStats> all_rounds;
  for (std::int64_t step = 0; step < steps; ++step) {
    fleet::FleetResult chunk = engine.run();
    all_rounds.insert(all_rounds.end(), chunk.rounds.begin(),
                      chunk.rounds.end());
    const std::int64_t round = all_rounds.empty() ? 0 : all_rounds.back().round;
    for (std::size_t c = 0; c < engine.num_clusters(); ++c) {
      audit_cluster(engine.cluster(c), round, cursors[c], result.clusters[c],
                    result.feasible_misses);
    }
    if (step == steps - 1) {
      // Footprint, telemetry and the per-cluster totals of the final chunk
      // carry over; the round list and its hash are rebuilt from the full
      // concatenation below.
      result.fleet = std::move(chunk);
    }
  }
  result.fleet.rounds = std::move(all_rounds);
  result.fleet.trace_hash = fleet::fold_trace_hash(result.fleet.rounds, true);
  return result;
}

FleetPopulationResult run_named_fleet_population(
    const std::string& name, const FleetPopulationOptions& opts) {
  return run_fleet_population(faults::make_fleet_scenario(name, opts.seed),
                              opts);
}

std::string check_energy_regret(const FleetPopulationResult& run,
                                const FleetPopulationResult& steady,
                                double bound_factor) {
  const double run_cost = run.energy_per_participation_j();
  const double steady_cost = steady.energy_per_participation_j();
  if (steady_cost <= 0.0) {
    return "steady run has no participations to compare against";
  }
  if (run_cost > bound_factor * steady_cost) {
    std::ostringstream msg;
    msg << "energy regret exceeded: " << run_cost
        << " J/participation under scenario '" << run.scenario.name
        << "' vs steady " << steady_cost << " J/participation (bound "
        << bound_factor << "x)";
    return msg.str();
  }
  return {};
}

}  // namespace bofl::scenarios
