// bofl_scenarios — the nightly randomized scenario sweep.
//
//   bofl_scenarios [--seed N] [--rounds R] [--out events.jsonl]
//
// Runs every named fault scenario (device mode) plus a straggler-heavy
// fleet run at the given seed, checks the robustness invariants the
// scenario tests pin at fixed seeds, and exits nonzero on any violation.
// CI derives --seed from the date, so the sweep walks a fresh slice of the
// fault space every night while staying reproducible from the logged seed.
// --out streams the fault events and per-scenario verdicts as JSON Lines
// (the CI artifact).
#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "faults/fault_injector.hpp"
#include "faults/scenarios.hpp"
#include "scenarios/scenario_runner.hpp"
#include "telemetry/run_recorder.hpp"

int main(int argc, char** argv) {
  using namespace bofl;
  const FlagParser flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::int64_t rounds = flags.get_int("rounds", 16);
  const std::string out_path = flags.get("out", "");

  telemetry::Registry registry;
  std::unique_ptr<telemetry::RunRecorder> recorder;
  if (!out_path.empty()) {
    recorder = std::make_unique<telemetry::RunRecorder>(registry, out_path);
    telemetry::install_global_recorder(recorder.get());
  }

  scenarios::DeviceScenarioOptions opts;
  opts.rounds = rounds;
  opts.seed = seed;
  std::printf("bofl_scenarios: seed=%llu rounds=%lld\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(rounds));

  int failures = 0;
  const double clean_energy =
      scenarios::run_named_device_scenario("clean", opts)
          .total_energy()
          .value();
  for (const std::string& name : faults::scenario_names()) {
    const scenarios::DeviceScenarioResult result =
        scenarios::run_named_device_scenario(name, opts);
    for (const faults::FaultEvent& event : result.events) {
      faults::emit_fault_event(event);
    }
    const std::string miss = result.check_no_feasible_miss();
    const std::string hv = result.check_monotone_hypervolume();
    const double energy = result.total_energy().value();
    const bool energy_ok = energy <= 4.0 * clean_energy;
    const bool ok = miss.empty() && hv.empty() && energy_ok;
    failures += ok ? 0 : 1;
    std::printf("%-20s %-4s events=%zu energy=%.0fJ (%.2fx clean)\n",
                name.c_str(), ok ? "ok" : "FAIL", result.events.size(),
                energy, energy / clean_energy);
    if (!miss.empty()) {
      std::printf("  feasible-miss: %s\n", miss.c_str());
    }
    if (!hv.empty()) {
      std::printf("  hypervolume: %s\n", hv.c_str());
    }
    if (!energy_ok) {
      std::printf("  energy regret above 4x clean\n");
    }
    if (recorder) {
      telemetry::JsonValue verdict = telemetry::JsonValue::object();
      verdict.set("scenario", name)
          .set("seed", seed)
          .set("ok", ok)
          .set("fault_events", result.events.size())
          .set("energy_j", energy)
          .set("energy_vs_clean", energy / clean_energy);
      if (!miss.empty()) {
        verdict.set("feasible_miss", miss);
      }
      if (!hv.empty()) {
        verdict.set("hypervolume_regression", hv);
      }
      recorder->emit("scenario_verdict", std::move(verdict));
    }
  }

  // Fleet sweep: stragglers, dropouts and backfill through the server loop
  // (fault events land in the recorder via the simulation itself).
  scenarios::FleetScenarioOptions fleet;
  fleet.seed = seed ^ 0xF1EE7ULL;
  const fl::FlSimulationResult fl_result =
      scenarios::run_fleet_scenario("straggler-heavy", fleet);
  bool fleet_ok = fl_result.rounds.size() == static_cast<std::size_t>(fleet.rounds);
  for (const fl::FlRoundStats& stats : fl_result.rounds) {
    fleet_ok = fleet_ok && stats.participants > 0 &&
               stats.accepted <= stats.participants &&
               stats.round_wall.value() <=
                   fleet.straggler_timeout * stats.deadline.value() + 1e-9;
  }
  failures += fleet_ok ? 0 : 1;
  std::printf("%-20s %-4s accuracy=%.3f\n", "fleet:straggler",
              fleet_ok ? "ok" : "FAIL", fl_result.final_accuracy());

  if (recorder) {
    recorder->emit_summary();
    std::printf("events written to %s (%zu lines)\n", out_path.c_str(),
                recorder->events_written());
    telemetry::install_global_recorder(nullptr);
  }
  std::printf("%s (%d failure%s)\n", failures == 0 ? "PASS" : "FAIL",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
