// The FleetScenario JSON dialect: byte-stable round-trips, validation
// errors, the named-scenario registry, and the --list-scenarios catalogs
// both drivers print from.
#include <algorithm>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "faults/fleet_scenario.hpp"
#include "faults/scenarios.hpp"

namespace bofl::faults {
namespace {

// The byte-stability contract: to_json emits every section with explicit
// defaults, so parse(dump) == dump byte for byte — the same guarantee the
// FaultPlan dialect gives, extended to population specs.
TEST(FleetScenarioSchema, NamedScenariosRoundTripByteStably) {
  for (const std::string& name : fleet_scenario_names()) {
    const FleetScenario scenario = make_fleet_scenario(name, 42);
    const std::string text = scenario.to_json();
    const FleetScenario parsed = FleetScenario::from_json(text);
    EXPECT_EQ(parsed, scenario) << name;
    EXPECT_EQ(parsed.to_json(), text) << name;
  }
}

TEST(FleetScenarioSchema, FullSpecRoundTripsByteStably) {
  FleetScenario scenario;
  scenario.seed = 7;
  scenario.name = "kitchen-sink";
  scenario.churn = {0.02, 0.10, 0.50, 3};
  scenario.diurnal = {12, 0.40, 0.25};
  scenario.task_switches.push_back({5, -1, "resnet50"});
  scenario.task_switches.push_back({9, 0, "lstm"});
  scenario.battery = {250.0, 30.0, 0.75};
  FaultSpec fault;
  fault.kind = FaultKind::kThermalStorm;
  fault.start_s = 10.0;
  fault.duration_s = 40.0;
  fault.magnitude = 1.4;
  scenario.fault_plan.faults.push_back(fault);
  scenario.fault_plan.seed = scenario.seed;
  scenario.fault_plan.name = scenario.name;

  const std::string text = scenario.to_json();
  const FleetScenario parsed = FleetScenario::from_json(text);
  EXPECT_EQ(parsed, scenario);
  EXPECT_EQ(parsed.to_json(), text);
}

// Omitted sections fall back to inert defaults — a minimal spec is legal.
TEST(FleetScenarioSchema, MinimalSpecParses) {
  const FleetScenario scenario =
      FleetScenario::from_json(R"({"seed": 3, "name": "bare"})");
  EXPECT_EQ(scenario.seed, 3U);
  EXPECT_EQ(scenario.name, "bare");
  EXPECT_FALSE(scenario.churn.enabled());
  EXPECT_FALSE(scenario.diurnal.enabled());
  EXPECT_TRUE(scenario.task_switches.empty());
  EXPECT_FALSE(scenario.battery.enabled());
  EXPECT_TRUE(scenario.fault_plan.empty());
  EXPECT_TRUE(scenario.empty());
}

TEST(FleetScenarioSchema, RejectsInvalidSpecs) {
  EXPECT_THROW(FleetScenario::from_json(
                   R"({"churn": {"leave_prob": 1.5}})"),
               std::exception);
  EXPECT_THROW(FleetScenario::from_json(
                   R"({"diurnal": {"period_rounds": 4, "cohort_amplitude": 1.0}})"),
               std::exception);
  EXPECT_THROW(FleetScenario::from_json(
                   R"({"task_switches": [{"round": 2, "profile": "no-such"}]})"),
               std::exception);
  EXPECT_THROW(FleetScenario::from_json(
                   R"({"battery": {"capacity_j": -1.0}})"),
               std::exception);
  EXPECT_THROW(make_fleet_scenario("no-such-scenario", 1), std::exception);
}

// The embedded fault list rides the scenario's identity: one seed, one
// label, shared with the plan the engine adopts.
TEST(FleetScenarioSchema, EmbeddedFaultsInheritScenarioIdentity) {
  const FleetScenario scenario = FleetScenario::from_json(R"({
    "seed": 99, "name": "stormy",
    "faults": [{"kind": "thermal-storm", "start_s": 1.0,
                "duration_s": 5.0, "magnitude": 1.3}]
  })");
  EXPECT_EQ(scenario.fault_plan.seed, 99U);
  EXPECT_EQ(scenario.fault_plan.name, "stormy");
  ASSERT_EQ(scenario.fault_plan.faults.size(), 1U);
  EXPECT_EQ(scenario.fault_plan.faults[0].kind, FaultKind::kThermalStorm);
}

// Every named fleet scenario has a one-line description for the
// --list-scenarios catalog; unknown names resolve to an empty string.
TEST(FleetScenarioCatalog, EveryNamedScenarioIsDescribed) {
  const std::vector<std::string>& names = fleet_scenario_names();
  ASSERT_GE(names.size(), 5U);
  EXPECT_NE(std::find(names.begin(), names.end(), "steady"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "churn"), names.end());
  for (const std::string& name : names) {
    EXPECT_STRNE(fleet_scenario_description(name), "") << name;
  }
  EXPECT_STREQ(fleet_scenario_description("no-such"), "");
}

// The fault-scenario catalog the drivers print: public names match
// scenario_names(), and the hidden prior-poisoned entry is listed (with
// its hidden marker) so operators can look it up.
TEST(FleetScenarioCatalog, FaultCatalogCoversPublicAndHidden) {
  const std::vector<ScenarioInfo> catalog = all_scenarios();
  const std::vector<std::string>& public_names = scenario_names();
  std::size_t public_count = 0;
  bool saw_hidden_poisoned = false;
  for (const ScenarioInfo& info : catalog) {
    EXPECT_FALSE(info.description.empty()) << info.name;
    if (info.hidden) {
      saw_hidden_poisoned |= info.name == "prior-poisoned";
      EXPECT_EQ(std::find(public_names.begin(), public_names.end(), info.name),
                public_names.end())
          << "hidden scenario leaked into scenario_names()";
    } else {
      ++public_count;
      EXPECT_NE(std::find(public_names.begin(), public_names.end(), info.name),
                public_names.end())
          << info.name;
    }
  }
  EXPECT_EQ(public_count, public_names.size());
  EXPECT_TRUE(saw_hidden_poisoned);
}

}  // namespace
}  // namespace bofl::faults
