// ScenarioRunner: run the full BoFL stack under a fault plan and collect
// everything the robustness invariants are judged on.
//
// Two modes mirror the repo's two integration layers:
//   * Device mode drives one BoflController through a round schedule (the
//     core harness path used by bofl_sim and the paper's §6 single-device
//     experiments), with a DeviceFaultChannel installed on its observer.
//     Each round records a pessimistic feasibility verdict computed BEFORE
//     the round runs (Eqn. 2 with the worst fault effect the window can
//     contain) plus the observed Pareto front's hypervolume against a
//     fixed reference — the raw material for the two core invariants:
//       - no round that was pessimistically feasible at its start may miss
//         its deadline, and
//       - hypervolume is non-decreasing round over round (observations
//         only accumulate; a fixed reference keeps the areas comparable).
//   * Fleet mode runs a small FederatedSimulation with the plan attached
//     (stragglers, dropouts, deadline jitter flow through the server loop).
//
// Lives under tests/ because it links core + fl + faults together; the
// production libraries stay acyclic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bofl_controller.hpp"
#include "core/trace.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "fl/simulation.hpp"
#include "priors/prior_policy.hpp"
#include "priors/snapshot.hpp"

namespace bofl::scenarios {

struct DeviceScenarioOptions {
  std::string device = "agx";  ///< "agx" or "tx2"
  std::string task = "vit";    ///< "vit", "resnet50" or "lstm"
  double ratio = 2.5;          ///< deadline T_max / T_min
  std::int64_t rounds = 30;
  std::uint64_t seed = 1;
  Seconds tau{5.0};
  /// Knowledge-plane seam: when set, the prior seed is applied to the
  /// fresh controller under `prior_policy` before the first round — the
  /// scenario then exercises a warm start under faults (non-owning; must
  /// outlive the run).
  const core::BoflController::PriorSeed* prior = nullptr;
  priors::PriorPolicy prior_policy = priors::PriorPolicy::kVerify;
};

/// Per-round robustness record (one per RoundTrace, same order).
struct DeviceRoundReport {
  std::int64_t index = 0;
  /// Eqn. 2 held at round start under the worst fault effect any job in
  /// the round window could see (x_max capped by the tightest overlapping
  /// DVFS clamp, latency inflated by the largest overlapping slowdown):
  ///   W * T_pess * (1 + margin) <= deadline - tau - allowance * T_pess.
  /// The allowance term reserves the guardian's first-job budget, so the
  /// bound is sufficient for the controller to finish no matter how it
  /// splits the round between exploration and the x_max fallback.
  bool feasible_at_start = false;
  double t_pessimistic_s = 0.0;  ///< faulted per-job latency bound used
  /// Hypervolume of the controller's observed front after the round,
  /// against a fixed reference (1.5x the true worst per-job point).
  double hypervolume = 0.0;
};

struct DeviceScenarioResult {
  faults::FaultPlan plan;
  core::TaskResult task;
  std::vector<DeviceRoundReport> rounds;
  /// All fault events, drained serially per round (round-stamped).
  std::vector<faults::FaultEvent> events;
  /// How an applied prior resolved (kNone for cold runs).
  core::BoflController::PriorState prior_state =
      core::BoflController::PriorState::kNone;
  /// The controller's knowledge distilled after the last round — what it
  /// would contribute to a KnowledgeStore (donor material for prior tests).
  priors::PriorSnapshot snapshot;

  /// Training + MBO energy of the whole run.
  [[nodiscard]] Joules total_energy() const;

  // Invariant checks: empty string = holds, otherwise a human-readable
  // description of the first violation (gtest-friendly:
  // EXPECT_EQ(result.check_...(), "")).
  [[nodiscard]] std::string check_no_feasible_miss() const;
  [[nodiscard]] std::string check_monotone_hypervolume() const;
};

/// Run one BoflController through `plan`.  Deterministic in (plan, opts).
[[nodiscard]] DeviceScenarioResult run_device_scenario(
    const faults::FaultPlan& plan, const DeviceScenarioOptions& opts);

/// Same, with a named scenario (faults::make_scenario) scaled to the round
/// schedule's total deadline budget — the horizon bofl_sim uses.
[[nodiscard]] DeviceScenarioResult run_named_device_scenario(
    const std::string& name, const DeviceScenarioOptions& opts);

struct FleetScenarioOptions {
  std::size_t num_clients = 8;
  std::size_t clients_per_round = 3;
  std::int64_t rounds = 6;
  std::uint64_t seed = 7;
  std::size_t threads = 1;
  double straggler_timeout = 2.0;  ///< 0 = wait for every report
  bool backfill_dropouts = true;
};

/// Run a small fleet under the named scenario.  Deterministic in
/// (name, opts) for any thread count.
[[nodiscard]] fl::FlSimulationResult run_fleet_scenario(
    const std::string& name, const FleetScenarioOptions& opts);

}  // namespace bofl::scenarios
