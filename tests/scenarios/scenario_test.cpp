// Robustness invariants over the named fault scenarios (ISSUE: the
// controller must degrade gracefully, never unsafely).  Each scenario runs
// the full BoFL stack; the invariants asserted here are the contract:
//   1. No round that was pessimistically feasible at its start (Eqn. 2
//      with the worst fault effect in the window) misses its deadline.
//   2. The observed front's hypervolume never regresses.
//   3. Faulted runs stay within a bounded energy factor of the clean run.
//   4. Fault injection is bit-deterministic in (plan, seed).
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "faults/scenarios.hpp"
#include "scenarios/scenario_runner.hpp"

namespace bofl::scenarios {
namespace {

DeviceScenarioOptions quick_options() {
  DeviceScenarioOptions opts;
  opts.device = "agx";
  opts.task = "vit";
  opts.ratio = 2.5;
  opts.rounds = 16;
  opts.seed = 11;
  return opts;
}

class NamedScenario : public ::testing::TestWithParam<std::string> {};

TEST_P(NamedScenario, CoreInvariantsHold) {
  const DeviceScenarioResult result =
      run_named_device_scenario(GetParam(), quick_options());
  ASSERT_EQ(result.rounds.size(), result.task.rounds.size());
  EXPECT_EQ(result.check_no_feasible_miss(), "");
  EXPECT_EQ(result.check_monotone_hypervolume(), "");
  // The schedule leaves real headroom at ratio 2.5, so the invariant must
  // not be vacuous: most rounds have to be pessimistically feasible even
  // under the worst scenario window.
  const auto feasible = static_cast<std::size_t>(
      std::count_if(result.rounds.begin(), result.rounds.end(),
                    [](const DeviceRoundReport& r) {
                      return r.feasible_at_start;
                    }));
  EXPECT_GE(feasible, result.rounds.size() / 2)
      << "scenario " << GetParam() << " left almost no feasible rounds";
}

INSTANTIATE_TEST_SUITE_P(
    All, NamedScenario, ::testing::ValuesIn(faults::scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Scenario, CleanRunHasNoFaultEvents) {
  const DeviceScenarioResult clean =
      run_named_device_scenario("clean", quick_options());
  EXPECT_TRUE(clean.plan.empty());
  EXPECT_TRUE(clean.events.empty());
  EXPECT_TRUE(clean.task.all_deadlines_met());
}

TEST(Scenario, ThermalStormEmitsEventsEndToEnd) {
  const DeviceScenarioResult storm =
      run_named_device_scenario("thermal-storm", quick_options());
  ASSERT_FALSE(storm.events.empty());
  // Episode-entry events are round-stamped by the serial drain and carry
  // the configured magnitudes.
  for (const faults::FaultEvent& event : storm.events) {
    EXPECT_GE(event.round, 0);
    EXPECT_EQ(event.client, 0);
    EXPECT_TRUE(event.kind == faults::FaultKind::kThermalStorm ||
                event.kind == faults::FaultKind::kDvfsClamp);
  }
}

TEST(Scenario, EnergyRegretVsCleanIsBounded) {
  const DeviceScenarioOptions opts = quick_options();
  const double clean =
      run_named_device_scenario("clean", opts).total_energy().value();
  ASSERT_GT(clean, 0.0);
  for (const std::string& name : faults::scenario_names()) {
    const double faulted =
        run_named_device_scenario(name, opts).total_energy().value();
    // Storms multiply per-job energy by at most 1.6x and clamps force less
    // efficient configurations; 4x headroom catches a controller that
    // panics (e.g. re-exploring from scratch every round) while tolerating
    // the genuine physical cost of the faults.
    EXPECT_LE(faulted, 4.0 * clean) << "scenario " << name;
  }
}

TEST(Scenario, SamePlanSameSeedIsBitIdentical) {
  const DeviceScenarioOptions opts = quick_options();
  const DeviceScenarioResult a =
      run_named_device_scenario("thermal-storm", opts);
  const DeviceScenarioResult b =
      run_named_device_scenario("thermal-storm", opts);
  ASSERT_EQ(a.task.rounds.size(), b.task.rounds.size());
  for (std::size_t i = 0; i < a.task.rounds.size(); ++i) {
    EXPECT_EQ(a.task.rounds[i].elapsed().value(),
              b.task.rounds[i].elapsed().value());
    EXPECT_EQ(a.task.rounds[i].energy().value(),
              b.task.rounds[i].energy().value());
    EXPECT_EQ(a.rounds[i].hypervolume, b.rounds[i].hypervolume);
  }
  EXPECT_EQ(a.events, b.events);
}

TEST(Scenario, DifferentSeedsDecorrelateFaultStreams) {
  DeviceScenarioOptions opts = quick_options();
  const DeviceScenarioResult a =
      run_named_device_scenario("flaky-sysfs", opts);
  opts.seed = 12;
  const DeviceScenarioResult b =
      run_named_device_scenario("flaky-sysfs", opts);
  // Same plan shape, different run seed: the flaky-read draws must differ.
  EXPECT_NE(a.events, b.events);
}

TEST(FleetScenario, StragglerHeavyCompletesWithBoundedRounds) {
  FleetScenarioOptions opts;
  const fl::FlSimulationResult result =
      run_fleet_scenario("straggler-heavy", opts);
  ASSERT_EQ(result.rounds.size(), static_cast<std::size_t>(opts.rounds));
  for (const fl::FlRoundStats& stats : result.rounds) {
    EXPECT_GT(stats.participants, 0u);
    EXPECT_LE(stats.accepted, stats.participants);
    // A configured straggler timeout bounds the server's wall time.
    EXPECT_LE(stats.round_wall.value(),
              opts.straggler_timeout * stats.deadline.value() + 1e-9);
  }
}

TEST(FleetScenario, FaultedRunIsThreadCountInvariant) {
  FleetScenarioOptions opts;
  opts.threads = 1;
  const fl::FlSimulationResult serial =
      run_fleet_scenario("straggler-heavy", opts);
  opts.threads = 4;
  const fl::FlSimulationResult parallel =
      run_fleet_scenario("straggler-heavy", opts);
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    const fl::FlRoundStats& a = serial.rounds[i];
    const fl::FlRoundStats& b = parallel.rounds[i];
    EXPECT_EQ(a.global_loss, b.global_loss);
    EXPECT_EQ(a.global_accuracy, b.global_accuracy);
    EXPECT_EQ(a.energy.value(), b.energy.value());
    EXPECT_EQ(a.participants, b.participants);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.backfilled, b.backfilled);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.round_wall.value(), b.round_wall.value());
    EXPECT_EQ(a.deadline.value(), b.deadline.value());
  }
}

}  // namespace
}  // namespace bofl::scenarios
