// Satellite scenario: a healthy-cluster prior applied to a thermally
// degraded unit ("prior-poisoned").  The Eqn. 2 guardian must stay
// authoritative — the poisoned prior trips a misprediction, re-arms drift,
// demotes to the cold protocol, and no pessimistically-feasible round is
// ever missed along the way.
//
// Deliberately no check_monotone_hypervolume() here: demotion rebuilds the
// engine from the unit's OWN observations only, so the observed front may
// legitimately shrink at the demotion boundary.
#include <gtest/gtest.h>

#include "core/bofl_controller.hpp"
#include "faults/fault_plan.hpp"
#include "scenarios/scenario_runner.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::scenarios {
namespace {

using core::BoflController;

/// A donor snapshot distilled from a clean (healthy-unit) run — the
/// knowledge a fleet store would hold for this cluster.
BoflController::PriorSeed make_donor_seed(priors::PriorSnapshot* snapshot) {
  DeviceScenarioOptions clean;
  clean.ratio = 3.0;
  clean.rounds = 40;
  clean.seed = 11;
  const DeviceScenarioResult donor =
      run_device_scenario(faults::FaultPlan{}, clean);
  EXPECT_FALSE(donor.snapshot.empty());
  *snapshot = donor.snapshot;
  return snapshot->make_seed(2);
}

TEST(PriorScenario, PoisonedPriorTripsGuardianAndDemotes) {
  priors::PriorSnapshot snapshot;
  const BoflController::PriorSeed seed = make_donor_seed(&snapshot);

  telemetry::Registry registry;
  telemetry::set_global_registry(&registry);
  DeviceScenarioOptions opts;
  opts.rounds = 30;
  opts.seed = 3;
  opts.prior = &seed;
  opts.prior_policy = priors::PriorPolicy::kVerify;
  const DeviceScenarioResult result =
      run_named_device_scenario("prior-poisoned", opts);
  telemetry::set_global_registry(nullptr);

  // The unit runs 1.5x slower than the prior believes — past the 1.25x
  // drift band, so the first on-unit measurement is a misprediction.
  EXPECT_EQ(result.prior_state, BoflController::PriorState::kDemoted);
  EXPECT_GE(registry.counter("bofl.prior_mispredictions").total(), 1u);
  EXPECT_GE(registry.counter("bofl.prior_demotions").total(), 1u);
  // The guardian never trusted the prior enough to miss: every round that
  // was pessimistically feasible at its start met its deadline.
  EXPECT_EQ(result.check_no_feasible_miss(), "");
}

TEST(PriorScenario, SamePriorVerifiesOnAHealthyUnit) {
  // Control: the identical seed on a clean unit sails through verification
  // — proving the demotion above is the fault's doing, not the prior's.
  priors::PriorSnapshot snapshot;
  const BoflController::PriorSeed seed = make_donor_seed(&snapshot);

  DeviceScenarioOptions opts;
  opts.rounds = 30;
  opts.seed = 3;
  opts.prior = &seed;
  opts.prior_policy = priors::PriorPolicy::kVerify;
  const DeviceScenarioResult result =
      run_device_scenario(faults::FaultPlan{}, opts);
  EXPECT_EQ(result.prior_state, BoflController::PriorState::kVerified);
  EXPECT_EQ(result.check_no_feasible_miss(), "");
  // A verified warm start contributes its refined knowledge onward.
  EXPECT_FALSE(result.snapshot.empty());
}

}  // namespace
}  // namespace bofl::scenarios
