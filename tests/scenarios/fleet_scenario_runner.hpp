// FleetPopulationRunner: run the sharded fleet engine under a
// FleetScenario (churn / diurnal waves / task switches / battery budgets)
// and collect everything the population-level invariants are judged on.
//
// The runner steps the engine ONE round at a time (the engine's absolute
// round cursor makes N stepped calls replay one N-round call bit-for-bit)
// and samples per-cluster state between rounds:
//   * every trajectory entry's pessimistic Eqn. 2 verdict vs its outcome —
//     the never-miss property: an entry that was pessimistically feasible
//     before it ran must not miss its deadline;
//   * the canonical controller's observed-front hypervolume against a
//     fixed per-(cluster, generation) reference — monotone within a
//     generation (a workload switch starts a new generation whose areas
//     are not comparable to the old surface's);
//   * the concatenated round trace, re-hashed with fleet::fold_trace_hash
//     so a stepped run can be compared bit-for-bit against a single-shot
//     run at any other shard x thread layout.
//
// Heterogeneity and round noise are pinned to zero: every participant
// replays the canonical entry exactly, so the per-round miss counters are
// the canonical verdicts aggregated — population properties reduce to
// trajectory properties.
//
// Lives under tests/ because it links fleet + faults + pareto together;
// the production libraries stay acyclic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fleet_scenario.hpp"
#include "fleet/fleet_engine.hpp"
#include "priors/prior_policy.hpp"

namespace bofl::priors {
class KnowledgeStore;
}

namespace bofl::scenarios {

struct FleetPopulationOptions {
  std::size_t num_clients = 20'000;
  std::int64_t rounds = 24;
  double cohort_fraction = 0.01;
  std::int64_t jobs_per_round = 60;
  /// >= ~8 so clusters can reach exploitation (the PR 5 finding).
  double deadline_ratio = 8.0;
  std::uint64_t seed = 1;
  std::size_t shards = 0;  ///< 0 = auto
  std::size_t threads = 1;
  /// Cluster mix: "agx-vit" (one cluster) or "edge-mix" (the bofl_fleet
  /// four-cluster population).
  std::string mix = "agx-vit";
  /// When false, one run() call executes all rounds and only the final
  /// cluster state is sampled — the cheap path for cross-layout
  /// bit-identity checks (the trace hash is identical either way).
  bool stepped = true;
  /// Optional knowledge plane (non-owning; must outlive the run): churn
  /// resets then re-admit through the store's cluster prior.
  priors::KnowledgeStore* knowledge = nullptr;
  priors::PriorPolicy prior_policy = priors::PriorPolicy::kCold;
};

/// Per-cluster state sampled after each stepped round.
struct ClusterRoundSample {
  std::int64_t round = 0;
  std::size_t generation = 0;   ///< workload switches applied so far
  std::size_t entries = 0;      ///< trajectory length after the round
  double hypervolume = 0.0;     ///< observed front vs the generation's ref
};

struct FleetPopulationResult {
  faults::FleetScenario scenario;
  /// Concatenated per-round stats of the whole run; trace_hash is
  /// re-folded over the concatenation (scenario fields included), so it
  /// matches a single-shot engine's FleetResult::trace_hash for the same
  /// config at ANY shard x thread layout.
  fleet::FleetResult fleet;
  /// [cluster][sample] in round order (one sample per round when stepped,
  /// a single final sample otherwise).
  std::vector<std::vector<ClusterRoundSample>> clusters;
  /// Every never-miss violation observed while stepping (entry recorded
  /// once, in the round its cluster generated it).  Empty = property held.
  std::vector<std::string> feasible_misses;

  /// "" when no pessimistically feasible trajectory entry missed its
  /// deadline anywhere in the run; the first violation otherwise.
  [[nodiscard]] std::string check_no_feasible_miss() const;
  /// "" when every cluster's hypervolume is non-decreasing within each
  /// generation; the first regression otherwise.
  [[nodiscard]] std::string check_monotone_hypervolume() const;
  /// Training + MBO energy of the whole run, in joules.
  [[nodiscard]] double total_energy_j() const;
  /// Energy per participation — the unit the regret bound is stated in.
  [[nodiscard]] double energy_per_participation_j() const;
};

/// Run the fleet engine under `scenario`.  Deterministic in
/// (scenario, opts); bit-identical trace for every shards/threads/stepped
/// combination.
[[nodiscard]] FleetPopulationResult run_fleet_population(
    const faults::FleetScenario& scenario, const FleetPopulationOptions& opts);

/// Same, with a named scenario (faults::make_fleet_scenario, seeded from
/// opts.seed).
[[nodiscard]] FleetPopulationResult run_named_fleet_population(
    const std::string& name, const FleetPopulationOptions& opts);

/// Bounded energy regret: the scenario run's energy per participation must
/// not exceed `bound_factor` times the steady run's.  "" = holds, else a
/// description.  (Total energy is the wrong unit — churn shrinks the
/// population, diurnal swings the cohort; per-participation cost is what a
/// population disturbance is allowed to inflate, by re-exploration.)
[[nodiscard]] std::string check_energy_regret(
    const FleetPopulationResult& run, const FleetPopulationResult& steady,
    double bound_factor);

}  // namespace bofl::scenarios
