// Calibration and shape tests for the simulated testbeds.  These pin the
// behaviours DESIGN.md §5 promises: Table-2 latencies, the Figure 3–5
// qualitative curves, and the headline "8x faster / 4x more efficient"
// spread from the paper's introduction.
#include "device/device_model.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace bofl::device {
namespace {

class PaperWorkloads : public ::testing::TestWithParam<WorkloadProfile> {};

TEST(DeviceModel, Table2LatencyCalibrationAgx) {
  const DeviceModel agx = jetson_agx();
  const DvfsConfig x_max = agx.space().max_config();
  // T_min/W from Table 2: 37.2/200, 46.9/180, 46.1/160.
  EXPECT_NEAR(agx.latency(vit_profile(), x_max).value(), 0.186, 0.01);
  EXPECT_NEAR(agx.latency(resnet50_profile(), x_max).value(), 0.261, 0.013);
  EXPECT_NEAR(agx.latency(lstm_profile(), x_max).value(), 0.288, 0.015);
}

TEST(DeviceModel, Table2LatencyCalibrationTx2) {
  const DeviceModel tx2 = jetson_tx2();
  const DvfsConfig x_max = tx2.space().max_config();
  // T_min/W from Table 2: 36.0/75, 49.2/60, 55.6/80 — tolerance 10 %.
  EXPECT_NEAR(tx2.latency(vit_profile(), x_max).value(), 0.48, 0.05);
  EXPECT_NEAR(tx2.latency(resnet50_profile(), x_max).value(), 0.82, 0.08);
  EXPECT_NEAR(tx2.latency(lstm_profile(), x_max).value(), 0.70, 0.07);
}

TEST(DeviceModel, RoundTMinScalesWithJobs) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const double per_job = agx.latency(vit, agx.space().max_config()).value();
  EXPECT_NEAR(agx.round_t_min(vit, 200).value(), 200 * per_job, 1e-9);
  EXPECT_DOUBLE_EQ(agx.round_t_min(vit, 0).value(), 0.0);
}

TEST_P(PaperWorkloads, LatencyMonotoneInEachFrequencyAxis) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile profile = GetParam();
  const DvfsSpace& space = agx.space();
  // Raising any one frequency never slows the job down.
  const DvfsConfig base{5, 5, 2};
  for (std::size_t c = base.cpu + 1; c < space.cpu_table().size(); ++c) {
    EXPECT_LE(agx.latency(profile, {c, base.gpu, base.mem}).value(),
              agx.latency(profile, {c - 1, base.gpu, base.mem}).value() + 1e-12);
  }
  for (std::size_t g = base.gpu + 1; g < space.gpu_table().size(); ++g) {
    EXPECT_LE(agx.latency(profile, {base.cpu, g, base.mem}).value(),
              agx.latency(profile, {base.cpu, g - 1, base.mem}).value() + 1e-12);
  }
  for (std::size_t m = base.mem + 1; m < space.mem_table().size(); ++m) {
    EXPECT_LE(agx.latency(profile, {base.cpu, base.gpu, m}).value(),
              agx.latency(profile, {base.cpu, base.gpu, m - 1}).value() + 1e-12);
  }
}

TEST_P(PaperWorkloads, PowerAndEnergyArePositive) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile profile = GetParam();
  const DvfsSpace& space = agx.space();
  for (std::size_t flat = 0; flat < space.size(); flat += 37) {
    const DvfsConfig config = space.from_flat(flat);
    EXPECT_GT(agx.average_power(profile, config).value(),
              agx.spec().idle_power_watts);
    EXPECT_GT(agx.energy(profile, config).value(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, PaperWorkloads,
                         ::testing::ValuesIn(paper_profiles()),
                         [](const auto& info) { return info.param.name; });

TEST(DeviceModel, Figure3GpuSaturationUnderSlowCpu) {
  // Fig. 3(a): with the CPU at its lowest step, raising GPU frequency past
  // ~1 GHz buys almost nothing because the CPU is the bottleneck.
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const DvfsSpace& space = agx.space();
  const std::size_t mem_max = space.mem_table().size() - 1;
  const std::size_t g_mid = space.gpu_table().nearest_index(GigaHertz{1.0});
  const std::size_t g_max = space.gpu_table().size() - 1;
  const double slow_cpu_gain =
      agx.latency(vit, {0, g_mid, mem_max}).value() -
      agx.latency(vit, {0, g_max, mem_max}).value();
  const std::size_t cpu_max = space.cpu_table().size() - 1;
  const double fast_cpu_gain =
      agx.latency(vit, {cpu_max, g_mid, mem_max}).value() -
      agx.latency(vit, {cpu_max, g_max, mem_max}).value();
  // Same GPU-frequency raise helps far more when the CPU is fast.
  EXPECT_GT(fast_cpu_gain, 2.0 * slow_cpu_gain);
}

TEST(DeviceModel, Figure3EnergyCrossover) {
  // Fig. 3(b): at low GPU frequency the slow CPU is more energy-efficient;
  // at max GPU frequency the fast CPU wins.
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const DvfsSpace& space = agx.space();
  const std::size_t mem_max = space.mem_table().size() - 1;
  const std::size_t cpu_max = space.cpu_table().size() - 1;
  const std::size_t g_low = space.gpu_table().nearest_index(GigaHertz{0.7});
  const std::size_t g_max = space.gpu_table().size() - 1;
  EXPECT_LT(agx.energy(vit, {0, g_low, mem_max}).value(),
            agx.energy(vit, {cpu_max, g_low, mem_max}).value());
  EXPECT_GT(agx.energy(vit, {0, g_max, mem_max}).value(),
            agx.energy(vit, {cpu_max, g_max, mem_max}).value());
}

TEST(DeviceModel, Figure4CpuSensitivityIsModelDependent) {
  // Fig. 4(a): from 0.6 to 1.7 GHz CPU, the LSTM roughly halves its
  // latency while ViT/ResNet50 barely move.
  const DeviceModel agx = jetson_agx();
  const DvfsSpace& space = agx.space();
  const DvfsConfig lo{space.cpu_table().nearest_index(GigaHertz{0.6}),
                      space.gpu_table().size() - 1,
                      space.mem_table().size() - 1};
  DvfsConfig hi = lo;
  hi.cpu = space.cpu_table().nearest_index(GigaHertz{1.7});
  const auto speedup = [&](const WorkloadProfile& p) {
    return agx.latency(p, lo).value() / agx.latency(p, hi).value();
  };
  EXPECT_GT(speedup(lstm_profile()), 1.8);
  EXPECT_LT(speedup(vit_profile()), 1.6);
  EXPECT_LT(speedup(resnet50_profile()), 1.3);
}

TEST(DeviceModel, Figure4EnergyTrends) {
  // Fig. 4(b): over 0.7 -> 1.7 GHz CPU, ResNet50's energy rises while
  // LSTM's falls.
  const DeviceModel agx = jetson_agx();
  const DvfsSpace& space = agx.space();
  const std::size_t lo = space.cpu_table().nearest_index(GigaHertz{0.7});
  const std::size_t hi = space.cpu_table().nearest_index(GigaHertz{1.7});
  const DvfsConfig top{0, space.gpu_table().size() - 1,
                       space.mem_table().size() - 1};
  auto energy_at = [&](const WorkloadProfile& p, std::size_t cpu) {
    DvfsConfig c = top;
    c.cpu = cpu;
    return agx.energy(p, c).value();
  };
  EXPECT_GT(energy_at(resnet50_profile(), hi),
            energy_at(resnet50_profile(), lo));
  EXPECT_LT(energy_at(lstm_profile(), hi), energy_at(lstm_profile(), lo));
}

TEST(DeviceModel, Figure5AgxIsFasterAndMoreEfficient) {
  // Fig. 5: at x_max, the AGX beats the TX2 on every model in both time and
  // energy, but by model-dependent factors.
  const DeviceModel agx = jetson_agx();
  const DeviceModel tx2 = jetson_tx2();
  double latency_ratio[3];
  int i = 0;
  for (const WorkloadProfile& p : paper_profiles()) {
    const double t_agx = agx.latency(p, agx.space().max_config()).value();
    const double t_tx2 = tx2.latency(p, tx2.space().max_config()).value();
    const double e_agx = agx.energy(p, agx.space().max_config()).value();
    const double e_tx2 = tx2.energy(p, tx2.space().max_config()).value();
    EXPECT_LT(t_agx, t_tx2) << p.name;
    EXPECT_LT(e_agx, e_tx2) << p.name;
    latency_ratio[i++] = t_agx / t_tx2;
  }
  // ResNet50 benefits most from the newer GPU; the CPU-bound LSTM least.
  EXPECT_LT(latency_ratio[1], latency_ratio[0]);
  EXPECT_LT(latency_ratio[0], latency_ratio[2]);
}

TEST(DeviceModel, IntroHeadlineSpread) {
  // §1: "a proper configuration may lead to 8x faster training and 4x less
  // energy" — the spread across the whole space must be of that order.
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
  double e_min = std::numeric_limits<double>::infinity();
  double e_max = 0.0;
  for (std::size_t flat = 0; flat < agx.space().size(); ++flat) {
    const DvfsConfig c = agx.space().from_flat(flat);
    const double t = agx.latency(vit, c).value();
    const double e = agx.energy(vit, c).value();
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
    e_min = std::min(e_min, e);
    e_max = std::max(e_max, e);
  }
  EXPECT_GT(t_max / t_min, 6.0);
  EXPECT_GT(e_max / e_min, 3.0);
}

TEST(DeviceModel, VitEnergyOptimumNearFigure11Knee) {
  // Fig. 11(a): the energy-minimal configuration sits near 0.3 s / 3.5 J.
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  double best_energy = std::numeric_limits<double>::infinity();
  double best_latency = 0.0;
  for (std::size_t flat = 0; flat < agx.space().size(); ++flat) {
    const DvfsConfig c = agx.space().from_flat(flat);
    const double e = agx.energy(vit, c).value();
    if (e < best_energy) {
      best_energy = e;
      best_latency = agx.latency(vit, c).value();
    }
  }
  EXPECT_NEAR(best_energy, 3.4, 0.6);
  EXPECT_NEAR(best_latency, 0.31, 0.1);
}

TEST(UnitPowerModel, VoltageCurve) {
  const UnitPowerModel unit{0.6, 1.1, 1.4, 5.0};
  EXPECT_DOUBLE_EQ(unit.voltage(0.0), 0.6);
  EXPECT_DOUBLE_EQ(unit.voltage(1.0), 1.1);
  EXPECT_GT(unit.voltage(0.5), 0.6);
  EXPECT_LT(unit.voltage(0.5), 1.1);
  // Convex: the midpoint sits below the linear interpolation.
  EXPECT_LT(unit.voltage(0.5), 0.85);
  EXPECT_THROW((void)unit.voltage(1.5), std::invalid_argument);
}

TEST(DeviceModel, UnknownWorkloadClassRejected) {
  DeviceModel agx = jetson_agx();
  DeviceSpec spec = agx.spec();
  spec.gpu_class_scale.clear();
  const DeviceModel broken(spec, agx.space());
  EXPECT_THROW(
      (void)broken.latency(vit_profile(), agx.space().max_config()),
      std::invalid_argument);
}

}  // namespace
}  // namespace bofl::device
