#include "device/frequency.hpp"

#include <gtest/gtest.h>

#include "device/device_model.hpp"

namespace bofl::device {
namespace {

TEST(FrequencyTable, LinearConstruction) {
  const FrequencyTable t = FrequencyTable::linear(1.0, 2.0, 5);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.at(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(t.at(2).value(), 1.5);
  EXPECT_DOUBLE_EQ(t.at(4).value(), 2.0);
}

TEST(FrequencyTable, SingleStep) {
  const FrequencyTable t = FrequencyTable::linear(1.0, 1.5, 1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.at(0).value(), 1.5);
  EXPECT_DOUBLE_EQ(t.normalized(0), 1.0);
}

TEST(FrequencyTable, RejectsInvalid) {
  EXPECT_THROW(FrequencyTable::linear(2.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(FrequencyTable::linear(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(FrequencyTable({GigaHertz{2.0}, GigaHertz{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(FrequencyTable({}), std::invalid_argument);
}

TEST(FrequencyTable, NearestIndex) {
  const FrequencyTable t = FrequencyTable::linear(1.0, 2.0, 5);  // step .25
  EXPECT_EQ(t.nearest_index(GigaHertz{1.0}), 0u);
  EXPECT_EQ(t.nearest_index(GigaHertz{1.3}), 1u);
  EXPECT_EQ(t.nearest_index(GigaHertz{1.4}), 2u);
  EXPECT_EQ(t.nearest_index(GigaHertz{5.0}), 4u);
  EXPECT_EQ(t.nearest_index(GigaHertz{0.1}), 0u);
}

TEST(FrequencyTable, NormalizedEndpoints) {
  const FrequencyTable t = FrequencyTable::linear(0.5, 2.5, 5);
  EXPECT_DOUBLE_EQ(t.normalized(0), 0.0);
  EXPECT_DOUBLE_EQ(t.normalized(4), 1.0);
  EXPECT_DOUBLE_EQ(t.normalized(2), 0.5);
}

TEST(FrequencyTable, OutOfRangeIndexThrows) {
  const FrequencyTable t = FrequencyTable::linear(1.0, 2.0, 3);
  EXPECT_THROW((void)t.at(3), std::invalid_argument);
}

TEST(DvfsSpace, PaperSpaceSizes) {
  // Table 1: AGX 25*14*6 = 2100 configurations, TX2 12*13*6 = 936.
  EXPECT_EQ(jetson_agx().space().size(), 2100u);
  EXPECT_EQ(jetson_tx2().space().size(), 936u);
}

TEST(DvfsSpace, FlatRoundTripCoversWholeSpace) {
  const DeviceModel model = jetson_agx();
  const DvfsSpace& space = model.space();
  for (std::size_t flat = 0; flat < space.size(); ++flat) {
    const DvfsConfig config = space.from_flat(flat);
    EXPECT_EQ(space.to_flat(config), flat);
  }
}

TEST(DvfsSpace, FlatIndexBoundsChecked) {
  const DeviceModel model = jetson_tx2();
  const DvfsSpace& space = model.space();
  EXPECT_THROW((void)space.from_flat(space.size()), std::invalid_argument);
  EXPECT_THROW((void)space.to_flat({99, 0, 0}), std::invalid_argument);
}

TEST(DvfsSpace, MaxConfigIsHighestSteps) {
  const DeviceModel model = jetson_agx();
  const DvfsSpace& space = model.space();
  const DvfsConfig x_max = space.max_config();
  EXPECT_EQ(x_max.cpu, space.cpu_table().size() - 1);
  EXPECT_EQ(x_max.gpu, space.gpu_table().size() - 1);
  EXPECT_EQ(x_max.mem, space.mem_table().size() - 1);
  EXPECT_NEAR(space.cpu_freq(x_max).value(), 2.2656, 1e-9);
  EXPECT_NEAR(space.gpu_freq(x_max).value(), 1.3770, 1e-9);
  EXPECT_NEAR(space.mem_freq(x_max).value(), 2.1330, 1e-9);
}

TEST(DvfsSpace, NormalizedIsUnitCube) {
  const DeviceModel model = jetson_agx();
  const DvfsSpace& space = model.space();
  const auto all = space.all_normalized();
  ASSERT_EQ(all.size(), space.size());
  for (const auto& p : all) {
    ASSERT_EQ(p.size(), 3u);
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  // Extremes map to the cube corners.
  EXPECT_EQ(space.normalized({0, 0, 0}), (linalg::Vector{0.0, 0.0, 0.0}));
  EXPECT_EQ(space.normalized(space.max_config()),
            (linalg::Vector{1.0, 1.0, 1.0}));
}

TEST(DvfsSpace, DescribeMentionsAllUnits) {
  const DeviceModel model = jetson_agx();
  const DvfsSpace& space = model.space();
  const std::string text = space.describe(space.max_config());
  EXPECT_NE(text.find("cpu="), std::string::npos);
  EXPECT_NE(text.find("gpu="), std::string::npos);
  EXPECT_NE(text.find("mem="), std::string::npos);
}

}  // namespace
}  // namespace bofl::device
