#include "device/sysfs.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "device/device_model.hpp"

namespace bofl::device {
namespace {

TEST(SysfsTree, WriteReadRoundTrip) {
  SysfsTree tree;
  tree.write("/sys/test/value", "123");
  EXPECT_EQ(tree.read("/sys/test/value"), "123");
  EXPECT_TRUE(tree.exists("/sys/test/value"));
  EXPECT_FALSE(tree.exists("/sys/test/other"));
}

TEST(SysfsTree, MissingFileThrows) {
  const SysfsTree tree;
  EXPECT_THROW((void)tree.read("/nope"), std::invalid_argument);
}

TEST(SysfsTree, OverwriteReplaces) {
  SysfsTree tree;
  tree.write("/f", "1");
  tree.write("/f", "2");
  EXPECT_EQ(tree.read("/f"), "2");
}

TEST(SysfsController, BootsPinnedToMax) {
  const DeviceModel agx = jetson_agx();
  const SysfsDvfsController controller(agx.space());
  EXPECT_EQ(controller.current(), agx.space().max_config());
}

TEST(SysfsController, CreatesJetsonStyleLayout) {
  const DeviceModel agx = jetson_agx();
  const SysfsDvfsController controller(agx.space());
  const SysfsTree& tree = controller.tree();
  EXPECT_TRUE(tree.exists(SysfsDvfsController::kCpuMinPath));
  EXPECT_TRUE(tree.exists(SysfsDvfsController::kCpuMaxPath));
  EXPECT_TRUE(tree.exists(SysfsDvfsController::kGpuCurPath));
  EXPECT_TRUE(tree.exists(SysfsDvfsController::kMemMaxPath));
  EXPECT_EQ(tree.paths().size(), 9u);
}

TEST(SysfsController, KernelUnits) {
  const DeviceModel agx = jetson_agx();
  SysfsDvfsController controller(agx.space());
  controller.apply({0, 0, 0});
  // CPU in kHz (0.4224 GHz = 422400 kHz), GPU/MEM in Hz.
  EXPECT_EQ(controller.tree().read(SysfsDvfsController::kCpuCurPath),
            "422400");
  EXPECT_EQ(controller.tree().read(SysfsDvfsController::kGpuCurPath),
            "114700000");
  EXPECT_EQ(controller.tree().read(SysfsDvfsController::kMemCurPath),
            "204000000");
}

TEST(SysfsController, MinEqualsMaxAfterPin) {
  const DeviceModel agx = jetson_agx();
  SysfsDvfsController controller(agx.space());
  controller.apply({3, 4, 2});
  EXPECT_EQ(controller.tree().read(SysfsDvfsController::kCpuMinPath),
            controller.tree().read(SysfsDvfsController::kCpuMaxPath));
  EXPECT_EQ(controller.tree().read(SysfsDvfsController::kGpuMinPath),
            controller.tree().read(SysfsDvfsController::kGpuMaxPath));
}

TEST(SysfsController, ApplyCurrentRoundTripWholeSpace) {
  const DeviceModel tx2 = jetson_tx2();
  SysfsDvfsController controller(tx2.space());
  for (std::size_t flat = 0; flat < tx2.space().size(); flat += 7) {
    const DvfsConfig config = tx2.space().from_flat(flat);
    controller.apply(config);
    EXPECT_EQ(controller.current(), config) << "flat=" << flat;
  }
}

TEST(SysfsController, RawRequestsSnapToNearestStep) {
  const DeviceModel agx = jetson_agx();
  SysfsDvfsController controller(agx.space());
  // Request frequencies between table steps; the kernel clamps.
  controller.request_raw(/*cpu_khz=*/500000.0, /*gpu_hz=*/2.0e9,
                         /*mem_hz=*/1.0e3);
  const DvfsConfig snapped = controller.current();
  EXPECT_EQ(snapped.cpu,
            agx.space().cpu_table().nearest_index(GigaHertz{0.5}));
  EXPECT_EQ(snapped.gpu, agx.space().gpu_table().size() - 1);  // above max
  EXPECT_EQ(snapped.mem, 0u);                                  // below min
}

TEST(SysfsController, RejectsNonPositiveRawRates) {
  const DeviceModel agx = jetson_agx();
  SysfsDvfsController controller(agx.space());
  EXPECT_THROW(controller.request_raw(0.0, 1e9, 1e9), std::invalid_argument);
}

TEST(SysfsTree, MaterializeAndLoadRoundTrip) {
  const DeviceModel agx = jetson_agx();
  SysfsDvfsController controller(agx.space());
  controller.apply({3, 7, 2});

  const std::string root = ::testing::TempDir() + "/bofl_sysfs_test";
  controller.tree().materialize(root);

  const SysfsTree loaded = SysfsTree::load_from(root);
  EXPECT_EQ(loaded.paths(), controller.tree().paths());
  for (const std::string& path : controller.tree().paths()) {
    EXPECT_EQ(loaded.read(path), controller.tree().read(path)) << path;
  }
  std::filesystem::remove_all(root);
}

TEST(SysfsTree, LoadFromMissingDirectoryThrows) {
  EXPECT_THROW((void)SysfsTree::load_from("/no/such/dir/bofl"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bofl::device
