#include "device/observer.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace bofl::device {
namespace {

TEST(SimClock, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now().value(), 0.0);
  clock.advance(Seconds{1.5});
  clock.advance(Seconds{0.5});
  EXPECT_DOUBLE_EQ(clock.now().value(), 2.0);
}

TEST(SimClock, RejectsNegativeAdvance) {
  SimClock clock;
  EXPECT_THROW(clock.advance(Seconds{-1.0}), std::invalid_argument);
}

TEST(NoiseModel, EffectiveCvShrinksWithDuration) {
  const NoiseModel noise;
  const double short_cv = noise.effective_cv(0.03, 0.2);
  const double ref_cv = noise.effective_cv(0.03, 5.0);
  const double long_cv = noise.effective_cv(0.03, 50.0);
  EXPECT_GT(short_cv, ref_cv);
  EXPECT_DOUBLE_EQ(ref_cv, 0.03);
  // Longer-than-reference measurements do not get better than base CV
  // (the sensor's floor).
  EXPECT_DOUBLE_EQ(long_cv, 0.03);
}

TEST(NoiseModel, AmplificationIsCapped) {
  const NoiseModel noise;
  EXPECT_DOUBLE_EQ(noise.effective_cv(0.03, 1e-6),
                   0.03 * noise.max_amplification);
}

TEST(PowerSensor, ReadingsAreUnbiased) {
  const NoiseModel noise;
  PowerSensor sensor(noise, Rng(77));
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(sensor.read_energy(Joules{10.0}, Seconds{5.0}).value());
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.02);
  EXPECT_NEAR(stats.stddev() / stats.mean(), noise.energy_cv, 0.003);
}

TEST(Observer, ClockAdvancesByTrueLatency) {
  const DeviceModel agx = jetson_agx();
  PerformanceObserver observer(agx, NoiseModel{}, 1);
  SimClock clock;
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig x_max = agx.space().max_config();
  const Measurement m = observer.run_jobs(vit, x_max, 10, clock);
  EXPECT_DOUBLE_EQ(clock.now().value(), m.true_duration.value());
  EXPECT_NEAR(m.true_duration.value(),
              10.0 * agx.latency(vit, x_max).value(), 1e-12);
  EXPECT_NEAR(m.true_energy.value(), 10.0 * agx.energy(vit, x_max).value(),
              1e-9);
}

TEST(Observer, MeasurementsAreNoisyButClose) {
  const DeviceModel agx = jetson_agx();
  PerformanceObserver observer(agx, NoiseModel{}, 2);
  SimClock clock;
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig x_max = agx.space().max_config();
  const double true_latency = agx.latency(vit, x_max).value();
  const double true_energy = agx.energy(vit, x_max).value();
  RunningStats latency_stats;
  RunningStats energy_stats;
  for (int i = 0; i < 3000; ++i) {
    const Measurement m = observer.run_jobs(vit, x_max, 30, clock);
    latency_stats.add(m.measured_latency.value());
    energy_stats.add(m.measured_energy.value());
  }
  EXPECT_NEAR(latency_stats.mean(), true_latency, 0.01 * true_latency);
  EXPECT_NEAR(energy_stats.mean(), true_energy, 0.01 * true_energy);
  EXPECT_GT(latency_stats.stddev(), 0.0);
}

TEST(Observer, ShortMeasurementsAreNoisier) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig x_max = agx.space().max_config();
  RunningStats one_job;
  RunningStats many_jobs;
  {
    PerformanceObserver observer(agx, NoiseModel{}, 3);
    SimClock clock;
    for (int i = 0; i < 4000; ++i) {
      one_job.add(
          observer.run_jobs(vit, x_max, 1, clock).measured_energy.value());
    }
  }
  {
    PerformanceObserver observer(agx, NoiseModel{}, 3);
    SimClock clock;
    for (int i = 0; i < 4000; ++i) {
      many_jobs.add(
          observer.run_jobs(vit, x_max, 50, clock).measured_energy.value());
    }
  }
  EXPECT_GT(one_job.stddev() / one_job.mean(),
            2.0 * many_jobs.stddev() / many_jobs.mean());
}

TEST(Observer, DeterministicBySeed) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig config{3, 5, 2};
  PerformanceObserver a(agx, NoiseModel{}, 42);
  PerformanceObserver b(agx, NoiseModel{}, 42);
  SimClock clock_a;
  SimClock clock_b;
  for (int i = 0; i < 10; ++i) {
    const Measurement ma = a.run_jobs(vit, config, 5, clock_a);
    const Measurement mb = b.run_jobs(vit, config, 5, clock_b);
    EXPECT_DOUBLE_EQ(ma.measured_latency.value(),
                     mb.measured_latency.value());
    EXPECT_DOUBLE_EQ(ma.measured_energy.value(), mb.measured_energy.value());
  }
}

TEST(Observer, RejectsNonPositiveJobCount) {
  const DeviceModel agx = jetson_agx();
  PerformanceObserver observer(agx, NoiseModel{}, 4);
  SimClock clock;
  EXPECT_THROW(
      (void)observer.run_jobs(vit_profile(), agx.space().max_config(), 0,
                              clock),
      std::invalid_argument);
}

}  // namespace
}  // namespace bofl::device
