// Flat SoA device tables (ISSUE 5): one latency/energy/power value per flat
// config index, produced by the very DeviceModel calls they replace — so
// every comparison here is exact (==, not near).
#include <gtest/gtest.h>

#include "device/device_model.hpp"
#include "device/observer.hpp"
#include "device/workload.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::device {
namespace {

TEST(FlatPerfTable, EveryEntryEqualsTheModelCall) {
  for (const DeviceModel& model : {jetson_agx(), jetson_tx2()}) {
    for (const WorkloadProfile& profile : paper_profiles()) {
      const FlatPerfTable table = FlatPerfTable::build(model, profile);
      const DvfsSpace& space = model.space();
      ASSERT_EQ(table.size(), space.size());
      for (std::size_t flat = 0; flat < space.size(); ++flat) {
        const DvfsConfig config = space.from_flat(flat);
        EXPECT_EQ(table.latency_s[flat],
                  model.latency(profile, config).value());
        EXPECT_EQ(table.energy_j[flat], model.energy(profile, config).value());
        EXPECT_EQ(table.power_w[flat],
                  model.average_power(profile, config).value());
      }
    }
  }
}

Measurement run_batch(PerformanceObserver& observer,
                      const WorkloadProfile& profile, const DvfsConfig& config,
                      std::int64_t jobs) {
  SimClock clock;
  return observer.run_jobs(profile, config, jobs, clock);
}

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.true_duration.value(), b.true_duration.value());
  EXPECT_EQ(a.true_energy.value(), b.true_energy.value());
  EXPECT_EQ(a.measured_latency.value(), b.measured_latency.value());
  EXPECT_EQ(a.measured_energy.value(), b.measured_energy.value());
}

TEST(FlatPerfTable, ObserverFastPathIsBitIdenticalWithTablesOff) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile profile = vit_profile();
  const DvfsSpace& space = agx.space();
  NoiseModel noise;
  PerformanceObserver with_tables(agx, noise, 99);
  PerformanceObserver without_tables(agx, noise, 99);
  without_tables.set_use_flat_tables(false);
  ASSERT_TRUE(with_tables.use_flat_tables());
  ASSERT_FALSE(without_tables.use_flat_tables());
  for (std::size_t flat = 0; flat < space.size(); flat += 7) {
    const DvfsConfig config = space.from_flat(flat);
    expect_identical(run_batch(with_tables, profile, config, 5),
                     run_batch(without_tables, profile, config, 5));
  }
}

TEST(FlatPerfTable, DisturbedPathIsBitIdenticalWithTablesOff) {
  // Spikes + thermal throttling exercise the per-job table lookups with a
  // clamped effective config — the seam where an indexing bug would hide.
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile profile = resnet50_profile();
  NoiseModel noise;
  noise.spike_probability = 0.2;
  noise.thermal = ThermalParams{};
  noise.thermal->throttle_temp_c = 40.0;  // throttle early and often
  PerformanceObserver with_tables(agx, noise, 7);
  PerformanceObserver without_tables(agx, noise, 7);
  without_tables.set_use_flat_tables(false);
  const DvfsConfig hot = agx.space().max_config();
  for (int batch = 0; batch < 4; ++batch) {
    expect_identical(run_batch(with_tables, profile, hot, 20),
                     run_batch(without_tables, profile, hot, 20));
  }
}

TEST(FlatPerfTable, RebuildsOnlyWhenTheProfileChanges) {
  const DeviceModel agx = jetson_agx();
  PerformanceObserver observer(agx, NoiseModel{}, 3);
  const DvfsConfig config = agx.space().max_config();
  telemetry::Registry registry;
  telemetry::set_global_registry(&registry);
  (void)run_batch(observer, vit_profile(), config, 2);
  (void)run_batch(observer, vit_profile(), config, 2);   // cached
  (void)run_batch(observer, lstm_profile(), config, 2);  // rebuild
  telemetry::set_global_registry(nullptr);
  for (const auto& counter : registry.snapshot().counters) {
    if (counter.name == "device.flat_table_builds") {
      EXPECT_EQ(counter.value, 2u);
      return;
    }
  }
  FAIL() << "device.flat_table_builds counter never ticked";
}

}  // namespace
}  // namespace bofl::device
