// Calibration pins for the fleet-population device classes: the
// phone-class and server-class models added for heterogeneous fleet
// scenarios.  These bracket the Jetson testbeds from both sides — the
// phone is the slowest, lowest-power member of the fleet and the server
// the fastest, hungriest — and their energy-optimal operating points sit
// in OPPOSITE corners of the DVFS space (race-to-idle never pays on a
// ~1 W-idle handset, always pays on a 45 W-idle server).
#include "device/device_model.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace bofl::device {
namespace {

/// Latency and energy of the energy-minimal flat config.
struct EnergyOptimum {
  double energy_j = std::numeric_limits<double>::infinity();
  double latency_s = 0.0;
};

EnergyOptimum energy_optimum(const DeviceModel& model,
                             const WorkloadProfile& profile) {
  EnergyOptimum best;
  for (std::size_t flat = 0; flat < model.space().size(); ++flat) {
    const DvfsConfig config = model.space().from_flat(flat);
    const double e = model.energy(profile, config).value();
    if (e < best.energy_j) {
      best.energy_j = e;
      best.latency_s = model.latency(profile, config).value();
    }
  }
  return best;
}

TEST(FleetDeviceCalibration, SpaceShapesMatchTheSpec) {
  const DeviceModel phone = pixel_phone();
  EXPECT_EQ(phone.name(), "pixel-phone");
  EXPECT_EQ(phone.space().size(), 16U * 9U * 4U);
  const DeviceModel server = edge_server();
  EXPECT_EQ(server.name(), "edge-server");
  EXPECT_EQ(server.space().size(), 16U * 12U * 4U);
}

TEST(FleetDeviceCalibration, SpeedOrderBracketsTheJetsons) {
  // At x_max on every paper workload: server < agx < tx2 < phone latency.
  const DeviceModel agx = jetson_agx();
  const DeviceModel tx2 = jetson_tx2();
  const DeviceModel phone = pixel_phone();
  const DeviceModel server = edge_server();
  for (const WorkloadProfile& p : paper_profiles()) {
    const double t_agx = agx.latency(p, agx.space().max_config()).value();
    const double t_tx2 = tx2.latency(p, tx2.space().max_config()).value();
    const double t_phone =
        phone.latency(p, phone.space().max_config()).value();
    const double t_server =
        server.latency(p, server.space().max_config()).value();
    EXPECT_LT(t_server, t_agx) << p.name;
    EXPECT_LT(t_agx, t_tx2) << p.name;
    EXPECT_LT(t_tx2, t_phone) << p.name;
  }
}

TEST(FleetDeviceCalibration, PhoneDrawsWattsServerDrawsTens) {
  const DeviceModel phone = pixel_phone();
  const DeviceModel server = edge_server();
  const WorkloadProfile vit = vit_profile();
  // Handset full-tilt power is single-digit watts; the server runs at
  // tens of watts before its accelerator even spins up.
  EXPECT_LT(
      phone.average_power(vit, phone.space().max_config()).value(), 10.0);
  EXPECT_GT(phone.average_power(vit, phone.space().max_config()).value(),
            phone.spec().idle_power_watts);
  EXPECT_GT(server.spec().idle_power_watts, 40.0);
  EXPECT_GT(
      server.average_power(vit, server.space().max_config()).value(), 45.0);
}

TEST(FleetDeviceCalibration, EnergyOptimaSitInOppositeCorners) {
  // The race-to-idle split the class comments promise: the phone's
  // energy-optimal config runs well below its top speed, the server's
  // sits essentially at x_max.
  const DeviceModel phone = pixel_phone();
  const DeviceModel server = edge_server();
  const WorkloadProfile vit = vit_profile();
  const double phone_t_min =
      phone.latency(vit, phone.space().max_config()).value();
  const EnergyOptimum phone_best = energy_optimum(phone, vit);
  EXPECT_GT(phone_best.latency_s, 1.5 * phone_t_min)
      << "phone energy optimum should NOT be race-to-idle";

  const double server_t_min =
      server.latency(vit, server.space().max_config()).value();
  const EnergyOptimum server_best = energy_optimum(server, vit);
  EXPECT_LT(server_best.latency_s, 1.2 * server_t_min)
      << "server energy optimum should be race-to-idle";
}

TEST(FleetDeviceCalibration, ConfigurationSpreadSupportsPaceControl) {
  // Both classes keep the §1 headline spread: a bad config costs several
  // times the optimum in both time and energy, so there is something for
  // the controller to optimise on every fleet member.
  for (const DeviceModel& model : {pixel_phone(), edge_server()}) {
    const WorkloadProfile vit = vit_profile();
    double t_min = std::numeric_limits<double>::infinity(), t_max = 0.0;
    double e_min = std::numeric_limits<double>::infinity(), e_max = 0.0;
    for (std::size_t flat = 0; flat < model.space().size(); ++flat) {
      const DvfsConfig c = model.space().from_flat(flat);
      t_min = std::min(t_min, model.latency(vit, c).value());
      t_max = std::max(t_max, model.latency(vit, c).value());
      e_min = std::min(e_min, model.energy(vit, c).value());
      e_max = std::max(e_max, model.energy(vit, c).value());
    }
    EXPECT_GT(t_max / t_min, 3.0) << model.name();
    EXPECT_GT(e_max / e_min, 1.5) << model.name();
  }
}

TEST(FleetDeviceCalibration, LatencyMonotoneOnBothClasses) {
  // The monotone-frequency axiom every other model obeys — the flat-table
  // sweep and Eqn. 2's pessimism both lean on it.
  for (const DeviceModel& model : {pixel_phone(), edge_server()}) {
    const DvfsSpace& space = model.space();
    const WorkloadProfile vit = vit_profile();
    const DvfsConfig base{3, 2, 1};
    for (std::size_t c = base.cpu + 1; c < space.cpu_table().size(); ++c) {
      EXPECT_LE(model.latency(vit, {c, base.gpu, base.mem}).value(),
                model.latency(vit, {c - 1, base.gpu, base.mem}).value() +
                    1e-12)
          << model.name();
    }
    for (std::size_t g = base.gpu + 1; g < space.gpu_table().size(); ++g) {
      EXPECT_LE(model.latency(vit, {base.cpu, g, base.mem}).value(),
                model.latency(vit, {base.cpu, g - 1, base.mem}).value() +
                    1e-12)
          << model.name();
    }
  }
}

}  // namespace
}  // namespace bofl::device
