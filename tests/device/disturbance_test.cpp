// Failure injection and thermal throttling in the device substrate.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "device/observer.hpp"

namespace bofl::device {
namespace {

TEST(Spikes, InflateMeanLatencyByExpectedFactor) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig x_max = agx.space().max_config();
  const double base = agx.latency(vit, x_max).value();

  NoiseModel noise;
  noise.latency_cv = 0.0;
  noise.energy_cv = 0.0;
  noise.spike_probability = 0.1;
  noise.spike_magnitude = 4.0;
  PerformanceObserver observer(agx, noise, 5);
  SimClock clock;
  RunningStats per_job;
  for (int i = 0; i < 300; ++i) {
    const Measurement m = observer.run_jobs(vit, x_max, 20, clock);
    per_job.add(m.true_duration.value() / 20.0);
  }
  // E[latency] = base * (1 + p (k - 1)) = base * 1.3.
  EXPECT_NEAR(per_job.mean() / base, 1.3, 0.03);
}

TEST(Spikes, TrueDurationAlwaysAtLeastNominal) {
  const DeviceModel agx = jetson_agx();
  NoiseModel noise;
  noise.spike_probability = 0.3;
  PerformanceObserver observer(agx, noise, 6);
  SimClock clock;
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig config{5, 5, 3};
  const double nominal = agx.latency(vit, config).value();
  for (int i = 0; i < 50; ++i) {
    const Measurement m = observer.run_jobs(vit, config, 5, clock);
    EXPECT_GE(m.true_duration.value(), 5.0 * nominal - 1e-9);
  }
}

TEST(Spikes, RejectsInvalidParameters) {
  const DeviceModel agx = jetson_agx();
  NoiseModel noise;
  noise.spike_probability = 1.0;
  EXPECT_THROW(PerformanceObserver(agx, noise, 1), std::invalid_argument);
  noise.spike_probability = 0.1;
  noise.spike_magnitude = 0.5;
  EXPECT_THROW(PerformanceObserver(agx, noise, 1), std::invalid_argument);
}

TEST(Thermal, TemperatureApproachesSteadyState) {
  const ThermalParams params;
  ThermalState state(params);
  EXPECT_DOUBLE_EQ(state.temperature_c(), params.ambient_c);
  // Hold 30 W for many time constants: T -> ambient + R * P = 25 + 42 = 67.
  for (int i = 0; i < 100; ++i) {
    state.advance(Watts{30.0}, Seconds{10.0});
  }
  EXPECT_NEAR(state.temperature_c(), 67.0, 0.1);
  EXPECT_FALSE(state.throttled());
}

TEST(Thermal, CoolsBackTowardsAmbient) {
  ThermalParams params;
  ThermalState state(params);
  for (int i = 0; i < 50; ++i) {
    state.advance(Watts{40.0}, Seconds{10.0});
  }
  const double hot = state.temperature_c();
  for (int i = 0; i < 50; ++i) {
    state.advance(Watts{0.0}, Seconds{10.0});
  }
  EXPECT_LT(state.temperature_c(), hot);
  EXPECT_NEAR(state.temperature_c(), params.ambient_c, 0.5);
}

TEST(Thermal, ThrottleCapsConfiguration) {
  const DeviceModel agx = jetson_agx();
  ThermalParams params;
  params.throttle_temp_c = 30.0;  // trivially exceeded
  ThermalState state(params);
  for (int i = 0; i < 20; ++i) {
    state.advance(Watts{40.0}, Seconds{10.0});
  }
  ASSERT_TRUE(state.throttled());
  const DvfsConfig requested = agx.space().max_config();
  const DvfsConfig effective = state.effective_config(agx.space(), requested);
  EXPECT_LT(effective.cpu, requested.cpu);
  EXPECT_LT(effective.gpu, requested.gpu);
  EXPECT_LT(effective.mem, requested.mem);
  // A config already below the cap passes through unchanged.
  const DvfsConfig low{1, 1, 1};
  EXPECT_EQ(state.effective_config(agx.space(), low), low);
}

TEST(Thermal, ObserverSlowsDownWhenHot) {
  const DeviceModel agx = jetson_agx();
  const WorkloadProfile vit = vit_profile();
  const DvfsConfig x_max = agx.space().max_config();
  const double cool_latency = agx.latency(vit, x_max).value();

  NoiseModel noise;
  noise.latency_cv = 0.0;
  noise.energy_cv = 0.0;
  ThermalParams params;
  params.throttle_temp_c = 45.0;   // reached quickly at full power
  params.time_constant_s = 20.0;
  noise.thermal = params;
  PerformanceObserver observer(agx, noise, 7);
  SimClock clock;

  // Run flat out until the die heats past the throttle point.
  Measurement last;
  for (int burst = 0; burst < 40; ++burst) {
    last = observer.run_jobs(vit, x_max, 50, clock);
  }
  ASSERT_NE(observer.thermal(), nullptr);
  EXPECT_TRUE(observer.thermal()->throttled());
  // Throttled jobs are slower than the cool-die latency.
  EXPECT_GT(last.true_duration.value() / 50.0, cool_latency * 1.2);
}

TEST(Thermal, RejectsInvalidParameters) {
  ThermalParams params;
  params.time_constant_s = 0.0;
  EXPECT_THROW(ThermalState{params}, std::invalid_argument);
  params = {};
  params.throttle_cap = 0.0;
  EXPECT_THROW(ThermalState{params}, std::invalid_argument);
}

}  // namespace
}  // namespace bofl::device
