#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace bofl::runtime {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([]() { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasksWhileBusy) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      // Discard the futures: shutdown alone must guarantee completion.
      auto f = pool.submit([&completed]() { ++completed; });
      (void)f;
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(completed.load(), 32);
}

TEST(ParallelForEach, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_each(&pool, kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEach, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for_each(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: serial by contract
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForEach, RethrowsTheFirstTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_each(&pool, 64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::invalid_argument("13");
                                   }
                                 }),
               std::invalid_argument);
}

TEST(ParallelForEach, NestedRegionsOnOnePoolComplete) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for_each(&pool, 8, [&](std::size_t) {
    parallel_for_each(&pool, 8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelForEach, ReenteringThePoolFromASubmittedWorkerRunsInline) {
  // The nested-parallelism rule the fleet control plane relies on: a region
  // started FROM a pool worker (a submitted task, not a nested region) must
  // detect the worker thread and run inline instead of re-entering the pool
  // — otherwise a pool whose every worker waits on a nested region
  // deadlocks.  Saturate the pool with such tasks to force the worst case.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.submit([&pool, &total]() {
      EXPECT_TRUE(pool.on_worker_thread());
      parallel_for_each(&pool, 16, [&](std::size_t) {
        EXPECT_TRUE(pool.on_worker_thread());  // ran inline on this worker
        ++total;
      });
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(total.load(), 8 * 16);
  EXPECT_FALSE(pool.on_worker_thread());  // the guard is per-thread
}

TEST(ParallelForEach, PerTaskStreamsAreThreadCountInvariant) {
  // The determinism recipe the rest of the stack uses: one stream_seed-ed
  // Rng per item, results written to the item's slot.
  constexpr std::uint64_t kBase = 99;
  constexpr std::size_t kN = 64;
  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kN);
    parallel_for_each(&pool, kN, [&](std::size_t i) {
      Rng rng(stream_seed(kBase, i));
      out[i] = rng.normal() + rng.uniform();
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  const std::vector<double> parallel = run(8);
  EXPECT_EQ(serial, parallel);  // bitwise: same doubles, same slots
}

TEST(StreamSeed, DistinctStreamsGetDistinctSeeds) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t base : {1ULL, 2ULL}) {
    for (std::uint64_t stream = 0; stream < 100; ++stream) {
      seeds.push_back(stream_seed(base, stream));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // And it is a pure function of (base, stream).
  EXPECT_EQ(stream_seed(7, 3), stream_seed(7, 3));
}

}  // namespace
}  // namespace bofl::runtime
