#include "runtime/sharding.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bofl::runtime {
namespace {

TEST(Sharding, RangesPartitionTheIndexSpace) {
  for (const std::size_t items : {1u, 7u, 4096u, 100'000u}) {
    for (const std::size_t shards : {1u, 3u, 16u}) {
      std::size_t expected_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const ShardRange range = shard_range(items, shards, s);
        EXPECT_EQ(range.begin, expected_begin);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, items);
    }
  }
}

TEST(Sharding, RangeSizesDifferByAtMostOne) {
  const std::size_t items = 1003;
  const std::size_t shards = 16;
  std::size_t min_size = items;
  std::size_t max_size = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = shard_range(items, shards, s).size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(Sharding, MoreShardsThanItemsLeavesTrailingRangesEmpty) {
  const ShardRange first = shard_range(2, 4, 0);
  const ShardRange last = shard_range(2, 4, 3);
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(last.size(), 0u);
}

TEST(Sharding, ResolveHonorsAnExplicitRequest) {
  EXPECT_EQ(resolve_shard_count(100'000, 7), 7u);
  EXPECT_EQ(resolve_shard_count(10, 3), 3u);
}

TEST(Sharding, ResolveAutoPicksAtLeastOneShard) {
  EXPECT_GE(resolve_shard_count(1, 0), 1u);
  EXPECT_GE(resolve_shard_count(1'000'000, 0), 1u);
  // Tiny inputs must not be shredded into per-item shards.
  EXPECT_LE(resolve_shard_count(100, 0), 100u);
}

TEST(Sharding, RejectsOutOfRangeShardIndex) {
  EXPECT_THROW((void)shard_range(10, 2, 2), std::invalid_argument);
  EXPECT_THROW((void)shard_range(10, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bofl::runtime
