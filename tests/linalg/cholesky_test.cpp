#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bofl::linalg {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  // A^T A + n * I is comfortably positive definite.
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.normal();
    }
  }
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<double>(n);
  }
  return spd;
}

TEST(Cholesky, KnownFactorization) {
  const Matrix a{{4.0, 12.0, -16.0}, {12.0, 37.0, -43.0}, {-16.0, -43.0, 98.0}};
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_DOUBLE_EQ((*l)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*l)(1, 0), 6.0);
  EXPECT_DOUBLE_EQ((*l)(1, 1), 1.0);
  EXPECT_DOUBLE_EQ((*l)(2, 0), -8.0);
  EXPECT_DOUBLE_EQ((*l)(2, 1), 5.0);
  EXPECT_DOUBLE_EQ((*l)(2, 2), 3.0);
}

TEST(Cholesky, ReconstructsOriginal) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix a = random_spd(6, rng);
    const auto l = cholesky(a);
    ASSERT_TRUE(l.has_value());
    const Matrix rebuilt = (*l) * l->transposed();
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t c = 0; c < 6; ++c) {
        EXPECT_NEAR(rebuilt(r, c), a(r, c), 1e-9);
      }
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW((void)cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(CholeskyJitter, NoJitterWhenHealthy) {
  Rng rng(7);
  const Matrix a = random_spd(4, rng);
  const JitteredCholesky jc = cholesky_with_jitter(a);
  EXPECT_EQ(jc.jitter, 0.0);
}

TEST(CholeskyJitter, RepairsSemiDefinite) {
  // Rank-1 matrix: positive semi-definite, singular.
  Matrix a(3, 3);
  const Vector v{1.0, 2.0, 3.0};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = v[r] * v[c];
    }
  }
  const JitteredCholesky jc = cholesky_with_jitter(a);
  EXPECT_GT(jc.jitter, 0.0);
  // The factor must reproduce a + jitter * I.
  const Matrix rebuilt = jc.l * jc.l.transposed();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(rebuilt(i, i), a(i, i) + jc.jitter, 1e-8);
  }
}

TEST(CholeskyJitter, ThrowsOnStructurallyBroken) {
  Matrix a{{-5.0, 0.0}, {0.0, -5.0}};
  EXPECT_THROW((void)cholesky_with_jitter(a, 1e-10, 1e-4), InternalError);
}

TEST(CholeskyAppendRow, MatchesFullFactorization) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(trial);
    const Matrix full = random_spd(n, rng);
    // Factor the leading (n-1) x (n-1) block, then append the last row.
    Matrix leading(n - 1, n - 1);
    Vector cross(n - 1);
    for (std::size_t r = 0; r + 1 < n; ++r) {
      cross[r] = full(r, n - 1);
      for (std::size_t c = 0; c + 1 < n; ++c) {
        leading(r, c) = full(r, c);
      }
    }
    const auto l0 = cholesky(leading);
    ASSERT_TRUE(l0.has_value());
    const auto appended = cholesky_append_row(*l0, cross, full(n - 1, n - 1));
    ASSERT_TRUE(appended.has_value());
    const auto reference = cholesky(full);
    ASSERT_TRUE(reference.has_value());
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c <= r; ++c) {
        EXPECT_NEAR((*appended)(r, c), (*reference)(r, c), 1e-9);
      }
    }
  }
}

TEST(CholeskyAppendRow, GrowsFromEmptyFactor) {
  const Matrix empty(0, 0);
  const auto l = cholesky_append_row(empty, {}, 9.0);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->rows(), 1u);
  EXPECT_DOUBLE_EQ((*l)(0, 0), 3.0);
}

TEST(CholeskyAppendRow, ExtendsJitteredFactor) {
  // Rank-1 base needs jitter to factor at all; the appended row must then
  // carry the same jitter on its diagonal to stay consistent.
  Matrix a(3, 3);
  const Vector v{1.0, 2.0, 3.0};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = v[r] * v[c];
    }
  }
  const JitteredCholesky jc = cholesky_with_jitter(a);
  ASSERT_GT(jc.jitter, 0.0);
  // Append an independent direction: cross = 0, diag = 2 + jitter.
  const auto l = cholesky_append_row(jc.l, {0.0, 0.0, 0.0}, 2.0 + jc.jitter);
  ASSERT_TRUE(l.has_value());
  const Matrix rebuilt = (*l) * l->transposed();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(rebuilt(i, i), a(i, i) + jc.jitter, 1e-8);
  }
  EXPECT_NEAR(rebuilt(3, 3), 2.0 + jc.jitter, 1e-12);
  EXPECT_NEAR(rebuilt(3, 0), 0.0, 1e-12);
}

TEST(CholeskyAppendRow, RejectsNearSingularRow) {
  Rng rng(23);
  const Matrix a = random_spd(4, rng);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  // Appending an exact copy of row 2 (diag = a(2,2)) makes the bordered
  // matrix singular: the O(n^2) update must refuse rather than emit a
  // catastrophically cancelled sqrt.
  Vector cross(4);
  for (std::size_t i = 0; i < 4; ++i) {
    cross[i] = a(i, 2);
  }
  EXPECT_FALSE(cholesky_append_row(*l, cross, a(2, 2)).has_value());
}

TEST(CholeskyAppendRow, RejectsShapeMismatch) {
  const Matrix l{{2.0, 0.0}, {1.0, 3.0}};
  EXPECT_THROW((void)cholesky_append_row(l, {1.0}, 5.0),
               std::invalid_argument);
}

// Repeated appends vs. one from-scratch factorization: the incremental
// factor of a growing random SPD matrix stays within tight tolerance of
// the full refactorization (the GP fantasy-update invariant).
TEST(CholeskyAppendRow, RepeatedAppendsTrackFullFactorization) {
  Rng rng(31);
  const std::size_t n = 12;
  const Matrix full = random_spd(n, rng);
  Matrix leading(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      leading(r, c) = full(r, c);
    }
  }
  auto incremental = cholesky(leading);
  ASSERT_TRUE(incremental.has_value());
  for (std::size_t k = 3; k < n; ++k) {
    Vector cross(k);
    for (std::size_t i = 0; i < k; ++i) {
      cross[i] = full(i, k);
    }
    auto extended = cholesky_append_row(*incremental, cross, full(k, k));
    ASSERT_TRUE(extended.has_value());
    incremental = std::move(extended);
  }
  const auto reference = cholesky(full);
  ASSERT_TRUE(reference.has_value());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      EXPECT_NEAR((*incremental)(r, c), (*reference)(r, c), 1e-8);
    }
  }
}

TEST(SolveLowerMulti, MatchesPerColumnSolves) {
  Rng rng(41);
  const Matrix a = random_spd(7, rng);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const std::size_t m = 5;
  Matrix b(7, m);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      b(r, c) = rng.normal();
    }
  }
  const Matrix x = solve_lower_multi(*l, b);
  for (std::size_t c = 0; c < m; ++c) {
    Vector col(7);
    for (std::size_t r = 0; r < 7; ++r) {
      col[r] = b(r, c);
    }
    const Vector ref = solve_lower(*l, col);
    for (std::size_t r = 0; r < 7; ++r) {
      EXPECT_NEAR(x(r, c), ref[r], 1e-12);
    }
  }
}

TEST(SolveLowerMulti, RejectsShapeMismatch) {
  const Matrix l{{2.0, 0.0}, {1.0, 3.0}};
  EXPECT_THROW((void)solve_lower_multi(l, Matrix(3, 2)),
               std::invalid_argument);
}

TEST(TriangularSolve, ForwardAndBackward) {
  const Matrix a{{4.0, 12.0, -16.0}, {12.0, 37.0, -43.0}, {-16.0, -43.0, 98.0}};
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Vector b{1.0, 2.0, 3.0};
  const Vector x = solve_cholesky(*l, b);
  const Vector should_be_b = a * x;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(should_be_b[i], b[i], 1e-9);
  }
}

TEST(TriangularSolve, LowerThenTransposeRoundTrip) {
  const Matrix l{{2.0, 0.0}, {1.0, 3.0}};
  const Vector b{4.0, 10.0};
  const Vector y = solve_lower(l, b);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0 / 3.0);
  const Vector z = solve_lower_transpose(l, b);
  // L^T z = b -> z1 = (4 - 1*z2)/2 with z2 = 10/3.
  EXPECT_NEAR(z[1], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(z[0], (4.0 - z[1]) / 2.0, 1e-12);
}

TEST(LogDet, MatchesDirectDeterminant) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};  // det = 8
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR(log_det_from_cholesky(*l), std::log(8.0), 1e-12);
}

// Property sweep: solve_cholesky inverts multiplication for random SPD
// systems of several sizes.
class CholeskySolveProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySolveProperty, SolvesRandomSystems) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = random_spd(n, rng);
  Vector b(n);
  for (double& v : b) {
    v = rng.normal();
  }
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Vector x = solve_cholesky(*l, b);
  const Vector back = a * x;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], b[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bofl::linalg
