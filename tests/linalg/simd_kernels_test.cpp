// Differential tests for the SIMD kernel layer: every vectorized kernel is
// compared against its scalar reference — bitwise for the elementwise
// kernels (normal_pdf_cdf_batch, ehvi_strips, corr_row position
// independence), tolerance-pinned for the FMA reduction kernels (dot, GEMM,
// triangular solve, sum-of-squares, correlation rows) — across randomized
// shapes including every vector-remainder class, plus NaN/inf propagation
// and the dispatch override contract.
//
// The `_avx2` variants are called directly (no global dispatch flips), so
// these tests cannot perturb the level other tests run under; AVX2 cases
// GTEST_SKIP on machines/builds without the AVX2 path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "bo/ehvi.hpp"
#include "common/rng.hpp"
#include "linalg/simd/dispatch.hpp"
#include "linalg/simd/kernels.hpp"

namespace bofl::linalg::simd {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool avx2_available() { return avx2_compiled() && cpu_supports_avx2(); }

#define SKIP_WITHOUT_AVX2()                                      \
  do {                                                           \
    if (!avx2_available()) {                                     \
      GTEST_SKIP() << "AVX2 kernels not available on this host"; \
    }                                                            \
  } while (false)

std::vector<double> random_vector(Rng& rng, std::size_t n, double lo = -2.0,
                                  double hi = 2.0) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(lo, hi);
  }
  return v;
}

/// Same bits, including NaN payloads and zero signs.
::testing::AssertionResult bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  if (ba == bb) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << ba << ") != " << b << " (0x" << bb
         << ")";
}

/// Reduction-kernel comparison: NaNs must agree; finite values must agree
/// to a relative tolerance (FMA vs split rounding), with an absolute floor
/// for results near zero.
void expect_close(double avx2, double scalar, double scale = 1.0) {
  if (std::isnan(scalar)) {
    EXPECT_TRUE(std::isnan(avx2)) << "scalar NaN but avx2 " << avx2;
    return;
  }
  if (std::isinf(scalar)) {
    EXPECT_EQ(avx2, scalar);
    return;
  }
  const double tol = 1e-12 * std::max(scale, std::abs(scalar)) + 1e-300;
  EXPECT_NEAR(avx2, scalar, tol);
}

// ---------------------------------------------------------------------------
// Dot products.

TEST(SimdDot, Avx2MatchesScalarAcrossLengthsAndRemainders) {
  SKIP_WITHOUT_AVX2();
  Rng rng(1);
  for (std::size_t n = 0; n <= 70; ++n) {  // covers %16, %4 and tail classes
    const auto a = random_vector(rng, n);
    const auto b = random_vector(rng, n);
    const double v = dot_avx2(a.data(), b.data(), n);
    expect_close(v, dot_serial_scalar(a.data(), b.data(), n),
                 static_cast<double>(n));
    expect_close(v, dot_blocked_scalar(a.data(), b.data(), n),
                 static_cast<double>(n));
  }
}

TEST(SimdDot, ScalarVariantsKeepHistoricalAccumulationOrders) {
  // The two scalar semantics are intentionally different expression trees;
  // on ill-conditioned data they may differ in the last bits, but both must
  // agree with a long-double reference to fp tolerance.
  Rng rng(2);
  const std::size_t n = 37;
  const auto a = random_vector(rng, n, -1e3, 1e3);
  const auto b = random_vector(rng, n, -1e3, 1e3);
  long double ref = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    ref += static_cast<long double>(a[i]) * b[i];
  }
  EXPECT_NEAR(dot_serial_scalar(a.data(), b.data(), n),
              static_cast<double>(ref), 1e-6);
  EXPECT_NEAR(dot_blocked_scalar(a.data(), b.data(), n),
              static_cast<double>(ref), 1e-6);
}

TEST(SimdDot, NanAndInfPropagate) {
  SKIP_WITHOUT_AVX2();
  std::vector<double> a(9, 1.0);
  std::vector<double> b(9, 2.0);
  a[5] = kNan;
  EXPECT_TRUE(std::isnan(dot_avx2(a.data(), b.data(), 9)));
  a[5] = kInf;
  EXPECT_EQ(dot_avx2(a.data(), b.data(), 9), kInf);
}

// ---------------------------------------------------------------------------
// GEMM.

TEST(SimdGemm, Avx2MatchesScalarAcrossShapes) {
  SKIP_WITHOUT_AVX2();
  Rng rng(3);
  // Every (m % 4, n % 8) remainder class, k incl. 0 and odd values.
  const std::size_t ms[] = {1, 2, 3, 4, 5, 7, 8, 13};
  const std::size_t ns[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 17};
  const std::size_t ks[] = {0, 1, 3, 8, 21};
  for (const std::size_t m : ms) {
    for (const std::size_t n : ns) {
      for (const std::size_t k : ks) {
        const auto a = random_vector(rng, m * k);
        const auto b = random_vector(rng, k * n);
        std::vector<double> c_scalar(m * n, 0.0);
        std::vector<double> c_avx2(m * n, 0.0);
        gemm_scalar(a.data(), m, k, b.data(), n, c_scalar.data());
        gemm_avx2(a.data(), m, k, b.data(), n, c_avx2.data());
        for (std::size_t i = 0; i < m * n; ++i) {
          SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n
                                            << " k=" << k << " i=" << i);
          expect_close(c_avx2[i], c_scalar[i], static_cast<double>(k));
        }
      }
    }
  }
}

TEST(SimdGemm, NanPropagatesToTheAffectedRowAndColumn) {
  SKIP_WITHOUT_AVX2();
  Rng rng(4);
  const std::size_t m = 6;
  const std::size_t k = 5;
  const std::size_t n = 7;
  auto a = random_vector(rng, m * k);
  const auto b = random_vector(rng, k * n);
  a[2 * k + 3] = kNan;  // row 2 of a
  std::vector<double> c_scalar(m * n, 0.0);
  std::vector<double> c_avx2(m * n, 0.0);
  gemm_scalar(a.data(), m, k, b.data(), n, c_scalar.data());
  gemm_avx2(a.data(), m, k, b.data(), n, c_avx2.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(std::isnan(c_avx2[i]), std::isnan(c_scalar[i])) << "i=" << i;
    if (i / n == 2) {
      EXPECT_TRUE(std::isnan(c_avx2[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked forward substitution.

TEST(SimdSolveLowerMulti, Avx2MatchesScalarAcrossShapes) {
  SKIP_WITHOUT_AVX2();
  Rng rng(5);
  const std::size_t ns[] = {1, 2, 3, 4, 5, 9, 30, 33};
  const std::size_t ms[] = {1, 2, 3, 4, 6, 8, 17, 64, 70};
  for (const std::size_t n : ns) {
    for (const std::size_t m : ms) {
      // Diagonally dominant lower-triangular L: well-conditioned solves.
      std::vector<double> l(n * n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          l[i * n + j] = rng.uniform(-0.4, 0.4);
        }
        l[i * n + i] = rng.uniform(1.0, 2.0);
      }
      const auto rhs = random_vector(rng, n * m);
      std::vector<double> x_scalar = rhs;
      std::vector<double> x_avx2 = rhs;
      solve_lower_multi_inplace_scalar(l.data(), n, x_scalar.data(), m);
      solve_lower_multi_inplace_avx2(l.data(), n, x_avx2.data(), m);
      for (std::size_t i = 0; i < n * m; ++i) {
        SCOPED_TRACE(::testing::Message()
                     << "n=" << n << " m=" << m << " i=" << i);
        expect_close(x_avx2[i], x_scalar[i], static_cast<double>(n));
      }
    }
  }
}

TEST(SimdSolveLowerMulti, NanRhsPropagatesDownTheColumn) {
  SKIP_WITHOUT_AVX2();
  Rng rng(6);
  const std::size_t n = 8;
  const std::size_t m = 6;
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      l[i * n + j] = rng.uniform(-0.4, 0.4);
    }
    l[i * n + i] = 1.5;
  }
  auto rhs = random_vector(rng, n * m);
  rhs[0 * m + 2] = kNan;  // column 2 poisoned from row 0
  std::vector<double> x_scalar = rhs;
  std::vector<double> x_avx2 = rhs;
  solve_lower_multi_inplace_scalar(l.data(), n, x_scalar.data(), m);
  solve_lower_multi_inplace_avx2(l.data(), n, x_avx2.data(), m);
  for (std::size_t i = 0; i < n * m; ++i) {
    EXPECT_EQ(std::isnan(x_avx2[i]), std::isnan(x_scalar[i])) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Sum-of-squares accumulation.

TEST(SimdSumsqRows, Avx2MatchesScalarAcrossShapes) {
  SKIP_WITHOUT_AVX2();
  Rng rng(7);
  const std::size_t rows_cases[] = {0, 1, 2, 3, 4, 5, 8, 11};
  const std::size_t ms[] = {1, 2, 3, 4, 7, 16, 21};
  for (const std::size_t rows : rows_cases) {
    for (const std::size_t m : ms) {
      const auto v = random_vector(rng, rows * m);
      auto acc_scalar = random_vector(rng, m, 0.0, 1.0);
      auto acc_avx2 = acc_scalar;
      sumsq_rows_accumulate_scalar(v.data(), rows, m, acc_scalar.data());
      sumsq_rows_accumulate_avx2(v.data(), rows, m, acc_avx2.data());
      for (std::size_t j = 0; j < m; ++j) {
        SCOPED_TRACE(::testing::Message()
                     << "rows=" << rows << " m=" << m << " j=" << j);
        expect_close(acc_avx2[j], acc_scalar[j],
                     static_cast<double>(rows) + 1.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Correlation rows.

TEST(SimdCorrRow, Avx2MatchesScalarForEveryFamily) {
  SKIP_WITHOUT_AVX2();
  Rng rng(8);
  for (const Corr family : {Corr::kMatern52, Corr::kMatern32, Corr::kRbf}) {
    for (const std::size_t dim : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}}) {
      for (std::size_t count = 1; count <= 11; ++count) {
        const auto x = random_vector(rng, dim, 0.0, 1.0);
        const auto lengthscales = random_vector(rng, dim, 0.1, 1.5);
        std::vector<std::vector<double>> pts(count);
        std::vector<const double*> ptrs(count);
        for (std::size_t j = 0; j < count; ++j) {
          pts[j] = random_vector(rng, dim, 0.0, 1.0);
          ptrs[j] = pts[j].data();
        }
        std::vector<double> out_scalar(count);
        std::vector<double> out_avx2(count);
        corr_row_scalar(family, x.data(), ptrs.data(), count,
                        lengthscales.data(), dim, 1.7, out_scalar.data());
        corr_row_avx2(family, x.data(), ptrs.data(), count,
                      lengthscales.data(), dim, 1.7, out_avx2.data());
        for (std::size_t j = 0; j < count; ++j) {
          SCOPED_TRACE(::testing::Message()
                       << "family=" << static_cast<int>(family)
                       << " dim=" << dim << " count=" << count << " j=" << j);
          // Polynomial exp vs libm: a few ulp relative, everything here O(1).
          EXPECT_NEAR(out_avx2[j], out_scalar[j],
                      1e-13 * std::abs(out_scalar[j]) + 1e-300);
        }
      }
    }
  }
}

TEST(SimdCorrRow, UnderflowRangeFlushesLikeLibm) {
  SKIP_WITHOUT_AVX2();
  // Tiny lengthscales make the scaled distance enormous: j=0 lands deep in
  // the normal exp range (relative tolerance applies), the rest drive exp
  // to denormals and then 0 — where libm may return a denormal while the
  // vector path flushes, so agreement is absolute within the largest
  // denormal (2.3e-308).
  const double x[] = {0.0};
  const double p0[] = {1.0};
  const double p1[] = {300.0};
  const double p2[] = {900.0};
  const double p3[] = {2000.0};
  const double* pts[] = {p0, p1, p2, p3};
  const double ls[] = {1e-2};
  double out_scalar[4];
  double out_avx2[4];
  for (const Corr family : {Corr::kMatern52, Corr::kMatern32, Corr::kRbf}) {
    corr_row_scalar(family, x, pts, 4, ls, 1, 1.0, out_scalar);
    corr_row_avx2(family, x, pts, 4, ls, 1, 1.0, out_avx2);
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(out_avx2[j], out_scalar[j],
                  1e-13 * std::abs(out_scalar[j]) + 2.3e-308)
          << "family=" << static_cast<int>(family) << " j=" << j;
      EXPECT_GE(out_avx2[j], 0.0);
    }
  }
}

TEST(SimdCorrRow, OutputIsPositionIndependent) {
  SKIP_WITHOUT_AVX2();
  // Remainder padding means out[j] never depends on where j sits in the
  // batch — the property that keeps Kernel::cross bit-equal to pointwise
  // Kernel::operator() calls.
  Rng rng(9);
  const std::size_t dim = 3;
  const std::size_t count = 7;  // exercises the padded 3-lane remainder
  const auto x = random_vector(rng, dim, 0.0, 1.0);
  const auto ls = random_vector(rng, dim, 0.2, 1.0);
  std::vector<std::vector<double>> pts(count);
  std::vector<const double*> ptrs(count);
  for (std::size_t j = 0; j < count; ++j) {
    pts[j] = random_vector(rng, dim, 0.0, 1.0);
    ptrs[j] = pts[j].data();
  }
  std::vector<double> batch(count);
  corr_row_avx2(Corr::kMatern52, x.data(), ptrs.data(), count, ls.data(), dim,
                1.0, batch.data());
  for (std::size_t j = 0; j < count; ++j) {
    double single = 0.0;
    const double* one = pts[j].data();
    corr_row_avx2(Corr::kMatern52, x.data(), &one, 1, ls.data(), dim, 1.0,
                  &single);
    EXPECT_TRUE(bits_equal(batch[j], single)) << "j=" << j;
  }
}

TEST(SimdCorrRow, NanAndInfPropagate) {
  SKIP_WITHOUT_AVX2();
  const double x[] = {0.0, 0.5};
  const double pn[] = {kNan, 0.5};
  const double pi[] = {kInf, 0.5};
  const double pf[] = {0.2, 0.3};
  const double* pts[] = {pn, pi, pf};
  const double ls[] = {0.5, 0.5};
  double out_scalar[3];
  double out_avx2[3];
  corr_row_scalar(Corr::kMatern52, x, pts, 3, ls, 2, 1.0, out_scalar);
  corr_row_avx2(Corr::kMatern52, x, pts, 3, ls, 2, 1.0, out_avx2);
  EXPECT_TRUE(std::isnan(out_avx2[0]));
  EXPECT_TRUE(std::isnan(out_scalar[0]));
  // Infinite distance: the Matern polynomial factor is +inf while the exp
  // factor is 0, so inf * 0 = NaN — on both paths, identically.
  EXPECT_TRUE(std::isnan(out_avx2[1]));
  EXPECT_TRUE(std::isnan(out_scalar[1]));
  EXPECT_NEAR(out_avx2[2], out_scalar[2], 1e-13);
}

// ---------------------------------------------------------------------------
// Batched normal pdf/cdf: bit-identical by contract.

TEST(SimdNormalPdfCdf, BitIdenticalToScalarOnRandomInputs) {
  SKIP_WITHOUT_AVX2();
  Rng rng(10);
  for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{64},
                                  std::size_t{67}}) {
    std::vector<double> t(count);
    for (double& v : t) {
      v = rng.uniform(-40.0, 40.0);
    }
    std::vector<double> pdf_s(count);
    std::vector<double> cdf_s(count);
    std::vector<double> pdf_v(count);
    std::vector<double> cdf_v(count);
    normal_pdf_cdf_batch_scalar(t.data(), count, pdf_s.data(), cdf_s.data());
    normal_pdf_cdf_batch_avx2(t.data(), count, pdf_v.data(), cdf_v.data());
    for (std::size_t i = 0; i < count; ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "count=" << count << " i=" << i << " t=" << t[i]);
      EXPECT_TRUE(bits_equal(pdf_v[i], pdf_s[i]));
      EXPECT_TRUE(bits_equal(cdf_v[i], cdf_s[i]));
    }
  }
}

TEST(SimdNormalPdfCdf, BitIdenticalOnBoundariesAndSpecials) {
  SKIP_WITHOUT_AVX2();
  const double seam = 7.07106781186547;
  const std::vector<double> t = {
      0.0,          -0.0,
      kNan,         kInf,
      -kInf,        seam,
      std::nextafter(seam, 0.0),
      std::nextafter(seam, 10.0),
      37.6,         std::nextafter(37.6, 100.0),
      -37.6,        37.7,
      -37.7,        38.0,
      -38.0,        1e-308,
      -1e-308,      5e-324,
      1.0,          -1.0};
  const std::size_t count = t.size();
  std::vector<double> pdf_s(count);
  std::vector<double> cdf_s(count);
  std::vector<double> pdf_v(count);
  std::vector<double> cdf_v(count);
  normal_pdf_cdf_batch_scalar(t.data(), count, pdf_s.data(), cdf_s.data());
  normal_pdf_cdf_batch_avx2(t.data(), count, pdf_v.data(), cdf_v.data());
  for (std::size_t i = 0; i < count; ++i) {
    SCOPED_TRACE(::testing::Message() << "i=" << i << " t=" << t[i]);
    EXPECT_TRUE(bits_equal(pdf_v[i], pdf_s[i]));
    EXPECT_TRUE(bits_equal(cdf_v[i], cdf_s[i]));
  }
}

// ---------------------------------------------------------------------------
// EHVI strips: bit-identical by contract.

TEST(SimdEhviStrips, BitIdenticalToScalarOnRandomFronts) {
  SKIP_WITHOUT_AVX2();
  Rng rng(11);
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{9},
                              std::size_t{24}}) {
    // bound1 strictly ascending, ceiling2 strictly descending — the shape
    // CompiledFront guarantees.
    std::vector<double> bound1(m);
    std::vector<double> ceiling2(m);
    double b = rng.uniform(0.0, 1.0);
    double c = rng.uniform(5.0, 6.0);
    for (std::size_t k = 0; k < m; ++k) {
      b += rng.uniform(0.1, 0.5);
      c -= rng.uniform(0.1, 0.4);
      bound1[k] = b;
      ceiling2[k] = c;
    }
    const double mu1 = rng.uniform(0.0, 4.0);
    const double sigma1 = rng.uniform(0.1, 1.0);
    const double mu2 = rng.uniform(0.0, 4.0);
    const double sigma2 = rng.uniform(0.1, 1.0);
    const auto pdf1 = random_vector(rng, m, 0.0, 0.4);
    const auto cdf1 = random_vector(rng, m, 0.0, 1.0);
    const auto pdf2 = random_vector(rng, m, 0.0, 0.4);
    const auto cdf2 = random_vector(rng, m, 0.0, 1.0);
    std::vector<double> width_s(m);
    std::vector<double> height_s(m);
    std::vector<double> width_v(m);
    std::vector<double> height_v(m);
    ehvi_strips_scalar(bound1.data(), ceiling2.data(), m, mu1, sigma1, mu2,
                       sigma2, pdf1.data(), cdf1.data(), pdf2.data(),
                       cdf2.data(), width_s.data(), height_s.data());
    ehvi_strips_avx2(bound1.data(), ceiling2.data(), m, mu1, sigma1, mu2,
                     sigma2, pdf1.data(), cdf1.data(), pdf2.data(),
                     cdf2.data(), width_v.data(), height_v.data());
    for (std::size_t k = 0; k < m; ++k) {
      SCOPED_TRACE(::testing::Message() << "m=" << m << " k=" << k);
      EXPECT_TRUE(bits_equal(width_v[k], width_s[k]));
      EXPECT_TRUE(bits_equal(height_v[k], height_s[k]));
    }
  }
}

// ---------------------------------------------------------------------------
// EHVI degenerate boundary: sigma == 0 beliefs take the exact scalar path
// regardless of dispatch level, so a whole candidate block must come out
// bit-identical across levels even when degenerate and regular beliefs mix.

TEST(SimdEhviBoundary, ZeroSigmaBlockBitIdenticalAcrossLevels) {
  SKIP_WITHOUT_AVX2();
  const std::vector<pareto::Point2> front = {
      {1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  const pareto::Point2 ref{5.0, 5.0};
  const bo::CompiledFront compiled(front, ref, bo::EhviMode::kFast);
  // Degenerate (one or both sigmas zero), mixed with regular beliefs;
  // count 5 also exercises the block's vector remainder.
  const std::vector<bo::GaussianPair> beliefs = {
      {0.5, 0.0, 0.5, 0.0},   // both zero: deterministic HVI
      {0.5, 0.0, 0.5, 0.3},   // one zero
      {1.5, 0.2, 1.5, 0.0},   // other zero
      {1.5, 0.2, 1.5, 0.3},   // regular
      {4.9, 0.0, 4.9, 0.0},   // degenerate, nearly no improvement
  };
  const Level ambient = active_level();
  std::vector<double> out_avx2(beliefs.size());
  std::vector<double> out_scalar(beliefs.size());
  force_level(Level::kAvx2);
  compiled.ehvi_block(beliefs.data(), beliefs.size(), out_avx2.data());
  force_level(Level::kScalar);
  compiled.ehvi_block(beliefs.data(), beliefs.size(), out_scalar.data());
  force_level(ambient);
  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "belief " << i);
    EXPECT_TRUE(bits_equal(out_avx2[i], out_scalar[i]));
    // Degenerate beliefs must also match the reference implementation
    // bit-for-bit (the documented ehvi_2d fallback contract).
    if (beliefs[i].sigma1 == 0.0 || beliefs[i].sigma2 == 0.0) {
      EXPECT_TRUE(
          bits_equal(out_avx2[i], bo::ehvi_2d(beliefs[i], front, ref)));
    }
    EXPECT_GE(out_avx2[i], 0.0);
  }
}

// ---------------------------------------------------------------------------
// Dispatch.

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const Level level : {Level::kScalar, Level::kAvx2}) {
    const auto parsed = level_from_string(to_string(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(level_from_string("bogus").has_value());
  EXPECT_FALSE(level_from_string("").has_value());
  EXPECT_FALSE(level_from_string("AVX2").has_value());  // case-sensitive
}

TEST(SimdDispatch, ActiveLevelIsExecutable) {
  const Level level = active_level();
  if (level == Level::kAvx2) {
    EXPECT_TRUE(avx2_compiled());
    EXPECT_TRUE(cpu_supports_avx2());
  } else {
    EXPECT_EQ(level, Level::kScalar);
  }
}

TEST(SimdDispatch, ForceLevelOverridesAndRestores) {
  const Level ambient = active_level();
  force_level(Level::kScalar);
  EXPECT_EQ(active_level(), Level::kScalar);
  // Dispatching entry points actually follow the override.
  const double a[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const double b[] = {2.0, 3.0, 4.0, 5.0, 6.0};
  EXPECT_TRUE(bits_equal(dot_serial(a, b, 5), dot_serial_scalar(a, b, 5)));
  EXPECT_TRUE(bits_equal(dot_blocked(a, b, 5), dot_blocked_scalar(a, b, 5)));
  force_level(ambient);
  EXPECT_EQ(active_level(), ambient);
}

}  // namespace
}  // namespace bofl::linalg::simd
