#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bofl::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

// The register-blocked product must agree with the textbook triple loop on
// every shape, including the < 4-row remainder the blocked kernel handles
// separately and matrices containing exact zeros.
TEST(Matrix, ProductMatchesNaiveReference) {
  Rng rng(71);
  const std::size_t shapes[][3] = {{1, 1, 1}, {2, 3, 4}, {3, 5, 2},
                                   {4, 4, 4}, {5, 4, 6}, {7, 2, 9},
                                   {8, 8, 8}, {9, 6, 5}};
  for (const auto& s : shapes) {
    Matrix a(s[0], s[1]);
    Matrix b(s[1], s[2]);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        a(r, c) = rng.uniform() < 0.2 ? 0.0 : rng.normal();
      }
    }
    for (std::size_t r = 0; r < b.rows(); ++r) {
      for (std::size_t c = 0; c < b.cols(); ++c) {
        b(r, c) = rng.normal();
      }
    }
    const Matrix fast = a * b;
    for (std::size_t i = 0; i < s[0]; ++i) {
      for (std::size_t j = 0; j < s[2]; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < s[1]; ++k) {
          sum += a(i, k) * b(k, j);
        }
        EXPECT_NEAR(fast(i, j), sum, 1e-12)
            << s[0] << "x" << s[1] << "x" << s[2] << " at (" << i << "," << j
            << ")";
      }
    }
  }
}

TEST(Matrix, RowAccessorAliasesStorage) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  m.row(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
  const Matrix& cm = m;
  EXPECT_DOUBLE_EQ(cm.row(0)[1], 2.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Vector x{1.0, 0.0, -1.0};
  const Vector y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(VectorOps, DotNormDistance) {
  const Vector a{3.0, 4.0};
  const Vector b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 8.0);
}

TEST(VectorOps, Axpy) {
  const Vector a{1.0, 2.0};
  const Vector b{10.0, 20.0};
  const Vector y = axpy(a, 0.5, b);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)squared_distance({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bofl::linalg
