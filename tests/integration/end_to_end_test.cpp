// Cross-module integration: the full paper pipeline on a reduced scale.
// One test walks the exact §6 protocol (three controllers, sampled
// deadlines, per-round comparison); another couples the sysfs actuation
// path with the controller decisions.
#include <gtest/gtest.h>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"
#include "core/oracle_controller.hpp"
#include "core/performant_controller.hpp"
#include "device/sysfs.hpp"
#include "fl/simulation.hpp"

namespace bofl {
namespace {

TEST(EndToEnd, PaperProtocolOrderingHolds) {
  // Over a full (shortened) task: Oracle <= BoFL < Performant in energy,
  // everyone meets every deadline, and BoFL's regret is bounded.
  const device::DeviceModel agx = device::jetson_agx();
  const core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  core::FlTaskSpec shortened = task;
  shortened.num_rounds = 50;
  const auto rounds = core::make_rounds(shortened, agx, 2.0, 1234);

  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(agx.name());
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  core::BoflController bofl(agx, task.profile, {}, options, 55);
  core::PerformantController performant(agx, task.profile, {}, 56);
  core::OracleController oracle(agx, task.profile, {}, 57);

  const core::TaskResult rb = core::run_task(bofl, rounds);
  const core::TaskResult rp = core::run_task(performant, rounds);
  const core::TaskResult ro = core::run_task(oracle, rounds);

  EXPECT_TRUE(rb.all_deadlines_met());
  EXPECT_TRUE(rp.all_deadlines_met());
  EXPECT_TRUE(ro.all_deadlines_met());

  const double e_bofl = core::total_energy(rb).value();
  const double e_perf = core::total_energy(rp).value();
  const double e_oracle = core::total_energy(ro).value();
  EXPECT_LT(e_oracle, e_bofl);
  EXPECT_LT(e_bofl, e_perf);
  // Paper headline bands, loosened for the short run: >= 12 % improvement,
  // <= 12 % regret.
  EXPECT_GT(core::improvement_vs(rb, rp), 0.12);
  EXPECT_LT(core::regret_vs(rb, ro), 0.12);
}

TEST(EndToEnd, ControllerDecisionsActuateThroughSysfs) {
  // Replay a BoFL trace through the sysfs controller and verify that the
  // kernel-facing files reflect every configuration the controller chose.
  const device::DeviceModel agx = device::jetson_agx();
  const core::FlTaskSpec task = core::imdb_lstm_task(agx.name());
  core::FlTaskSpec shortened = task;
  shortened.num_rounds = 6;
  const auto rounds = core::make_rounds(shortened, agx, 2.5, 99);

  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(agx.name());
  options.mbo.hyperopt.num_restarts = 1;
  options.mbo.hyperopt.max_iterations_per_start = 60;
  core::BoflController bofl(agx, task.profile, {}, options, 77);

  device::SysfsDvfsController sysfs(agx.space());
  for (const core::RoundSpec& spec : rounds) {
    const core::RoundTrace trace = bofl.run_round(spec);
    for (const core::ConfigRun& run : trace.runs) {
      sysfs.apply(run.config);
      EXPECT_EQ(sysfs.current(), run.config);
    }
  }
}

TEST(EndToEnd, FleetSimulationSavesEnergyWithoutHurtingAccuracy) {
  const device::DeviceModel agx = device::jetson_agx();
  fl::FlSimulationConfig base;
  base.num_clients = 6;
  base.clients_per_round = 3;
  base.rounds = 30;
  base.epochs = 2;
  base.minibatch_size = 8;
  base.shard_examples = 512;
  base.deadline_ratio = 3.0;
  base.seed = 777;

  fl::FlSimulationConfig bofl_config = base;
  bofl_config.controller = fl::ControllerKind::kBofl;
  fl::FlSimulationConfig perf_config = base;
  perf_config.controller = fl::ControllerKind::kPerformant;

  fl::FederatedSimulation bofl_sim(agx, bofl_config);
  fl::FederatedSimulation perf_sim(agx, perf_config);
  const fl::FlSimulationResult bofl = bofl_sim.run();
  const fl::FlSimulationResult perf = perf_sim.run();

  EXPECT_LT(bofl.total_energy().value(), perf.total_energy().value());
  // Same seeds, same aggregation stream -> learning quality must match.
  EXPECT_NEAR(bofl.final_accuracy(), perf.final_accuracy(), 1e-12);
}

}  // namespace
}  // namespace bofl
