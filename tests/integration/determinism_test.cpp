// Determinism and soak: identical seeds must reproduce identical traces
// bit-for-bit across the whole stack, and a long run must stay stable.
#include <gtest/gtest.h>

#include "core/bofl_controller.hpp"
#include "core/harness.hpp"

namespace bofl {
namespace {

core::TaskResult run_once(std::uint64_t seed) {
  const device::DeviceModel agx = device::jetson_agx();
  core::FlTaskSpec task = core::cifar10_vit_task(agx.name());
  task.num_rounds = 20;
  const auto rounds = core::make_rounds(task, agx, 2.0, 4040);
  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(agx.name());
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  core::BoflController bofl(agx, task.profile, {}, options, seed);
  return core::run_task(bofl, rounds);
}

TEST(Determinism, IdenticalSeedsReproduceExactTraces) {
  const core::TaskResult a = run_once(77);
  const core::TaskResult b = run_once(77);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].phase, b.rounds[r].phase);
    EXPECT_DOUBLE_EQ(a.rounds[r].energy().value(),
                     b.rounds[r].energy().value());
    EXPECT_DOUBLE_EQ(a.rounds[r].elapsed().value(),
                     b.rounds[r].elapsed().value());
    ASSERT_EQ(a.rounds[r].runs.size(), b.rounds[r].runs.size());
    for (std::size_t c = 0; c < a.rounds[r].runs.size(); ++c) {
      EXPECT_EQ(a.rounds[r].runs[c].config, b.rounds[r].runs[c].config);
      EXPECT_EQ(a.rounds[r].runs[c].jobs, b.rounds[r].runs[c].jobs);
    }
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const core::TaskResult a = run_once(77);
  const core::TaskResult b = run_once(78);
  // Exploration randomization differs, so at least one round's energy must.
  bool any_difference = false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    any_difference |= a.rounds[r].energy().value() !=
                      b.rounds[r].energy().value();
  }
  EXPECT_TRUE(any_difference);
}

TEST(Soak, LongRunStaysHealthy) {
  const device::DeviceModel agx = device::jetson_agx();
  core::FlTaskSpec task = core::imagenet_resnet50_task(agx.name());
  task.num_rounds = 150;
  const auto rounds = core::make_rounds(task, agx, 2.5, 9090);
  core::BoflOptions options;
  options.mbo_cost = core::mbo_cost_for_device(agx.name());
  options.mbo.hyperopt.num_restarts = 2;
  options.mbo.hyperopt.max_iterations_per_start = 80;
  core::BoflController bofl(agx, task.profile, {}, options, 7);
  const core::TaskResult result = core::run_task(bofl, rounds);

  EXPECT_TRUE(result.all_deadlines_met());
  EXPECT_EQ(result.rounds.size(), 150u);
  // After convergence the per-round energy must be stationary: the last 50
  // rounds' mean within 5 % of the preceding 50's.
  double mid = 0.0;
  double late = 0.0;
  for (std::size_t r = 50; r < 100; ++r) {
    mid += result.rounds[r].energy().value();
  }
  for (std::size_t r = 100; r < 150; ++r) {
    late += result.rounds[r].energy().value();
  }
  EXPECT_NEAR(late / mid, 1.0, 0.05);
  // The observation set must stop growing once phase 3 begins (no
  // unbounded memory in the GP).
  EXPECT_LT(bofl.engine().num_observations(), 200u);
}

}  // namespace
}  // namespace bofl
