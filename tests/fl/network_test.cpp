#include "fl/network.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace bofl::fl {
namespace {

TEST(NetworkModel, TransferTimeMatchesMeanBandwidth) {
  NetworkModel link(5.0, 0.0, 1);  // deterministic 5 Mbps
  // The paper's §6.5 example: 51.2 Mb over 5 Mbps LTE ~ 10.2 s.
  const Seconds t = link.transfer_time(51.2e6);
  EXPECT_NEAR(t.value(), 10.24, 1e-9);
  EXPECT_DOUBLE_EQ(link.last_throughput_mbps(), 5.0);
}

TEST(NetworkModel, NoisyThroughputIsUnbiased) {
  NetworkModel link(8.0, 0.3, 2);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    (void)link.transfer_time(1e6);
    stats.add(link.last_throughput_mbps());
  }
  EXPECT_NEAR(stats.mean(), 8.0, 0.1);
  EXPECT_NEAR(stats.stddev() / stats.mean(), 0.3, 0.02);
}

TEST(NetworkModel, RejectsBadArguments) {
  EXPECT_THROW(NetworkModel(0.0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(NetworkModel(5.0, -0.1, 1), std::invalid_argument);
  NetworkModel link(5.0, 0.1, 1);
  EXPECT_THROW((void)link.transfer_time(0.0), std::invalid_argument);
}

TEST(BandwidthEstimator, StartsAtSeedValue) {
  const BandwidthEstimator est(6.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 6.0);
  EXPECT_EQ(est.num_samples(), 0u);
}

TEST(BandwidthEstimator, ConvergesToObservedRate) {
  BandwidthEstimator est(2.0, 0.3);
  // Repeated 10 Mbps transfers: EWMA must converge to 10.
  for (int i = 0; i < 50; ++i) {
    est.record_transfer(10e6, Seconds{1.0});
  }
  EXPECT_NEAR(est.estimate_mbps(), 10.0, 0.01);
  EXPECT_EQ(est.num_samples(), 50u);
}

TEST(BandwidthEstimator, SmoothingWeightsNewSample) {
  BandwidthEstimator est(4.0, 0.5);
  est.record_transfer(8e6, Seconds{1.0});  // observed 8 Mbps
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 6.0);
}

TEST(BandwidthEstimator, RejectsBadArguments) {
  EXPECT_THROW(BandwidthEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(BandwidthEstimator(5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BandwidthEstimator(5.0, 1.5), std::invalid_argument);
  BandwidthEstimator est(5.0);
  EXPECT_THROW(est.record_transfer(1e6, Seconds{0.0}),
               std::invalid_argument);
}

TEST(ReportingDeadlineAdapter, SubtractsPredictedUpload) {
  // 51.2 Mb at 5 Mbps estimate -> 10.24 s upload; safety 1.25 -> 12.8 s.
  ReportingDeadlineAdapter adapter(51.2e6, BandwidthEstimator(5.0), 1.25);
  EXPECT_NEAR(adapter.predicted_upload().value(), 10.24, 1e-9);
  EXPECT_NEAR(adapter.training_deadline(Seconds{60.0}).value(), 47.2, 1e-9);
}

TEST(ReportingDeadlineAdapter, ClampsAtZero) {
  ReportingDeadlineAdapter adapter(51.2e6, BandwidthEstimator(5.0), 1.25);
  EXPECT_DOUBLE_EQ(adapter.training_deadline(Seconds{5.0}).value(), 0.0);
}

TEST(ReportingDeadlineAdapter, AdaptsToLinkDegradation) {
  ReportingDeadlineAdapter adapter(10e6, BandwidthEstimator(10.0, 0.5), 1.0);
  const double before = adapter.training_deadline(Seconds{30.0}).value();
  // The link halves: uploads of 10 Mb now take 2 s (5 Mbps).
  for (int i = 0; i < 30; ++i) {
    adapter.record_upload(Seconds{2.0});
  }
  const double after = adapter.training_deadline(Seconds{30.0}).value();
  EXPECT_LT(after, before);                // tighter training deadline
  EXPECT_NEAR(adapter.predicted_upload().value(), 2.0, 0.05);
}

TEST(ReportingDeadlineAdapter, RejectsBadArguments) {
  EXPECT_THROW(
      ReportingDeadlineAdapter(0.0, BandwidthEstimator(5.0)),
      std::invalid_argument);
  EXPECT_THROW(
      ReportingDeadlineAdapter(1e6, BandwidthEstimator(5.0), 0.9),
      std::invalid_argument);
}

}  // namespace
}  // namespace bofl::fl
