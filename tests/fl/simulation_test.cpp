#include "fl/simulation.hpp"

#include <gtest/gtest.h>

namespace bofl::fl {
namespace {

FlSimulationConfig small_config(ControllerKind kind) {
  FlSimulationConfig config;
  config.num_clients = 6;
  config.clients_per_round = 3;
  config.rounds = 8;
  config.epochs = 1;
  config.minibatch_size = 16;
  config.shard_examples = 128;
  config.test_examples = 256;
  config.controller = kind;
  config.seed = 4242;
  return config;
}

TEST(Simulation, AccuracyImprovesUnderFedAvg) {
  const device::DeviceModel agx = device::jetson_agx();
  FederatedSimulation sim(agx, small_config(ControllerKind::kPerformant));
  const FlSimulationResult result = sim.run();
  ASSERT_EQ(result.rounds.size(), 8u);
  EXPECT_GT(result.final_accuracy(), result.rounds.front().global_accuracy);
  EXPECT_LT(result.rounds.back().global_loss,
            result.rounds.front().global_loss);
}

TEST(Simulation, EveryRoundAggregatesUpdates) {
  const device::DeviceModel agx = device::jetson_agx();
  FederatedSimulation sim(agx, small_config(ControllerKind::kPerformant));
  const FlSimulationResult result = sim.run();
  for (const FlRoundStats& round : result.rounds) {
    EXPECT_EQ(round.participants, 3u);
    EXPECT_EQ(round.accepted, 3u);  // Performant never misses
    EXPECT_GT(round.energy.value(), 0.0);
  }
  EXPECT_EQ(result.total_dropped_updates(), 0u);
}

TEST(Simulation, BoflUsesLessEnergyThanPerformant) {
  const device::DeviceModel agx = device::jetson_agx();
  // Paper-scale rounds: ~24 s at x_max so the controller can explore with
  // accurate (>= ~3 s) measurements, like the real Table-2 tasks.
  FlSimulationConfig bofl_config = small_config(ControllerKind::kBofl);
  bofl_config.rounds = 30;
  bofl_config.epochs = 2;
  bofl_config.minibatch_size = 8;
  bofl_config.shard_examples = 512;
  bofl_config.deadline_ratio = 3.0;
  FlSimulationConfig perf_config = bofl_config;
  perf_config.controller = ControllerKind::kPerformant;
  FederatedSimulation bofl_sim(agx, bofl_config);
  FederatedSimulation perf_sim(agx, perf_config);
  const FlSimulationResult bofl = bofl_sim.run();
  const FlSimulationResult perf = perf_sim.run();
  EXPECT_LT(bofl.total_energy().value(), perf.total_energy().value());
  EXPECT_EQ(bofl.total_dropped_updates(), 0u);  // deadline guardian works
}

TEST(Simulation, OracleControllerRuns) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = small_config(ControllerKind::kOracle);
  config.rounds = 4;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  EXPECT_EQ(result.rounds.size(), 4u);
  EXPECT_EQ(result.total_dropped_updates(), 0u);
}

TEST(Simulation, ControllerKindNames) {
  EXPECT_STREQ(to_string(ControllerKind::kBofl), "BoFL");
  EXPECT_STREQ(to_string(ControllerKind::kPerformant), "Performant");
  EXPECT_STREQ(to_string(ControllerKind::kOracle), "Oracle");
  EXPECT_STREQ(to_string(ControllerKind::kLinear), "LinearModel");
}

TEST(Simulation, RejectsBadConfig) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = small_config(ControllerKind::kPerformant);
  config.clients_per_round = 99;
  EXPECT_THROW(FederatedSimulation(agx, config), std::invalid_argument);
}

TEST(Simulation, DeterministicBySeed) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = small_config(ControllerKind::kPerformant);
  config.rounds = 4;
  FederatedSimulation a(agx, config);
  FederatedSimulation b(agx, config);
  const FlSimulationResult ra = a.run();
  const FlSimulationResult rb = b.run();
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.rounds[i].global_loss, rb.rounds[i].global_loss);
    EXPECT_DOUBLE_EQ(ra.rounds[i].energy.value(),
                     rb.rounds[i].energy.value());
  }
}

}  // namespace
}  // namespace bofl::fl
