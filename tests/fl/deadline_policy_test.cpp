#include "fl/deadline_policy.hpp"

#include <gtest/gtest.h>

namespace bofl::fl {
namespace {

TEST(StaticTimeout, IgnoresCohortAndRound) {
  StaticTimeoutPolicy policy(Seconds{42.0});
  EXPECT_DOUBLE_EQ(policy.assign(0, Seconds{10.0}).value(), 42.0);
  EXPECT_DOUBLE_EQ(policy.assign(99, Seconds{99.0}).value(), 42.0);
  EXPECT_STREQ(policy.name(), "static-timeout");
}

TEST(StaticTimeout, RejectsNonPositive) {
  EXPECT_THROW(StaticTimeoutPolicy(Seconds{0.0}), std::invalid_argument);
}

TEST(UniformSlack, StaysWithinBand) {
  UniformSlackPolicy policy(3.0, 7);
  for (int round = 0; round < 500; ++round) {
    const double d = policy.assign(round, Seconds{20.0}).value();
    EXPECT_GE(d, 20.0);
    EXPECT_LE(d, 60.0);
  }
}

TEST(UniformSlack, DeterministicBySeed) {
  UniformSlackPolicy a(2.0, 11);
  UniformSlackPolicy b(2.0, 11);
  for (int round = 0; round < 20; ++round) {
    EXPECT_DOUBLE_EQ(a.assign(round, Seconds{10.0}).value(),
                     b.assign(round, Seconds{10.0}).value());
  }
}

TEST(UniformSlack, RejectsBadArguments) {
  EXPECT_THROW(UniformSlackPolicy(0.5, 1), std::invalid_argument);
  UniformSlackPolicy policy(2.0, 1);
  EXPECT_THROW((void)policy.assign(0, Seconds{0.0}), std::invalid_argument);
}

TEST(UniformSlack, RatioOfExactlyOnePinsDeadlineToTmin) {
  // Boundary of the §6.1 band: ratio 1.0 leaves zero slack — every
  // deadline must equal T_min exactly, never a hair below it.
  UniformSlackPolicy policy(1.0, 3);
  for (int round = 0; round < 100; ++round) {
    EXPECT_DOUBLE_EQ(policy.assign(round, Seconds{17.25}).value(), 17.25);
  }
}

TEST(CohortFloor, TracksSlowestParticipantPlusOverhead) {
  const std::vector<Seconds> t_min{Seconds{5.0}, Seconds{9.0}, Seconds{7.0}};
  EXPECT_DOUBLE_EQ(cohort_deadline_floor(t_min, {0, 2}).value(), 7.0);
  EXPECT_DOUBLE_EQ(cohort_deadline_floor(t_min, {1}).value(), 9.0);
  EXPECT_DOUBLE_EQ(
      cohort_deadline_floor(t_min, {0, 1, 2}, Seconds{1.5}).value(), 10.5);
  // The fleet-wide floor is the cohort floor of "everyone".
  EXPECT_DOUBLE_EQ(fleet_deadline_floor(t_min).value(), 9.0);
}

TEST(CohortFloor, RejectsDegenerateCohorts) {
  const std::vector<Seconds> t_min{Seconds{5.0}};
  EXPECT_THROW((void)cohort_deadline_floor(t_min, {}), std::invalid_argument);
  EXPECT_THROW((void)cohort_deadline_floor({}, {0}), std::invalid_argument);
  EXPECT_THROW((void)fleet_deadline_floor({}), std::invalid_argument);
}

TEST(AdaptiveSlack, TightensOnSuccess) {
  AdaptiveSlackPolicy policy;
  const double first = policy.assign(0, Seconds{10.0}).value();
  for (int i = 0; i < 20; ++i) {
    policy.record_outcome(true);
  }
  const double later = policy.assign(20, Seconds{10.0}).value();
  EXPECT_LT(later, first);
  EXPECT_GE(policy.current_slack(), 1.2);  // clamped at min_slack
}

TEST(AdaptiveSlack, BacksOffOnMiss) {
  AdaptiveSlackPolicy policy;
  const double before = policy.current_slack();
  policy.record_outcome(false);
  EXPECT_GT(policy.current_slack(), before);
}

TEST(AdaptiveSlack, ClampsAtBounds) {
  AdaptiveSlackPolicy::Config config;
  config.initial_slack = 1.3;
  config.min_slack = 1.2;
  config.max_slack = 2.0;
  AdaptiveSlackPolicy policy(config);
  for (int i = 0; i < 100; ++i) {
    policy.record_outcome(true);
  }
  EXPECT_DOUBLE_EQ(policy.current_slack(), 1.2);
  for (int i = 0; i < 100; ++i) {
    policy.record_outcome(false);
  }
  EXPECT_DOUBLE_EQ(policy.current_slack(), 2.0);
}

TEST(AdaptiveSlack, ConvergesNearEquilibriumUnderMixedOutcomes) {
  // With tighten 0.97 and backoff 1.3, one miss cancels ~9 successes: the
  // policy should hover well above min_slack when ~20 % of rounds miss.
  AdaptiveSlackPolicy policy;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    policy.record_outcome(!rng.bernoulli(0.2));
  }
  EXPECT_GT(policy.current_slack(), 1.5);
}

TEST(AdaptiveSlack, RejectsBadConfig) {
  AdaptiveSlackPolicy::Config config;
  config.min_slack = 0.9;
  EXPECT_THROW(AdaptiveSlackPolicy{config}, std::invalid_argument);
  config = {};
  config.tighten = 1.0;
  EXPECT_THROW(AdaptiveSlackPolicy{config}, std::invalid_argument);
  config = {};
  config.backoff = 1.0;
  EXPECT_THROW(AdaptiveSlackPolicy{config}, std::invalid_argument);
  config = {};
  config.initial_slack = 9.0;  // above max_slack
  EXPECT_THROW(AdaptiveSlackPolicy{config}, std::invalid_argument);
}

TEST(Policies, WorkThroughTheInterface) {
  std::vector<std::unique_ptr<DeadlinePolicy>> policies;
  policies.push_back(std::make_unique<StaticTimeoutPolicy>(Seconds{30.0}));
  policies.push_back(std::make_unique<UniformSlackPolicy>(2.0, 1));
  policies.push_back(std::make_unique<AdaptiveSlackPolicy>());
  for (const auto& policy : policies) {
    const Seconds d = policy->assign(0, Seconds{10.0});
    EXPECT_GT(d.value(), 0.0);
    policy->record_outcome(true);  // must be harmless everywhere
  }
}

}  // namespace
}  // namespace bofl::fl
