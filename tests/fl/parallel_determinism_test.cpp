// The runtime subsystem's headline contract: the federated simulation is
// bit-reproducible for ANY worker count.  Every comparison here is exact
// (==, not near): same seeds must give the same doubles whether one thread
// or eight ran the clients.
#include <gtest/gtest.h>

#include "fl/simulation.hpp"

namespace bofl::fl {
namespace {

FlSimulationConfig fleet_config(std::size_t threads) {
  FlSimulationConfig config;
  config.num_clients = 8;
  config.clients_per_round = 4;
  config.rounds = 6;
  config.epochs = 1;
  config.minibatch_size = 16;
  config.shard_examples = 128;
  config.test_examples = 256;
  config.controller = ControllerKind::kBofl;
  config.seed = 20220811;
  config.threads = threads;
  return config;
}

void expect_identical(const FlSimulationResult& serial,
                      const FlSimulationResult& parallel) {
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    const FlRoundStats& a = serial.rounds[r];
    const FlRoundStats& b = parallel.rounds[r];
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.participants, b.participants);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.backfilled, b.backfilled);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.deadline.value(), b.deadline.value());
    EXPECT_EQ(a.round_wall.value(), b.round_wall.value());
    EXPECT_EQ(a.energy.value(), b.energy.value());
    EXPECT_EQ(a.global_loss, b.global_loss);
    EXPECT_EQ(a.global_accuracy, b.global_accuracy);
  }
  EXPECT_EQ(serial.total_energy().value(), parallel.total_energy().value());
  EXPECT_EQ(serial.final_accuracy(), parallel.final_accuracy());
}

FlSimulationResult run_with(const FlSimulationConfig& config) {
  const device::DeviceModel agx = device::jetson_agx();
  FederatedSimulation sim(agx, config);
  return sim.run();
}

TEST(ParallelDeterminism, BoflFleetIsThreadCountInvariant) {
  expect_identical(run_with(fleet_config(1)), run_with(fleet_config(8)));
}

TEST(ParallelDeterminism, OddThreadCountsMatchToo) {
  expect_identical(run_with(fleet_config(1)), run_with(fleet_config(3)));
}

TEST(ParallelDeterminism, DropoutStreamSurvivesParallelism) {
  // Dropout draws come from a shared Rng; they must happen on the round
  // loop's thread so the stream is identical for any worker count.
  FlSimulationConfig serial = fleet_config(1);
  serial.dropout_probability = 0.25;
  serial.controller = ControllerKind::kPerformant;
  FlSimulationConfig parallel = serial;
  parallel.threads = 8;
  expect_identical(run_with(serial), run_with(parallel));
}

TEST(ParallelDeterminism, ReportingModeAdaptersStayPerClient) {
  // Reporting mode adds per-client uplink RNG and EWMA estimator state —
  // all of it keyed by client id, none shared across workers.
  FlSimulationConfig serial = fleet_config(1);
  serial.reporting_deadline_mode = true;
  serial.controller = ControllerKind::kPerformant;
  FlSimulationConfig parallel = serial;
  parallel.threads = 8;
  expect_identical(run_with(serial), run_with(parallel));
}

faults::FaultPlan storm_and_stragglers() {
  faults::FaultPlan plan;
  plan.seed = 31;
  plan.name = "determinism-mix";
  faults::FaultSpec storm;
  storm.kind = faults::FaultKind::kThermalStorm;
  storm.start_s = 0.0;
  storm.duration_s = 1e9;
  storm.magnitude = 1.3;
  plan.faults.push_back(storm);
  faults::FaultSpec straggler;
  straggler.kind = faults::FaultKind::kStraggler;
  straggler.start_s = 0.0;
  straggler.duration_s = 1e9;
  straggler.magnitude = 3.0;
  straggler.probability = 0.3;
  plan.faults.push_back(straggler);
  faults::FaultSpec dropout;
  dropout.kind = faults::FaultKind::kClientDropout;
  dropout.start_s = 0.0;
  dropout.duration_s = 1e9;
  dropout.probability = 0.2;
  plan.faults.push_back(dropout);
  return plan;
}

TEST(ParallelDeterminism, FaultedRunIsThreadCountInvariant) {
  // Fault draws are pure hashes of (plan seed, spec, round, client) and
  // device events drain on the round loop's thread, so an injected run must
  // stay bit-identical — including the straggler / backfill accounting —
  // for any worker count.
  FlSimulationConfig serial = fleet_config(1);
  serial.fault_plan = storm_and_stragglers();
  serial.straggler_timeout = 2.0;
  serial.backfill_dropouts = true;
  FlSimulationConfig parallel = serial;
  parallel.threads = 8;
  const FlSimulationResult a = run_with(serial);
  const FlSimulationResult b = run_with(parallel);
  expect_identical(a, b);
  // Non-vacuity: the plan above must actually bite somewhere.
  std::size_t disrupted = 0;
  for (const FlRoundStats& round : a.rounds) {
    disrupted += round.backfilled + round.timed_out;
  }
  EXPECT_GT(disrupted, 0u);
}

TEST(ParallelDeterminism, HeterogeneousFleetIsThreadCountInvariant) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  const std::vector<const device::DeviceModel*> devices{&agx, &tx2};
  FlSimulationConfig serial = fleet_config(1);
  serial.controller = ControllerKind::kPerformant;
  FlSimulationConfig parallel = serial;
  parallel.threads = 8;
  FederatedSimulation sim_serial(devices, serial);
  FederatedSimulation sim_parallel(devices, parallel);
  expect_identical(sim_serial.run(), sim_parallel.run());
}

}  // namespace
}  // namespace bofl::fl
