#include <gtest/gtest.h>

#include "core/performant_controller.hpp"
#include "fl/client.hpp"
#include "fl/server.hpp"

namespace bofl::fl {
namespace {

ModelFactory tiny_factory() {
  return [] {
    Rng rng(7);
    return nn::make_mlp_classifier(4, 8, 1, 3, rng);
  };
}

std::unique_ptr<core::PaceController> performant(
    const device::DeviceModel& model) {
  return std::make_unique<core::PerformantController>(
      model, device::vit_profile(), device::NoiseModel{}, 1);
}

TEST(Client, TrainRoundProducesConsistentUpdate) {
  const device::DeviceModel agx = device::jetson_agx();
  const nn::Dataset shard = nn::make_classification(64, 4, 3, 99, 0.5);
  Client client(0, shard, tiny_factory(), 0.05, 8, performant(agx));
  EXPECT_EQ(client.num_minibatches(), 8);

  nn::Sequential reference = tiny_factory()();
  const std::vector<float> global = reference.get_flat_parameters();
  const core::RoundSpec round{0, 16, Seconds{100.0}};
  const LocalUpdate update = client.train_round(global, 2, round);

  EXPECT_EQ(update.client_id, 0u);
  EXPECT_EQ(update.parameters.size(), global.size());
  EXPECT_EQ(update.num_examples, 2 * 8 * 8);  // epochs * batches * B
  EXPECT_GT(update.mean_loss, 0.0);
  EXPECT_EQ(update.pace_trace.jobs(), 16);
  // Training must actually move the weights.
  double delta = 0.0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    delta += std::abs(update.parameters[i] - global[i]);
  }
  EXPECT_GT(delta, 0.0);
}

TEST(Client, RepeatedRoundsReduceLoss) {
  const device::DeviceModel agx = device::jetson_agx();
  const nn::Dataset shard = nn::make_classification(96, 4, 3, 100, 0.5);
  Client client(1, shard, tiny_factory(), 0.05, 8, performant(agx));
  std::vector<float> params = tiny_factory()().get_flat_parameters();
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int round = 0; round < 8; ++round) {
    const LocalUpdate update =
        client.train_round(params, 1, {round, 12, Seconds{100.0}});
    params = update.parameters;  // sequential refinement
    if (round == 0) {
      first_loss = update.mean_loss;
    }
    last_loss = update.mean_loss;
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST(Client, RejectsInvalidConstruction) {
  const device::DeviceModel agx = device::jetson_agx();
  const nn::Dataset shard = nn::make_classification(16, 4, 3, 1, 0.5);
  EXPECT_THROW(Client(0, shard, tiny_factory(), 0.05, 32, performant(agx)),
               std::invalid_argument);  // shard < one minibatch
  EXPECT_THROW(Client(0, shard, tiny_factory(), 0.05, 8, nullptr),
               std::invalid_argument);
}

TEST(Server, SelectsDistinctParticipants) {
  FedAvgServer server(std::vector<float>(10, 0.0f));
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto picked = server.select_participants(10, 4, rng);
    ASSERT_EQ(picked.size(), 4u);
    std::set<std::size_t> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), 4u);
  }
  EXPECT_THROW((void)server.select_participants(3, 4, rng),
               std::invalid_argument);
}

LocalUpdate make_update(std::vector<float> params, std::int64_t examples,
                        bool met_deadline) {
  LocalUpdate update;
  update.parameters = std::move(params);
  update.num_examples = examples;
  update.pace_trace.deadline = Seconds{10.0};
  update.pace_trace.runs.push_back(
      {{0, 0, 0}, 1, Seconds{met_deadline ? 5.0 : 15.0}, Joules{1.0}, false});
  return update;
}

TEST(Server, FedAvgIsExampleWeighted) {
  FedAvgServer server({0.0f, 0.0f});
  const std::vector<LocalUpdate> updates{
      make_update({1.0f, 2.0f}, 30, true),
      make_update({4.0f, 6.0f}, 10, true)};
  EXPECT_EQ(server.aggregate(updates), 2u);
  // Weighted mean: (30*1 + 10*4)/40 = 1.75; (30*2 + 10*6)/40 = 3.0.
  EXPECT_FLOAT_EQ(server.parameters()[0], 1.75f);
  EXPECT_FLOAT_EQ(server.parameters()[1], 3.0f);
}

TEST(Server, StragglersAreDropped) {
  FedAvgServer server({0.0f});
  const std::vector<LocalUpdate> updates{
      make_update({2.0f}, 10, true),
      make_update({100.0f}, 1000, false)};  // missed the deadline
  EXPECT_EQ(server.aggregate(updates), 1u);
  EXPECT_FLOAT_EQ(server.parameters()[0], 2.0f);
}

TEST(Server, AllStragglersKeepsGlobalModel) {
  FedAvgServer server({3.0f});
  const std::vector<LocalUpdate> updates{make_update({9.0f}, 10, false)};
  EXPECT_EQ(server.aggregate(updates), 0u);
  EXPECT_FLOAT_EQ(server.parameters()[0], 3.0f);
}

TEST(Server, RejectsSizeMismatch) {
  FedAvgServer server({0.0f, 0.0f});
  const std::vector<LocalUpdate> updates{make_update({1.0f}, 10, true)};
  EXPECT_THROW((void)server.aggregate(updates), std::invalid_argument);
}

TEST(Evaluate, PerfectModelScoresOne) {
  // A dataset with well-separated blobs and a model trained on it gets high
  // accuracy; here just validate the evaluation plumbing with batch edges.
  const nn::Dataset data = nn::make_classification(50, 4, 3, 77, 0.2);
  nn::Sequential model = tiny_factory()();
  const Evaluation eval = evaluate(model, data, 16);  // 3 full batches
  EXPECT_GT(eval.loss, 0.0);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_THROW((void)evaluate(model, data, 64), std::invalid_argument);
}

}  // namespace
}  // namespace bofl::fl
