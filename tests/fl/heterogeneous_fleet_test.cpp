// Tests for heterogeneous fleets: mixed AGX/TX2 pools with cohort-aware
// deadline floors.
#include <gtest/gtest.h>

#include "fl/simulation.hpp"

namespace bofl::fl {
namespace {

FlSimulationConfig mixed_config() {
  FlSimulationConfig config;
  config.num_clients = 6;
  config.clients_per_round = 3;
  config.rounds = 8;
  config.epochs = 1;
  config.minibatch_size = 16;
  config.shard_examples = 128;
  config.controller = ControllerKind::kPerformant;
  config.deadline_ratio = 2.5;
  config.seed = 1717;
  return config;
}

TEST(HeterogeneousFleet, MixedPoolRunsAndNobodyDrops) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FederatedSimulation sim({&agx, &tx2}, mixed_config());
  const FlSimulationResult result = sim.run();
  ASSERT_EQ(result.rounds.size(), 8u);
  // Deadlines are floored at the slowest participant's T_min, so even the
  // TX2 clients (≈2.4x slower on ViT) land every update at full speed.
  EXPECT_EQ(result.total_dropped_updates(), 0u);
}

TEST(HeterogeneousFleet, DeadlinesTrackCohortComposition) {
  // With a large AGX/TX2 speed gap, rounds whose cohort includes a TX2
  // must receive longer deadlines than all-AGX rounds.
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FlSimulationConfig config = mixed_config();
  config.num_clients = 8;
  config.clients_per_round = 2;
  config.rounds = 30;
  FederatedSimulation sim({&agx, &tx2}, config);
  const FlSimulationResult result = sim.run();

  const std::int64_t jobs =
      (static_cast<std::int64_t>(config.shard_examples) /
       config.minibatch_size) *
      config.epochs;
  const double agx_t_min =
      agx.round_t_min(config.profile, jobs).value();
  const double tx2_t_min =
      tx2.round_t_min(config.profile, jobs).value();
  ASSERT_GT(tx2_t_min, agx_t_min * 1.5);

  bool saw_fast_cohort = false;
  bool saw_slow_cohort = false;
  for (const FlRoundStats& round : result.rounds) {
    // Every deadline respects the uniform-slack band of *some* cohort.
    EXPECT_GE(round.deadline.value(), agx_t_min - 1e-9);
    EXPECT_LE(round.deadline.value(),
              config.deadline_ratio * tx2_t_min + 1e-9);
    saw_fast_cohort |= round.deadline.value() < tx2_t_min;
    saw_slow_cohort |= round.deadline.value() > tx2_t_min;
  }
  // With 30 rounds of random 2-of-8 cohorts both kinds must appear.
  EXPECT_TRUE(saw_fast_cohort);
  EXPECT_TRUE(saw_slow_cohort);
}

TEST(HeterogeneousFleet, LearningStillConverges) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FlSimulationConfig config = mixed_config();
  config.rounds = 10;
  FederatedSimulation sim({&agx, &tx2}, config);
  const FlSimulationResult result = sim.run();
  EXPECT_LT(result.rounds.back().global_loss,
            result.rounds.front().global_loss);
}

TEST(HeterogeneousFleet, BoflFleetSavesEnergyOnMixedHardware) {
  const device::DeviceModel agx = device::jetson_agx();
  const device::DeviceModel tx2 = device::jetson_tx2();
  FlSimulationConfig config = mixed_config();
  config.minibatch_size = 8;
  config.shard_examples = 512;
  config.epochs = 2;
  config.rounds = 25;
  config.deadline_ratio = 3.0;
  config.controller = ControllerKind::kBofl;
  FederatedSimulation bofl_sim({&agx, &tx2}, config);
  config.controller = ControllerKind::kPerformant;
  FederatedSimulation perf_sim({&agx, &tx2}, config);
  const FlSimulationResult bofl = bofl_sim.run();
  const FlSimulationResult perf = perf_sim.run();
  EXPECT_LT(bofl.total_energy().value(), perf.total_energy().value());
  EXPECT_EQ(bofl.total_dropped_updates(), 0u);
}

TEST(HeterogeneousFleet, RejectsBadDeviceList) {
  EXPECT_THROW(
      FederatedSimulation(std::vector<const device::DeviceModel*>{},
                          mixed_config()),
      std::invalid_argument);
  EXPECT_THROW(
      FederatedSimulation(
          std::vector<const device::DeviceModel*>{nullptr}, mixed_config()),
      std::invalid_argument);
}

}  // namespace
}  // namespace bofl::fl
