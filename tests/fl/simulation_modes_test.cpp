// Tests for the extended simulation modes: reporting deadlines, server
// deadline policies, and the LSTM fleet model.
#include <gtest/gtest.h>

#include "fl/simulation.hpp"

namespace bofl::fl {
namespace {

FlSimulationConfig base_config() {
  FlSimulationConfig config;
  config.num_clients = 6;
  config.clients_per_round = 3;
  config.rounds = 8;
  config.epochs = 1;
  config.minibatch_size = 16;
  config.shard_examples = 128;
  config.test_examples = 256;
  config.controller = ControllerKind::kPerformant;
  config.seed = 909;
  return config;
}

TEST(SimulationModes, LstmFleetLearnsSequences) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.model = FleetModel::kLstm;
  config.profile = device::lstm_profile();
  config.feature_dim = 4;
  config.classes = 3;
  config.hidden = 12;
  config.rounds = 12;
  config.learning_rate = 0.08;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  EXPECT_LT(result.rounds.back().global_loss,
            result.rounds.front().global_loss);
  EXPECT_GT(result.final_accuracy(), result.rounds.front().global_accuracy);
}

TEST(SimulationModes, StaticTimeoutPolicyGivesConstantDeadlines) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.deadline_policy = DeadlinePolicyKind::kStaticTimeout;
  config.static_timeout_slack = 2.5;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  const double first = result.rounds.front().deadline.value();
  for (const FlRoundStats& round : result.rounds) {
    EXPECT_DOUBLE_EQ(round.deadline.value(), first);
    EXPECT_EQ(round.accepted, round.participants);
  }
}

TEST(SimulationModes, AdaptiveSlackTightensOverTime) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.deadline_policy = DeadlinePolicyKind::kAdaptiveSlack;
  config.rounds = 15;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  // Performant always meets deadlines, so the slack must shrink steadily.
  EXPECT_LT(result.rounds.back().deadline.value(),
            result.rounds.front().deadline.value());
}

TEST(SimulationModes, ReportingModeAccountsForUploads) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.reporting_deadline_mode = true;
  config.uplink_mbps = 20.0;
  config.deadline_ratio = 3.0;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  // With a healthy link and Performant pacing, everything still lands.
  EXPECT_EQ(result.total_dropped_updates(), 0u);
  EXPECT_GT(result.final_accuracy(), 0.0);
}

TEST(SimulationModes, ReportingModeDropsOnDeadLink) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.reporting_deadline_mode = true;
  // A link so slow the upload alone dwarfs any deadline the server sets.
  config.uplink_mbps = 0.001;
  config.rounds = 4;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  EXPECT_GT(result.total_dropped_updates(), 0u);
}

TEST(SimulationModes, ReportingModeWorksWithBofl) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.controller = ControllerKind::kBofl;
  config.reporting_deadline_mode = true;
  config.uplink_mbps = 20.0;
  config.minibatch_size = 8;
  config.shard_examples = 512;
  config.epochs = 2;
  config.deadline_ratio = 3.0;
  config.rounds = 12;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  // BoFL trains against the *inferred* training deadlines and still lands
  // every report.
  EXPECT_EQ(result.total_dropped_updates(), 0u);
}

TEST(SimulationModes, DropoutShrinksAcceptedUpdates) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.dropout_probability = 0.5;
  config.rounds = 20;
  FederatedSimulation sim(agx, config);
  const FlSimulationResult result = sim.run();
  // Roughly half of the 60 selections vanish; tolerate wide variance.
  const std::size_t dropped = result.total_dropped_updates();
  EXPECT_GT(dropped, 10u);
  EXPECT_LT(dropped, 50u);
  // Learning still proceeds from the survivors.
  EXPECT_LT(result.rounds.back().global_loss,
            result.rounds.front().global_loss);
}

TEST(SimulationModes, DropoutRejectsInvalidProbability) {
  const device::DeviceModel agx = device::jetson_agx();
  FlSimulationConfig config = base_config();
  config.dropout_probability = 1.0;
  FederatedSimulation sim(agx, config);
  EXPECT_THROW((void)sim.run(), std::invalid_argument);
}

TEST(SimulationModes, PolicyKindNames) {
  EXPECT_STREQ(to_string(DeadlinePolicyKind::kUniformSlack),
               "uniform-slack");
  EXPECT_STREQ(to_string(DeadlinePolicyKind::kStaticTimeout),
               "static-timeout");
  EXPECT_STREQ(to_string(DeadlinePolicyKind::kAdaptiveSlack),
               "adaptive-slack");
}

}  // namespace
}  // namespace bofl::fl
