// ISSUE 5 acceptance pin: the fleet-shared exploitation-ILP memo must be
// invisible in the simulation output.  Cache on vs cache off (either via
// share_schedule_cache or the IlpOptions::disable_cache escape hatch), for
// any thread count, bit-identical results throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fl/simulation.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::fl {
namespace {

FlSimulationConfig base_config() {
  FlSimulationConfig config;
  config.num_clients = 4;
  config.clients_per_round = 4;
  config.rounds = 18;
  config.epochs = 1;
  config.minibatch_size = 16;
  config.shard_examples = 128;
  config.test_examples = 256;
  // The default deadline_ratio of 2.0 keeps every client in phase 1 for the
  // whole run; 8.0 gives the round budget room to finish exploration, so
  // these comparisons actually cover Pareto construction and cached
  // exploitation solves, not just the exploration path.
  config.deadline_ratio = 8.0;
  config.controller = ControllerKind::kBofl;
  config.seed = 20260806;
  config.threads = 1;
  return config;
}

void expect_identical(const FlSimulationResult& a, const FlSimulationResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    const FlRoundStats& x = a.rounds[r];
    const FlRoundStats& y = b.rounds[r];
    EXPECT_EQ(x.participants, y.participants);
    EXPECT_EQ(x.accepted, y.accepted);
    EXPECT_EQ(x.deadline.value(), y.deadline.value());
    EXPECT_EQ(x.round_wall.value(), y.round_wall.value());
    EXPECT_EQ(x.energy.value(), y.energy.value());
    EXPECT_EQ(x.global_loss, y.global_loss);
    EXPECT_EQ(x.global_accuracy, y.global_accuracy);
  }
  EXPECT_EQ(a.total_energy().value(), b.total_energy().value());
  EXPECT_EQ(a.final_accuracy(), b.final_accuracy());
}

FlSimulationResult run_with(const FlSimulationConfig& config) {
  const device::DeviceModel agx = device::jetson_agx();
  FederatedSimulation sim(agx, config);
  return sim.run();
}

TEST(SteadyStateCache, SharedCacheIsBitInvisible) {
  FlSimulationConfig cached = base_config();
  cached.share_schedule_cache = true;
  FlSimulationConfig uncached = base_config();
  uncached.share_schedule_cache = false;
  FlSimulationConfig escape = base_config();
  escape.share_schedule_cache = true;
  escape.bofl_options.ilp.disable_cache = true;

  const FlSimulationResult with_cache = run_with(cached);
  const FlSimulationResult without_cache = run_with(uncached);
  const FlSimulationResult with_escape = run_with(escape);
  expect_identical(with_cache, without_cache, "share_schedule_cache off");
  expect_identical(with_cache, with_escape, "IlpOptions::disable_cache");
}

TEST(SteadyStateCache, SharedCacheIsThreadCountInvariant) {
  // The memo is shared across workers; a lookup racing a solve must never
  // change what any controller dispatches.
  FlSimulationConfig serial = base_config();
  FlSimulationConfig parallel = base_config();
  parallel.threads = 8;
  expect_identical(run_with(serial), run_with(parallel), "threads 1 vs 8");
}

TEST(SteadyStateCache, FaultedRunsStayBitIdentical) {
  // ISSUE satellite: replay a faulted scenario with the cache on and off.
  faults::FaultPlan plan;
  plan.seed = 31;
  plan.name = "cache-identity-mix";
  faults::FaultSpec storm;
  storm.kind = faults::FaultKind::kThermalStorm;
  storm.start_s = 0.0;
  storm.duration_s = 1e9;
  storm.magnitude = 1.3;
  plan.faults.push_back(storm);
  faults::FaultSpec straggler;
  straggler.kind = faults::FaultKind::kStraggler;
  straggler.start_s = 0.0;
  straggler.duration_s = 1e9;
  straggler.magnitude = 3.0;
  straggler.probability = 0.3;
  plan.faults.push_back(straggler);

  FlSimulationConfig cached = base_config();
  cached.fault_plan = plan;
  cached.straggler_timeout = 2.0;
  FlSimulationConfig uncached = cached;
  uncached.share_schedule_cache = false;
  FlSimulationConfig parallel = cached;
  parallel.threads = 8;

  const FlSimulationResult a = run_with(cached);
  expect_identical(a, run_with(uncached), "faulted, cache off");
  expect_identical(a, run_with(parallel), "faulted, threads 8");
}

TEST(SteadyStateCache, FlatTablesAreOnAndCountersFlow) {
  // The default run exercises the flat device tables and the ILP memo; the
  // telemetry counters introduced by ISSUE 5 must actually tick.
  // Every client must reach the exploitation phase — the ILP memo and the
  // profile-prune cache only engage there; front compilations start with
  // Pareto construction.  A loose deadline_ratio gives each round enough
  // budget to drain the exploration backlog quickly (at the default 2.0 the
  // per-round budget only ever fits the phase-1 measurements).
  FlSimulationConfig config = base_config();
  config.rounds = 24;
  telemetry::Registry registry;
  telemetry::set_global_registry(&registry);
  (void)run_with(config);
  telemetry::set_global_registry(nullptr);
  const telemetry::RegistrySnapshot snap = registry.snapshot();
  auto counter_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) {
        return c.value;
      }
    }
    return 0;
  };
  EXPECT_GT(counter_of("device.flat_table_builds"), 0u);
  EXPECT_GT(counter_of("bofl.profile_prunes"), 0u);
  EXPECT_GT(counter_of("ehvi.front_compilations"), 0u);
  // Every exploitation solve consults the shared memo (hits are workload
  // dependent — noisy aggregates rarely repeat — but lookups must happen).
  EXPECT_GT(counter_of("ilp.cache_hit") + counter_of("ilp.cache_miss"), 0u);
}

}  // namespace
}  // namespace bofl::fl
