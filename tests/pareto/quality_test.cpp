#include "pareto/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bofl::pareto {
namespace {

const std::vector<Point2> kReference{{1.0, 4.0}, {2.0, 2.0}, {4.0, 1.0}};

TEST(Epsilon, ZeroForIdenticalFronts) {
  EXPECT_DOUBLE_EQ(additive_epsilon(kReference, kReference), 0.0);
}

TEST(Epsilon, PositiveForDominatedApproximation) {
  // Shift the whole front up by 0.5 in both objectives.
  std::vector<Point2> worse;
  for (const Point2& p : kReference) {
    worse.push_back({p.f1 + 0.5, p.f2 + 0.5});
  }
  EXPECT_NEAR(additive_epsilon(worse, kReference), 0.5, 1e-12);
}

TEST(Epsilon, NegativeWhenApproximationDominates) {
  std::vector<Point2> better;
  for (const Point2& p : kReference) {
    better.push_back({p.f1 - 0.25, p.f2 - 0.25});
  }
  EXPECT_NEAR(additive_epsilon(better, kReference), -0.25, 1e-12);
}

TEST(Epsilon, SubsetCoversPartially) {
  // Approximation has only the middle point: the corners are covered within
  // max coordinate gap.
  const std::vector<Point2> approx{{2.0, 2.0}};
  // For r = (1,4): max(2-1, 2-4) = 1; for r = (4,1): max(-2, 1) = 1.
  EXPECT_DOUBLE_EQ(additive_epsilon(approx, kReference), 1.0);
}

TEST(GenerationalDistance, ZeroOnTheFront) {
  EXPECT_DOUBLE_EQ(generational_distance(kReference, kReference), 0.0);
  const std::vector<Point2> subset{{2.0, 2.0}};
  EXPECT_DOUBLE_EQ(generational_distance(subset, kReference), 0.0);
}

TEST(GenerationalDistance, MeasuresMeanOffset) {
  const std::vector<Point2> offset{{1.0, 5.0}, {2.0, 3.0}};  // +1 in f2
  EXPECT_NEAR(generational_distance(offset, kReference), 1.0, 1e-12);
}

TEST(InvertedGenerationalDistance, PenalizesIncompleteCoverage) {
  const std::vector<Point2> subset{{2.0, 2.0}};
  // IGD averages the reference points' distances to (2,2):
  // sqrt(1+4) + 0 + sqrt(4+1) over 3.
  EXPECT_NEAR(inverted_generational_distance(subset, kReference),
              2.0 * std::sqrt(5.0) / 3.0, 1e-12);
  // A complete approximation has IGD 0.
  EXPECT_DOUBLE_EQ(inverted_generational_distance(kReference, kReference),
                   0.0);
}

TEST(QualityIndicators, RejectEmptyFronts) {
  EXPECT_THROW((void)additive_epsilon({}, kReference),
               std::invalid_argument);
  EXPECT_THROW((void)generational_distance(kReference, {}),
               std::invalid_argument);
  EXPECT_THROW((void)inverted_generational_distance({}, {}),
               std::invalid_argument);
}

// Property: for random fronts, epsilon of a front against itself is <= 0,
// GD of a subset is 0, and IGD shrinks as the approximation grows.
class QualityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QualityProperty, IndicatorsBehaveMonotonically) {
  Rng rng(GetParam() * 11 + 3);
  std::vector<Point2> reference;
  for (int i = 0; i < 20; ++i) {
    reference.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
  }
  EXPECT_LE(additive_epsilon(reference, reference), 1e-12);

  std::vector<Point2> partial(reference.begin(), reference.begin() + 5);
  EXPECT_NEAR(generational_distance(partial, reference), 0.0, 1e-12);

  const double igd_partial =
      inverted_generational_distance(partial, reference);
  const double igd_full =
      inverted_generational_distance(reference, reference);
  EXPECT_GE(igd_partial, igd_full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bofl::pareto
