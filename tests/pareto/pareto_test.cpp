#include "pareto/pareto.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bofl::pareto {
namespace {

TEST(Dominance, BasicCases) {
  EXPECT_TRUE(dominates(Point2{1.0, 1.0}, Point2{2.0, 2.0}));
  EXPECT_TRUE(dominates(Point2{1.0, 2.0}, Point2{1.0, 3.0}));
  EXPECT_FALSE(dominates(Point2{1.0, 1.0}, Point2{1.0, 1.0}));  // equal
  EXPECT_FALSE(dominates(Point2{1.0, 3.0}, Point2{2.0, 2.0}));  // trade-off
  EXPECT_FALSE(dominates(Point2{2.0, 2.0}, Point2{1.0, 1.0}));
}

TEST(Dominance, IsAntisymmetric) {
  const Point2 a{1.0, 2.0};
  const Point2 b{2.0, 1.5};
  EXPECT_FALSE(dominates(a, b) && dominates(b, a));
}

TEST(DominanceNd, GeneralVectors) {
  EXPECT_TRUE(dominates(std::vector<double>{1, 2, 3},
                        std::vector<double>{1, 2, 4}));
  EXPECT_FALSE(dominates(std::vector<double>{1, 2, 3},
                         std::vector<double>{1, 2, 3}));
  EXPECT_FALSE(dominates(std::vector<double>{0, 5},
                         std::vector<double>{1, 1}));
  EXPECT_THROW((void)dominates(std::vector<double>{1.0},
                               std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(NonDominatedIndices, SimpleFront) {
  const std::vector<Point2> points{
      {1.0, 5.0}, {2.0, 3.0}, {3.0, 4.0}, {4.0, 1.0}, {5.0, 5.0}};
  const auto idx = non_dominated_indices(points);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(NonDominatedIndices, AllIncomparable) {
  const std::vector<Point2> points{{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  EXPECT_EQ(non_dominated_indices(points).size(), 3u);
}

TEST(NonDominatedIndices, DuplicatesAllKept) {
  const std::vector<Point2> points{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  EXPECT_EQ(non_dominated_indices(points),
            (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFront, SortedAndClean) {
  const std::vector<Point2> points{
      {3.0, 1.0}, {1.0, 5.0}, {2.0, 3.0}, {2.5, 3.5}, {4.0, 0.9}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 4u);
  // Ascending f1, strictly descending f2.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(front[i - 1].f1, front[i].f1);
    EXPECT_GT(front[i - 1].f2, front[i].f2);
  }
}

TEST(ParetoFront, CollapsesDuplicates) {
  const std::vector<Point2> points{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(pareto_front(points).size(), 1u);
}

TEST(ParetoFront, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(ParetoFront, SinglePoint) {
  const auto front = pareto_front({{2.0, 3.0}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], (Point2{2.0, 3.0}));
}

// Property test across random point clouds:
//  (1) front members are mutually non-dominated,
//  (2) every input point is dominated by or equal to some front member,
//  (3) pareto_front and non_dominated_indices agree on the objective set.
class ParetoFrontProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParetoFrontProperty, FrontIsCorrect) {
  Rng rng(GetParam());
  std::vector<Point2> points;
  const std::size_t n = 5 + rng.uniform_index(60);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  const auto front = pareto_front(points);

  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(front[i], front[j]));
      }
    }
  }
  for (const Point2& p : points) {
    bool covered = false;
    for (const Point2& f : front) {
      if (f == p || dominates(f, p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
  // Cross-check against the quadratic reference implementation.
  const auto idx = non_dominated_indices(points);
  std::vector<Point2> reference;
  for (std::size_t i : idx) {
    reference.push_back(points[i]);
  }
  const auto reference_front = pareto_front(reference);
  EXPECT_EQ(reference_front.size(), front.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoFrontProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace bofl::pareto
