// Property-based invariants for the Pareto layer: randomized point clouds
// (seeded, hence reproducible) checked against the definitional properties
// every caller relies on — the controller's front construction, the HVI
// stopping rule and the scenario harness's monotone-hypervolume invariant
// all reduce to these.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

namespace bofl::pareto {
namespace {

std::vector<Point2> random_cloud(Rng& rng, std::size_t n) {
  std::vector<Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)});
  }
  return points;
}

constexpr Point2 kRef{12.0, 12.0};

TEST(ParetoProperty, FrontContainsNoDominatedPoint) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<Point2> cloud =
        random_cloud(rng, 1 + rng.uniform_index(40));
    const std::vector<Point2> front = pareto_front(cloud);
    ASSERT_FALSE(front.empty());
    for (const Point2& member : front) {
      // Front members come from the cloud...
      EXPECT_NE(std::find(cloud.begin(), cloud.end(), member), cloud.end());
      // ...and nothing in the cloud dominates any of them.
      for (const Point2& other : cloud) {
        EXPECT_FALSE(dominates(other, member))
            << "(" << other.f1 << "," << other.f2 << ") dominates front "
            << "member (" << member.f1 << "," << member.f2 << ")";
      }
    }
    // Front members don't dominate each other either.
    for (const Point2& a : front) {
      for (const Point2& b : front) {
        EXPECT_FALSE(dominates(a, b));
      }
    }
  }
}

TEST(ParetoProperty, NonDominatedIndicesAgreeWithFront) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<Point2> cloud =
        random_cloud(rng, 1 + rng.uniform_index(30));
    for (const std::size_t index : non_dominated_indices(cloud)) {
      ASSERT_LT(index, cloud.size());
      for (const Point2& other : cloud) {
        EXPECT_FALSE(dominates(other, cloud[index]));
      }
    }
  }
}

TEST(ParetoProperty, FrontIsPermutationInvariant) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point2> cloud = random_cloud(rng, 2 + rng.uniform_index(30));
    const std::vector<Point2> front = pareto_front(cloud);
    std::vector<Point2> shuffled = cloud;
    rng.shuffle(shuffled);
    // pareto_front sorts its output, so equal fronts must be byte-equal.
    EXPECT_EQ(pareto_front(shuffled), front);
    EXPECT_EQ(hypervolume_2d(pareto_front(shuffled), kRef),
              hypervolume_2d(front, kRef));
  }
}

TEST(ParetoProperty, HypervolumeIsMonotoneUnderInsertion) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point2> accumulated;
    double previous = 0.0;
    for (int step = 0; step < 60; ++step) {
      accumulated.push_back(
          {rng.uniform(0.1, 14.0), rng.uniform(0.1, 14.0)});
      const double hv = hypervolume_2d(accumulated, kRef);
      EXPECT_GE(hv, previous) << "insertion shrank the hypervolume";
      previous = hv;
    }
  }
}

TEST(ParetoProperty, HypervolumeOfFrontEqualsHypervolumeOfCloud) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<Point2> cloud =
        random_cloud(rng, 1 + rng.uniform_index(40));
    EXPECT_DOUBLE_EQ(hypervolume_2d(pareto_front(cloud), kRef),
                     hypervolume_2d(cloud, kRef));
  }
}

TEST(ParetoProperty, HypervolumeImprovementMatchesDefinition) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<Point2> front =
        pareto_front(random_cloud(rng, 1 + rng.uniform_index(20)));
    const std::vector<Point2> candidates =
        random_cloud(rng, 1 + rng.uniform_index(10));
    const double hvi = hypervolume_improvement(front, candidates, kRef);
    EXPECT_GE(hvi, 0.0);
    std::vector<Point2> merged = front;
    merged.insert(merged.end(), candidates.begin(), candidates.end());
    EXPECT_NEAR(hvi,
                hypervolume_2d(merged, kRef) - hypervolume_2d(front, kRef),
                1e-9);
  }
}

}  // namespace
}  // namespace bofl::pareto
