#include "pareto/hypervolume.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bofl::pareto {
namespace {

TEST(Hypervolume, SinglePointRectangle) {
  // Point (1,1), ref (3,4): dominated area = 2 * 3 = 6.
  EXPECT_DOUBLE_EQ(hypervolume_2d({{1.0, 1.0}}, {3.0, 4.0}), 6.0);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, {1.0, 1.0}), 0.0);
}

TEST(Hypervolume, PointOutsideReferenceContributesNothing) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({{5.0, 5.0}}, {3.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2.0, 5.0}}, {3.0, 3.0}), 0.0);
}

TEST(Hypervolume, TwoPointStaircase) {
  // Points (1,3) and (2,1), ref (4,4):
  // strip [1,2): height 4-3=1 -> 1; strip [2,4): height 4-1=3 -> 6. Total 7.
  const std::vector<Point2> front{{1.0, 3.0}, {2.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, {4.0, 4.0}), 7.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const std::vector<Point2> front{{1.0, 1.0}};
  const std::vector<Point2> with_dominated{{1.0, 1.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, {4.0, 4.0}),
                   hypervolume_2d(with_dominated, {4.0, 4.0}));
}

TEST(Hypervolume, InvariantToInputOrder) {
  std::vector<Point2> a{{1.0, 3.0}, {2.0, 1.0}, {0.5, 3.5}};
  std::vector<Point2> b{{2.0, 1.0}, {0.5, 3.5}, {1.0, 3.0}};
  EXPECT_DOUBLE_EQ(hypervolume_2d(a, {4.0, 4.0}),
                   hypervolume_2d(b, {4.0, 4.0}));
}

TEST(HypervolumeImprovement, ZeroForDominatedCandidate) {
  const std::vector<Point2> front{{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume_improvement(front, {{2.0, 2.0}}, {4.0, 4.0}),
                   0.0);
}

TEST(HypervolumeImprovement, ExactForKnownCase) {
  // Front (2,2), candidate (1,3), ref (4,4): candidate adds strip
  // [1,2) x [3,4) = 1.
  const std::vector<Point2> front{{2.0, 2.0}};
  EXPECT_DOUBLE_EQ(hypervolume_improvement(front, {{1.0, 3.0}}, {4.0, 4.0}),
                   1.0);
}

TEST(HypervolumeImprovement, BatchedCandidates) {
  const std::vector<Point2> front{{2.0, 2.0}};
  const std::vector<Point2> batch{{1.0, 3.0}, {3.0, 1.0}};
  // Each adds a 1x1 corner strip.
  EXPECT_DOUBLE_EQ(hypervolume_improvement(front, batch, {4.0, 4.0}), 2.0);
}

// Properties on random clouds: HV is monotone under adding points,
// bounded by the reference box, and HVI is always non-negative.
class HypervolumeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HypervolumeProperty, MonotoneAndBounded) {
  Rng rng(GetParam());
  const Point2 ref{10.0, 10.0};
  std::vector<Point2> points;
  double previous = 0.0;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)});
    const double hv = hypervolume_2d(points, ref);
    EXPECT_GE(hv, previous - 1e-12);  // monotone non-decreasing
    EXPECT_LE(hv, 100.0 + 1e-9);      // bounded by the reference box
    previous = hv;
  }
}

TEST_P(HypervolumeProperty, ImprovementIsConsistent) {
  Rng rng(GetParam() * 7 + 1);
  const Point2 ref{10.0, 10.0};
  std::vector<Point2> front;
  for (int i = 0; i < 10; ++i) {
    front.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  std::vector<Point2> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  const double hvi = hypervolume_improvement(front, batch, ref);
  EXPECT_GE(hvi, 0.0);
  std::vector<Point2> merged = front;
  merged.insert(merged.end(), batch.begin(), batch.end());
  EXPECT_NEAR(hypervolume_2d(merged, ref),
              hypervolume_2d(front, ref) + hvi, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervolumeProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace bofl::pareto
