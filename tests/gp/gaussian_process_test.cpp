#include "gp/gaussian_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bofl::gp {
namespace {

Kernel default_kernel() {
  return {KernelFamily::kMatern52, 1.0, {0.3}};
}

TEST(GaussianProcess, PriorPrediction) {
  GaussianProcess gp(default_kernel(), 1e-6);
  const Prediction p = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(GaussianProcess, InterpolatesNoiselessData) {
  GaussianProcess gp(default_kernel(), 0.0);
  const std::vector<linalg::Vector> xs{{0.1}, {0.4}, {0.7}, {0.9}};
  std::vector<double> ys;
  for (const auto& x : xs) {
    ys.push_back(std::sin(6.0 * x[0]));
  }
  gp.condition(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Prediction p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-5);
    EXPECT_NEAR(p.variance, 0.0, 1e-5);
  }
}

TEST(GaussianProcess, VarianceGrowsAwayFromData) {
  GaussianProcess gp(default_kernel(), 1e-6);
  gp.condition({{0.5}}, {1.0});
  const double near = gp.predict({0.52}).variance;
  const double far = gp.predict({0.95}).variance;
  EXPECT_LT(near, far);
  EXPECT_LE(far, 1.0 + 1e-9);
}

TEST(GaussianProcess, MeanRevertsToPriorFarAway) {
  GaussianProcess gp(default_kernel(), 1e-6);
  gp.condition({{0.0}}, {5.0});
  EXPECT_NEAR(gp.predict({100.0}).mean, 0.0, 1e-6);
}

TEST(GaussianProcess, NoiseSmoothsInterpolation) {
  const std::vector<linalg::Vector> xs{{0.3}, {0.3}};
  const std::vector<double> ys{1.0, -1.0};  // contradictory observations
  GaussianProcess gp(default_kernel(), 0.5);
  gp.condition(xs, ys);
  // With symmetric noise the posterior mean at the point is the average.
  EXPECT_NEAR(gp.predict({0.3}).mean, 0.0, 1e-9);
}

TEST(GaussianProcess, AddObservationMatchesBatchConditioning) {
  const std::vector<linalg::Vector> xs{{0.1}, {0.5}, {0.8}};
  const std::vector<double> ys{0.4, -0.2, 0.9};
  GaussianProcess batch(default_kernel(), 1e-4);
  batch.condition(xs, ys);
  GaussianProcess incremental(default_kernel(), 1e-4);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    incremental.add_observation(xs[i], ys[i]);
  }
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Prediction a = batch.predict({q});
    const Prediction b = incremental.predict({q});
    EXPECT_NEAR(a.mean, b.mean, 1e-12);
    EXPECT_NEAR(a.variance, b.variance, 1e-12);
  }
}

// Differential test for the incremental algebra: a GP extended one
// observation at a time (rank-1 Cholesky borders) must agree with its
// full-refit twin to tight tolerance over randomized data in several
// dimensions — means, variances, and the log marginal likelihood.
TEST(GaussianProcess, IncrementalMatchesFullRefitOnRandomData) {
  for (const std::size_t dim : {1u, 2u, 3u}) {
    SCOPED_TRACE(dim);
    Rng rng(50 + dim);
    Kernel kernel(KernelFamily::kMatern52, 1.3,
                  std::vector<double>(dim, 0.4));
    GaussianProcess incremental(kernel, 1e-4);
    GaussianProcess reference(kernel, 1e-4);
    reference.set_full_refit(true);
    for (int i = 0; i < 25; ++i) {
      linalg::Vector x(dim);
      for (double& v : x) {
        v = rng.uniform();
      }
      const double y = rng.normal();
      incremental.add_observation(x, y);
      reference.add_observation(x, y);
    }
    EXPECT_FALSE(incremental.full_refit());
    EXPECT_NEAR(incremental.log_marginal_likelihood(),
                reference.log_marginal_likelihood(), 1e-7);
    for (int q = 0; q < 10; ++q) {
      linalg::Vector x(dim);
      for (double& v : x) {
        v = rng.uniform();
      }
      const Prediction a = incremental.predict(x);
      const Prediction b = reference.predict(x);
      EXPECT_NEAR(a.mean, b.mean, 1e-8);
      EXPECT_NEAR(a.variance, b.variance, 1e-8);
    }
  }
}

// A duplicate noiseless observation makes the bordered matrix singular:
// the incremental path must fall back to a full (jittered) refit and keep
// producing finite, sane predictions.
TEST(GaussianProcess, IncrementalFallsBackOnDuplicateNoiselessPoint) {
  GaussianProcess gp(default_kernel(), 0.0);
  gp.add_observation({0.4}, 1.0);
  gp.add_observation({0.9}, -0.5);
  EXPECT_EQ(gp.jitter(), 0.0);
  gp.add_observation({0.4}, 1.0);  // exact duplicate, zero noise
  EXPECT_GT(gp.jitter(), 0.0);     // the fallback refit had to jitter
  const Prediction p = gp.predict({0.4});
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_TRUE(std::isfinite(p.variance));
  EXPECT_NEAR(p.mean, 1.0, 1e-2);
}

TEST(GaussianProcess, PredictFromCrossMatchesPredict) {
  Rng rng(61);
  GaussianProcess gp(default_kernel(), 1e-4);
  for (int i = 0; i < 12; ++i) {
    gp.add_observation({rng.uniform()}, rng.normal());
  }
  for (int q = 0; q < 5; ++q) {
    const linalg::Vector x{rng.uniform()};
    const Prediction direct = gp.predict(x);
    const Prediction via_cross =
        gp.predict_from_cross(gp.kernel().cross(x, gp.inputs()));
    EXPECT_DOUBLE_EQ(via_cross.mean, direct.mean);
    EXPECT_DOUBLE_EQ(via_cross.variance, direct.variance);
  }
}

// predict_block must agree with per-point prediction for every point of a
// block (one multi-RHS solve vs. independent solves).
TEST(GaussianProcess, PredictBlockMatchesPerPointPrediction) {
  Rng rng(67);
  GaussianProcess gp(default_kernel(), 1e-4);
  for (int i = 0; i < 15; ++i) {
    gp.add_observation({rng.uniform()}, rng.normal());
  }
  const std::size_t m = 9;
  std::vector<linalg::Vector> rows(m);
  std::vector<linalg::Vector> queries(m);
  std::vector<std::size_t> indices(m);
  for (std::size_t j = 0; j < m; ++j) {
    queries[j] = {rng.uniform()};
    rows[j] = gp.kernel().cross(queries[j], gp.inputs());
    indices[j] = j;
  }
  std::vector<Prediction> block(m);
  gp.predict_block(rows, indices.data(), m, block.data());
  for (std::size_t j = 0; j < m; ++j) {
    const Prediction ref = gp.predict(queries[j]);
    EXPECT_NEAR(block[j].mean, ref.mean, 1e-12);
    EXPECT_NEAR(block[j].variance, ref.variance, 1e-12);
  }
}

TEST(GaussianProcess, PredictBlockOnPriorReturnsPrior) {
  GaussianProcess gp(default_kernel(), 1e-4);
  std::vector<linalg::Vector> rows{{}};
  const std::size_t index = 0;
  Prediction p;
  gp.predict_block(rows, &index, 1, &p);
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(GaussianProcess, LogMarginalLikelihoodPrefersTruth) {
  // Data drawn from a smooth function: a sane lengthscale must beat an
  // absurdly short one.
  Rng rng(3);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    const double x = rng.uniform();
    xs.push_back({x});
    ys.push_back(std::sin(4.0 * x));
  }
  GaussianProcess sane(Kernel(KernelFamily::kMatern52, 1.0, {0.3}), 1e-4);
  sane.condition(xs, ys);
  GaussianProcess absurd(Kernel(KernelFamily::kMatern52, 1.0, {0.001}), 1e-4);
  absurd.condition(xs, ys);
  EXPECT_GT(sane.log_marginal_likelihood(), absurd.log_marginal_likelihood());
}

TEST(GaussianProcess, LmlRequiresData) {
  GaussianProcess gp(default_kernel(), 1e-4);
  EXPECT_THROW((void)gp.log_marginal_likelihood(), std::invalid_argument);
}

TEST(GaussianProcess, RejectsMismatchedData) {
  GaussianProcess gp(default_kernel(), 1e-4);
  EXPECT_THROW(gp.condition({{0.1}, {0.2}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(gp.condition({{0.1, 0.2}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(gp.predict({0.1, 0.2}), std::invalid_argument);
}

TEST(GaussianProcess, RejectsNegativeNoise) {
  EXPECT_THROW(GaussianProcess(default_kernel(), -0.1),
               std::invalid_argument);
}

// The posterior mean must be a weighted blend: predicting between two
// observations lands between their values for a monotone section.
TEST(GaussianProcess, PosteriorMeanInterpolatesMonotoneSection) {
  GaussianProcess gp(default_kernel(), 1e-8);
  gp.condition({{0.2}, {0.8}}, {0.0, 1.0});
  const double mid = gp.predict({0.5}).mean;
  EXPECT_GT(mid, -0.05);
  EXPECT_LT(mid, 1.05);
}

// Property sweep over dimensions: interpolation holds in d dims.
class GpDimension : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GpDimension, InterpolatesInAnyDimension) {
  const std::size_t d = GetParam();
  Rng rng(10 + d);
  Kernel kernel(KernelFamily::kMatern52, 1.0,
                std::vector<double>(d, 0.5));
  GaussianProcess gp(std::move(kernel), 0.0);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 8; ++i) {
    linalg::Vector x(d);
    for (double& v : x) {
      v = rng.uniform();
    }
    double y = 0.0;
    for (double v : x) {
      y += std::cos(3.0 * v);
    }
    xs.push_back(std::move(x));
    ys.push_back(y);
  }
  gp.condition(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(gp.predict(xs[i]).mean, ys[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GpDimension, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace bofl::gp
