#include "gp/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "runtime/thread_pool.hpp"

namespace bofl::gp {
namespace {

TEST(Kernel, ValueAtZeroDistanceIsSignalVariance) {
  for (const auto family : {KernelFamily::kMatern52, KernelFamily::kMatern32,
                            KernelFamily::kRbf}) {
    const Kernel k(family, 2.5, {0.3, 0.7});
    const linalg::Vector x{0.4, 0.6};
    EXPECT_DOUBLE_EQ(k(x, x), 2.5) << to_string(family);
  }
}

TEST(Kernel, Symmetry) {
  const Kernel k(KernelFamily::kMatern52, 1.0, {0.5, 0.5, 0.5});
  const linalg::Vector a{0.1, 0.2, 0.3};
  const linalg::Vector b{0.9, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
}

TEST(Kernel, DecaysWithDistance) {
  const Kernel k(KernelFamily::kMatern52, 1.0, {0.5});
  double prev = k({0.0}, {0.0});
  for (double d = 0.1; d < 2.0; d += 0.1) {
    const double v = k({0.0}, {d});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Kernel, Matern52KnownValue) {
  // k(r) = sv * (1 + s + s^2/3) exp(-s), s = sqrt(5) r.
  const Kernel k(KernelFamily::kMatern52, 1.0, {1.0});
  const double r = 0.7;
  const double s = std::sqrt(5.0) * r;
  const double expected = (1.0 + s + s * s / 3.0) * std::exp(-s);
  EXPECT_NEAR(k({0.0}, {r}), expected, 1e-14);
}

TEST(Kernel, RbfKnownValue) {
  const Kernel k(KernelFamily::kRbf, 2.0, {0.5});
  const double r = 1.0 / 0.5;  // scaled distance
  EXPECT_NEAR(k({0.0}, {1.0}), 2.0 * std::exp(-0.5 * r * r), 1e-14);
}

TEST(Kernel, ArdLengthscalesActPerDimension) {
  const Kernel k(KernelFamily::kRbf, 1.0, {0.1, 10.0});
  // A move along the long-lengthscale axis barely matters; along the short
  // axis it matters a lot.
  const double along_short = k({0.0, 0.0}, {0.1, 0.0});
  const double along_long = k({0.0, 0.0}, {0.0, 0.1});
  EXPECT_LT(along_short, 0.75);
  EXPECT_GT(along_long, 0.99);
}

TEST(Kernel, FamiliesDiffer) {
  const linalg::Vector a{0.0};
  const linalg::Vector b{0.5};
  const Kernel m52(KernelFamily::kMatern52, 1.0, {1.0});
  const Kernel m32(KernelFamily::kMatern32, 1.0, {1.0});
  const Kernel rbf(KernelFamily::kRbf, 1.0, {1.0});
  EXPECT_NE(m52(a, b), m32(a, b));
  EXPECT_NE(m52(a, b), rbf(a, b));
}

TEST(Kernel, RejectsInvalidParameters) {
  EXPECT_THROW(Kernel(KernelFamily::kRbf, 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Kernel(KernelFamily::kRbf, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(Kernel(KernelFamily::kRbf, 1.0, {-1.0}),
               std::invalid_argument);
}

TEST(Kernel, RejectsDimensionMismatch) {
  const Kernel k(KernelFamily::kMatern52, 1.0, {1.0, 1.0});
  EXPECT_THROW((void)k({0.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(Kernel, CrossCovarianceMatchesPointwise) {
  const Kernel k(KernelFamily::kMatern52, 1.3, {0.4, 0.6});
  const std::vector<linalg::Vector> points{{0.1, 0.1}, {0.5, 0.9}, {0.8, 0.2}};
  const linalg::Vector x{0.3, 0.3};
  const linalg::Vector cross = k.cross(x, points);
  ASSERT_EQ(cross.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(cross[i], k(x, points[i]));
  }
}

TEST(Kernel, GramFromAPoolWorkerIsBitwiseEqualToSerial) {
  // The fleet control plane extends clusters ON pool workers, and each
  // cluster's GP fit may hand that same pool to gram().  The row fan-out
  // must detect the worker thread and run inline (never re-enter the pool)
  // and the result must stay bitwise equal to the serial product.  Use
  // enough points to cross gram()'s internal parallel threshold.
  Rng rng(42);
  const Kernel k(KernelFamily::kMatern52, 1.2, {0.4, 0.4, 0.4});
  std::vector<linalg::Vector> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }

  const linalg::Matrix serial = k.gram(points);
  runtime::ThreadPool pool(4);
  const linalg::Matrix parallel = k.gram(points, &pool);
  linalg::Matrix from_worker = pool.submit([&]() {
    EXPECT_TRUE(pool.on_worker_thread());
    return k.gram(points, &pool);  // must run the row loop inline
  }).get();

  ASSERT_EQ(serial.rows(), points.size());
  for (std::size_t i = 0; i < serial.rows(); ++i) {
    for (std::size_t j = 0; j < serial.cols(); ++j) {
      EXPECT_EQ(serial(i, j), parallel(i, j)) << i << "," << j;
      EXPECT_EQ(serial(i, j), from_worker(i, j)) << i << "," << j;
    }
  }
}

// Positive semi-definiteness: the Gram matrix of random point sets must
// factor after a tiny jitter, for every kernel family.
class KernelPsd : public ::testing::TestWithParam<KernelFamily> {};

TEST_P(KernelPsd, GramIsPositiveSemiDefinite) {
  Rng rng(99);
  const Kernel k(GetParam(), 1.0, {0.3, 0.3, 0.3});
  std::vector<linalg::Vector> points;
  for (int i = 0; i < 25; ++i) {
    points.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  linalg::Matrix gram = k.gram(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    gram(i, i) += 1e-9;
  }
  EXPECT_TRUE(linalg::cholesky(gram).has_value())
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Families, KernelPsd,
                         ::testing::Values(KernelFamily::kMatern52,
                                           KernelFamily::kMatern32,
                                           KernelFamily::kRbf));

}  // namespace
}  // namespace bofl::gp
