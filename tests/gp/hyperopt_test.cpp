#include "gp/hyperopt.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bofl::gp {
namespace {

/// Synthetic data: smooth 1-D function with small noise.
void make_data(std::vector<linalg::Vector>& xs, std::vector<double>& ys,
               std::size_t n, Rng& rng) {
  xs.clear();
  ys.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    xs.push_back({x});
    ys.push_back(std::sin(5.0 * x) + rng.normal(0.0, 0.05));
  }
}

TEST(Hyperopt, ImprovesOverDefaultHyperparameters) {
  Rng rng(21);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 25, rng);

  GaussianProcess default_gp(Kernel(KernelFamily::kMatern52, 1.0, {0.05}),
                             0.5);
  default_gp.condition(xs, ys);

  Rng opt_rng(22);
  const HyperoptResult fit =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  EXPECT_GT(fit.log_marginal_likelihood,
            default_gp.log_marginal_likelihood());
}

TEST(Hyperopt, RecoversSaneLengthscale) {
  Rng rng(23);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 30, rng);
  Rng opt_rng(24);
  const HyperoptResult fit =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  // sin(5x) on [0,1] has a correlation length of roughly 0.1-1.
  EXPECT_GT(fit.kernel.lengthscales()[0], 0.02);
  EXPECT_LT(fit.kernel.lengthscales()[0], 3.0);
  EXPECT_GT(fit.noise_variance, 0.0);
  EXPECT_LT(fit.noise_variance, 0.5);
}

TEST(Hyperopt, FittedModelPredictsHeldOutPoints) {
  Rng rng(25);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 30, rng);
  Rng opt_rng(26);
  const HyperoptResult fit =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  GaussianProcess gp(fit.kernel, fit.noise_variance);
  gp.condition(xs, ys);
  double max_error = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.1) {
    max_error = std::max(max_error,
                         std::abs(gp.predict({x}).mean - std::sin(5.0 * x)));
  }
  EXPECT_LT(max_error, 0.25);
}

TEST(Hyperopt, RespectsBounds) {
  Rng rng(27);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 15, rng);
  HyperoptOptions options;
  options.min_lengthscale = 0.2;
  options.max_lengthscale = 0.4;
  Rng opt_rng(28);
  const HyperoptResult fit = fit_hyperparameters(KernelFamily::kMatern52, xs,
                                                 ys, opt_rng, options);
  EXPECT_GE(fit.kernel.lengthscales()[0], 0.2);
  EXPECT_LE(fit.kernel.lengthscales()[0], 0.4);
}

TEST(Hyperopt, WorksWithTinyDatasets) {
  const std::vector<linalg::Vector> xs{{0.2}, {0.5}, {0.8}};
  const std::vector<double> ys{0.1, 0.9, 0.2};
  Rng opt_rng(29);
  const HyperoptResult fit =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  EXPECT_TRUE(std::isfinite(fit.log_marginal_likelihood));
}

TEST(Hyperopt, RejectsEmptyData) {
  Rng opt_rng(30);
  EXPECT_THROW((void)fit_hyperparameters(KernelFamily::kMatern52, {}, {},
                                         opt_rng),
               std::invalid_argument);
}

// A warm-started refit polishing the previous optimum on the same data must
// not lose likelihood relative to the full multi-restart search (Nelder-Mead
// keeps its best vertex, and it starts at the full search's answer).
TEST(Hyperopt, WarmStartKeepsLikelihoodOnSameData) {
  Rng rng(31);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 25, rng);
  Rng opt_rng(32);
  const HyperoptResult full =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  const HyperoptResult warm = fit_hyperparameters(KernelFamily::kMatern52, xs,
                                                  ys, opt_rng, {}, &full);
  EXPECT_GE(warm.log_marginal_likelihood,
            full.log_marginal_likelihood - 1e-9);
}

// The warm path draws nothing from the RNG: the result is a pure function
// of (data, warm start), and the caller's stream is left untouched.
TEST(Hyperopt, WarmStartIsDeterministicAndSkipsRng) {
  Rng rng(33);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 20, rng);
  Rng opt_rng(34);
  const HyperoptResult full =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  Rng a(1);
  Rng b(2);
  const HyperoptResult wa = fit_hyperparameters(KernelFamily::kMatern52, xs,
                                                ys, a, {}, &full);
  const HyperoptResult wb = fit_hyperparameters(KernelFamily::kMatern52, xs,
                                                ys, b, {}, &full);
  EXPECT_EQ(wa.log_marginal_likelihood, wb.log_marginal_likelihood);
  EXPECT_EQ(wa.noise_variance, wb.noise_variance);
  EXPECT_EQ(wa.kernel.lengthscales(), wb.kernel.lengthscales());
  EXPECT_EQ(a.uniform(), Rng(1).uniform());  // stream position untouched
}

// Warm refits still track the optimum after the data grows, staying ahead
// of the stale hyperparameters they started from.
TEST(Hyperopt, WarmStartTracksGrowingData) {
  Rng rng(35);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 15, rng);
  Rng opt_rng(36);
  const HyperoptResult early =
      fit_hyperparameters(KernelFamily::kMatern52, xs, ys, opt_rng);
  make_data(xs, ys, 30, rng);
  const HyperoptResult warm = fit_hyperparameters(KernelFamily::kMatern52, xs,
                                                  ys, opt_rng, {}, &early);
  GaussianProcess stale(early.kernel, early.noise_variance);
  stale.condition(xs, ys);
  EXPECT_GE(warm.log_marginal_likelihood,
            stale.log_marginal_likelihood() - 1e-9);
}

TEST(Hyperopt, WarmStartRejectsMismatchedDimension) {
  Rng rng(37);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  make_data(xs, ys, 10, rng);
  const HyperoptResult wrong_dim{
      Kernel(KernelFamily::kMatern52, 1.0, {0.3, 0.3}), 1e-4, 0.0};
  Rng opt_rng(38);
  EXPECT_THROW((void)fit_hyperparameters(KernelFamily::kMatern52, xs, ys,
                                         opt_rng, {}, &wrong_dim),
               std::invalid_argument);
}

}  // namespace
}  // namespace bofl::gp
