#include "ilp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bofl::ilp {
namespace {

TEST(BranchAndBound, IntegralRelaxationNeedsNoBranching) {
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 4.0});
  const IlpSolution s = solve_ilp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_EQ(s.x[0] + s.x[1], 4);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(BranchAndBound, FractionalRelaxationGetsRounded) {
  // minimize -x - y s.t. 2x + y <= 5, x + 2y <= 5: LP optimum (5/3, 5/3),
  // integer optimum value -3 (e.g. (2,1) or (1,2)).
  LpProblem p;
  p.objective = {-1.0, -1.0};
  p.constraints.push_back({{2.0, 1.0}, Relation::kLessEqual, 5.0});
  p.constraints.push_back({{1.0, 2.0}, Relation::kLessEqual, 5.0});
  const IlpSolution s = solve_ilp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
  EXPECT_EQ(s.x[0] + s.x[1], 3);
}

TEST(BranchAndBound, KnapsackAgainstBruteForce) {
  // minimize -(values) with one weight constraint: a knapsack.
  const std::vector<double> value{6.0, 10.0, 12.0};
  const std::vector<double> weight{1.0, 2.0, 3.0};
  const double capacity = 5.0;
  LpProblem p;
  p.objective = {-value[0], -value[1], -value[2]};
  p.constraints.push_back({weight, Relation::kLessEqual, capacity});
  // Also bound each variable to <= 3 to keep brute force tiny.
  for (std::size_t i = 0; i < 3; ++i) {
    LpConstraint c;
    c.coefficients.assign(3, 0.0);
    c.coefficients[i] = 1.0;
    c.relation = Relation::kLessEqual;
    c.rhs = 3.0;
    p.constraints.push_back(c);
  }
  const IlpSolution s = solve_ilp(p);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);

  double best = 0.0;
  for (int a = 0; a <= 3; ++a) {
    for (int b = 0; b <= 3; ++b) {
      for (int c = 0; c <= 3; ++c) {
        if (a * weight[0] + b * weight[1] + c * weight[2] <= capacity) {
          best = std::min(best,
                          -(a * value[0] + b * value[1] + c * value[2]));
        }
      }
    }
  }
  EXPECT_NEAR(s.objective, best, 1e-9);
}

TEST(BranchAndBound, DetectsInfeasible) {
  LpProblem p;
  p.objective = {1.0};
  p.constraints.push_back({{2.0}, Relation::kEqual, 3.0});  // x = 1.5 only
  // The LP relaxation is feasible (x = 1.5) but no integer solution exists.
  const IlpSolution s = solve_ilp(p);
  EXPECT_EQ(s.status, IlpStatus::kInfeasible);
}

TEST(BranchAndBound, InfeasibleLpPropagates) {
  LpProblem p;
  p.objective = {1.0};
  p.constraints.push_back({{1.0}, Relation::kLessEqual, 1.0});
  p.constraints.push_back({{1.0}, Relation::kGreaterEqual, 2.0});
  EXPECT_EQ(solve_ilp(p).status, IlpStatus::kInfeasible);
}

TEST(BranchAndBound, NodeLimitReported) {
  // A problem engineered to branch: tiny node budget must be respected.
  LpProblem p;
  p.objective = {-1.0, -1.0, -1.0};
  p.constraints.push_back(
      {{3.0, 5.0, 7.0}, Relation::kLessEqual, 19.0});
  IlpOptions options;
  options.max_nodes = 1;
  const IlpSolution s = solve_ilp(p, options);
  EXPECT_LE(s.nodes_explored, 1u);
}

TEST(BranchAndBound, FeasibleWarmStartBoundsTheSearch) {
  // minimize x + y s.t. x + y == 6: warm start at the optimum means the
  // search never needs to find a better incumbent.
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 6.0});
  IlpOptions options;
  options.warm_start = {2, 4};
  const IlpSolution s = solve_ilp(p, options);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-9);
}

TEST(BranchAndBound, InfeasibleWarmStartIsIgnored) {
  LpProblem p;
  p.objective = {1.0};
  p.constraints.push_back({{1.0}, Relation::kEqual, 3.0});
  IlpOptions options;
  options.warm_start = {99};  // violates the equality
  const IlpSolution s = solve_ilp(p, options);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_EQ(s.x[0], 3);
}

TEST(BranchAndBound, WarmStartSurvivesWhenSearchCannotBeatIt) {
  // Node budget zero: only the warm start can provide the answer.
  LpProblem p;
  p.objective = {-1.0, -1.0};
  p.constraints.push_back({{2.0, 1.0}, Relation::kLessEqual, 5.0});
  p.constraints.push_back({{1.0, 2.0}, Relation::kLessEqual, 5.0});
  IlpOptions options;
  options.warm_start = {1, 1};  // feasible, value -2 (true optimum is -3)
  options.max_nodes = 0;
  const IlpSolution s = solve_ilp(p, options);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(BranchAndBound, RelativeGapAcceptsNearOptimalIncumbent) {
  // With a huge relative gap, the warm start is accepted immediately and
  // no nodes are needed to certify it.
  LpProblem p;
  p.objective = {1.0, 1.000001};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 10.0});
  IlpOptions options;
  options.warm_start = {0, 10};  // within 1e-5 of the optimum
  options.relative_gap = 1e-3;
  const IlpSolution s = solve_ilp(p, options);
  ASSERT_EQ(s.status, IlpStatus::kOptimal);
  EXPECT_LE(s.nodes_explored, 1u);
}

// Randomized cross-validation against brute force on 2-variable problems.
class BnbRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbRandomized, MatchesBruteForce) {
  Rng rng(GetParam() * 97 + 13);
  const double c0 = rng.uniform(0.5, 5.0);
  const double c1 = rng.uniform(0.5, 5.0);
  const double a0 = rng.uniform(0.5, 3.0);
  const double a1 = rng.uniform(0.5, 3.0);
  const double cap = rng.uniform(5.0, 20.0);
  const auto total = static_cast<double>(rng.uniform_int(3, 12));

  LpProblem p;
  p.objective = {c0, c1};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEqual, total});
  p.constraints.push_back({{a0, a1}, Relation::kLessEqual, cap});
  const IlpSolution s = solve_ilp(p);

  double best = std::numeric_limits<double>::infinity();
  const auto n = static_cast<int>(total);
  for (int x = 0; x <= n; ++x) {
    const int y = n - x;
    if (a0 * x + a1 * y <= cap + 1e-9) {
      best = std::min(best, c0 * x + c1 * y);
    }
  }
  if (std::isinf(best)) {
    EXPECT_EQ(s.status, IlpStatus::kInfeasible);
  } else {
    ASSERT_EQ(s.status, IlpStatus::kOptimal);
    EXPECT_NEAR(s.objective, best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandomized,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace bofl::ilp
