#include "ilp/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "ilp/schedule_solver.hpp"

namespace bofl::ilp {
namespace {

// Bitwise schedule equality: the cache's whole contract is that a hit
// returns exactly what a fresh solve would have produced.
void expect_bitwise_equal(const Schedule& a, const Schedule& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].first, b.assignments[i].first);
    EXPECT_EQ(a.assignments[i].second, b.assignments[i].second);
  }
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.total_latency, b.total_latency);
}

// A profile set with deliberate dominated entries and duplicates, like the
// controller's raw aggregate table.
std::vector<ConfigProfile> random_profiles(Rng& rng, std::size_t count) {
  std::vector<ConfigProfile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double latency = 0.05 + rng.uniform() * 2.0;
    const double energy = 0.5 + rng.uniform() * 10.0;
    profiles.push_back({i, energy, latency});
  }
  if (count >= 3) {
    // Clearly dominated point and an exact duplicate of profile 0.
    profiles.push_back({count, profiles[0].energy_per_job + 5.0,
                        profiles[0].latency_per_job + 5.0});
    profiles.push_back({count + 1, profiles[0].energy_per_job,
                        profiles[0].latency_per_job});
  }
  return profiles;
}

TEST(ScheduleCache, HitReturnsIdenticalBits) {
  Rng rng(11);
  const std::vector<ConfigProfile> profiles = random_profiles(rng, 6);
  ScheduleCache cache;
  const Schedule first = cache.solve(profiles, 40, 30.0);
  const Schedule second = cache.solve(profiles, 40, 30.0);
  expect_bitwise_equal(first, second);
  const ScheduleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, BitIdenticalToUncachedSolver) {
  Rng rng(22);
  ScheduleCache cache;
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<ConfigProfile> profiles =
        random_profiles(rng, 2 + static_cast<std::size_t>(trial % 7));
    const std::int64_t jobs = 1 + static_cast<std::int64_t>(trial * 3);
    const double deadline = rng.uniform() * 40.0;
    const Schedule uncached = solve_round_schedule(profiles, jobs, deadline);
    // Both cold (miss) and warm (hit) lookups must match the direct solve.
    expect_bitwise_equal(cache.solve(profiles, jobs, deadline), uncached);
    expect_bitwise_equal(cache.solve(profiles, jobs, deadline), uncached);
  }
}

TEST(ScheduleCache, InfeasibleResultsAreCachedToo) {
  const std::vector<ConfigProfile> profiles{{0, 1.0, 1.0}};
  ScheduleCache cache;
  const Schedule miss = cache.solve(profiles, 100, 1.0);  // can't fit
  EXPECT_FALSE(miss.feasible);
  const Schedule hit = cache.solve(profiles, 100, 1.0);
  EXPECT_FALSE(hit.feasible);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ScheduleCache, DistinctProblemsGetDistinctEntries) {
  Rng rng(33);
  const std::vector<ConfigProfile> profiles = random_profiles(rng, 5);
  ScheduleCache cache;
  (void)cache.solve(profiles, 40, 30.0);
  (void)cache.solve(profiles, 41, 30.0);  // different job count
  (void)cache.solve(profiles, 40, 31.0);  // different deadline
  std::vector<ConfigProfile> perturbed = profiles;
  // A strictly dominant profile survives pruning and changes the key bits.
  // (Perturbing a point that pruning would discard must NOT change the key —
  // the canonicalization is over the efficient set.)
  perturbed[0].energy_per_job = 1e-9;
  perturbed[0].latency_per_job = 1e-9;
  (void)cache.solve(perturbed, 40, 30.0);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ScheduleCache, ConfigIdDoesNotAffectTheKey) {
  // Assignments are positional; the solver never reads config_id, so two
  // profile sets differing only in ids must share one entry.
  Rng rng(44);
  std::vector<ConfigProfile> profiles = random_profiles(rng, 5);
  ScheduleCache cache;
  (void)cache.solve(profiles, 20, 25.0);
  for (ConfigProfile& p : profiles) {
    p.config_id += 1000;
  }
  (void)cache.solve(profiles, 20, 25.0);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ScheduleCache, DisableCacheBypassesEverything) {
  Rng rng(55);
  const std::vector<ConfigProfile> profiles = random_profiles(rng, 5);
  ScheduleCache cache;
  IlpOptions options;
  options.disable_cache = true;
  const Schedule a = cache.solve(profiles, 30, 25.0, options);
  const Schedule b = cache.solve(profiles, 30, 25.0, options);
  expect_bitwise_equal(a, b);
  expect_bitwise_equal(a, solve_round_schedule(profiles, 30, 25.0, options));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, CallerWarmStartBypassesTheMemo) {
  const std::vector<ConfigProfile> profiles{{0, 1.0, 0.5}, {1, 2.0, 0.25}};
  ScheduleCache cache;
  IlpOptions options;
  options.warm_start = {10, 0};
  (void)cache.solve_pruned(profiles, 10, 100.0, options);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, EvictionWipesAtCapacity) {
  ScheduleCacheOptions cache_options;
  cache_options.max_entries = 4;
  ScheduleCache cache(cache_options);
  const std::vector<ConfigProfile> profiles{{0, 1.0, 0.5}, {1, 2.0, 0.25}};
  for (std::int64_t jobs = 1; jobs <= 6; ++jobs) {
    (void)cache.solve(profiles, jobs, 100.0);
  }
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.size(), 4u);
  // Post-wipe solves still match the uncached solver.
  expect_bitwise_equal(cache.solve(profiles, 3, 100.0),
                       solve_round_schedule(profiles, 3, 100.0));
}

TEST(ScheduleCache, DeadlineQuantumBucketsNearbyDeadlines) {
  ScheduleCacheOptions cache_options;
  cache_options.deadline_quantum = 1.0;
  ScheduleCache cache(cache_options);
  const std::vector<ConfigProfile> profiles{{0, 1.0, 0.5}, {1, 2.0, 0.25}};
  const Schedule first = cache.solve(profiles, 10, 50.2);
  const Schedule bucketed = cache.solve(profiles, 10, 50.9);  // same bucket
  expect_bitwise_equal(first, bucketed);  // served from the 50.2 solve
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)cache.solve(profiles, 10, 51.1);  // next bucket
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ScheduleCache, WarmStartResolvesIsOptInAndCounted) {
  ScheduleCacheOptions cache_options;
  cache_options.warm_start_resolves = true;
  ScheduleCache cache(cache_options);
  const std::vector<ConfigProfile> profiles{{0, 1.0, 0.5}, {1, 2.0, 0.25}};
  const Schedule a = cache.solve_pruned(profiles, 10, 100.0);
  ASSERT_TRUE(a.feasible);
  // Same shape, different deadline: the previous counts seed the incumbent.
  const Schedule b = cache.solve_pruned(profiles, 10, 90.0);
  EXPECT_TRUE(b.feasible);
  EXPECT_EQ(cache.stats().warm_starts, 1u);
  // The seeded solve still lands within the solver's certified gap of the
  // cold solve (exact bit-identity is intentionally NOT promised here).
  const Schedule cold = solve_round_schedule_pruned(profiles, 10, 90.0);
  EXPECT_NEAR(b.total_energy, cold.total_energy,
              1e-4 * cold.total_energy + 1e-12);
}

TEST(ScheduleCache, ConcurrentSolvesAcrossStripesStayBitIdentical) {
  // The striped-lock contract: many threads hammering a mix of keys (hits,
  // racing cold misses, capacity wipes excluded — large max_entries) must
  // each observe exactly what a fresh uncached solve produces, and the
  // lock-free stats must reconcile with the call count afterwards.
  Rng rng(77);
  struct Problem {
    std::vector<ConfigProfile> profiles;
    std::int64_t jobs = 0;
    double deadline = 0.0;
    Schedule expected;
  };
  std::vector<Problem> problems;
  for (int p = 0; p < 24; ++p) {
    Problem problem;
    problem.profiles = random_profiles(rng, 2 + static_cast<std::size_t>(p % 5));
    problem.jobs = 1 + p * 3;
    problem.deadline = 10.0 + rng.uniform() * 40.0;
    problem.expected =
        solve_round_schedule(problem.profiles, problem.jobs, problem.deadline);
    problems.push_back(std::move(problem));
  }

  ScheduleCache cache;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 6;
  // gtest assertions are not thread-safe, so workers only record results;
  // all comparisons happen on the main thread after the join.
  std::vector<std::vector<Schedule>> results(
      kThreads, std::vector<Schedule>(problems.size()));
  std::atomic<bool> stop_reader{false};
  std::thread reader([&]() {  // stats()/size() are lock-free by contract
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const ScheduleCache::Stats snapshot = cache.stats();
      (void)snapshot;
      (void)cache.size();
    }
  });
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (std::size_t iter = 0; iter < kIterations; ++iter) {
        for (std::size_t p = 0; p < problems.size(); ++p) {
          // Stagger the visit order per thread so stripes contend.
          const std::size_t i = (p + t * 7 + iter) % problems.size();
          results[t][i] = cache.solve(problems[i].profiles, problems[i].jobs,
                                      problems[i].deadline);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t p = 0; p < problems.size(); ++p) {
      SCOPED_TRACE(::testing::Message() << "thread " << t << " problem " << p);
      expect_bitwise_equal(results[t][p], problems[p].expected);
    }
  }
  const ScheduleCache::Stats stats = cache.stats();
  // Every call is either a hit or a miss; racing cold misses on one key may
  // each count a miss, so misses >= distinct problems but the cache still
  // holds exactly one entry per key.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIterations * problems.size());
  EXPECT_GE(stats.misses, problems.size());
  EXPECT_EQ(cache.size(), problems.size());
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PruneDominatedProfiles, MatchesSolverSemantics) {
  Rng rng(66);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<ConfigProfile> profiles = random_profiles(rng, 6);
    const PrunedProfiles pruned = prune_dominated_profiles(profiles);
    ASSERT_EQ(pruned.profiles.size(), pruned.kept.size());
    for (std::size_t i = 0; i < pruned.kept.size(); ++i) {
      EXPECT_EQ(pruned.profiles[i].config_id,
                profiles[pruned.kept[i]].config_id);
      EXPECT_EQ(pruned.profiles[i].energy_per_job,
                profiles[pruned.kept[i]].energy_per_job);
      EXPECT_EQ(pruned.profiles[i].latency_per_job,
                profiles[pruned.kept[i]].latency_per_job);
    }
    // Idempotent: pruning the pruned set is the identity.
    const PrunedProfiles again = prune_dominated_profiles(pruned.profiles);
    ASSERT_EQ(again.profiles.size(), pruned.profiles.size());
    for (std::size_t i = 0; i < again.kept.size(); ++i) {
      EXPECT_EQ(again.kept[i], i);
    }
    // solve_round_schedule == prune + solve_round_schedule_pruned + remap.
    Schedule via_pruned =
        solve_round_schedule_pruned(pruned.profiles, 25, 20.0);
    for (auto& assignment : via_pruned.assignments) {
      assignment.first = pruned.kept[assignment.first];
    }
    expect_bitwise_equal(via_pruned, solve_round_schedule(profiles, 25, 20.0));
  }
}

}  // namespace
}  // namespace bofl::ilp
