#include "ilp/schedule_solver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bofl::ilp {
namespace {

TEST(ScheduleSolver, SingleProfileFeasible) {
  const std::vector<ConfigProfile> profiles{{0, 2.0, 0.5}};
  const Schedule s = solve_round_schedule(profiles, 10, 5.0);
  ASSERT_TRUE(s.feasible);
  ASSERT_EQ(s.assignments.size(), 1u);
  EXPECT_EQ(s.assignments[0].second, 10);
  EXPECT_DOUBLE_EQ(s.total_energy, 20.0);
  EXPECT_DOUBLE_EQ(s.total_latency, 5.0);
}

TEST(ScheduleSolver, InfeasibleWhenTooSlow) {
  const std::vector<ConfigProfile> profiles{{0, 2.0, 1.0}};
  const Schedule s = solve_round_schedule(profiles, 10, 9.0);
  EXPECT_FALSE(s.feasible);
}

TEST(ScheduleSolver, ZeroJobsIsTriviallyFeasible) {
  const std::vector<ConfigProfile> profiles{{0, 2.0, 1.0}};
  const Schedule s = solve_round_schedule(profiles, 0, 1.0);
  EXPECT_TRUE(s.feasible);
  EXPECT_TRUE(s.assignments.empty());
  EXPECT_DOUBLE_EQ(s.total_energy, 0.0);
}

TEST(ScheduleSolver, PicksCheapestWhenDeadlineIsLoose) {
  const std::vector<ConfigProfile> profiles{
      {7, 4.0, 0.2}, {8, 3.0, 0.4}, {9, 2.0, 0.8}};
  const Schedule s = solve_round_schedule(profiles, 10, 100.0);
  ASSERT_TRUE(s.feasible);
  ASSERT_EQ(s.assignments.size(), 1u);
  EXPECT_EQ(profiles[s.assignments[0].first].config_id, 9u);
  EXPECT_DOUBLE_EQ(s.total_energy, 20.0);
}

TEST(ScheduleSolver, MixesConfigsAtTightDeadline) {
  // 100 jobs, fast (0.2s, 4J) vs cheap (0.4s, 3.2J); deadline 26s forces a
  // 70/30 mix — the LP answer happens to be integral.
  const std::vector<ConfigProfile> profiles{{0, 4.0, 0.2}, {1, 3.2, 0.4}};
  const Schedule s = solve_round_schedule(profiles, 100, 26.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.total_energy, 4.0 * 70 + 3.2 * 30, 1e-9);
  EXPECT_LE(s.total_latency, 26.0 + 1e-9);
}

TEST(ScheduleSolver, DominatedProfilesNeverUsed) {
  const std::vector<ConfigProfile> profiles{
      {0, 4.0, 0.2},
      {1, 5.0, 0.3},  // dominated by 0
      {2, 3.0, 0.5}};
  const Schedule s = solve_round_schedule(profiles, 50, 18.0);
  ASSERT_TRUE(s.feasible);
  for (const auto& [index, jobs] : s.assignments) {
    EXPECT_NE(profiles[index].config_id, 1u);
  }
}

TEST(ScheduleSolver, DuplicateProfilesCollapse) {
  const std::vector<ConfigProfile> profiles{{0, 2.0, 0.5}, {1, 2.0, 0.5}};
  const Schedule s = solve_round_schedule(profiles, 10, 10.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.assignments.size(), 1u);
}

TEST(ScheduleSolver, RejectsBadInput) {
  EXPECT_THROW((void)solve_round_schedule({}, 1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)solve_round_schedule({{0, 1.0, 0.0}}, 1, 1.0),
               std::invalid_argument);  // zero latency
  EXPECT_THROW((void)solve_round_schedule({{0, 1.0, 1.0}}, -1, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)solve_round_schedule({{0, 1.0, 1.0}}, 1, -1.0),
               std::invalid_argument);
}

TEST(ScheduleSolver, ExactlyAtDeadlineBoundary) {
  const std::vector<ConfigProfile> profiles{{0, 2.0, 0.5}};
  const Schedule s = solve_round_schedule(profiles, 10, 5.0);
  EXPECT_TRUE(s.feasible);
  const Schedule t = solve_round_schedule(profiles, 10, 4.999);
  EXPECT_FALSE(t.feasible);
}

TEST(ScheduleExhaustive, MatchesKnownOptimum) {
  const std::vector<ConfigProfile> profiles{{0, 4.0, 0.2}, {1, 3.2, 0.4}};
  const Schedule s = solve_round_schedule_exhaustive(profiles, 20, 5.2);
  ASSERT_TRUE(s.feasible);
  // 20 jobs, budget 5.2s: x*0.2 + (20-x)*0.4 <= 5.2 -> x >= 14.
  EXPECT_NEAR(s.total_energy, 4.0 * 14 + 3.2 * 6, 1e-9);
}

TEST(ScheduleExhaustive, GuardsSearchSpace) {
  std::vector<ConfigProfile> many;
  for (std::size_t i = 0; i < 12; ++i) {
    many.push_back({i, 1.0 + i, 0.1 + 0.01 * i});
  }
  EXPECT_THROW((void)solve_round_schedule_exhaustive(many, 500, 100.0),
               std::invalid_argument);
}

// The central property: branch-and-bound matches exhaustive enumeration on
// random instances.
class ScheduleCrossValidation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleCrossValidation, IlpMatchesExhaustive) {
  Rng rng(GetParam() * 1009 + 7);
  const std::size_t k = 2 + rng.uniform_index(3);  // 2-4 profiles
  std::vector<ConfigProfile> profiles;
  for (std::size_t i = 0; i < k; ++i) {
    profiles.push_back({i, rng.uniform(1.0, 8.0), rng.uniform(0.1, 1.0)});
  }
  const std::int64_t jobs = rng.uniform_int(5, 30);
  // Deadline between infeasible and super-loose.
  double fastest = 1e9;
  for (const auto& p : profiles) {
    fastest = std::min(fastest, p.latency_per_job);
  }
  const double deadline =
      rng.uniform(0.8, 2.5) * fastest * static_cast<double>(jobs);

  const Schedule ilp = solve_round_schedule(profiles, jobs, deadline);
  const Schedule brute = solve_round_schedule_exhaustive(profiles, jobs,
                                                         deadline);
  ASSERT_EQ(ilp.feasible, brute.feasible) << "seed=" << GetParam();
  if (ilp.feasible) {
    // The production solver runs with a 1e-4 relative optimality gap
    // (far below measurement noise); match that tolerance here.
    EXPECT_NEAR(ilp.total_energy, brute.total_energy,
                1e-4 * brute.total_energy + 1e-9)
        << "seed=" << GetParam();
    EXPECT_LE(ilp.total_latency, deadline + 1e-9);
    std::int64_t assigned = 0;
    for (const auto& [index, n] : ilp.assignments) {
      assigned += n;
    }
    EXPECT_EQ(assigned, jobs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace bofl::ilp
