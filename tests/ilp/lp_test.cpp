#include "ilp/lp.hpp"

#include <gtest/gtest.h>

namespace bofl::ilp {
namespace {

LpProblem two_var_problem() {
  // minimize -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
  LpProblem p;
  p.objective = {-1.0, -2.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kLessEqual, 4.0});
  p.constraints.push_back({{1.0, 0.0}, Relation::kLessEqual, 2.0});
  p.constraints.push_back({{0.0, 1.0}, Relation::kLessEqual, 3.0});
  return p;
}

TEST(SimplexLp, SolvesBasicMaximization) {
  const LpSolution s = solve_lp(two_var_problem());
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -7.0, 1e-9);
}

TEST(SimplexLp, HandlesEqualityConstraints) {
  // minimize x + 2y s.t. x + y == 5, x <= 3.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 5.0});
  p.constraints.push_back({{1.0, 0.0}, Relation::kLessEqual, 3.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
}

TEST(SimplexLp, HandlesGreaterEqual) {
  // minimize 3x + 2y s.t. x + y >= 4, x >= 1.
  LpProblem p;
  p.objective = {3.0, 2.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kGreaterEqual, 4.0});
  p.constraints.push_back({{1.0, 0.0}, Relation::kGreaterEqual, 1.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
}

TEST(SimplexLp, DetectsInfeasible) {
  LpProblem p;
  p.objective = {1.0};
  p.constraints.push_back({{1.0}, Relation::kLessEqual, 1.0});
  p.constraints.push_back({{1.0}, Relation::kGreaterEqual, 2.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(SimplexLp, DetectsUnbounded) {
  LpProblem p;
  p.objective = {-1.0};  // minimize -x with x unbounded above
  p.constraints.push_back({{1.0}, Relation::kGreaterEqual, 0.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(SimplexLp, NegativeRhsNormalization) {
  // x >= 2 written as -x <= -2.
  LpProblem p;
  p.objective = {1.0};
  p.constraints.push_back({{-1.0}, Relation::kLessEqual, -2.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(SimplexLp, DegenerateConstraintsDoNotCycle) {
  // Classic degeneracy: multiple constraints active at the optimum.
  LpProblem p;
  p.objective = {-0.75, 150.0, -0.02, 6.0};
  p.constraints.push_back(
      {{0.25, -60.0, -0.04, 9.0}, Relation::kLessEqual, 0.0});
  p.constraints.push_back(
      {{0.5, -90.0, -0.02, 3.0}, Relation::kLessEqual, 0.0});
  p.constraints.push_back({{0.0, 0.0, 1.0, 0.0}, Relation::kLessEqual, 1.0});
  const LpSolution s = solve_lp(p);
  // Beale's cycling example: Bland's rule must terminate at optimum -0.05.
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(SimplexLp, RedundantEqualityRows) {
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEqual, 2.0});
  p.constraints.push_back({{2.0, 2.0}, Relation::kEqual, 4.0});  // redundant
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexLp, RejectsMalformedInput) {
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.constraints.push_back({{1.0}, Relation::kLessEqual, 1.0});
  EXPECT_THROW((void)solve_lp(p), std::invalid_argument);
  EXPECT_THROW((void)solve_lp(LpProblem{}), std::invalid_argument);
}

TEST(SimplexLp, SchedulerShapedProblem) {
  // The exact LP shape BoFL solves: job-count equality + latency budget.
  LpProblem p;
  p.objective = {4.0, 3.5, 3.2};                       // energy per job
  p.constraints.push_back({{1.0, 1.0, 1.0}, Relation::kEqual, 100.0});
  p.constraints.push_back(
      {{0.2, 0.3, 0.4}, Relation::kLessEqual, 26.0});  // deadline
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // All-jobs constraint must hold exactly.
  EXPECT_NEAR(s.x[0] + s.x[1] + s.x[2], 100.0, 1e-9);
  EXPECT_LE(0.2 * s.x[0] + 0.3 * s.x[1] + 0.4 * s.x[2], 26.0 + 1e-9);
  // LP optimum mixes the fastest and the middle config (40 jobs at 0.2s/4J,
  // 60 jobs at 0.3s/3.5J): energy 370, beating the fast/cheap mix (376).
  EXPECT_NEAR(s.objective, 4.0 * 40.0 + 3.5 * 60.0, 1e-6);
}

}  // namespace
}  // namespace bofl::ilp
