// Multi-objective Bayesian optimization engine (paper §4.3).
//
// Owns the discrete candidate set (the DVFS lattice mapped to the unit
// cube), the observation history, and two independent Gaussian processes —
// one per objective (latency, energy).  Each propose_batch() call:
//   1. re-standardizes the (optionally log-transformed) targets,
//   2. refits kernel hyperparameters by marginal likelihood,
//   3. greedily selects K candidates by exact 2-D EHVI, fantasizing each
//      pick at its posterior mean (Kriging believer) before the next pick.
// The engine is deliberately ignorant of deadlines and scheduling; the core
// controller feeds it measurements and consumes its suggestions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bo/ehvi.hpp"
#include "common/rng.hpp"
#include "gp/hyperopt.hpp"
#include "pareto/pareto.hpp"
#include "runtime/thread_pool.hpp"

namespace bofl::bo {

/// How propose_batch picks candidates.
enum class AcquisitionKind {
  kEhvi,              ///< the paper's exact 2-D EHVI with Kriging believer
  kRandomUnobserved,  ///< uniform over unobserved candidates (ablation)
  /// Marginal Thompson sampling: draw one posterior sample per candidate
  /// and objective, pick the candidate whose sampled point adds the most
  /// hypervolume.  A classic MBO baseline between random and EHVI.
  kThompsonMarginal,
};

[[nodiscard]] const char* to_string(AcquisitionKind kind);

struct MboOptions {
  gp::KernelFamily kernel_family = gp::KernelFamily::kMatern52;
  AcquisitionKind acquisition = AcquisitionKind::kEhvi;
  /// Model log-objectives (positivity-preserving, tames the right tail).
  bool log_transform = true;
  /// Upper bound on one batch (the paper caps at ~10 to bound MBO latency).
  std::size_t max_batch_size = 10;
  /// Escape hatch: run propose_batch on the reference algebra — full O(n^3)
  /// GP refactorization per fantasy pick and per-candidate kernel
  /// evaluations — instead of the default incremental path (O(n^2) rank-1
  /// Cholesky updates, cached cross-covariances, blocked candidate solves).
  /// Both paths propose from the same posterior; the incremental one only
  /// reorders floating-point work.  Used by the differential tests and the
  /// fig. 13 overhead benchmark baseline.
  bool full_refit = false;
  /// Escape hatch: score candidates with libm-exact EHVI (bit-identical to
  /// the reference ehvi_2d) instead of the default batched polynomial
  /// kernel (CompiledFront kFast, ~3e-9 relative error).  Differential
  /// tests pin the two modes against each other.
  bool exact_ehvi = false;
  /// Hyperparameter-fit cadence.  Every Nth propose_batch runs the full
  /// multi-restart marginal-likelihood search; the fits in between are
  /// warm-started from the previous optimum (a short local polish, an order
  /// of magnitude fewer LML evaluations).  The optimum drifts slowly as
  /// observations accumulate, so the polish tracks it; the periodic full
  /// search bounds any drift.  0 = always run the full search.
  std::size_t hyperopt_refresh_period = 5;
  gp::HyperoptOptions hyperopt;
};

/// One completed measurement of a candidate.
struct MboObservation {
  std::size_t candidate_index = 0;
  double f1 = 0.0;  ///< first objective, raw units (BoFL: energy per job, J)
  double f2 = 0.0;  ///< second objective, raw units (BoFL: latency per job, s)
};

class MboEngine {
 public:
  /// `candidates` are the feature vectors of the whole discrete design
  /// space, normalized to comparable scales (BoFL uses [0,1]^3).
  MboEngine(std::vector<linalg::Vector> candidates, MboOptions options,
            std::uint64_t seed);

  /// Record a measurement.  A candidate may be re-observed; all
  /// observations are kept (the GP averages through its noise term).
  void add_observation(const MboObservation& obs);

  /// Fix the reference point (raw objective units).  If never called, the
  /// component-wise worst observation is used (the paper's phase-1 rule).
  void set_reference(const pareto::Point2& ref);
  [[nodiscard]] pareto::Point2 reference() const;

  /// Greedy EHVI batch of up to `batch_size` *distinct unobserved*
  /// candidates (also capped by options.max_batch_size and by the number of
  /// unobserved candidates left).  Requires >= 3 observations.
  [[nodiscard]] std::vector<std::size_t> propose_batch(std::size_t batch_size);

  /// Score candidates on `pool` (non-owning; nullptr = serial, the
  /// default).  Per-candidate acquisition values are independent — RNG
  /// draws (Thompson) are pre-split per candidate and the greedy argmax
  /// stays serial — so batches are bit-identical for any pool size.
  void set_parallel_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  /// Pareto front of the raw observations.
  [[nodiscard]] std::vector<pareto::Point2> observed_front() const;

  /// Hypervolume of the observed front w.r.t. reference(), raw units.
  [[nodiscard]] double observed_hypervolume() const;

  /// EHVI of the first (best) pick in the most recent batch, in the
  /// engine's internal standardized space.  Diagnostic / stopping signal.
  [[nodiscard]] std::optional<double> last_best_ehvi() const {
    return last_best_ehvi_;
  }

  [[nodiscard]] std::size_t num_candidates() const { return candidates_.size(); }
  [[nodiscard]] std::size_t num_observations() const {
    return observations_.size();
  }
  /// Number of distinct candidates observed at least once (O(1): maintained
  /// by add_observation, not recounted).
  [[nodiscard]] std::size_t num_observed_candidates() const {
    return num_observed_candidates_;
  }
  [[nodiscard]] bool is_observed(std::size_t candidate_index) const;
  [[nodiscard]] const std::vector<linalg::Vector>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] const std::vector<MboObservation>& observations() const {
    return observations_;
  }

  /// The attached scoring pool (non-owning; nullptr = serial).  Lets a
  /// consumer rebuild an engine (priors demotion) and re-attach the pool.
  [[nodiscard]] runtime::ThreadPool* parallel_pool() const { return pool_; }

  /// Last hyperparameter-fit optima per objective (unset before any fit, or
  /// after construction without seeding).  The priors KnowledgeStore
  /// distills these from converged controllers for cross-client reuse.
  [[nodiscard]] const std::optional<gp::HyperoptResult>& warm_fit1() const {
    return warm_fit1_;
  }
  [[nodiscard]] const std::optional<gp::HyperoptResult>& warm_fit2() const {
    return warm_fit2_;
  }

  /// Seed the warm-start fit state from a cluster prior so the first
  /// propose_batch runs the cheap local polish instead of the multi-restart
  /// search.  Validates both fits against the engine's kernel family and
  /// input dimension; on mismatch nothing changes and false is returned.
  bool seed_warm_start(const gp::HyperoptResult& fit1,
                       const gp::HyperoptResult& fit2);

 private:
  struct Standardizer {
    double mean = 0.0;
    double scale = 1.0;
    [[nodiscard]] double forward(double raw_transformed) const {
      return (raw_transformed - mean) / scale;
    }
  };

  [[nodiscard]] double transform(double raw) const;

  std::vector<linalg::Vector> candidates_;
  MboOptions options_;
  runtime::ThreadPool* pool_ = nullptr;
  Rng rng_;
  std::vector<MboObservation> observations_;
  std::vector<bool> observed_;
  std::size_t num_observed_candidates_ = 0;  ///< distinct candidates observed
  std::optional<pareto::Point2> reference_;
  std::optional<double> last_best_ehvi_;
  /// Warm-start state for the per-objective hyperparameter fits: the last
  /// optima and how many fits have run (drives hyperopt_refresh_period).
  std::optional<gp::HyperoptResult> warm_fit1_;
  std::optional<gp::HyperoptResult> warm_fit2_;
  std::size_t hyperopt_fits_ = 0;
};

}  // namespace bofl::bo
