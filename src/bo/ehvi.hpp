// Exact expected hypervolume improvement (EHVI) in two dimensions.
//
// Minimization convention throughout.  For a candidate with independent
// Gaussian objective marginals Y1 ~ N(mu1, s1^2), Y2 ~ N(mu2, s2^2), the
// improvement region decomposes into vertical strips delimited by the f1
// coordinates of the current Pareto front; within strip k the dominated
// rectangle factorizes into a width term (depends only on Y1) and a height
// term (depends only on Y2), so by independence
//     EHVI = sum_k E[W_k(Y1)] * E[H_k(Y2)],
// each expectation a one-dimensional truncated-Gaussian moment expressed
// through psi_ei (common/stats).  O(n) per candidate after an O(n log n)
// front sort; the paper cites the same complexity class [76].
//
// Two evaluation surfaces:
//   * ehvi_2d — the reference: re-cleans (filter, non-dominate, sort) the
//     front on every call.  Kept as the differential-testing baseline.
//   * CompiledFront — the hot path: cleans the front and precomputes the
//     strip boundaries ONCE (per Kriging-believer pick), then scores any
//     number of candidates against the frozen geometry.  In kExact mode
//     each score is bit-identical to ehvi_2d; kFast mode swaps libm's
//     pdf/cdf pair for the batched polynomial kernel (common/fast_normal),
//     trading ~3e-9 relative accuracy for ~6x throughput.
#pragma once

#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

namespace bofl::bo {

/// Bivariate independent Gaussian belief over a candidate's objectives.
struct GaussianPair {
  double mu1 = 0.0;
  double sigma1 = 0.0;
  double mu2 = 0.0;
  double sigma2 = 0.0;
};

/// Exact EHVI of `belief` against `front` (need not be pre-filtered or
/// sorted; points outside the reference box are ignored) with reference
/// point `ref`.  Returns a non-negative value; degenerates to the exact
/// deterministic HVI when both sigmas are zero.
[[nodiscard]] double ehvi_2d(const GaussianPair& belief,
                             const std::vector<pareto::Point2>& front,
                             const pareto::Point2& ref);

/// How CompiledFront evaluates the truncated-Gaussian moments.
enum class EhviMode {
  /// Batched polynomial pdf/cdf (common/fast_normal): ~6x faster, relative
  /// error ~3e-9 — far below the posterior's own uncertainty.  Candidates
  /// with a zero sigma fall back to the exact scalar path, so degenerate
  /// beliefs still match ehvi_2d bit-for-bit.
  kFast,
  /// libm erfc/exp throughout: every score is bit-identical to ehvi_2d.
  kExact,
};

/// A Pareto front compiled for repeated EHVI / HVI scoring: the prune,
/// non-dominated filter, sort and strip-boundary extraction run once in
/// the constructor instead of once per candidate.  Immutable after
/// construction; all scoring methods are const and allocate only local
/// scratch, so one CompiledFront may be scored from many threads at once.
class CompiledFront {
 public:
  /// `front` need not be filtered or sorted (same contract as ehvi_2d).
  CompiledFront(const std::vector<pareto::Point2>& front,
                const pareto::Point2& ref, EhviMode mode = EhviMode::kFast);

  /// EHVI of one belief.  kExact: bit-identical to ehvi_2d on the
  /// constructor's inputs.  Equals ehvi_block on a single element.
  [[nodiscard]] double ehvi(const GaussianPair& belief) const;

  /// Score `count` beliefs into `out` (block entry point for the engine's
  /// candidate sweep).  Elementwise identical to calling ehvi() per belief
  /// — blocking never changes bits.
  void ehvi_block(const GaussianPair* beliefs, std::size_t count,
                  double* out) const;

  /// Deterministic hypervolume improvement of adding `y`, bit-identical to
  /// pareto::hypervolume_improvement(front, {y}, ref) on the constructor's
  /// inputs, but O(n) with no allocation (the MC estimator and Thompson
  /// scoring call this per sample).  Mode-independent (no special
  /// functions involved).
  [[nodiscard]] double hvi(const pareto::Point2& y) const;

  /// The cleaned front: non-dominated, ascending f1, inside the ref box.
  [[nodiscard]] const std::vector<pareto::Point2>& front() const {
    return sorted_;
  }
  [[nodiscard]] const pareto::Point2& reference() const { return ref_; }
  [[nodiscard]] EhviMode mode() const { return mode_; }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

 private:
  [[nodiscard]] double ehvi_exact(const GaussianPair& belief) const;

  std::vector<pareto::Point2> sorted_;
  pareto::Point2 ref_;
  EhviMode mode_;
  double base_hv_ = 0.0;  ///< hypervolume_2d(sorted_, ref_), for hvi()
  /// Strip geometry, hoisted out of the per-candidate loop (n = |sorted_|):
  /// bound1_[i] = f1 of the i-th strip's right edge (a_1..a_n, then r1);
  /// ceiling2_[k] = the k-th strip's f2 ceiling (r2, then b_1..b_n).
  std::vector<double> bound1_;
  std::vector<double> ceiling2_;
};

/// Monte-Carlo EHVI estimator (used by tests and the micro-benchmarks to
/// validate ehvi_2d).  `normal_samples` holds pairs of standard-normal
/// deviates consumed as (z1, z2).  Internally scores every sample against
/// one CompiledFront (bit-identical to the historical per-sample
/// hypervolume_improvement formulation, but O(n) per sample).
[[nodiscard]] double ehvi_2d_monte_carlo(
    const GaussianPair& belief, const std::vector<pareto::Point2>& front,
    const pareto::Point2& ref,
    const std::vector<std::pair<double, double>>& normal_samples);

}  // namespace bofl::bo
