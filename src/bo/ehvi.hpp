// Exact expected hypervolume improvement (EHVI) in two dimensions.
//
// Minimization convention throughout.  For a candidate with independent
// Gaussian objective marginals Y1 ~ N(mu1, s1^2), Y2 ~ N(mu2, s2^2), the
// improvement region decomposes into vertical strips delimited by the f1
// coordinates of the current Pareto front; within strip k the dominated
// rectangle factorizes into a width term (depends only on Y1) and a height
// term (depends only on Y2), so by independence
//     EHVI = sum_k E[W_k(Y1)] * E[H_k(Y2)],
// each expectation a one-dimensional truncated-Gaussian moment expressed
// through psi_ei (common/stats).  O(n) per candidate after an O(n log n)
// front sort; the paper cites the same complexity class [76].
#pragma once

#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

namespace bofl::bo {

/// Bivariate independent Gaussian belief over a candidate's objectives.
struct GaussianPair {
  double mu1 = 0.0;
  double sigma1 = 0.0;
  double mu2 = 0.0;
  double sigma2 = 0.0;
};

/// Exact EHVI of `belief` against `front` (need not be pre-filtered or
/// sorted; points outside the reference box are ignored) with reference
/// point `ref`.  Returns a non-negative value; degenerates to the exact
/// deterministic HVI when both sigmas are zero.
[[nodiscard]] double ehvi_2d(const GaussianPair& belief,
                             const std::vector<pareto::Point2>& front,
                             const pareto::Point2& ref);

/// Monte-Carlo EHVI estimator (used by tests and the micro-benchmarks to
/// validate ehvi_2d).  `normal_samples` holds pairs of standard-normal
/// deviates consumed as (z1, z2).
[[nodiscard]] double ehvi_2d_monte_carlo(
    const GaussianPair& belief, const std::vector<pareto::Point2>& front,
    const pareto::Point2& ref,
    const std::vector<std::pair<double, double>>& normal_samples);

}  // namespace bofl::bo
