#include "bo/mbo_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "pareto/hypervolume.hpp"
#include "telemetry/scoped_timer.hpp"

namespace bofl::bo {

const char* to_string(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::kEhvi:
      return "ehvi";
    case AcquisitionKind::kRandomUnobserved:
      return "random";
    case AcquisitionKind::kThompsonMarginal:
      return "thompson";
  }
  return "unknown";
}

MboEngine::MboEngine(std::vector<linalg::Vector> candidates,
                     MboOptions options, std::uint64_t seed)
    : candidates_(std::move(candidates)),
      options_(options),
      rng_(seed),
      observed_(candidates_.size(), false) {
  BOFL_REQUIRE(!candidates_.empty(), "MboEngine needs a candidate set");
  const std::size_t dim = candidates_.front().size();
  for (const auto& c : candidates_) {
    BOFL_REQUIRE(c.size() == dim, "all candidates must share one dimension");
  }
  BOFL_REQUIRE(options_.max_batch_size >= 1, "max batch size must be >= 1");
}

double MboEngine::transform(double raw) const {
  if (options_.log_transform) {
    BOFL_REQUIRE(raw > 0.0, "log-transformed objectives must be positive");
    return std::log(raw);
  }
  return raw;
}

void MboEngine::add_observation(const MboObservation& obs) {
  BOFL_REQUIRE(obs.candidate_index < candidates_.size(),
               "candidate index out of range");
  BOFL_REQUIRE(std::isfinite(obs.f1) && std::isfinite(obs.f2),
               "objective values must be finite");
  if (options_.log_transform) {
    BOFL_REQUIRE(obs.f1 > 0.0 && obs.f2 > 0.0,
                 "objectives must be positive under the log transform");
  }
  observations_.push_back(obs);
  if (!observed_[obs.candidate_index]) {
    observed_[obs.candidate_index] = true;
    ++num_observed_candidates_;
  }
}

void MboEngine::set_reference(const pareto::Point2& ref) { reference_ = ref; }

pareto::Point2 MboEngine::reference() const {
  if (reference_) {
    return *reference_;
  }
  BOFL_REQUIRE(!observations_.empty(),
               "reference point needs observations or set_reference()");
  pareto::Point2 worst{-std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity()};
  for (const MboObservation& o : observations_) {
    worst.f1 = std::max(worst.f1, o.f1);
    worst.f2 = std::max(worst.f2, o.f2);
  }
  return worst;
}

bool MboEngine::is_observed(std::size_t candidate_index) const {
  BOFL_REQUIRE(candidate_index < candidates_.size(),
               "candidate index out of range");
  return observed_[candidate_index];
}

bool MboEngine::seed_warm_start(const gp::HyperoptResult& fit1,
                                const gp::HyperoptResult& fit2) {
  BOFL_REQUIRE(!candidates_.empty(), "engine has no candidates");
  const std::size_t dim = candidates_.front().size();
  if (!gp::warm_start_compatible(fit1, options_.kernel_family, dim) ||
      !gp::warm_start_compatible(fit2, options_.kernel_family, dim)) {
    return false;
  }
  warm_fit1_ = fit1;
  warm_fit2_ = fit2;
  // Count the seed as a completed fit so the first propose_batch takes the
  // warm-polish path instead of an immediate full search (fits % period ==
  // 0 with zero fits would otherwise force the search and discard the seed).
  hyperopt_fits_ = 1;
  return true;
}

std::vector<pareto::Point2> MboEngine::observed_front() const {
  std::vector<pareto::Point2> points;
  points.reserve(observations_.size());
  for (const MboObservation& o : observations_) {
    points.push_back({o.f1, o.f2});
  }
  return pareto::pareto_front(std::move(points));
}

double MboEngine::observed_hypervolume() const {
  return pareto::hypervolume_2d(observed_front(), reference());
}

std::vector<std::size_t> MboEngine::propose_batch(std::size_t batch_size) {
  BOFL_REQUIRE(observations_.size() >= 3,
               "propose_batch needs at least 3 observations");
  batch_size = std::min(batch_size, options_.max_batch_size);

  telemetry::Registry* reg = telemetry::global_registry();
  telemetry::ScopedTimer propose_timer(
      reg != nullptr ? &reg->histogram("mbo.propose_seconds") : nullptr);
  if (reg != nullptr) {
    reg->counter("mbo.propose_calls").add(1);
  }

  if (options_.acquisition == AcquisitionKind::kRandomUnobserved) {
    // Ablation strategy: uniform over the unobserved candidates, no GP.
    std::vector<std::size_t> unobserved;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      if (!observed_[c]) {
        unobserved.push_back(c);
      }
    }
    rng_.shuffle(unobserved);
    if (unobserved.size() > batch_size) {
      unobserved.resize(batch_size);
    }
    last_best_ehvi_.reset();
    if (reg != nullptr) {
      reg->histogram("mbo.batch_size",
                     telemetry::exponential_buckets(1.0, 2.0, 8))
          .observe(static_cast<double>(unobserved.size()));
    }
    return unobserved;
  }

  // --- 1. Standardize targets in transformed space. -----------------------
  std::vector<double> t1;
  std::vector<double> t2;
  std::vector<linalg::Vector> inputs;
  t1.reserve(observations_.size());
  t2.reserve(observations_.size());
  inputs.reserve(observations_.size());
  for (const MboObservation& o : observations_) {
    inputs.push_back(candidates_[o.candidate_index]);
    t1.push_back(transform(o.f1));
    t2.push_back(transform(o.f2));
  }
  auto make_standardizer = [](const std::vector<double>& v) {
    Standardizer s;
    s.mean = mean_of(v);
    const double sd = stddev_of(v);
    s.scale = sd > 1e-12 ? sd : 1.0;
    return s;
  };
  const Standardizer s1 = make_standardizer(t1);
  const Standardizer s2 = make_standardizer(t2);
  std::vector<double> z1(t1.size());
  std::vector<double> z2(t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    z1[i] = s1.forward(t1[i]);
    z2[i] = s2.forward(t2[i]);
  }

  // --- 2. Fit hyperparameters and condition the two GPs. ------------------
  telemetry::ScopedTimer fit_timer(
      reg != nullptr ? &reg->histogram("mbo.gp_fit_seconds") : nullptr);
  const bool full_search = options_.hyperopt_refresh_period == 0 ||
                           hyperopt_fits_ % options_.hyperopt_refresh_period ==
                               0 ||
                           !warm_fit1_.has_value() || !warm_fit2_.has_value();
  ++hyperopt_fits_;
  const gp::HyperoptResult h1 = gp::fit_hyperparameters(
      options_.kernel_family, inputs, z1, rng_, options_.hyperopt,
      full_search ? nullptr : &*warm_fit1_);
  const gp::HyperoptResult h2 = gp::fit_hyperparameters(
      options_.kernel_family, inputs, z2, rng_, options_.hyperopt,
      full_search ? nullptr : &*warm_fit2_);
  warm_fit1_ = h1;
  warm_fit2_ = h2;
  gp::GaussianProcess gp1(h1.kernel, h1.noise_variance);
  gp::GaussianProcess gp2(h2.kernel, h2.noise_variance);
  gp1.set_full_refit(options_.full_refit);
  gp2.set_full_refit(options_.full_refit);
  gp1.set_parallel_pool(pool_);
  gp2.set_parallel_pool(pool_);
  gp1.condition(inputs, z1);
  gp2.condition(inputs, z2);
  fit_timer.stop();

  // --- 3. Working front and reference in standardized space. --------------
  const pareto::Point2 raw_ref = reference();
  const pareto::Point2 ref{s1.forward(transform(raw_ref.f1)),
                           s2.forward(transform(raw_ref.f2))};
  std::vector<pareto::Point2> front;
  front.reserve(observations_.size());
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    front.push_back({z1[i], z2[i]});
  }
  front = pareto::pareto_front(std::move(front));

  // --- 4. Sequential-greedy (Kriging believer) selection. -----------------
  const bool thompson =
      options_.acquisition == AcquisitionKind::kThompsonMarginal;
  const EhviMode ehvi_mode =
      options_.exact_ehvi ? EhviMode::kExact : EhviMode::kFast;
  std::vector<bool> taken = observed_;
  std::vector<std::size_t> batch;
  last_best_ehvi_.reset();
  const std::size_t num_candidates = candidates_.size();
  std::vector<double> values(num_candidates);
  std::vector<double> uncertainties(num_candidates);
  std::vector<GaussianPair> beliefs(num_candidates);
  std::vector<double> thompson_draws;  // two pre-split normals per candidate
  // Cached cross-covariance rows, one per scorable candidate and GP:
  // kstar1[c][i] = k1(candidates_[c], X_i) over the (growing) training set.
  // Built once on the first pick, then extended by a single kernel
  // evaluation per fantasized observation — the per-pick cost drops from
  // O(m * n) kernel evaluations to O(m).
  std::vector<linalg::Vector> kstar1;
  std::vector<linalg::Vector> kstar2;
  // Candidates still scorable this pick; each scoring pass evaluates the
  // acquisition (EHVI or sampled HVI) once per such candidate.
  std::size_t scorable =
      num_candidates - static_cast<std::size_t>(std::count(
                           taken.begin(), taken.end(), true));
  std::uint64_t acquisition_evaluations = 0;
  for (std::size_t pick = 0; pick < batch_size; ++pick) {
    if (thompson) {
      // All shared-RNG draws happen here, serially, in candidate order —
      // the exact sequence of the serial scoring loop — so pool size never
      // changes which candidates get picked.
      thompson_draws.assign(2 * num_candidates, 0.0);
      for (std::size_t c = 0; c < num_candidates; ++c) {
        if (!taken[c]) {
          thompson_draws[2 * c] = rng_.normal();
          thompson_draws[2 * c + 1] = rng_.normal();
        }
      }
    }
    // Compile the frozen working front once per pick: the prune/sort/strip
    // preprocessing moves out of the per-candidate loop, and every scoring
    // path below — EHVI, Thompson HVI, serial or blocked — reads the same
    // compiled geometry, so all paths agree bit-for-bit.
    const CompiledFront compiled(front, ref, ehvi_mode);
    // Per-candidate acquisition against the frozen working front.
    auto score_candidate = [&](std::size_t c, const gp::Prediction& p1,
                               const gp::Prediction& p2) {
      const GaussianPair belief{p1.mean, p1.stddev(), p2.mean, p2.stddev()};
      double value = 0.0;
      if (thompson) {
        // One marginal posterior draw per objective; the acquisition value
        // is the deterministic HVI of the sampled point.
        const pareto::Point2 sample{
            belief.mu1 + belief.sigma1 * thompson_draws[2 * c],
            belief.mu2 + belief.sigma2 * thompson_draws[2 * c + 1]};
        value = compiled.hvi(sample);
      } else {
        value = compiled.ehvi(belief);
      }
      beliefs[c] = belief;
      values[c] = value;
      uncertainties[c] = p1.variance + p2.variance;
    };
    if (options_.full_refit) {
      // Reference path: per-candidate kernel evaluations and solves, just
      // as embarrassingly parallel as before.
      runtime::parallel_for_each(pool_, num_candidates, [&](std::size_t c) {
        if (taken[c]) {
          return;
        }
        score_candidate(c, gp1.predict(candidates_[c]),
                        gp2.predict(candidates_[c]));
      });
    } else {
      // Incremental path: extend the cached cross-covariance rows, then
      // score candidates in fixed-size blocks, each block's posterior
      // variances coming from one multi-RHS triangular solve.  The block
      // partition depends only on `taken`, and every write lands in a
      // per-candidate slot, so batches stay bit-identical for any pool
      // size (including no pool).
      if (kstar1.empty()) {
        kstar1.resize(num_candidates);
        kstar2.resize(num_candidates);
        const std::size_t n0 = gp1.num_observations();
        const std::vector<linalg::Vector>& train = gp1.inputs();
        runtime::parallel_for_each(pool_, num_candidates, [&](std::size_t c) {
          if (taken[c]) {
            return;
          }
          kstar1[c].reserve(n0 + batch_size);
          kstar2[c].reserve(n0 + batch_size);
          for (std::size_t i = 0; i < n0; ++i) {
            kstar1[c].push_back(gp1.kernel()(candidates_[c], train[i]));
            kstar2[c].push_back(gp2.kernel()(candidates_[c], train[i]));
          }
        });
      } else {
        // One new training point since last pick: append one entry per row.
        const linalg::Vector& x_new = gp1.inputs().back();
        runtime::parallel_for_each(pool_, num_candidates, [&](std::size_t c) {
          if (taken[c]) {
            return;
          }
          kstar1[c].push_back(gp1.kernel()(candidates_[c], x_new));
          kstar2[c].push_back(gp2.kernel()(candidates_[c], x_new));
        });
      }
      std::vector<std::size_t> block_indices;
      block_indices.reserve(scorable);
      for (std::size_t c = 0; c < num_candidates; ++c) {
        if (!taken[c]) {
          block_indices.push_back(c);
        }
      }
      constexpr std::size_t kBlock = 128;
      const std::size_t num_blocks =
          (block_indices.size() + kBlock - 1) / kBlock;
      runtime::parallel_for_each(pool_, num_blocks, [&](std::size_t blk) {
        const std::size_t begin = blk * kBlock;
        const std::size_t count =
            std::min(kBlock, block_indices.size() - begin);
        std::vector<gp::Prediction> p1(count);
        std::vector<gp::Prediction> p2(count);
        gp1.predict_block(kstar1, block_indices.data() + begin, count,
                          p1.data());
        gp2.predict_block(kstar2, block_indices.data() + begin, count,
                          p2.data());
        if (thompson) {
          for (std::size_t j = 0; j < count; ++j) {
            score_candidate(block_indices[begin + j], p1[j], p2[j]);
          }
        } else {
          // Whole-block EHVI: one batched pdf/cdf pass scores the block.
          // ehvi_block is elementwise — identical bits to per-candidate
          // compiled.ehvi() calls, so serial and blocked paths agree.
          std::vector<GaussianPair> blk_beliefs(count);
          std::vector<double> blk_values(count);
          for (std::size_t j = 0; j < count; ++j) {
            blk_beliefs[j] = {p1[j].mean, p1[j].stddev(), p2[j].mean,
                              p2[j].stddev()};
          }
          compiled.ehvi_block(blk_beliefs.data(), count, blk_values.data());
          for (std::size_t j = 0; j < count; ++j) {
            const std::size_t c = block_indices[begin + j];
            beliefs[c] = blk_beliefs[j];
            values[c] = blk_values[j];
            uncertainties[c] = p1[j].variance + p2[j].variance;
          }
        }
      });
    }
    // Serial argmax in candidate order reproduces the serial loop exactly.
    double best_value = -1.0;
    double best_uncertainty = -1.0;
    std::size_t best_index = num_candidates;
    GaussianPair best_belief;
    for (std::size_t c = 0; c < num_candidates; ++c) {
      if (taken[c]) {
        continue;
      }
      // Primary criterion: EHVI.  Tie-break (all-zero EHVI happens once the
      // front looks converged): keep exploring where the model is least sure.
      const bool better =
          values[c] > best_value ||
          (values[c] == best_value && uncertainties[c] > best_uncertainty);
      if (better) {
        best_value = values[c];
        best_uncertainty = uncertainties[c];
        best_index = c;
        best_belief = beliefs[c];
      }
    }
    acquisition_evaluations += scorable;
    if (best_index == candidates_.size()) {
      break;  // every candidate observed or taken
    }
    --scorable;
    if (pick == 0) {
      last_best_ehvi_ = best_value;
    }
    batch.push_back(best_index);
    taken[best_index] = true;
    // Fantasize the observation at the posterior mean and re-condition.
    gp1.add_observation(candidates_[best_index], best_belief.mu1);
    gp2.add_observation(candidates_[best_index], best_belief.mu2);
    std::vector<pareto::Point2> updated = std::move(front);
    updated.push_back({best_belief.mu1, best_belief.mu2});
    front = pareto::pareto_front(std::move(updated));
  }
  if (reg != nullptr) {
    reg->counter(thompson ? "mbo.thompson_evaluations"
                          : "mbo.ehvi_evaluations")
        .add(acquisition_evaluations);
    reg->histogram("mbo.batch_size",
                   telemetry::exponential_buckets(1.0, 2.0, 8))
        .observe(static_cast<double>(batch.size()));
  }
  return batch;
}

}  // namespace bofl::bo
