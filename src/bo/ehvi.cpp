#include "bo/ehvi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/fast_normal.hpp"
#include "common/stats.hpp"
#include "linalg/simd/kernels.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::bo {

namespace {

/// P(Y <= t) for Y ~ N(mu, sigma^2), handling sigma == 0.
double gaussian_cdf(double t, double mu, double sigma) {
  if (sigma == 0.0) {
    return mu <= t ? 1.0 : 0.0;
  }
  return normal_cdf((t - mu) / sigma);
}

/// E[(v - max(Y, u))^+] for Y ~ N(mu, sigma^2) and u <= v.
/// u may be -infinity (plain E[(v - Y)^+]).
double expected_clamped_width(double u, double v, double mu, double sigma) {
  if (v <= u) {
    return 0.0;
  }
  if (std::isinf(u)) {
    return psi_ei(v, v, mu, sigma);
  }
  // (v-u) * P(Y <= u)  +  E[(v - Y) 1{u < Y <= v}]
  return (v - u) * gaussian_cdf(u, mu, sigma) +
         (psi_ei(v, v, mu, sigma) - psi_ei(v, u, mu, sigma));
}

/// Filter to the reference box and reduce to the sorted Pareto front —
/// the exact cleaning sequence ehvi_2d has always used.
std::vector<pareto::Point2> clean_front(const std::vector<pareto::Point2>& front,
                                        const pareto::Point2& ref) {
  std::vector<pareto::Point2> sorted;
  sorted.reserve(front.size());
  for (const pareto::Point2& p : front) {
    if (p.f1 < ref.f1 && p.f2 < ref.f2) {
      sorted.push_back(p);
    }
  }
  return pareto::pareto_front(std::move(sorted));
}

}  // namespace

double ehvi_2d(const GaussianPair& belief,
               const std::vector<pareto::Point2>& front,
               const pareto::Point2& ref) {
  BOFL_REQUIRE(belief.sigma1 >= 0.0 && belief.sigma2 >= 0.0,
               "EHVI needs non-negative standard deviations");
  // Clean front: non-dominated, sorted ascending in f1 (descending f2),
  // restricted to points that dominate some part of the reference box.
  const std::vector<pareto::Point2> sorted = clean_front(front, ref);

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double total = 0.0;
  // Strip k = 0..n: z1 in [u_k, v_k), ceiling c_k on z2.
  //   k = 0:       u = -inf,        v = a_1 (or r1 if empty front), c = r2
  //   k = 1..n:    u = a_k,         v = a_{k+1} (or r1),            c = b_k
  const std::size_t n = sorted.size();
  for (std::size_t k = 0; k <= n; ++k) {
    const double u = (k == 0) ? kNegInf : sorted[k - 1].f1;
    const double v = (k == n) ? ref.f1 : sorted[k].f1;
    const double ceiling = (k == 0) ? ref.f2 : sorted[k - 1].f2;
    const double width =
        expected_clamped_width(u, v, belief.mu1, belief.sigma1);
    if (width <= 0.0) {
      continue;
    }
    const double height =
        psi_ei(ceiling, ceiling, belief.mu2, belief.sigma2);
    total += width * height;
  }
  return std::max(total, 0.0);
}

CompiledFront::CompiledFront(const std::vector<pareto::Point2>& front,
                             const pareto::Point2& ref, EhviMode mode)
    : sorted_(clean_front(front, ref)), ref_(ref), mode_(mode) {
  // Same cleaning as hypervolume_2d's internal reduction, so this sum is
  // bit-identical to hypervolume_2d(front, ref) on the raw input.
  base_hv_ = pareto::hypervolume_2d(sorted_, ref_);
  const std::size_t n = sorted_.size();
  bound1_.reserve(n + 1);
  ceiling2_.reserve(n + 1);
  ceiling2_.push_back(ref_.f2);
  for (std::size_t i = 0; i < n; ++i) {
    bound1_.push_back(sorted_[i].f1);
    ceiling2_.push_back(sorted_[i].f2);
  }
  bound1_.push_back(ref_.f1);
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    reg->counter("ehvi.front_compilations").add(1);
  }
}

double CompiledFront::ehvi_exact(const GaussianPair& belief) const {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double total = 0.0;
  const std::size_t n = sorted_.size();
  for (std::size_t k = 0; k <= n; ++k) {
    const double u = (k == 0) ? kNegInf : bound1_[k - 1];
    const double v = bound1_[k];
    const double width =
        expected_clamped_width(u, v, belief.mu1, belief.sigma1);
    if (width <= 0.0) {
      continue;
    }
    const double height =
        psi_ei(ceiling2_[k], ceiling2_[k], belief.mu2, belief.sigma2);
    total += width * height;
  }
  return std::max(total, 0.0);
}

double CompiledFront::ehvi(const GaussianPair& belief) const {
  double out = 0.0;
  ehvi_block(&belief, 1, &out);
  return out;
}

void CompiledFront::ehvi_block(const GaussianPair* beliefs, std::size_t count,
                               double* out) const {
  for (std::size_t i = 0; i < count; ++i) {
    BOFL_REQUIRE(beliefs[i].sigma1 >= 0.0 && beliefs[i].sigma2 >= 0.0,
                 "EHVI needs non-negative standard deviations");
  }
  const std::size_t m = sorted_.size() + 1;  // strips / boundaries per axis
  if (mode_ == EhviMode::kExact) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = ehvi_exact(beliefs[i]);
    }
    return;
  }
  // Fast path: gather every boundary's standardized coordinate, run one
  // batched pdf/cdf pass, then combine per candidate.  A candidate's slice
  // of the arrays depends only on its own belief, so block size never
  // changes any output bit.
  std::vector<double> scratch(6 * m * count);
  double* t = scratch.data();
  double* pdf = t + 2 * m * count;
  double* cdf = pdf + 2 * m * count;
  for (std::size_t i = 0; i < count; ++i) {
    const GaussianPair& b = beliefs[i];
    double* t1 = t + 2 * m * i;
    double* t2 = t1 + m;
    if (b.sigma1 == 0.0 || b.sigma2 == 0.0) {
      // Degenerate marginal: scored on the exact scalar path below.
      std::fill(t1, t1 + 2 * m, 0.0);
      continue;
    }
    for (std::size_t k = 0; k < m; ++k) {
      t1[k] = (bound1_[k] - b.mu1) / b.sigma1;
      t2[k] = (ceiling2_[k] - b.mu2) / b.sigma2;
    }
  }
  normal_pdf_cdf_batch(t, 2 * m * count, pdf, cdf);
  // Strip widths/heights are elementwise in k (psi_ei(v, v, mu, sigma) =
  // sigma * pdf(t_v) + (v - mu) * cdf(t_v)), so they go through the
  // dispatched vector kernel; the data-dependent width > 0 guard and the
  // serial k-ordered accumulation stay here, keeping totals bit-identical
  // to the historical combine loop.
  std::vector<double> strips(2 * m);
  double* width = strips.data();
  double* height = width + m;
  for (std::size_t i = 0; i < count; ++i) {
    const GaussianPair& b = beliefs[i];
    if (b.sigma1 == 0.0 || b.sigma2 == 0.0) {
      out[i] = ehvi_exact(b);
      continue;
    }
    const double* pdf1 = pdf + 2 * m * i;
    const double* cdf1 = cdf + 2 * m * i;
    linalg::simd::ehvi_strips(bound1_.data(), ceiling2_.data(), m, b.mu1,
                              b.sigma1, b.mu2, b.sigma2, pdf1, cdf1, pdf1 + m,
                              cdf1 + m, width, height);
    double total = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      if (width[k] > 0.0) {
        total += width[k] * height[k];
      }
    }
    out[i] = std::max(total, 0.0);
  }
}

double CompiledFront::hvi(const pareto::Point2& y) const {
  // Mirrors hypervolume_improvement(front, {y}, ref) term for term: the
  // merged Pareto front's left-to-right area sweep minus base_hv_, clamped
  // at zero.  Points y cannot improve return the same exact 0.0.
  if (!(y.f1 < ref_.f1 && y.f2 < ref_.f2)) {
    return 0.0;
  }
  const std::size_t n = sorted_.size();
  // First front point with f1 >= y.f1: insertion point (front f1s are
  // strictly increasing).
  std::size_t lo = 0;
  while (lo < n && sorted_[lo].f1 < y.f1) {
    ++lo;
  }
  if (lo > 0 && sorted_[lo - 1].f2 <= y.f2) {
    return 0.0;  // dominated by the left neighbour
  }
  // Points y dominates form the contiguous run [lo, hi) (f1 >= y.f1 and,
  // since front f2s descend, f2 >= y.f2 is a prefix of that suffix).
  std::size_t hi = lo;
  while (hi < n && sorted_[hi].f2 >= y.f2) {
    if (sorted_[hi] == y) {
      return 0.0;  // duplicate: the merged front is unchanged
    }
    ++hi;
  }
  if (hi < n && sorted_[hi].f1 == y.f1) {
    return 0.0;  // same f1, strictly better f2 dominates y
  }
  // Merged front: sorted_[0..lo), y, sorted_[hi..n) — swept left to right
  // exactly like hypervolume_2d.
  double area = 0.0;
  for (std::size_t i = 0; i < lo; ++i) {
    const double right = (i + 1 < lo) ? sorted_[i + 1].f1 : y.f1;
    area += (right - sorted_[i].f1) * (ref_.f2 - sorted_[i].f2);
  }
  {
    const double right = (hi < n) ? sorted_[hi].f1 : ref_.f1;
    area += (right - y.f1) * (ref_.f2 - y.f2);
  }
  for (std::size_t i = hi; i < n; ++i) {
    const double right = (i + 1 < n) ? sorted_[i + 1].f1 : ref_.f1;
    area += (right - sorted_[i].f1) * (ref_.f2 - sorted_[i].f2);
  }
  return std::max(area - base_hv_, 0.0);
}

double ehvi_2d_monte_carlo(
    const GaussianPair& belief, const std::vector<pareto::Point2>& front,
    const pareto::Point2& ref,
    const std::vector<std::pair<double, double>>& normal_samples) {
  BOFL_REQUIRE(!normal_samples.empty(), "MC estimator needs samples");
  const CompiledFront compiled(front, ref, EhviMode::kExact);
  double sum = 0.0;
  for (const auto& [z1, z2] : normal_samples) {
    const pareto::Point2 y{belief.mu1 + belief.sigma1 * z1,
                           belief.mu2 + belief.sigma2 * z2};
    sum += compiled.hvi(y);
  }
  return sum / static_cast<double>(normal_samples.size());
}

}  // namespace bofl::bo
