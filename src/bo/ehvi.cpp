#include "bo/ehvi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace bofl::bo {

namespace {

/// P(Y <= t) for Y ~ N(mu, sigma^2), handling sigma == 0.
double gaussian_cdf(double t, double mu, double sigma) {
  if (sigma == 0.0) {
    return mu <= t ? 1.0 : 0.0;
  }
  return normal_cdf((t - mu) / sigma);
}

/// E[(v - max(Y, u))^+] for Y ~ N(mu, sigma^2) and u <= v.
/// u may be -infinity (plain E[(v - Y)^+]).
double expected_clamped_width(double u, double v, double mu, double sigma) {
  if (v <= u) {
    return 0.0;
  }
  if (std::isinf(u)) {
    return psi_ei(v, v, mu, sigma);
  }
  // (v-u) * P(Y <= u)  +  E[(v - Y) 1{u < Y <= v}]
  return (v - u) * gaussian_cdf(u, mu, sigma) +
         (psi_ei(v, v, mu, sigma) - psi_ei(v, u, mu, sigma));
}

}  // namespace

double ehvi_2d(const GaussianPair& belief,
               const std::vector<pareto::Point2>& front,
               const pareto::Point2& ref) {
  BOFL_REQUIRE(belief.sigma1 >= 0.0 && belief.sigma2 >= 0.0,
               "EHVI needs non-negative standard deviations");
  // Clean front: non-dominated, sorted ascending in f1 (descending f2),
  // restricted to points that dominate some part of the reference box.
  std::vector<pareto::Point2> sorted;
  sorted.reserve(front.size());
  for (const pareto::Point2& p : front) {
    if (p.f1 < ref.f1 && p.f2 < ref.f2) {
      sorted.push_back(p);
    }
  }
  sorted = pareto::pareto_front(std::move(sorted));

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double total = 0.0;
  // Strip k = 0..n: z1 in [u_k, v_k), ceiling c_k on z2.
  //   k = 0:       u = -inf,        v = a_1 (or r1 if empty front), c = r2
  //   k = 1..n:    u = a_k,         v = a_{k+1} (or r1),            c = b_k
  const std::size_t n = sorted.size();
  for (std::size_t k = 0; k <= n; ++k) {
    const double u = (k == 0) ? kNegInf : sorted[k - 1].f1;
    const double v = (k == n) ? ref.f1 : sorted[k].f1;
    const double ceiling = (k == 0) ? ref.f2 : sorted[k - 1].f2;
    const double width =
        expected_clamped_width(u, v, belief.mu1, belief.sigma1);
    if (width <= 0.0) {
      continue;
    }
    const double height =
        psi_ei(ceiling, ceiling, belief.mu2, belief.sigma2);
    total += width * height;
  }
  return std::max(total, 0.0);
}

double ehvi_2d_monte_carlo(
    const GaussianPair& belief, const std::vector<pareto::Point2>& front,
    const pareto::Point2& ref,
    const std::vector<std::pair<double, double>>& normal_samples) {
  BOFL_REQUIRE(!normal_samples.empty(), "MC estimator needs samples");
  double sum = 0.0;
  for (const auto& [z1, z2] : normal_samples) {
    const pareto::Point2 y{belief.mu1 + belief.sigma1 * z1,
                           belief.mu2 + belief.sigma2 * z2};
    sum += pareto::hypervolume_improvement(front, {y}, ref);
  }
  return sum / static_cast<double>(normal_samples.size());
}

}  // namespace bofl::bo
