#include "linalg/cholesky.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace bofl::linalg {

namespace {

/// Dot product of two contiguous spans with a four-way accumulator split.
/// The inner loops of the factorization and the triangular solves all
/// reduce to this; the split breaks the serial FP dependence chain so the
/// compiler can keep four vector accumulators in flight.
inline double dot_n(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += a[i] * b[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

}  // namespace

std::optional<Matrix> cholesky(const Matrix& a) {
  BOFL_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  // Cholesky–Banachiewicz (row-by-row): every inner reduction is a dot of
  // two contiguous row prefixes, so the whole factorization streams
  // unit-stride through the row-major storage.
  for (std::size_t i = 0; i < n; ++i) {
    double* li = l.row(i);
    const double* ai = a.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double* lj = l.row(j);
      li[j] = (ai[j] - dot_n(li, lj, j)) / lj[j];
    }
    const double diag = ai[i] - dot_n(li, li, i);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return std::nullopt;
    }
    li[i] = std::sqrt(diag);
  }
  return l;
}

JitteredCholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                      double max_jitter) {
  BOFL_REQUIRE(initial_jitter > 0.0 && initial_jitter <= max_jitter,
               "need 0 < initial_jitter <= max_jitter");
  if (auto l = cholesky(a)) {
    return {std::move(*l), 0.0};
  }
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix jittered = a;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      jittered(i, i) += jitter;
    }
    if (auto l = cholesky(jittered)) {
      return {std::move(*l), jitter};
    }
  }
  BOFL_ASSERT(false, "matrix not positive definite even with maximal jitter");
}

std::optional<Matrix> cholesky_append_row(const Matrix& l, const Vector& cross,
                                          double diag) {
  BOFL_REQUIRE(l.rows() == l.cols(), "cholesky_append_row needs a square L");
  BOFL_REQUIRE(cross.size() == l.rows(),
               "cholesky_append_row cross-covariance length mismatch");
  const std::size_t n = l.rows();
  // A' = [[A, k], [k^T, kappa]] factors as
  //   L' = [[L, 0], [l12^T, l22]]  with  L l12 = k,  l22^2 = kappa - |l12|^2.
  // Solving for l12 is one forward substitution: O(n^2) total, against the
  // O(n^3) of refactorizing A' from scratch.
  Matrix out(n + 1, n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(out.row(i), l.row(i), (i + 1) * sizeof(double));
  }
  double* last = out.row(n);
  double norm2_l12 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.row(i);
    const double v = (cross[i] - dot_n(li, last, i)) / li[i];
    last[i] = v;
    norm2_l12 += v * v;
  }
  const double d = diag - norm2_l12;
  // Reject near-singular tails (duplicate or nearly coincident points with
  // no noise): a relative guard, because sqrt of a catastrophically
  // cancelled difference would poison every later solve with 1/l22.
  if (!std::isfinite(d) || d <= 1e-12 * std::abs(diag)) {
    return std::nullopt;
  }
  last[n] = std::sqrt(d);
  return out;
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
               "solve_lower shape mismatch");
  const std::size_t n = b.size();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.row(i);
    x[i] = (b[i] - dot_n(li, x.data(), i)) / li[i];
  }
  return x;
}

Matrix solve_lower_multi(const Matrix& l, const Matrix& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.rows(),
               "solve_lower_multi shape mismatch");
  const std::size_t n = b.rows();
  const std::size_t m = b.cols();
  Matrix x = b;
  // Forward substitution vectorized across the m right-hand sides: the
  // inner loop is a unit-stride axpy over row i, so one pass through L
  // serves the whole block instead of m independent strided solves.
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.row(i);
    double* xi = x.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = li[j];
      const double* xj = x.row(j);
      for (std::size_t c = 0; c < m; ++c) {
        xi[c] -= lij * xj[c];
      }
    }
    const double inv = 1.0 / li[i];
    for (std::size_t c = 0; c < m; ++c) {
      xi[c] *= inv;
    }
  }
  return x;
}

Vector solve_lower_transpose(const Matrix& l, const Vector& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
               "solve_lower_transpose shape mismatch");
  const std::size_t n = b.size();
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= l(j, ii) * x[j];
    }
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Vector solve_cholesky(const Matrix& l, const Vector& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) {
    sum += std::log(l(i, i));
  }
  return 2.0 * sum;
}

}  // namespace bofl::linalg
