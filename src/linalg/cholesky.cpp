#include "linalg/cholesky.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "linalg/simd/dispatch.hpp"
#include "linalg/simd/kernels.hpp"

namespace bofl::linalg {

namespace {

using DotFn = double (*)(const double*, const double*, std::size_t);

/// The row-prefix dot behind every inner reduction here (historically the
/// local dot_n four-way accumulator split, now simd::dot_blocked).  The
/// factorizations call it O(n^2) times on short prefixes, so each entry
/// point hoists the dispatch branch out of its loops by picking the
/// implementation once.
inline DotFn pick_dot() {
  return simd::active_level() == simd::Level::kAvx2 ? simd::dot_avx2
                                                    : simd::dot_blocked_scalar;
}

}  // namespace

std::optional<Matrix> cholesky(const Matrix& a) {
  BOFL_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  // Cholesky–Banachiewicz (row-by-row): every inner reduction is a dot of
  // two contiguous row prefixes, so the whole factorization streams
  // unit-stride through the row-major storage.
  const DotFn dot_n = pick_dot();
  for (std::size_t i = 0; i < n; ++i) {
    double* li = l.row(i);
    const double* ai = a.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double* lj = l.row(j);
      li[j] = (ai[j] - dot_n(li, lj, j)) / lj[j];
    }
    const double diag = ai[i] - dot_n(li, li, i);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return std::nullopt;
    }
    li[i] = std::sqrt(diag);
  }
  return l;
}

JitteredCholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                      double max_jitter) {
  BOFL_REQUIRE(initial_jitter > 0.0 && initial_jitter <= max_jitter,
               "need 0 < initial_jitter <= max_jitter");
  if (auto l = cholesky(a)) {
    return {std::move(*l), 0.0};
  }
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix jittered = a;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      jittered(i, i) += jitter;
    }
    if (auto l = cholesky(jittered)) {
      return {std::move(*l), jitter};
    }
  }
  BOFL_ASSERT(false, "matrix not positive definite even with maximal jitter");
}

std::optional<Matrix> cholesky_append_row(const Matrix& l, const Vector& cross,
                                          double diag) {
  BOFL_REQUIRE(l.rows() == l.cols(), "cholesky_append_row needs a square L");
  BOFL_REQUIRE(cross.size() == l.rows(),
               "cholesky_append_row cross-covariance length mismatch");
  const std::size_t n = l.rows();
  // A' = [[A, k], [k^T, kappa]] factors as
  //   L' = [[L, 0], [l12^T, l22]]  with  L l12 = k,  l22^2 = kappa - |l12|^2.
  // Solving for l12 is one forward substitution: O(n^2) total, against the
  // O(n^3) of refactorizing A' from scratch.
  Matrix out(n + 1, n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(out.row(i), l.row(i), (i + 1) * sizeof(double));
  }
  double* last = out.row(n);
  double norm2_l12 = 0.0;
  const DotFn dot_n = pick_dot();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.row(i);
    const double v = (cross[i] - dot_n(li, last, i)) / li[i];
    last[i] = v;
    norm2_l12 += v * v;
  }
  const double d = diag - norm2_l12;
  // Reject near-singular tails (duplicate or nearly coincident points with
  // no noise): a relative guard, because sqrt of a catastrophically
  // cancelled difference would poison every later solve with 1/l22.
  if (!std::isfinite(d) || d <= 1e-12 * std::abs(diag)) {
    return std::nullopt;
  }
  last[n] = std::sqrt(d);
  return out;
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
               "solve_lower shape mismatch");
  const std::size_t n = b.size();
  Vector x(n);
  const DotFn dot_n = pick_dot();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.row(i);
    x[i] = (b[i] - dot_n(li, x.data(), i)) / li[i];
  }
  return x;
}

Matrix solve_lower_multi(const Matrix& l, const Matrix& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.rows(),
               "solve_lower_multi shape mismatch");
  const std::size_t n = b.rows();
  const std::size_t m = b.cols();
  Matrix x = b;
  // Forward substitution vectorized across the m right-hand sides; the
  // dispatched kernel (linalg/simd/kernels.hpp) keeps the unit-stride axpy
  // structure, with the AVX2 path register-blocking four eliminated rows.
  simd::solve_lower_multi_inplace(l.row(0), n, x.row(0), m);
  return x;
}

Vector solve_lower_transpose(const Matrix& l, const Vector& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
               "solve_lower_transpose shape mismatch");
  const std::size_t n = b.size();
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= l(j, ii) * x[j];
    }
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Vector solve_cholesky(const Matrix& l, const Vector& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) {
    sum += std::log(l(i, i));
  }
  return 2.0 * sum;
}

}  // namespace bofl::linalg
