#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  BOFL_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l(j, k) * l(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return std::nullopt;
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * l(j, k);
      }
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

JitteredCholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                      double max_jitter) {
  BOFL_REQUIRE(initial_jitter > 0.0 && initial_jitter <= max_jitter,
               "need 0 < initial_jitter <= max_jitter");
  if (auto l = cholesky(a)) {
    return {std::move(*l), 0.0};
  }
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix jittered = a;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      jittered(i, i) += jitter;
    }
    if (auto l = cholesky(jittered)) {
      return {std::move(*l), jitter};
    }
  }
  BOFL_ASSERT(false, "matrix not positive definite even with maximal jitter");
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
               "solve_lower shape mismatch");
  const std::size_t n = b.size();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= l(i, j) * x[j];
    }
    x[i] = sum / l(i, i);
  }
  return x;
}

Vector solve_lower_transpose(const Matrix& l, const Vector& b) {
  BOFL_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
               "solve_lower_transpose shape mismatch");
  const std::size_t n = b.size();
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= l(j, ii) * x[j];
    }
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Vector solve_cholesky(const Matrix& l, const Vector& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) {
    sum += std::log(l(i, i));
  }
  return 2.0 * sum;
}

}  // namespace bofl::linalg
