#include "linalg/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    BOFL_REQUIRE(row.size() == cols_, "all matrix rows must have equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  BOFL_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix addition requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  BOFL_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix subtraction requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) {
    v *= s;
  }
  return *this;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  BOFL_REQUIRE(a.cols() == b.rows(), "matrix product shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0);
  // Register-blocked ikj kernel: four output rows share each streamed row
  // of b, so b is read once per four rows of a instead of once per row.
  // The inner j loop is branch-free and unit-stride on both c and b, which
  // is what the auto-vectorizer needs (a data-dependent `a(i,k) == 0.0`
  // skip here would force scalar code).
  constexpr std::size_t kRowBlock = 4;
  std::size_t i = 0;
  for (; i + kRowBlock <= m; i += kRowBlock) {
    double* c0 = c.row(i);
    double* c1 = c.row(i + 1);
    double* c2 = c.row(i + 2);
    double* c3 = c.row(i + 3);
    for (std::size_t k = 0; k < kk; ++k) {
      const double* bk = b.row(k);
      const double a0 = a(i, k);
      const double a1 = a(i + 1, k);
      const double a2 = a(i + 2, k);
      const double a3 = a(i + 3, k);
      for (std::size_t j = 0; j < n; ++j) {
        const double bkj = bk[j];
        c0[j] += a0 * bkj;
        c1[j] += a1 * bkj;
        c2[j] += a2 * bkj;
        c3[j] += a3 * bkj;
      }
    }
  }
  for (; i < m; ++i) {  // remainder rows
    double* ci = c.row(i);
    for (std::size_t k = 0; k < kk; ++k) {
      const double* bk = b.row(k);
      const double aik = a(i, k);
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aik * bk[j];
      }
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  BOFL_REQUIRE(a.cols() == x.size(), "matrix-vector shape mismatch");
  const std::size_t n = a.cols();
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      sum += ai[j] * x[j];
    }
    y[i] = sum;
  }
  return y;
}

double dot(const Vector& a, const Vector& b) {
  BOFL_REQUIRE(a.size() == b.size(), "dot product requires equal sizes");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double squared_distance(const Vector& a, const Vector& b) {
  BOFL_REQUIRE(a.size() == b.size(), "distance requires equal sizes");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  BOFL_REQUIRE(a.size() == b.size(), "axpy requires equal sizes");
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    y[i] = a[i] + s * b[i];
  }
  return y;
}

}  // namespace bofl::linalg
