#include "linalg/matrix.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/simd/kernels.hpp"

namespace bofl::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    BOFL_REQUIRE(row.size() == cols_, "all matrix rows must have equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  BOFL_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix addition requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  BOFL_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "matrix subtraction requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) {
    v *= s;
  }
  return *this;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  BOFL_REQUIRE(a.cols() == b.rows(), "matrix product shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0);
  // Register-blocked GEMM, dispatched once per call on the resolved SIMD
  // level (linalg/simd/kernels.hpp): the scalar path is the historical ikj
  // kernel verbatim; the AVX2 path holds 4x8 output tiles in FMA
  // accumulators across the whole k extent.
  simd::gemm(a.row(0), m, kk, b.row(0), n, c.row(0));
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  BOFL_REQUIRE(a.cols() == x.size(), "matrix-vector shape mismatch");
  const std::size_t n = a.cols();
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      sum += ai[j] * x[j];
    }
    y[i] = sum;
  }
  return y;
}

double dot(const Vector& a, const Vector& b) {
  BOFL_REQUIRE(a.size() == b.size(), "dot product requires equal sizes");
  return simd::dot_serial(a.data(), b.data(), a.size());
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double squared_distance(const Vector& a, const Vector& b) {
  BOFL_REQUIRE(a.size() == b.size(), "distance requires equal sizes");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  BOFL_REQUIRE(a.size() == b.size(), "axpy requires equal sizes");
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    y[i] = a[i] + s * b[i];
  }
  return y;
}

}  // namespace bofl::linalg
