// AVX2 + FMA kernel implementations (4 x f64 lanes).
//
// This translation unit is compiled with -mavx2 -mfma -ffp-contract=off on
// x86-64 (see CMakeLists.txt); everywhere else it degrades to stubs and
// `avx2_compiled()` reports false, so the dispatcher never routes here.
//
// Two ISA disciplines coexist in this file — which one a kernel uses is
// part of its contract (kernels.hpp):
//   * Reduction kernels (dot, GEMM, triangular solve, sum-of-squares,
//     correlation rows) use _mm256_fmadd_pd freely: they are
//     tolerance-pinned against the scalar reference, and their fixed lane
//     and combine order keeps them bit-deterministic per level.
//   * Elementwise kernels (normal_pdf_cdf_batch, ehvi_strips) must be
//     bit-identical to scalar, so their vector bodies use only
//     mul/add/sub/div plus exact compare/blend emulation of the scalar
//     branches — never an FMA, because the scalar reference is compiled
//     without contraction.  -ffp-contract=off guarantees the compiler does
//     not sneak contractions into this TU's scalar epilogues either.
#include "linalg/simd/dispatch.hpp"
#include "linalg/simd/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace bofl::linalg::simd {

bool avx2_compiled() { return true; }

namespace {

/// Lane masks for 1..3 remaining elements (maskload/maskstore take the
/// sign bit of each 64-bit lane).
inline __m256i tail_mask(std::size_t rem) {
  alignas(32) static const std::int64_t kMasks[4][4] = {
      {0, 0, 0, 0},
      {-1, 0, 0, 0},
      {-1, -1, 0, 0},
      {-1, -1, -1, 0},
  };
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kMasks[rem]));
}

/// Fixed-order horizontal sum: ((lane0 + lane1) + (lane2 + lane3)).
inline double hsum(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd();
  __m256d s3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                         s1);
    s2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8),
                         s2);
    s3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                         _mm256_loadu_pd(b + i + 12), s3);
  }
  for (; i + 4 <= n; i += 4) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), s0);
  }
  const double vec = hsum(_mm256_add_pd(_mm256_add_pd(s0, s1),
                                        _mm256_add_pd(s2, s3)));
  double tail = 0.0;
  for (; i < n; ++i) {
    tail = std::fma(a[i], b[i], tail);
  }
  return vec + tail;
}

namespace {

/// GEMM micro-kernel: one row strip of a (1 or 4 rows) against the full
/// width of b, accumulating into registers over the whole k extent and
/// storing each c tile exactly once (c arrives zero-filled).
template <int Rows>
void gemm_rows(const double* a, std::size_t k, const double* b, std::size_t n,
               double* c) {
  std::size_t j = 0;
  // 8-column tiles: Rows x 2 vector accumulators held across the k loop.
  for (; j + 8 <= n; j += 8) {
    __m256d acc[Rows][2];
    for (int r = 0; r < Rows; ++r) {
      acc[r][0] = _mm256_setzero_pd();
      acc[r][1] = _mm256_setzero_pd();
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* bk = b + kk * n + j;
      const __m256d b0 = _mm256_loadu_pd(bk);
      const __m256d b1 = _mm256_loadu_pd(bk + 4);
      for (int r = 0; r < Rows; ++r) {
        const __m256d av = _mm256_broadcast_sd(a + r * k + kk);
        acc[r][0] = _mm256_fmadd_pd(av, b0, acc[r][0]);
        acc[r][1] = _mm256_fmadd_pd(av, b1, acc[r][1]);
      }
    }
    for (int r = 0; r < Rows; ++r) {
      _mm256_storeu_pd(c + r * n + j, acc[r][0]);
      _mm256_storeu_pd(c + r * n + j + 4, acc[r][1]);
    }
  }
  for (; j + 4 <= n; j += 4) {
    __m256d acc[Rows];
    for (int r = 0; r < Rows; ++r) {
      acc[r] = _mm256_setzero_pd();
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const __m256d bv = _mm256_loadu_pd(b + kk * n + j);
      for (int r = 0; r < Rows; ++r) {
        acc[r] = _mm256_fmadd_pd(_mm256_broadcast_sd(a + r * k + kk), bv,
                                 acc[r]);
      }
    }
    for (int r = 0; r < Rows; ++r) {
      _mm256_storeu_pd(c + r * n + j, acc[r]);
    }
  }
  if (j < n) {
    const __m256i mask = tail_mask(n - j);
    __m256d acc[Rows];
    for (int r = 0; r < Rows; ++r) {
      acc[r] = _mm256_setzero_pd();
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const __m256d bv = _mm256_maskload_pd(b + kk * n + j, mask);
      for (int r = 0; r < Rows; ++r) {
        acc[r] = _mm256_fmadd_pd(_mm256_broadcast_sd(a + r * k + kk), bv,
                                 acc[r]);
      }
    }
    for (int r = 0; r < Rows; ++r) {
      _mm256_maskstore_pd(c + r * n + j, mask, acc[r]);
    }
  }
}

}  // namespace

void gemm_avx2(const double* a, std::size_t m, std::size_t k, const double* b,
               std::size_t n, double* c) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    gemm_rows<4>(a + i * k, k, b, n, c + i * n);
  }
  for (; i < m; ++i) {
    gemm_rows<1>(a + i * k, k, b, n, c + i * n);
  }
}

void solve_lower_multi_inplace_avx2(const double* l, std::size_t n, double* x,
                                    std::size_t m) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l + i * n;
    double* xi = x + i * m;
    std::size_t j = 0;
    // Four eliminated rows per pass: xi stays in registers across the four
    // fnmadds, quartering its load/store traffic.  The four updates are
    // applied in ascending j order, matching the scalar elimination order.
    for (; j + 4 <= i; j += 4) {
      const __m256d l0 = _mm256_broadcast_sd(li + j);
      const __m256d l1 = _mm256_broadcast_sd(li + j + 1);
      const __m256d l2 = _mm256_broadcast_sd(li + j + 2);
      const __m256d l3 = _mm256_broadcast_sd(li + j + 3);
      const double* x0 = x + j * m;
      const double* x1 = x0 + m;
      const double* x2 = x1 + m;
      const double* x3 = x2 + m;
      std::size_t c = 0;
      for (; c + 4 <= m; c += 4) {
        __m256d v = _mm256_loadu_pd(xi + c);
        v = _mm256_fnmadd_pd(l0, _mm256_loadu_pd(x0 + c), v);
        v = _mm256_fnmadd_pd(l1, _mm256_loadu_pd(x1 + c), v);
        v = _mm256_fnmadd_pd(l2, _mm256_loadu_pd(x2 + c), v);
        v = _mm256_fnmadd_pd(l3, _mm256_loadu_pd(x3 + c), v);
        _mm256_storeu_pd(xi + c, v);
      }
      for (; c < m; ++c) {
        double v = xi[c];
        v = std::fma(-li[j], x0[c], v);
        v = std::fma(-li[j + 1], x1[c], v);
        v = std::fma(-li[j + 2], x2[c], v);
        v = std::fma(-li[j + 3], x3[c], v);
        xi[c] = v;
      }
    }
    for (; j < i; ++j) {
      const __m256d lj = _mm256_broadcast_sd(li + j);
      const double* xj = x + j * m;
      std::size_t c = 0;
      for (; c + 4 <= m; c += 4) {
        _mm256_storeu_pd(
            xi + c,
            _mm256_fnmadd_pd(lj, _mm256_loadu_pd(xj + c),
                             _mm256_loadu_pd(xi + c)));
      }
      for (; c < m; ++c) {
        xi[c] = std::fma(-li[j], xj[c], xi[c]);
      }
    }
    const double inv = 1.0 / li[i];
    const __m256d vinv = _mm256_broadcast_sd(&inv);
    std::size_t c = 0;
    for (; c + 4 <= m; c += 4) {
      _mm256_storeu_pd(xi + c, _mm256_mul_pd(_mm256_loadu_pd(xi + c), vinv));
    }
    for (; c < m; ++c) {
      xi[c] *= inv;
    }
  }
}

void sumsq_rows_accumulate_avx2(const double* v, std::size_t rows,
                                std::size_t m, double* acc) {
  std::size_t i = 0;
  // Four rows per pass (acc kept in registers, rows applied in ascending
  // order — the same per-element accumulation order as the scalar loop).
  for (; i + 4 <= rows; i += 4) {
    const double* v0 = v + i * m;
    const double* v1 = v0 + m;
    const double* v2 = v1 + m;
    const double* v3 = v2 + m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d s = _mm256_loadu_pd(acc + j);
      const __m256d a0 = _mm256_loadu_pd(v0 + j);
      const __m256d a1 = _mm256_loadu_pd(v1 + j);
      const __m256d a2 = _mm256_loadu_pd(v2 + j);
      const __m256d a3 = _mm256_loadu_pd(v3 + j);
      s = _mm256_fmadd_pd(a0, a0, s);
      s = _mm256_fmadd_pd(a1, a1, s);
      s = _mm256_fmadd_pd(a2, a2, s);
      s = _mm256_fmadd_pd(a3, a3, s);
      _mm256_storeu_pd(acc + j, s);
    }
    for (; j < m; ++j) {
      double s = acc[j];
      s = std::fma(v0[j], v0[j], s);
      s = std::fma(v1[j], v1[j], s);
      s = std::fma(v2[j], v2[j], s);
      s = std::fma(v3[j], v3[j], s);
      acc[j] = s;
    }
  }
  for (; i < rows; ++i) {
    const double* vi = v + i * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const __m256d a = _mm256_loadu_pd(vi + j);
      _mm256_storeu_pd(acc + j,
                       _mm256_fmadd_pd(a, a, _mm256_loadu_pd(acc + j)));
    }
    for (; j < m; ++j) {
      acc[j] = std::fma(vi[j], vi[j], acc[j]);
    }
  }
}

namespace {

// exp(x) for x <= 0, accurate to a few ulp: magic-number rounding, two-part
// ln2 reduction, degree-11 Taylor core (the fast_normal recipe, with FMA —
// this helper serves tolerance-pinned kernels only).  Inputs below -708
// (where the 2^k scaling would need denormals) flush to +0.0; libm returns
// a denormal there, an absolute difference below 2.3e-308.  -inf maps to
// +0.0 like libm; NaN propagates.
inline __m256d exp_nonpos_pd(__m256d x) {
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634);
  const __m256d kLn2Hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d kLn2Lo = _mm256_set1_pd(1.90821492927058770002e-10);
  const __m256d kShift = _mm256_set1_pd(6755399441055744.0);  // 1.5 * 2^52
  __m256d kd = _mm256_fmadd_pd(x, kLog2e, kShift);
  const __m256i ki = _mm256_castpd_si256(kd);
  kd = _mm256_sub_pd(kd, kShift);
  __m256d r = _mm256_fnmadd_pd(kd, kLn2Hi, x);
  r = _mm256_fnmadd_pd(kd, kLn2Lo, r);
  __m256d q = _mm256_set1_pd(1.0 / 39916800.0);
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 3628800.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 362880.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 40320.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 5040.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 720.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 120.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 24.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0 / 6.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(0.5));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.0));
  // 2^k from the rounded exponent bits; only the low 12 bits of ki + 1023
  // survive the << 52, so the magic-shift tag bits drop out by themselves.
  const __m256i sbits =
      _mm256_slli_epi64(_mm256_add_epi64(ki, _mm256_set1_epi64x(1023)), 52);
  const __m256d e = _mm256_mul_pd(q, _mm256_castsi256_pd(sbits));
  // Flush the sub-2^-1022 range (and -inf) to +0.0; NaN compares false on
  // both sides and keeps its propagated payload.
  const __m256d flush =
      _mm256_cmp_pd(x, _mm256_set1_pd(-708.0), _CMP_LT_OQ);
  return _mm256_andnot_pd(flush, e);
}

}  // namespace

void corr_row_avx2(Corr family, const double* x, const double* const* pts,
                   std::size_t count, const double* lengthscales,
                   std::size_t dim, double signal_variance, double* out) {
  const __m256d sv = _mm256_set1_pd(signal_variance);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t j = 0;
  while (j < count) {
    // Remainder points are padded with the last point so every element
    // takes the identical vector code path: corr_row results are
    // position-independent, which keeps Kernel::cross bit-equal to
    // pointwise Kernel::operator() evaluation at every dispatch level.
    const std::size_t rem = count - j;
    const double* p0 = pts[j];
    const double* p1 = pts[rem > 1 ? j + 1 : j];
    const double* p2 = pts[rem > 2 ? j + 2 : j];
    const double* p3 = pts[rem > 3 ? j + 3 : j];
    __m256d r2 = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256d xd = _mm256_broadcast_sd(x + d);
      const __m256d ls = _mm256_broadcast_sd(lengthscales + d);
      const __m256d pv = _mm256_set_pd(p3[d], p2[d], p1[d], p0[d]);
      const __m256d q = _mm256_div_pd(_mm256_sub_pd(xd, pv), ls);
      r2 = _mm256_fmadd_pd(q, q, r2);
    }
    const __m256d r = _mm256_sqrt_pd(r2);
    __m256d k;
    switch (family) {
      case Corr::kMatern52: {
        const __m256d s =
            _mm256_mul_pd(_mm256_set1_pd(2.23606797749978969641), r);
        const __m256d poly = _mm256_add_pd(
            one, _mm256_add_pd(
                     s, _mm256_div_pd(_mm256_mul_pd(s, s),
                                      _mm256_set1_pd(3.0))));
        k = _mm256_mul_pd(poly, exp_nonpos_pd(
                                    _mm256_sub_pd(_mm256_setzero_pd(), s)));
        break;
      }
      case Corr::kMatern32: {
        const __m256d s =
            _mm256_mul_pd(_mm256_set1_pd(1.73205080756887729353), r);
        k = _mm256_mul_pd(
            _mm256_add_pd(one, s),
            exp_nonpos_pd(_mm256_sub_pd(_mm256_setzero_pd(), s)));
        break;
      }
      case Corr::kRbf:
      default: {
        const __m256d arg =
            _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(-0.5), r), r);
        k = exp_nonpos_pd(arg);
        break;
      }
    }
    const __m256d kv = _mm256_mul_pd(sv, k);
    if (rem >= 4) {
      _mm256_storeu_pd(out + j, kv);
    } else {
      _mm256_maskstore_pd(out + j, tail_mask(rem), kv);
    }
    j += rem < 4 ? rem : 4;
  }
}

namespace {

/// std::min(z, c) with scalar ternary semantics: (c < z) ? c : z, NaN z
/// preserved (ordered compare is false on NaN, keeping z).
inline __m256d min_scalar_semantics(__m256d z, __m256d c) {
  return _mm256_blendv_pd(z, c, _mm256_cmp_pd(c, z, _CMP_LT_OQ));
}

}  // namespace

void normal_pdf_cdf_batch_avx2(const double* t, std::size_t count, double* pdf,
                               double* cdf) {
  // The scalar polynomial evaluated four lanes at a time with mul/add only
  // (never FMA): every operation mirrors one scalar-source operation in
  // the same order, so outputs are bit-identical to the scalar kernel —
  // asserted by the SIMD differential tests.
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d kClamp = _mm256_set1_pd(37.7);
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634);
  const __m256d kLn2Hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d kLn2Lo = _mm256_set1_pd(1.90821492927058770002e-10);
  const __m256d kShift = _mm256_set1_pd(6755399441055744.0);
  const __m256d kHalfNeg = _mm256_set1_pd(-0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d kInvSqrt2PiV = _mm256_set1_pd(0.3989422804014327);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d ti = _mm256_loadu_pd(t + i);
    __m256d z = _mm256_and_pd(ti, kAbsMask);
    z = min_scalar_semantics(z, kClamp);
    const __m256d x = _mm256_mul_pd(_mm256_mul_pd(kHalfNeg, z), z);
    __m256d kd = _mm256_add_pd(_mm256_mul_pd(x, kLog2e), kShift);
    const __m256i ki = _mm256_castpd_si256(kd);
    kd = _mm256_sub_pd(kd, kShift);
    const __m256d r = _mm256_sub_pd(_mm256_sub_pd(x, _mm256_mul_pd(kd, kLn2Hi)),
                                    _mm256_mul_pd(kd, kLn2Lo));
    __m256d q = _mm256_set1_pd(1.0 / 39916800.0);
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 3628800.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 362880.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 40320.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 5040.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 720.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 120.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 24.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 6.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(0.5));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), one);
    q = _mm256_add_pd(_mm256_mul_pd(q, r), one);
    // (ki + 1023) << 52: only the low 12 bits of the sum survive, so the
    // scalar path's explicit 32-bit sign extension is unnecessary here.
    const __m256i sbits =
        _mm256_slli_epi64(_mm256_add_epi64(ki, _mm256_set1_epi64x(1023)), 52);
    const __m256d e = _mm256_mul_pd(q, _mm256_castsi256_pd(sbits));
    __m256d p = _mm256_mul_pd(kInvSqrt2PiV, e);
    __m256d num = _mm256_set1_pd(3.52624965998911e-02);
    num = _mm256_add_pd(_mm256_mul_pd(num, z), _mm256_set1_pd(0.700383064443688));
    num = _mm256_add_pd(_mm256_mul_pd(num, z), _mm256_set1_pd(6.37396220353165));
    num = _mm256_add_pd(_mm256_mul_pd(num, z), _mm256_set1_pd(33.912866078383));
    num = _mm256_add_pd(_mm256_mul_pd(num, z), _mm256_set1_pd(112.079291497871));
    num = _mm256_add_pd(_mm256_mul_pd(num, z), _mm256_set1_pd(221.213596169931));
    num = _mm256_add_pd(_mm256_mul_pd(num, z), _mm256_set1_pd(220.206867912376));
    __m256d den = _mm256_set1_pd(8.83883476483184e-02);
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(1.75566716318264));
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(16.064177579207));
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(86.7807322029461));
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(296.564248779674));
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(637.333633378831));
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(793.826512519948));
    den = _mm256_add_pd(_mm256_mul_pd(den, z), _mm256_set1_pd(440.413735824752));
    const __m256d c_main = _mm256_div_pd(_mm256_mul_pd(e, num), den);
    const __m256d inv = _mm256_div_pd(one, z);
    const __m256d inv2 = _mm256_mul_pd(inv, inv);
    __m256d tail = _mm256_sub_pd(
        one, _mm256_mul_pd(_mm256_set1_pd(9.0), inv2));
    tail = _mm256_sub_pd(
        one, _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(7.0), inv2), tail));
    tail = _mm256_sub_pd(
        one, _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(5.0), inv2), tail));
    tail = _mm256_sub_pd(
        one, _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(3.0), inv2), tail));
    tail = _mm256_sub_pd(one, _mm256_mul_pd(inv2, tail));
    const __m256d c_tail = _mm256_mul_pd(_mm256_mul_pd(p, inv), tail);
    // z < seam ? c_main : c_tail (NaN z picks c_tail, like the scalar ?:).
    const __m256d seam_mask =
        _mm256_cmp_pd(z, _mm256_set1_pd(7.07106781186547), _CMP_LT_OQ);
    __m256d c = _mm256_blendv_pd(c_tail, c_main, seam_mask);
    const __m256d flush = _mm256_cmp_pd(z, _mm256_set1_pd(37.6), _CMP_GT_OQ);
    c = _mm256_andnot_pd(flush, c);
    p = _mm256_andnot_pd(flush, p);
    _mm256_storeu_pd(pdf + i, p);
    const __m256d neg_mask =
        _mm256_cmp_pd(ti, _mm256_setzero_pd(), _CMP_LE_OQ);
    _mm256_storeu_pd(cdf + i,
                     _mm256_blendv_pd(_mm256_sub_pd(one, c), c, neg_mask));
  }
  if (i < count) {  // remainder: scalar kernel (bit-identical by contract)
    normal_pdf_cdf_batch_scalar(t + i, count - i, pdf + i, cdf + i);
  }
}

void ehvi_strips_avx2(const double* bound1, const double* ceiling2,
                      std::size_t m, double mu1, double sigma1, double mu2,
                      double sigma2, const double* pdf1, const double* cdf1,
                      const double* pdf2, const double* cdf2, double* width,
                      double* height) {
  // Elementwise in k with mul/add/sub only — bit-identical to the scalar
  // strip expressions (the k and k-1 operands come from unaligned loads).
  const __m256d s1 = _mm256_set1_pd(sigma1);
  const __m256d s2 = _mm256_set1_pd(sigma2);
  const __m256d m1 = _mm256_set1_pd(mu1);
  const __m256d m2 = _mm256_set1_pd(mu2);
  width[0] = sigma1 * pdf1[0] + (bound1[0] - mu1) * cdf1[0];
  std::size_t k = 1;
  for (; k + 4 <= m; k += 4) {
    const __m256d vk = _mm256_loadu_pd(bound1 + k);
    const __m256d uk = _mm256_loadu_pd(bound1 + k - 1);
    const __m256d pk = _mm256_loadu_pd(pdf1 + k);
    const __m256d pk1 = _mm256_loadu_pd(pdf1 + k - 1);
    const __m256d ck = _mm256_loadu_pd(cdf1 + k);
    const __m256d ck1 = _mm256_loadu_pd(cdf1 + k - 1);
    const __m256d vmu = _mm256_sub_pd(vk, m1);
    const __m256d psi_vv =
        _mm256_add_pd(_mm256_mul_pd(s1, pk), _mm256_mul_pd(vmu, ck));
    const __m256d psi_vu =
        _mm256_add_pd(_mm256_mul_pd(s1, pk1), _mm256_mul_pd(vmu, ck1));
    const __m256d w = _mm256_add_pd(
        _mm256_mul_pd(_mm256_sub_pd(vk, uk), ck1),
        _mm256_sub_pd(psi_vv, psi_vu));
    _mm256_storeu_pd(width + k, w);
  }
  for (; k < m; ++k) {
    const double u = bound1[k - 1];
    const double v = bound1[k];
    const double psi_vv = sigma1 * pdf1[k] + (v - mu1) * cdf1[k];
    const double psi_vu = sigma1 * pdf1[k - 1] + (v - mu1) * cdf1[k - 1];
    width[k] = (v - u) * cdf1[k - 1] + (psi_vv - psi_vu);
  }
  k = 0;
  for (; k + 4 <= m; k += 4) {
    const __m256d h = _mm256_add_pd(
        _mm256_mul_pd(s2, _mm256_loadu_pd(pdf2 + k)),
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(ceiling2 + k), m2),
                      _mm256_loadu_pd(cdf2 + k)));
    _mm256_storeu_pd(height + k, h);
  }
  for (; k < m; ++k) {
    height[k] = sigma2 * pdf2[k] + (ceiling2[k] - mu2) * cdf2[k];
  }
}

}  // namespace bofl::linalg::simd

#else  // !(__AVX2__ && __FMA__): stubs — the dispatcher never selects kAvx2.

#include "common/error.hpp"

namespace bofl::linalg::simd {

bool avx2_compiled() { return false; }

namespace {
[[noreturn]] void unreachable_stub() {
  BOFL_ASSERT(false, "AVX2 kernel called in a build without AVX2 support");
}
}  // namespace

double dot_avx2(const double*, const double*, std::size_t) {
  unreachable_stub();
}
void gemm_avx2(const double*, std::size_t, std::size_t, const double*,
               std::size_t, double*) {
  unreachable_stub();
}
void solve_lower_multi_inplace_avx2(const double*, std::size_t, double*,
                                    std::size_t) {
  unreachable_stub();
}
void sumsq_rows_accumulate_avx2(const double*, std::size_t, std::size_t,
                                double*) {
  unreachable_stub();
}
void corr_row_avx2(Corr, const double*, const double* const*, std::size_t,
                   const double*, std::size_t, double, double*) {
  unreachable_stub();
}
void normal_pdf_cdf_batch_avx2(const double*, std::size_t, double*, double*) {
  unreachable_stub();
}
void ehvi_strips_avx2(const double*, const double*, std::size_t, double,
                      double, double, double, const double*, const double*,
                      const double*, const double*, double*, double*) {
  unreachable_stub();
}

}  // namespace bofl::linalg::simd

#endif
