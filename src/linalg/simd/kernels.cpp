// Dispatching entry points: one branch on the process-wide level, then a
// tail call into the selected implementation.  Hot per-factorization loops
// that cannot afford even this branch hoist the level themselves (see
// linalg/cholesky.cpp).
#include "linalg/simd/dispatch.hpp"
#include "linalg/simd/kernels.hpp"

namespace bofl::linalg::simd {

namespace {
inline bool use_avx2() { return active_level() == Level::kAvx2; }
}  // namespace

double dot_serial(const double* a, const double* b, std::size_t n) {
  return use_avx2() ? dot_avx2(a, b, n) : dot_serial_scalar(a, b, n);
}

double dot_blocked(const double* a, const double* b, std::size_t n) {
  return use_avx2() ? dot_avx2(a, b, n) : dot_blocked_scalar(a, b, n);
}

void gemm(const double* a, std::size_t m, std::size_t k, const double* b,
          std::size_t n, double* c) {
  if (use_avx2()) {
    gemm_avx2(a, m, k, b, n, c);
  } else {
    gemm_scalar(a, m, k, b, n, c);
  }
}

void solve_lower_multi_inplace(const double* l, std::size_t n, double* x,
                               std::size_t m) {
  if (use_avx2()) {
    solve_lower_multi_inplace_avx2(l, n, x, m);
  } else {
    solve_lower_multi_inplace_scalar(l, n, x, m);
  }
}

void sumsq_rows_accumulate(const double* v, std::size_t rows, std::size_t m,
                           double* acc) {
  if (use_avx2()) {
    sumsq_rows_accumulate_avx2(v, rows, m, acc);
  } else {
    sumsq_rows_accumulate_scalar(v, rows, m, acc);
  }
}

void corr_row(Corr family, const double* x, const double* const* pts,
              std::size_t count, const double* lengthscales, std::size_t dim,
              double signal_variance, double* out) {
  if (use_avx2()) {
    corr_row_avx2(family, x, pts, count, lengthscales, dim, signal_variance,
                  out);
  } else {
    corr_row_scalar(family, x, pts, count, lengthscales, dim, signal_variance,
                    out);
  }
}

void normal_pdf_cdf_batch(const double* t, std::size_t count, double* pdf,
                          double* cdf) {
  if (use_avx2()) {
    normal_pdf_cdf_batch_avx2(t, count, pdf, cdf);
  } else {
    normal_pdf_cdf_batch_scalar(t, count, pdf, cdf);
  }
}

void ehvi_strips(const double* bound1, const double* ceiling2, std::size_t m,
                 double mu1, double sigma1, double mu2, double sigma2,
                 const double* pdf1, const double* cdf1, const double* pdf2,
                 const double* cdf2, double* width, double* height) {
  if (use_avx2()) {
    ehvi_strips_avx2(bound1, ceiling2, m, mu1, sigma1, mu2, sigma2, pdf1, cdf1,
                     pdf2, cdf2, width, height);
  } else {
    ehvi_strips_scalar(bound1, ceiling2, m, mu1, sigma1, mu2, sigma2, pdf1,
                       cdf1, pdf2, cdf2, width, height);
  }
}

}  // namespace bofl::linalg::simd
