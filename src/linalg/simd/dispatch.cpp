#include "linalg/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace bofl::linalg::simd {

namespace {

/// -1 = not yet resolved; otherwise a Level.  Resolution is idempotent and
/// side-effect free, so the benign first-use race is harmless.
std::atomic<int> g_level{-1};

Level checked(Level level, const char* origin) {
  if (level == Level::kAvx2) {
    BOFL_REQUIRE(avx2_compiled(),
                 std::string(origin) +
                     " requested avx2 but this build has no AVX2 kernels");
    BOFL_REQUIRE(cpu_supports_avx2(),
                 std::string(origin) +
                     " requested avx2 but this CPU cannot execute it");
  }
  return level;
}

Level resolve() {
  if (const char* env = std::getenv("BOFL_SIMD");
      env != nullptr && *env != '\0') {
    const std::optional<Level> parsed = level_from_string(env);
    BOFL_REQUIRE(parsed.has_value(),
                 "BOFL_SIMD must be one of: avx2, scalar (got \"" +
                     std::string(env) + "\")");
    return checked(*parsed, "BOFL_SIMD");
  }
  return (avx2_compiled() && cpu_supports_avx2()) ? Level::kAvx2
                                                  : Level::kScalar;
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Level> level_from_string(std::string_view name) {
  for (const Level level : {Level::kScalar, Level::kAvx2}) {
    if (name == to_string(level)) {
      return level;
    }
  }
  return std::nullopt;
}

bool cpu_supports_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // The builtin performs the cpuid feature check *and* verifies the OS
  // enabled xsave for the ymm registers.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Level active_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(resolve());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

void force_level(Level level) {
  g_level.store(static_cast<int>(checked(level, "force_level")),
                std::memory_order_relaxed);
}

}  // namespace bofl::linalg::simd
