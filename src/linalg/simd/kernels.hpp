// The vectorized numeric kernels behind the GP/EHVI/linalg hot path.
//
// Each kernel has three entry points: the dispatching one (no suffix),
// which branches once on the resolved `dispatch.hpp` level, plus the
// `_scalar` and `_avx2` variants, exposed so the differential tests can
// compare the two implementations directly without flipping global state.
//
// Contract per kernel (the table lives in DESIGN.md §6h):
//   * `_scalar` is the exact pre-SIMD code, moved here verbatim — same
//     expression trees, same accumulator splits — so the scalar level
//     reproduces the repo's historical bits.
//   * Elementwise kernels (normal_pdf_cdf_batch, ehvi_strips) are
//     bit-identical between scalar and AVX2: the vector bodies use only
//     mul/add/sub/div/sqrt/min-max-emulation — never FMA, because the
//     scalar reference is compiled without contraction — and every output
//     element depends only on its own inputs.
//   * Reduction kernels (dot_*, gemm, solve_lower_multi_inplace,
//     sumsq_rows_accumulate, corr_row) fuse with FMA on the AVX2 path and
//     are tolerance-pinned against scalar; their lane-accumulation order is
//     fixed, so a given level is bit-deterministic across runs, thread
//     counts and block boundaries.
//
// The AVX2 variants require an AVX2+FMA machine (callers go through the
// dispatcher, which guarantees it); calling them elsewhere is undefined.
#pragma once

#include <cstddef>

namespace bofl::linalg::simd {

// ---------------------------------------------------------------------------
// Dot products.
//
// Two scalar reference semantics exist in the pre-SIMD code: linalg::dot's
// single-accumulator serial loop (GP posterior means) and the Cholesky
// layer's four-way accumulator split (factorization and triangular-solve
// inner dots).  Both share one AVX2 implementation; scalar dispatch keeps
// them distinct so each call site reproduces its historical bits.

/// Serial single-accumulator dot (the linalg::dot reference).
[[nodiscard]] double dot_serial(const double* a, const double* b,
                                std::size_t n);
[[nodiscard]] double dot_serial_scalar(const double* a, const double* b,
                                       std::size_t n);

/// Four-way-split dot (the Cholesky dot_n reference).
[[nodiscard]] double dot_blocked(const double* a, const double* b,
                                 std::size_t n);
[[nodiscard]] double dot_blocked_scalar(const double* a, const double* b,
                                        std::size_t n);

/// Shared AVX2 dot: four 4-lane FMA accumulators, fixed combine order.
[[nodiscard]] double dot_avx2(const double* a, const double* b, std::size_t n);

// ---------------------------------------------------------------------------
// GEMM: c[m x n] = a[m x k] * b[k x n], all row-major and dense; `c` must
// be zero-filled by the caller (linalg::operator* allocates it that way).

void gemm(const double* a, std::size_t m, std::size_t k, const double* b,
          std::size_t n, double* c);
void gemm_scalar(const double* a, std::size_t m, std::size_t k,
                 const double* b, std::size_t n, double* c);
void gemm_avx2(const double* a, std::size_t m, std::size_t k, const double* b,
               std::size_t n, double* c);

// ---------------------------------------------------------------------------
// Blocked forward substitution: solve L X = B in place for the m columns of
// x (n x m row-major), with L lower-triangular n x n row-major.

void solve_lower_multi_inplace(const double* l, std::size_t n, double* x,
                               std::size_t m);
void solve_lower_multi_inplace_scalar(const double* l, std::size_t n,
                                      double* x, std::size_t m);
void solve_lower_multi_inplace_avx2(const double* l, std::size_t n, double* x,
                                    std::size_t m);

// ---------------------------------------------------------------------------
// acc[j] += sum_i v(i, j)^2 over the `rows` x `m` row-major matrix v — the
// explained-variance accumulation of GaussianProcess::predict_block.

void sumsq_rows_accumulate(const double* v, std::size_t rows, std::size_t m,
                           double* acc);
void sumsq_rows_accumulate_scalar(const double* v, std::size_t rows,
                                  std::size_t m, double* acc);
void sumsq_rows_accumulate_avx2(const double* v, std::size_t rows,
                                std::size_t m, double* acc);

// ---------------------------------------------------------------------------
// Stationary-kernel row evaluation (Kernel::gram rows / Kernel::cross):
//   out[j] = signal_variance * corr(r_j),
//   r_j = sqrt(sum_d ((x[d] - pts[j][d]) / lengthscales[d])^2).
// The AVX2 path evaluates four points per iteration with a polynomial
// exp(-s) (magic-number rounding, two-part ln2 reduction, degree-11 Taylor
// core — the fast_normal recipe), accurate to a few ulp of libm; inputs
// past the libm-denormal range flush to the same 0.0.  Remainder points are
// padded into a full vector, so out[j] depends only on x and pts[j] — never
// on j's position in the batch — which keeps Kernel::cross bit-equal to
// pointwise Kernel::operator() evaluation at every dispatch level.

enum class Corr : int { kMatern52 = 0, kMatern32 = 1, kRbf = 2 };

void corr_row(Corr family, const double* x, const double* const* pts,
              std::size_t count, const double* lengthscales, std::size_t dim,
              double signal_variance, double* out);
void corr_row_scalar(Corr family, const double* x, const double* const* pts,
                     std::size_t count, const double* lengthscales,
                     std::size_t dim, double signal_variance, double* out);
void corr_row_avx2(Corr family, const double* x, const double* const* pts,
                   std::size_t count, const double* lengthscales,
                   std::size_t dim, double signal_variance, double* out);

// ---------------------------------------------------------------------------
// Batched standard-normal pdf/cdf (the common/fast_normal polynomial).
// Elementwise: AVX2 is bit-identical to scalar.

void normal_pdf_cdf_batch(const double* t, std::size_t count, double* pdf,
                          double* cdf);
void normal_pdf_cdf_batch_scalar(const double* t, std::size_t count,
                                 double* pdf, double* cdf);
void normal_pdf_cdf_batch_avx2(const double* t, std::size_t count, double* pdf,
                               double* cdf);

// ---------------------------------------------------------------------------
// EHVI strip precomputation for one candidate against a compiled front of
// m = n_front + 1 strips (bo::CompiledFront::ehvi_block fast path):
//   width[0]  = psi(v_0, v_0)            (strip with u = -inf)
//   width[k]  = (v_k - v_{k-1}) * cdf1[k-1] + (psi_vv_k - psi_vu_k)
//   height[k] = sigma2 * pdf2[k] + (ceiling2[k] - mu2) * cdf2[k]
// with psi(a, b) = sigma * pdf(t_b) + (a - mu) * cdf(t_b) evaluated from
// the pre-tabulated pdf/cdf.  Elementwise in k: AVX2 is bit-identical to
// scalar; the caller keeps the serial k-ordered accumulation (and its
// width > 0 guard), so totals match the pre-SIMD loop bit-for-bit.

void ehvi_strips(const double* bound1, const double* ceiling2, std::size_t m,
                 double mu1, double sigma1, double mu2, double sigma2,
                 const double* pdf1, const double* cdf1, const double* pdf2,
                 const double* cdf2, double* width, double* height);
void ehvi_strips_scalar(const double* bound1, const double* ceiling2,
                        std::size_t m, double mu1, double sigma1, double mu2,
                        double sigma2, const double* pdf1, const double* cdf1,
                        const double* pdf2, const double* cdf2, double* width,
                        double* height);
void ehvi_strips_avx2(const double* bound1, const double* ceiling2,
                      std::size_t m, double mu1, double sigma1, double mu2,
                      double sigma2, const double* pdf1, const double* cdf1,
                      const double* pdf2, const double* cdf2, double* width,
                      double* height);

}  // namespace bofl::linalg::simd
