// Scalar reference kernels: the exact pre-SIMD implementations, moved here
// from linalg/matrix.cpp, linalg/cholesky.cpp, gp/kernel.cpp,
// gp/gaussian_process.cpp, bo/ehvi.cpp and common/fast_normal.cpp.  The
// bodies are kept verbatim (same expression trees, same accumulator
// splits) so that Level::kScalar reproduces the repo's historical bits —
// this file is the escape hatch `BOFL_SIMD=scalar` runs.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "linalg/simd/kernels.hpp"

namespace bofl::linalg::simd {

double dot_serial_scalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

// Four-way accumulator split (the Cholesky layer's dot_n): breaks the
// serial FP dependence chain so the compiler can keep four accumulators in
// flight; the combine order is part of the bit contract.
double dot_blocked_scalar(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += a[i] * b[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

// Register-blocked ikj kernel: four output rows share each streamed row of
// b, so b is read once per four rows of a instead of once per row.  The
// inner j loop is branch-free and unit-stride on both c and b.
void gemm_scalar(const double* a, std::size_t m, std::size_t k,
                 const double* b, std::size_t n, double* c) {
  constexpr std::size_t kRowBlock = 4;
  std::size_t i = 0;
  for (; i + kRowBlock <= m; i += kRowBlock) {
    double* c0 = c + i * n;
    double* c1 = c0 + n;
    double* c2 = c1 + n;
    double* c3 = c2 + n;
    const double* a0 = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* bk = b + kk * n;
      const double v0 = a0[kk];
      const double v1 = a0[k + kk];
      const double v2 = a0[2 * k + kk];
      const double v3 = a0[3 * k + kk];
      for (std::size_t j = 0; j < n; ++j) {
        const double bkj = bk[j];
        c0[j] += v0 * bkj;
        c1[j] += v1 * bkj;
        c2[j] += v2 * bkj;
        c3[j] += v3 * bkj;
      }
    }
  }
  for (; i < m; ++i) {  // remainder rows
    double* ci = c + i * n;
    const double* ai = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* bk = b + kk * n;
      const double aik = ai[kk];
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aik * bk[j];
      }
    }
  }
}

// Forward substitution vectorized across the m right-hand sides: the inner
// loop is a unit-stride axpy over row i, so one pass through L serves the
// whole block instead of m independent strided solves.
void solve_lower_multi_inplace_scalar(const double* l, std::size_t n,
                                      double* x, std::size_t m) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l + i * n;
    double* xi = x + i * m;
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = li[j];
      const double* xj = x + j * m;
      for (std::size_t c = 0; c < m; ++c) {
        xi[c] -= lij * xj[c];
      }
    }
    const double inv = 1.0 / li[i];
    for (std::size_t c = 0; c < m; ++c) {
      xi[c] *= inv;
    }
  }
}

void sumsq_rows_accumulate_scalar(const double* v, std::size_t rows,
                                  std::size_t m, double* acc) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* vi = v + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      acc[j] += vi[j] * vi[j];
    }
  }
}

namespace {

/// The correlation switch of gp::Kernel::correlation, verbatim.
inline double correlation_scalar(Corr family, double r) {
  switch (family) {
    case Corr::kMatern52: {
      const double s = std::sqrt(5.0) * r;
      return (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
    case Corr::kMatern32: {
      const double s = std::sqrt(3.0) * r;
      return (1.0 + s) * std::exp(-s);
    }
    case Corr::kRbf:
      return std::exp(-0.5 * r * r);
  }
  return 0.0;  // unreachable; the dispatching caller validated the family
}

}  // namespace

void corr_row_scalar(Corr family, const double* x, const double* const* pts,
                     std::size_t count, const double* lengthscales,
                     std::size_t dim, double signal_variance, double* out) {
  for (std::size_t j = 0; j < count; ++j) {
    const double* p = pts[j];
    double r2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = (x[i] - p[i]) / lengthscales[i];
      r2 += d * d;
    }
    out[j] = signal_variance * correlation_scalar(family, std::sqrt(r2));
  }
}

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}  // namespace

void normal_pdf_cdf_batch_scalar(const double* t, std::size_t count,
                                 double* pdf, double* cdf) {
  const double kLog2e = 1.4426950408889634;
  // exp(x) = 2^k * exp(r), r = x - k*ln2 split into a high/low pair so the
  // reduction stays exact to the last bit of the degree-11 Taylor core.
  const double kLn2Hi = 6.93147180369123816490e-01;
  const double kLn2Lo = 1.90821492927058770002e-10;
  const double kShift = 6755399441055744.0;  // 1.5 * 2^52: round-to-int trick
  for (std::size_t i = 0; i < count; ++i) {
    const double ti = t[i];
    double z = std::fabs(ti);
    // Keep -z^2/2 inside the scaled-exponent domain; everything past the
    // flush threshold below is forced to exact zero anyway.
    z = std::min(z, 37.7);
    const double x = -0.5 * z * z;
    double kd = x * kLog2e + kShift;
    std::int64_t ki;
    std::memcpy(&ki, &kd, 8);
    ki = (ki << 32) >> 32;  // low mantissa bits hold round(x * log2 e)
    kd -= kShift;
    const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
    double q = 1.0 / 39916800.0;
    q = q * r + 1.0 / 3628800.0;
    q = q * r + 1.0 / 362880.0;
    q = q * r + 1.0 / 40320.0;
    q = q * r + 1.0 / 5040.0;
    q = q * r + 1.0 / 720.0;
    q = q * r + 1.0 / 120.0;
    q = q * r + 1.0 / 24.0;
    q = q * r + 1.0 / 6.0;
    q = q * r + 0.5;
    q = q * r + 1.0;
    q = q * r + 1.0;
    std::int64_t sbits = (ki + 1023) << 52;
    double scale;
    std::memcpy(&scale, &sbits, 8);
    const double e = q * scale;  // exp(-z^2/2)
    double p = kInvSqrt2Pi * e;
    // Hart 5666 / West(2005) rational for the complementary cdf, |z| < 5/√2.
    double num = 3.52624965998911e-02;
    num = num * z + 0.700383064443688;
    num = num * z + 6.37396220353165;
    num = num * z + 33.912866078383;
    num = num * z + 112.079291497871;
    num = num * z + 221.213596169931;
    num = num * z + 220.206867912376;
    double den = 8.83883476483184e-02;
    den = den * z + 1.75566716318264;
    den = den * z + 16.064177579207;
    den = den * z + 86.7807322029461;
    den = den * z + 296.564248779674;
    den = den * z + 637.333633378831;
    den = den * z + 793.826512519948;
    den = den * z + 440.413735824752;
    const double c_main = e * num / den;
    // Far tail: five-term asymptotic Mills-ratio series, pdf(z)/z * (1 - ...).
    const double inv = 1.0 / z;
    const double inv2 = inv * inv;
    const double c_tail =
        p * inv *
        (1.0 -
         inv2 * (1.0 - 3.0 * inv2 *
                           (1.0 - 5.0 * inv2 *
                                      (1.0 - 7.0 * inv2 * (1.0 - 9.0 * inv2)))));
    double c = z < 7.07106781186547 ? c_main : c_tail;
    // Flush to the exact zeros libm would produce, preserving exact-zero
    // acquisition ties (and masking the clamped-exp garbage past z = 37.7).
    const bool flush = z > 37.6;
    c = flush ? 0.0 : c;
    p = flush ? 0.0 : p;
    pdf[i] = p;
    cdf[i] = ti <= 0.0 ? c : 1.0 - c;
  }
}

void ehvi_strips_scalar(const double* bound1, const double* ceiling2,
                        std::size_t m, double mu1, double sigma1, double mu2,
                        double sigma2, const double* pdf1, const double* cdf1,
                        const double* pdf2, const double* cdf2, double* width,
                        double* height) {
  // psi_ei(v, v, mu, sigma) = sigma * pdf(t_v) + (v - mu) * cdf(t_v); the
  // expressions below are the pre-SIMD ehvi_block combine loop verbatim,
  // with the serial accumulation left to the caller.
  width[0] = sigma1 * pdf1[0] + (bound1[0] - mu1) * cdf1[0];
  for (std::size_t k = 1; k < m; ++k) {
    const double u = bound1[k - 1];
    const double v = bound1[k];
    const double psi_vv = sigma1 * pdf1[k] + (v - mu1) * cdf1[k];
    const double psi_vu = sigma1 * pdf1[k - 1] + (v - mu1) * cdf1[k - 1];
    width[k] = (v - u) * cdf1[k - 1] + (psi_vv - psi_vu);
  }
  for (std::size_t k = 0; k < m; ++k) {
    height[k] = sigma2 * pdf2[k] + (ceiling2[k] - mu2) * cdf2[k];
  }
}

}  // namespace bofl::linalg::simd
