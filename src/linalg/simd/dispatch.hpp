// Runtime SIMD dispatch for the numeric kernel layer.
//
// Every hot kernel in src/linalg/simd/kernels.hpp exists in (at least) two
// implementations: a scalar reference — the exact code the repo shipped
// before the SIMD layer, so `Level::kScalar` reproduces those bits — and an
// AVX2+FMA path.  The level is resolved once per process, in this order:
//
//   1. an explicit override (`force_level`, wired to the drivers' `--simd`
//      flag and used by the differential tests),
//   2. the BOFL_SIMD environment variable ("avx2" | "scalar"), so CI can
//      pin either leg without touching a command line,
//   3. the widest ISA the CPU actually executes (cpuid, including the
//      OS-support check), falling back to scalar.
//
// Asking for AVX2 on a machine that cannot run it (or in a build where the
// AVX2 translation unit was not compiled) is a hard error, not a silent
// downgrade: a pinned CI leg must run the leg it pinned.
//
// Determinism contract (see DESIGN.md §6h): for a fixed level, every kernel
// is bit-deterministic — reductions fix their lane-accumulation order, so
// results do not depend on --threads/--shards or batch boundaries.  The
// scalar level is additionally bit-identical to the pre-SIMD code; the AVX2
// level is bit-identical to scalar for the elementwise kernels and
// tolerance-pinned for the reduction kernels (which fuse with FMA).
#pragma once

#include <optional>
#include <string_view>

namespace bofl::linalg::simd {

enum class Level : int {
  kScalar = 0,  ///< the pre-SIMD reference code; runs anywhere
  kAvx2 = 1,    ///< AVX2 + FMA, 4 x f64 lanes
};

[[nodiscard]] const char* to_string(Level level);

/// Inverse of to_string; nullopt when `name` is not a known level.
[[nodiscard]] std::optional<Level> level_from_string(std::string_view name);

/// True when this binary contains the AVX2 kernel translation unit (x86-64
/// builds with a compiler that takes -mavx2 -mfma).
[[nodiscard]] bool avx2_compiled();

/// True when the CPU supports AVX2 and FMA *and* the OS saves the ymm
/// state (the full cpuid + xgetbv dance, via the compiler builtin).
[[nodiscard]] bool cpu_supports_avx2();

/// The dispatch level in effect, resolved once per process (override >
/// BOFL_SIMD > cpuid).  Throws std::invalid_argument if BOFL_SIMD names an
/// unknown level or one this machine/build cannot execute.
[[nodiscard]] Level active_level();

/// Explicit override (the drivers' --simd flag; differential tests).
/// Throws std::invalid_argument when the level cannot be executed here.
void force_level(Level level);

}  // namespace bofl::linalg::simd
