// Minimal dense linear algebra for the GP and LP layers.
//
// BoFL's matrices are small (GP kernel matrices of at most a few hundred
// observations; simplex tableaus with a handful of constraints), so a plain
// row-major dense representation is the right tool — no expression
// templates, no external dependency.  The kernels are register-blocked and
// branch-free in their inner loops so the compiler auto-vectorizes them;
// the MBO proposal path runs them thousands of times per round.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace bofl::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// Raw pointer to row `r` (rows are contiguous in row-major storage).
  /// The blocked kernels in matrix.cpp / cholesky.cpp hoist these out of
  /// their inner loops so the compiler sees plain unit-stride arrays.
  [[nodiscard]] double* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator-(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator*(Matrix a, double s);
[[nodiscard]] Matrix operator*(double s, Matrix a);
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);

/// Dot product; requires equal sizes.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& a);

/// Squared Euclidean distance between two equally sized vectors.
[[nodiscard]] double squared_distance(const Vector& a, const Vector& b);

/// a + s * b, element-wise; requires equal sizes.
[[nodiscard]] Vector axpy(const Vector& a, double s, const Vector& b);

}  // namespace bofl::linalg
