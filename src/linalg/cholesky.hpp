// Cholesky factorization and triangular solves.
//
// The GP layer conditions on observations through K = L L^T.  Kernel
// matrices can be numerically semi-definite when observations nearly
// coincide, so `cholesky_with_jitter` retries with geometrically increasing
// diagonal jitter — the standard GP-library recipe.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace bofl::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Returns std::nullopt if the matrix is not (numerically) positive definite.
[[nodiscard]] std::optional<Matrix> cholesky(const Matrix& a);

struct JitteredCholesky {
  Matrix l;            ///< lower-triangular factor of (a + jitter * I)
  double jitter = 0.0; ///< the jitter that was actually applied
};

/// Cholesky with escalating diagonal jitter: tries jitter values
/// 0, j0, 10*j0, ... up to `max_jitter`.  Throws InternalError if even the
/// largest jitter fails (which indicates a structurally broken matrix).
[[nodiscard]] JitteredCholesky cholesky_with_jitter(const Matrix& a,
                                                    double initial_jitter = 1e-10,
                                                    double max_jitter = 1e-2);

/// Rank-1 extension of a Cholesky factor: given the n x n factor L of A,
/// the cross-covariance column `cross` = A'[0..n, n] and the new diagonal
/// entry `diag` = A'[n, n], returns the (n+1) x (n+1) factor of the
/// bordered matrix A' in O(n^2) (one forward substitution) instead of the
/// O(n^3) from-scratch refactorization.  Returns std::nullopt when the
/// appended row makes the matrix numerically indefinite (e.g. a duplicate
/// point with no observation noise) — callers fall back to a full
/// `cholesky_with_jitter` refit in that case.
[[nodiscard]] std::optional<Matrix> cholesky_append_row(const Matrix& l,
                                                        const Vector& cross,
                                                        double diag);

/// Solve L x = b with L lower triangular (forward substitution).
[[nodiscard]] Vector solve_lower(const Matrix& l, const Vector& b);

/// Solve L X = B for m right-hand sides given as the *columns* of the
/// row-major n x m matrix `b`.  One blocked forward substitution whose
/// inner loops are unit-stride across the m systems — the GP uses this to
/// get posterior variances for a whole candidate block at once.
[[nodiscard]] Matrix solve_lower_multi(const Matrix& l, const Matrix& b);

/// Solve L^T x = b with L lower triangular (backward substitution).
[[nodiscard]] Vector solve_lower_transpose(const Matrix& l, const Vector& b);

/// Solve (L L^T) x = b given the Cholesky factor L.
[[nodiscard]] Vector solve_cholesky(const Matrix& l, const Vector& b);

/// log det(L L^T) = 2 * sum_i log L_ii, given the Cholesky factor L.
[[nodiscard]] double log_det_from_cholesky(const Matrix& l);

}  // namespace bofl::linalg
