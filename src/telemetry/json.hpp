// Minimal JSON value/writer for the telemetry exporters (JSON Lines events,
// run summaries, BENCH_*.json).  Objects preserve insertion order and
// doubles print via shortest-round-trip std::to_chars, so serialized output
// is byte-stable — a hard requirement for the golden-file tests and for
// diffing summaries across runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace bofl::telemetry {

class JsonValue {
 public:
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}                          // NOLINT
  JsonValue(std::int64_t i) : value_(i) {}                  // NOLINT
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT
  JsonValue(std::uint64_t u)                                // NOLINT
      : value_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : value_(d) {}                        // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}        // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}      // NOLINT

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.value_ = std::vector<Member>{};
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.value_ = std::vector<JsonValue>{};
    return v;
  }

  /// Append a key (objects only; keys are not deduplicated — the caller
  /// owns uniqueness).  Returns *this for chaining.
  JsonValue& set(std::string key, JsonValue value);

  /// Append an element (arrays only).
  void push_back(JsonValue value);

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::vector<Member>>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::vector<JsonValue>>(value_);
  }
  /// Object members in insertion order (objects only).
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Compact single-line serialization.
  [[nodiscard]] std::string dump() const;

  /// JSON string escaping (quotes, backslashes, control characters).
  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  void dump_to(std::string& out) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               std::vector<JsonValue>, std::vector<Member>>
      value_;
};

}  // namespace bofl::telemetry
