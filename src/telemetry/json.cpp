#include "telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace bofl::telemetry {

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  BOFL_REQUIRE(is_object(), "set() requires a JSON object");
  std::get<std::vector<Member>>(value_).emplace_back(std::move(key),
                                                    std::move(value));
  return *this;
}

void JsonValue::push_back(JsonValue value) {
  BOFL_REQUIRE(is_array(), "push_back() requires a JSON array");
  std::get<std::vector<JsonValue>>(value_).push_back(std::move(value));
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  BOFL_REQUIRE(is_object(), "members() requires a JSON object");
  return std::get<std::vector<Member>>(value_);
}

std::string JsonValue::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t i) const { out += std::to_string(i); }
    void operator()(double d) const {
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no inf/nan
        return;
      }
      char buf[32];
      const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), d);
      out.append(buf, r.ptr);
    }
    void operator()(const std::string& s) const {
      out += '"';
      out += escape(s);
      out += '"';
    }
    void operator()(const std::vector<JsonValue>& array) const {
      out += '[';
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        array[i].dump_to(out);
      }
      out += ']';
    }
    void operator()(const std::vector<Member>& object) const {
      out += '{';
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '"';
        out += escape(object[i].first);
        out += "\":";
        object[i].second.dump_to(out);
      }
      out += '}';
    }
  };
  std::visit(Visitor{out}, value_);
}

}  // namespace bofl::telemetry
