// Structured run recorder: a JSON Lines event stream plus an end-of-run
// summary rendered from the metrics registry.
//
// Events are flat JSON objects, one per line:
//   {"event":"round","seq":12,"round":3,"energy_j":512.8,...}
// The event stream carries *simulation* quantities only (SimClock time,
// trace energies, phases) and is therefore deterministic: two runs with the
// same seeds produce byte-identical event lines.  Wall-clock profiling
// (ScopedTimer histograms) appears only in the summary, which is expected
// to vary run-to-run in its timing sections.
//
// Like the registry, the recorder is installed process-globally;
// instrumentation sites do
//   if (auto* rec = telemetry::global_recorder()) rec->emit(...);
// so a run without telemetry pays one pointer load per site.
#pragma once

#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::telemetry {

class RunRecorder {
 public:
  /// Events stream to `jsonl_path` (JSON Lines, flushed per event); with an
  /// empty path, events are counted but not written (summary-only mode).
  RunRecorder(Registry& registry, const std::string& jsonl_path);

  RunRecorder(const RunRecorder&) = delete;
  RunRecorder& operator=(const RunRecorder&) = delete;

  /// Write one event line: {"event": <name>, "seq": <n>, ...fields}.
  /// `fields` must be a JSON object.  Thread-safe; `seq` reflects emit
  /// order, so a serial caller gets a deterministic stream.
  void emit(const std::string& event, JsonValue fields = JsonValue::object());

  /// Registry snapshot as an ordered JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// mean, min, max, p50, p90, p99, buckets:[{le,count},...]}}}.
  [[nodiscard]] JsonValue summary() const;

  /// Append the summary as a final {"event":"summary",...} line.
  void emit_summary();

  /// Human-readable summary table.
  void print_summary(std::FILE* out) const;

  [[nodiscard]] std::size_t events_written() const { return events_; }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Registry& registry_;
  std::string path_;
  std::ofstream out_;
  mutable std::mutex mutex_;
  std::size_t events_ = 0;
};

/// Process-global recorder (nullptr = event recording disabled).
/// Installing a recorder also installs its registry as the global registry;
/// installing nullptr clears both.
[[nodiscard]] RunRecorder* global_recorder();
void install_global_recorder(RunRecorder* recorder);

}  // namespace bofl::telemetry
