// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms for observing where time and energy go across the stack.
//
// Design rules:
//   * Hot-path writes are lock-free.  Every metric is sharded into a fixed
//     number of cache-line-aligned stripes; a thread picks its stripe once
//     (round-robin at first use) and then only ever touches that stripe
//     with relaxed atomics.  Reads merge the stripes, so snapshots are
//     consistent-enough for reporting without ever stalling a writer.
//   * Observation only.  Nothing in this module consumes RNG draws or
//     SimClock time, so instrumenting a simulation cannot perturb its
//     results (the determinism contract, see DESIGN.md "Observability &
//     telemetry").
//   * Zero-cost when disabled.  Instrumentation sites fetch the process
//     global registry (one atomic load); when none is installed they skip
//     all work.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bofl::telemetry {

namespace detail {

/// Stripes per metric; power of two so the thread-id mask is a single AND.
inline constexpr std::size_t kStripes = 16;

/// The stripe this thread writes to (assigned round-robin at first use).
[[nodiscard]] std::size_t thread_stripe();

/// Portable atomic `target += delta` for doubles (CAS loop; relaxed).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::thread_stripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum of all stripes.
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, detail::kStripes> cells_;
};

/// Last-write-wins scalar (worker counts, utilizations, hypervolume).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram: cumulative-style fixed buckets plus the
/// scalar moments needed for reporting.
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets (strictly increasing); counts has
  /// one extra trailing entry for the overflow bucket.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Bucket-interpolated quantile estimate, clamped to [min, max].
  [[nodiscard]] double quantile(double q) const;
};

/// Fixed-bucket histogram; bucket i counts observations v <= bounds[i],
/// plus an implicit overflow bucket.  Writes are striped like Counter.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets)
        : counts(buckets),
          min(std::numeric_limits<double>::infinity()),
          max(-std::numeric_limits<double>::infinity()) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min;
    std::atomic<double> max;
  };

  [[nodiscard]] std::size_t bucket_index(double v) const;

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// `count` bounds starting at `start`, each `factor` times the previous.
[[nodiscard]] std::vector<double> exponential_buckets(double start,
                                                      double factor,
                                                      std::size_t count);
/// `count` bounds `start, start + width, ...`.
[[nodiscard]] std::vector<double> linear_buckets(double start, double width,
                                                 std::size_t count);
/// Factor-4 bounds from 1 µs-scale to ~1e6 — wide enough for both seconds
/// and joules; the default when a histogram is created without bounds.
[[nodiscard]] const std::vector<double>& default_buckets();

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct NamedHistogramSnapshot {
  std::string name;
  HistogramSnapshot histogram;
};

/// Point-in-time merged view of a whole registry, sorted by name.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<NamedHistogramSnapshot> histograms;
};

/// Named-metric owner.  Registration (first use of a name) takes a mutex;
/// returned references stay valid for the registry's lifetime, so call
/// sites look a metric up once per scope and then write lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// Get-or-create; `bounds` applies only on creation (empty = defaults).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds = {});

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-global registry used by the instrumentation sites across the
/// stack; nullptr (the default) disables all recording.  The installed
/// registry must outlive every component that cached handles from it
/// (create it first, destroy it last).
[[nodiscard]] Registry* global_registry();
void set_global_registry(Registry* registry);

}  // namespace bofl::telemetry
