#include "telemetry/run_recorder.hpp"

#include <atomic>

#include "common/error.hpp"

namespace bofl::telemetry {

RunRecorder::RunRecorder(Registry& registry, const std::string& jsonl_path)
    : registry_(registry), path_(jsonl_path) {
  if (!path_.empty()) {
    out_.open(path_);
    BOFL_REQUIRE(out_.is_open(), "cannot open metrics output: " + path_);
  }
}

void RunRecorder::emit(const std::string& event, JsonValue fields) {
  BOFL_REQUIRE(fields.is_object(), "event fields must be a JSON object");
  JsonValue line = JsonValue::object();
  const std::lock_guard<std::mutex> lock(mutex_);
  line.set("event", event).set("seq", events_);
  for (const JsonValue::Member& member : fields.members()) {
    line.set(member.first, member.second);
  }
  ++events_;
  if (out_.is_open()) {
    out_ << line.dump() << '\n';
    out_.flush();
  }
}

JsonValue RunRecorder::summary() const {
  const RegistrySnapshot snap = registry_.snapshot();
  JsonValue counters = JsonValue::object();
  for (const CounterSnapshot& c : snap.counters) {
    counters.set(c.name, c.value);
  }
  JsonValue gauges = JsonValue::object();
  for (const GaugeSnapshot& g : snap.gauges) {
    gauges.set(g.name, g.value);
  }
  JsonValue histograms = JsonValue::object();
  for (const NamedHistogramSnapshot& h : snap.histograms) {
    JsonValue entry = JsonValue::object();
    entry.set("count", h.histogram.count)
        .set("sum", h.histogram.sum)
        .set("mean", h.histogram.mean())
        .set("min", h.histogram.min)
        .set("max", h.histogram.max)
        .set("p50", h.histogram.quantile(0.50))
        .set("p90", h.histogram.quantile(0.90))
        .set("p99", h.histogram.quantile(0.99));
    JsonValue buckets = JsonValue::array();
    for (std::size_t b = 0; b < h.histogram.counts.size(); ++b) {
      if (h.histogram.counts[b] == 0) {
        continue;  // sparse export: empty buckets carry no information
      }
      JsonValue bucket = JsonValue::object();
      bucket.set("le", b < h.histogram.bounds.size()
                           ? JsonValue(h.histogram.bounds[b])
                           : JsonValue("inf"));
      bucket.set("count", h.histogram.counts[b]);
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
  return out;
}

void RunRecorder::emit_summary() { emit("summary", summary()); }

void RunRecorder::print_summary(std::FILE* out) const {
  const RegistrySnapshot snap = registry_.snapshot();
  std::fprintf(out, "\n=== telemetry summary ===\n");
  if (!snap.counters.empty()) {
    std::fprintf(out, "counters:\n");
    for (const CounterSnapshot& c : snap.counters) {
      std::fprintf(out, "  %-36s %14llu\n", c.name.c_str(),
                   static_cast<unsigned long long>(c.value));
    }
  }
  if (!snap.gauges.empty()) {
    std::fprintf(out, "gauges:\n");
    for (const GaugeSnapshot& g : snap.gauges) {
      std::fprintf(out, "  %-36s %14.4g\n", g.name.c_str(), g.value);
    }
  }
  if (!snap.histograms.empty()) {
    std::fprintf(out, "histograms:%*s count       mean        p50        p90        max\n",
                 26, "");
    for (const NamedHistogramSnapshot& h : snap.histograms) {
      std::fprintf(out, "  %-36s %5llu %10.4g %10.4g %10.4g %10.4g\n",
                   h.name.c_str(),
                   static_cast<unsigned long long>(h.histogram.count),
                   h.histogram.mean(), h.histogram.quantile(0.50),
                   h.histogram.quantile(0.90), h.histogram.max);
    }
  }
}

namespace {
std::atomic<RunRecorder*> g_recorder{nullptr};
}  // namespace

RunRecorder* global_recorder() {
  return g_recorder.load(std::memory_order_acquire);
}

void install_global_recorder(RunRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
  set_global_registry(recorder == nullptr ? nullptr : &recorder->registry());
}

}  // namespace bofl::telemetry
