// Process-level resource probes for telemetry gauges.
//
// The fleet engine's flat-memory claim ("O(1) bytes per client beyond the
// SoA shards") is machine-checked by sampling the process's peak resident
// set into the `fleet.peak_rss_bytes` gauge and into the fleet bench JSON.
// Reading /proc (or rusage) is observation only: it consumes no RNG draws
// and no simulated time, so sampling it never perturbs a simulation.
#pragma once

#include <cstdint>

namespace bofl::telemetry {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status; falls back to getrusage's ru_maxrss).  Returns 0 when
/// neither source is available.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS; same fallbacks as above).
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace bofl::telemetry
