#include "telemetry/process.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bofl::telemetry {

namespace {

/// Parse a "VmHWM:   123456 kB" style line from /proc/self/status.
std::uint64_t proc_status_kb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len, " %llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)field;
  return 0;
#endif
}

std::uint64_t rusage_max_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_bytes() {
  const std::uint64_t kb = proc_status_kb("VmHWM:");
  if (kb > 0) {
    return kb * 1024;
  }
  return rusage_max_rss_bytes();
}

std::uint64_t current_rss_bytes() {
  const std::uint64_t kb = proc_status_kb("VmRSS:");
  if (kb > 0) {
    return kb * 1024;
  }
  return rusage_max_rss_bytes();
}

}  // namespace bofl::telemetry
