// Minimal JSON reader (objects, arrays, strings, numbers, bools, null).
// The telemetry JsonValue is write-only by design; fault plans were the
// first thing the repo *read* as JSON and the priors KnowledgeStore is the
// second, so the reader lives here where both can share it.  It covers
// exactly the dialect JsonValue::dump emits.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bofl::telemetry {

struct JsonNode {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonNode> array;
  std::vector<std::pair<std::string, JsonNode>> object;

  [[nodiscard]] const JsonNode* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

/// Parse `text` as a single JSON value; throws common/error on malformed
/// input or trailing characters.
[[nodiscard]] JsonNode parse_json(const std::string& text);

/// Read object field `key` as a number, or `fallback` when absent.  Throws
/// when the field exists but is not a number.
[[nodiscard]] double number_field(const JsonNode& node, const std::string& key,
                                  double fallback);

}  // namespace bofl::telemetry
