// RAII profiling scope: measures the wall-clock time spent inside a block
// and records it into a Histogram on destruction.
//
// Wall-clock timings are *profiling* data — they belong to the
// `profile`-style histograms in the summary and never enter the
// deterministic event stream (which carries SimClock quantities only; see
// DESIGN.md "Observability & telemetry").  A null sink disables the timer
// entirely — not even the clock is read — so instrumentation sites can
// construct one unconditionally:
//
//   telemetry::ScopedTimer timer(
//       reg ? &reg->histogram("mbo.gp_fit_seconds") : nullptr);
#pragma once

#include <chrono>

#include "telemetry/metrics.hpp"

namespace bofl::telemetry {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink) : sink_(sink) {
    if (sink_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit; returns the elapsed seconds
  /// (0 when the timer is disabled).  Idempotent.
  double stop() {
    if (sink_ == nullptr) {
      return 0.0;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    sink_->observe(elapsed.count());
    sink_ = nullptr;
    return elapsed.count();
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace bofl::telemetry
