#include "telemetry/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bofl::telemetry {

namespace detail {

std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

}  // namespace detail

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t previous = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target && counts[i] > 0) {
      // Interpolate inside the bucket, clamped to the observed range so an
      // all-in-one-bucket histogram reports exact values.
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo) {
        return hi;
      }
      const double within =
          (target - static_cast<double>(previous)) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  BOFL_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  BOFL_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
  shards_.reserve(detail::kStripes);
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

std::size_t Histogram::bucket_index(double v) const {
  // Bucket i counts v <= bounds[i]; anything above the last bound lands in
  // the overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::observe(double v) {
  Shard& shard = *shards_[detail::thread_stripe()];
  shard.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sum, v);
  detail::atomic_min(shard.min, v);
  detail::atomic_max(shard.max, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    max = std::max(max, shard->max.load(std::memory_order_relaxed));
  }
  snap.min = snap.count == 0 ? 0.0 : min;
  snap.max = snap.count == 0 ? 0.0 : max;
  return snap;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  BOFL_REQUIRE(start > 0.0 && factor > 1.0 && count >= 1,
               "exponential buckets need start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count) {
  BOFL_REQUIRE(width > 0.0 && count >= 1,
               "linear buckets need width > 0, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

const std::vector<double>& default_buckets() {
  static const std::vector<double> bounds =
      exponential_buckets(1e-6, 4.0, 21);  // 1e-6 .. ~1.1e6
  return bounds;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? default_buckets() : std::move(bounds));
  }
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;  // std::map iteration order = sorted by name
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->total()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->snapshot()});
  }
  return snap;
}

namespace {
std::atomic<Registry*> g_registry{nullptr};
}  // namespace

Registry* global_registry() {
  return g_registry.load(std::memory_order_acquire);
}

void set_global_registry(Registry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

}  // namespace bofl::telemetry
