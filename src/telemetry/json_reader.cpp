#include "telemetry/json_reader.hpp"

#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace bofl::telemetry {

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonNode parse() {
    JsonNode root = parse_value();
    skip_ws();
    BOFL_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    BOFL_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    BOFL_REQUIRE(peek() == c, std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, literal) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  JsonNode parse_value() {
    JsonNode node;
    switch (peek()) {
      case '{': {
        node.type = JsonNode::Type::kObject;
        ++pos_;
        if (peek() == '}') {
          ++pos_;
          return node;
        }
        while (true) {
          std::string key = parse_string();
          expect(':');
          node.object.emplace_back(std::move(key), parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return node;
        }
      }
      case '[': {
        node.type = JsonNode::Type::kArray;
        ++pos_;
        if (peek() == ']') {
          ++pos_;
          return node;
        }
        while (true) {
          node.array.push_back(parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return node;
        }
      }
      case '"':
        node.type = JsonNode::Type::kString;
        node.string = parse_string();
        return node;
      case 't':
        BOFL_REQUIRE(consume_literal("true"), "malformed JSON literal");
        node.type = JsonNode::Type::kBool;
        node.boolean = true;
        return node;
      case 'f':
        BOFL_REQUIRE(consume_literal("false"), "malformed JSON literal");
        node.type = JsonNode::Type::kBool;
        node.boolean = false;
        return node;
      case 'n':
        BOFL_REQUIRE(consume_literal("null"), "malformed JSON literal");
        node.type = JsonNode::Type::kNull;
        return node;
      default: {
        node.type = JsonNode::Type::kNumber;
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        node.number = std::strtod(begin, &end);
        BOFL_REQUIRE(end != begin, "malformed JSON number");
        pos_ += static_cast<std::size_t>(end - begin);
        return node;
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      BOFL_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      BOFL_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          BOFL_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The repo's JSON dialects only carry ASCII names; reject wider.
          BOFL_REQUIRE(code < 0x80, "non-ASCII \\u escape in JSON input");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          BOFL_REQUIRE(false, "unsupported JSON escape");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonNode parse_json(const std::string& text) {
  JsonParser parser(text);
  return parser.parse();
}

double number_field(const JsonNode& node, const std::string& key,
                    double fallback) {
  const JsonNode* field = node.find(key);
  if (field == nullptr) {
    return fallback;
  }
  BOFL_REQUIRE(field->type == JsonNode::Type::kNumber,
               "JSON field '" + key + "' must be a number");
  return field->number;
}

}  // namespace bofl::telemetry
