// One cluster's distilled knowledge: the believed per-configuration
// profiles, the pruned Pareto representatives, the guardian anchor, and the
// GP hyperparameter optima of a converged controller.  Snapshots are what
// the KnowledgeStore merges and what a warm-started client consumes (via
// make_seed).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bofl_controller.hpp"
#include "gp/hyperopt.hpp"

namespace bofl::priors {

struct PriorSnapshot {
  /// Per-config aggregates, sorted by flat id (export_state order).
  std::vector<core::BoflController::SavedObservation> observations;
  /// Flat ids of the cluster's Pareto-optimal configs, sorted ascending.
  std::vector<std::size_t> pareto_flat_ids;
  /// Believed per-job latency at x_max, seconds (0 = unknown).  Only ever
  /// used for reporting — a warm-started client re-measures x_max before
  /// the guardian trusts anything.
  double t_x_max_s = 0.0;
  /// Rounds the most recent contributor had run when it was distilled.
  std::int64_t source_rounds = 0;
  /// Last hyperparameter-fit optima per objective (energy, latency).
  std::optional<gp::HyperoptResult> fit1;
  std::optional<gp::HyperoptResult> fit2;

  [[nodiscard]] bool empty() const { return observations.empty(); }

  /// Controller seed: all observations, plus up to `max_verify` Pareto
  /// representatives as the on-unit verification plan (x_max is prepended
  /// by the controller itself).
  [[nodiscard]] core::BoflController::PriorSeed make_seed(
      std::size_t max_verify = 4) const;
};

/// Distill a snapshot from a controller (typically converged — callers gate
/// on phase() == kExploitation).  Only locally-measured aggregates are
/// exported; Pareto ids are intersected with them so a borrowed overlay
/// never round-trips through the store.
[[nodiscard]] PriorSnapshot distill(const core::BoflController& controller,
                                    std::int64_t source_rounds);

}  // namespace bofl::priors
