#include "priors/knowledge_store.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "core/state_io.hpp"
#include "pareto/pareto.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_reader.hpp"

namespace bofl::priors {

namespace {

using core::BoflController;

/// Job-weighted combination of two aggregates of the same config, with the
/// state_io nextafter trick so mean -> weighted -> mean round trips exactly.
BoflController::SavedObservation merge_observation(
    const BoflController::SavedObservation& a,
    const BoflController::SavedObservation& b) {
  BoflController::SavedObservation out;
  out.config_flat = a.config_flat;
  out.jobs = a.jobs + b.jobs;
  const double energy = core::quotient_exact_weighted(a.mean_energy, a.jobs) +
                        core::quotient_exact_weighted(b.mean_energy, b.jobs);
  const double latency =
      core::quotient_exact_weighted(a.mean_latency, a.jobs) +
      core::quotient_exact_weighted(b.mean_latency, b.jobs);
  out.mean_energy = energy / out.jobs;
  out.mean_latency = latency / out.jobs;
  return out;
}

std::vector<std::size_t> recompute_pareto(
    const std::vector<BoflController::SavedObservation>& observations) {
  std::vector<pareto::Point2> points;
  points.reserve(observations.size());
  for (const auto& obs : observations) {
    points.push_back({obs.mean_energy, obs.mean_latency});
  }
  std::vector<std::size_t> ids;
  for (const std::size_t index : pareto::non_dominated_indices(points)) {
    ids.push_back(observations[index].config_flat);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

telemetry::JsonValue fit_to_json(int objective,
                                 const gp::HyperoptResult& fit) {
  telemetry::JsonValue node = telemetry::JsonValue::object();
  telemetry::JsonValue scales = telemetry::JsonValue::array();
  for (const double ls : fit.kernel.lengthscales()) {
    scales.push_back(ls);
  }
  node.set("objective", objective)
      .set("family", gp::to_string(fit.kernel.family()))
      .set("signal_variance", fit.kernel.signal_variance())
      .set("noise_variance", fit.noise_variance)
      .set("lml", fit.log_marginal_likelihood)
      .set("lengthscales", std::move(scales));
  return node;
}

std::optional<gp::HyperoptResult> fit_from_json(
    const telemetry::JsonNode& node) {
  using telemetry::JsonNode;
  const JsonNode* family = node.find("family");
  BOFL_REQUIRE(family != nullptr && family->type == JsonNode::Type::kString,
               "gp fit needs a string 'family'");
  const std::optional<gp::KernelFamily> parsed =
      gp::kernel_family_from_string(family->string);
  BOFL_REQUIRE(parsed.has_value(), "unknown kernel family: " + family->string);
  const JsonNode* scales = node.find("lengthscales");
  BOFL_REQUIRE(scales != nullptr && scales->type == JsonNode::Type::kArray,
               "gp fit needs a 'lengthscales' array");
  std::vector<double> lengthscales;
  lengthscales.reserve(scales->array.size());
  for (const JsonNode& ls : scales->array) {
    BOFL_REQUIRE(ls.type == JsonNode::Type::kNumber,
                 "lengthscales must be numbers");
    lengthscales.push_back(ls.number);
  }
  gp::HyperoptResult fit{
      gp::Kernel(*parsed, telemetry::number_field(node, "signal_variance", 1.0),
                 std::move(lengthscales)),
      telemetry::number_field(node, "noise_variance", 0.0),
      telemetry::number_field(node, "lml", 0.0)};
  return fit;
}

}  // namespace

KnowledgeStore::Admission KnowledgeStore::admit(const ClusterKey& key,
                                                PriorPolicy requested) const {
  if (requested == PriorPolicy::kCold) {
    return {};
  }
  const auto it = clusters_.find(key);
  if (it == clusters_.end() || it->second.snapshot.empty()) {
    return {};
  }
  const double conf = confidence(key);
  if (conf < options_.min_confidence) {
    return {};
  }
  PriorPolicy granted = requested;
  if (requested == PriorPolicy::kTrust && conf < options_.trust_confidence) {
    granted = PriorPolicy::kVerify;
  }
  return {granted, &it->second.snapshot};
}

void KnowledgeStore::contribute(const ClusterKey& key,
                                const PriorSnapshot& snapshot) {
  if (snapshot.empty()) {
    return;
  }
  ClusterKnowledge& cluster = clusters_[key];
  ++cluster.contributions;
  if (cluster.snapshot.empty()) {
    cluster.snapshot = snapshot;
    return;
  }
  // Two-pointer merge of the sorted observation lists.
  std::vector<BoflController::SavedObservation> merged;
  const auto& a = cluster.snapshot.observations;
  const auto& b = snapshot.observations;
  merged.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() ||
        (i < a.size() && a[i].config_flat < b[j].config_flat)) {
      merged.push_back(a[i++]);
    } else if (i == a.size() || b[j].config_flat < a[i].config_flat) {
      merged.push_back(b[j++]);
    } else {
      merged.push_back(merge_observation(a[i++], b[j++]));
    }
  }
  cluster.snapshot.observations = std::move(merged);
  cluster.snapshot.pareto_flat_ids =
      recompute_pareto(cluster.snapshot.observations);
  // Scalars: the newest contribution wins.
  cluster.snapshot.t_x_max_s = snapshot.t_x_max_s != 0.0
                                   ? snapshot.t_x_max_s
                                   : cluster.snapshot.t_x_max_s;
  cluster.snapshot.source_rounds = snapshot.source_rounds;
  if (snapshot.fit1 && snapshot.fit2) {
    cluster.snapshot.fit1 = snapshot.fit1;
    cluster.snapshot.fit2 = snapshot.fit2;
  }
}

void KnowledgeStore::record_outcome(const ClusterKey& key, bool confirmed) {
  const auto it = clusters_.find(key);
  if (it == clusters_.end()) {
    return;
  }
  if (confirmed) {
    ++it->second.verified;
  } else {
    ++it->second.mispredictions;
  }
}

double KnowledgeStore::confidence(const ClusterKey& key) const {
  const auto it = clusters_.find(key);
  if (it == clusters_.end()) {
    return 0.0;
  }
  const auto verified = static_cast<double>(it->second.verified);
  const auto mispredicted = static_cast<double>(it->second.mispredictions);
  if (verified + mispredicted == 0.0) {
    return 1.0;  // no evidence against a freshly trained cluster
  }
  return verified /
         (verified + options_.misprediction_weight * mispredicted);
}

const ClusterKnowledge* KnowledgeStore::lookup(const ClusterKey& key) const {
  const auto it = clusters_.find(key);
  return it == clusters_.end() ? nullptr : &it->second;
}

std::string KnowledgeStore::to_json() const {
  telemetry::JsonValue root = telemetry::JsonValue::object();
  root.set("version", 1);
  telemetry::JsonValue list = telemetry::JsonValue::array();
  for (const auto& [key, cluster] : clusters_) {
    telemetry::JsonValue entry = telemetry::JsonValue::object();
    entry.set("device", key.device)
        .set("workload", key.workload)
        .set("contributions", cluster.contributions)
        .set("verified", cluster.verified)
        .set("mispredictions", cluster.mispredictions);
    telemetry::JsonValue snap = telemetry::JsonValue::object();
    snap.set("source_rounds", cluster.snapshot.source_rounds)
        .set("t_x_max_s", cluster.snapshot.t_x_max_s);
    telemetry::JsonValue observations = telemetry::JsonValue::array();
    for (const auto& obs : cluster.snapshot.observations) {
      telemetry::JsonValue row = telemetry::JsonValue::array();
      row.push_back(static_cast<std::uint64_t>(obs.config_flat));
      row.push_back(obs.jobs);
      row.push_back(obs.mean_energy);
      row.push_back(obs.mean_latency);
      observations.push_back(std::move(row));
    }
    snap.set("observations", std::move(observations));
    telemetry::JsonValue front = telemetry::JsonValue::array();
    for (const std::size_t flat : cluster.snapshot.pareto_flat_ids) {
      front.push_back(static_cast<std::uint64_t>(flat));
    }
    snap.set("pareto", std::move(front));
    telemetry::JsonValue fits = telemetry::JsonValue::array();
    if (cluster.snapshot.fit1 && cluster.snapshot.fit2) {
      fits.push_back(fit_to_json(1, *cluster.snapshot.fit1));
      fits.push_back(fit_to_json(2, *cluster.snapshot.fit2));
    }
    snap.set("gp", std::move(fits));
    entry.set("snapshot", std::move(snap));
    list.push_back(std::move(entry));
  }
  root.set("clusters", std::move(list));
  return root.dump();
}

KnowledgeStore KnowledgeStore::from_json(const std::string& text,
                                         StoreOptions options) {
  using telemetry::JsonNode;
  using telemetry::number_field;
  const JsonNode root = telemetry::parse_json(text);
  BOFL_REQUIRE(root.type == JsonNode::Type::kObject,
               "a knowledge store must be a JSON object");
  BOFL_REQUIRE(number_field(root, "version", 0.0) == 1.0,
               "unsupported knowledge store version");
  KnowledgeStore store(options);
  const JsonNode* list = root.find("clusters");
  if (list == nullptr) {
    return store;
  }
  BOFL_REQUIRE(list->type == JsonNode::Type::kArray,
               "knowledge store 'clusters' must be an array");
  for (const JsonNode& entry : list->array) {
    BOFL_REQUIRE(entry.type == JsonNode::Type::kObject,
                 "each cluster must be a JSON object");
    const JsonNode* device = entry.find("device");
    const JsonNode* workload = entry.find("workload");
    BOFL_REQUIRE(device != nullptr &&
                     device->type == JsonNode::Type::kString &&
                     workload != nullptr &&
                     workload->type == JsonNode::Type::kString,
                 "each cluster needs string 'device' and 'workload'");
    ClusterKey key{device->string, workload->string};
    ClusterKnowledge cluster;
    cluster.contributions =
        static_cast<std::uint64_t>(number_field(entry, "contributions", 0.0));
    cluster.verified =
        static_cast<std::uint64_t>(number_field(entry, "verified", 0.0));
    cluster.mispredictions = static_cast<std::uint64_t>(
        number_field(entry, "mispredictions", 0.0));
    const JsonNode* snap = entry.find("snapshot");
    BOFL_REQUIRE(snap != nullptr && snap->type == JsonNode::Type::kObject,
                 "each cluster needs a 'snapshot' object");
    cluster.snapshot.source_rounds = static_cast<std::int64_t>(
        number_field(*snap, "source_rounds", 0.0));
    cluster.snapshot.t_x_max_s = number_field(*snap, "t_x_max_s", 0.0);
    if (const JsonNode* observations = snap->find("observations")) {
      BOFL_REQUIRE(observations->type == JsonNode::Type::kArray,
                   "'observations' must be an array");
      for (const JsonNode& row : observations->array) {
        BOFL_REQUIRE(row.type == JsonNode::Type::kArray &&
                         row.array.size() == 4,
                     "each observation row is [flat, jobs, energy, latency]");
        for (const JsonNode& cell : row.array) {
          BOFL_REQUIRE(cell.type == JsonNode::Type::kNumber,
                       "observation cells must be numbers");
        }
        BoflController::SavedObservation obs;
        obs.config_flat = static_cast<std::size_t>(row.array[0].number);
        obs.jobs = row.array[1].number;
        obs.mean_energy = row.array[2].number;
        obs.mean_latency = row.array[3].number;
        cluster.snapshot.observations.push_back(obs);
      }
    }
    if (const JsonNode* front = snap->find("pareto")) {
      BOFL_REQUIRE(front->type == JsonNode::Type::kArray,
                   "'pareto' must be an array");
      for (const JsonNode& id : front->array) {
        BOFL_REQUIRE(id.type == JsonNode::Type::kNumber,
                     "pareto ids must be numbers");
        cluster.snapshot.pareto_flat_ids.push_back(
            static_cast<std::size_t>(id.number));
      }
    }
    if (const JsonNode* fits = snap->find("gp")) {
      BOFL_REQUIRE(fits->type == JsonNode::Type::kArray,
                   "'gp' must be an array");
      if (fits->array.size() == 2) {
        cluster.snapshot.fit1 = fit_from_json(fits->array[0]);
        cluster.snapshot.fit2 = fit_from_json(fits->array[1]);
      }
    }
    store.clusters_.emplace(std::move(key), std::move(cluster));
  }
  return store;
}

void KnowledgeStore::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  BOFL_REQUIRE(out.is_open(), "cannot write knowledge store: " + path);
  out << to_json() << '\n';
  BOFL_REQUIRE(out.good(), "short write to knowledge store: " + path);
}

KnowledgeStore KnowledgeStore::from_file(const std::string& path,
                                         StoreOptions options) {
  std::ifstream in(path, std::ios::binary);
  BOFL_REQUIRE(in.is_open(), "cannot open knowledge store: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // Tolerate the trailing newline save() writes.
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return from_json(text, options);
}

}  // namespace bofl::priors
