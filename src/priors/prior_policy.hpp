// How a client consumes its cluster prior (the fleet knowledge plane's
// admission result).  Header-only and dependency-free so core can name the
// policy without linking the priors library.
#pragma once

#include <optional>
#include <string_view>

namespace bofl::priors {

enum class PriorPolicy {
  /// Ignore the store entirely.  Contract: a kCold client is bit-identical
  /// to a build without the priors subsystem (the differential guarantee).
  kCold,
  /// Adopt the cluster prior provisionally and re-measure x_max plus a few
  /// cluster representatives on this unit before trusting it structurally;
  /// a misprediction demotes the client back to cold start.  The default.
  kVerify,
  /// Import the prior as if this unit had measured it (skips verification;
  /// the per-round drift guardian is still armed by bad readings).  Only
  /// admitted for clusters above the store's trust-confidence bar.
  kTrust,
};

[[nodiscard]] constexpr const char* to_string(PriorPolicy policy) {
  switch (policy) {
    case PriorPolicy::kCold:
      return "cold";
    case PriorPolicy::kVerify:
      return "verify";
    case PriorPolicy::kTrust:
      return "trust";
  }
  return "unknown";
}

[[nodiscard]] inline std::optional<PriorPolicy> prior_policy_from_string(
    std::string_view name) {
  for (const PriorPolicy policy :
       {PriorPolicy::kCold, PriorPolicy::kVerify, PriorPolicy::kTrust}) {
    if (name == to_string(policy)) {
      return policy;
    }
  }
  return std::nullopt;
}

}  // namespace bofl::priors
