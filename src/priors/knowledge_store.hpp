// The fleet knowledge plane's server-side store: one merged PriorSnapshot
// per (device model × workload profile) cluster plus an outcome-driven
// confidence score that gates admission.
//
// Determinism rules (DESIGN.md §6g):
//   - contribute() merges with quotient-exact weighted means (the same
//     nextafter arithmetic state_io uses), so merge(a, merge(b, c)) is a
//     pure function of the contribution sequence;
//   - callers contribute in (cluster-id, client-id) canonical order — the
//     fleet engine iterates clusters in creation order, fl::Simulation in
//     client-id order — so a store built at any --shards × --threads layout
//     is byte-identical;
//   - to_json() emits clusters sorted by key with shortest-round-trip
//     doubles: save → load → save is byte-stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "priors/cluster_key.hpp"
#include "priors/prior_policy.hpp"
#include "priors/snapshot.hpp"

namespace bofl::priors {

struct StoreOptions {
  /// Below this confidence a cluster's prior is not offered at all.
  double min_confidence = 0.5;
  /// kTrust requests are downgraded to kVerify below this bar.
  double trust_confidence = 0.9;
  /// One misprediction outweighs this many verifications.
  double misprediction_weight = 4.0;
  /// Verification-pass length handed to PriorSnapshot::make_seed.  Two
  /// Pareto ids (plus the mandatory x_max re-measurement) fit a single
  /// round under the phase-1 guardian budget on the reference devices, so
  /// the verification pass collapses to one round; larger values spread the
  /// pass over more rounds for broader coverage.
  std::size_t max_verify_ids = 2;
};

struct ClusterKnowledge {
  PriorSnapshot snapshot;
  std::uint64_t contributions = 0;
  std::uint64_t verified = 0;
  std::uint64_t mispredictions = 0;
};

class KnowledgeStore {
 public:
  explicit KnowledgeStore(StoreOptions options = {}) : options_(options) {}

  /// Admission decision for a client requesting `requested`: the policy the
  /// store actually grants (possibly downgraded) and the cluster snapshot,
  /// or {kCold, nullptr} when the cluster is unknown, empty, or below the
  /// confidence bar.  kCold requests pass through untouched.
  struct Admission {
    PriorPolicy policy = PriorPolicy::kCold;
    const PriorSnapshot* snapshot = nullptr;
  };
  [[nodiscard]] Admission admit(const ClusterKey& key,
                                PriorPolicy requested) const;

  /// Merge a freshly distilled snapshot into the cluster: observation lists
  /// combine with job-weighted quotient-exact means, the Pareto front is
  /// recomputed over the merged profiles, and scalar fields (t_x_max,
  /// source_rounds, GP fits) take the newest contribution.
  void contribute(const ClusterKey& key, const PriorSnapshot& snapshot);

  /// Outcome feedback from a warm-started client: true when the
  /// verification pass confirmed the prior, false when it was demoted.
  void record_outcome(const ClusterKey& key, bool confirmed);

  /// verified / (verified + misprediction_weight · mispredictions);
  /// 1 when the cluster has no outcomes yet, 0 when unknown.
  [[nodiscard]] double confidence(const ClusterKey& key) const;

  [[nodiscard]] const ClusterKnowledge* lookup(const ClusterKey& key) const;
  [[nodiscard]] std::size_t num_clusters() const { return clusters_.size(); }
  [[nodiscard]] const std::map<ClusterKey, ClusterKnowledge>& clusters()
      const {
    return clusters_;
  }
  [[nodiscard]] const StoreOptions& options() const { return options_; }

  /// Byte-stable serialization (see the determinism rules above).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static KnowledgeStore from_json(const std::string& text,
                                                StoreOptions options = {});
  void save(const std::string& path) const;
  [[nodiscard]] static KnowledgeStore from_file(const std::string& path,
                                                StoreOptions options = {});

 private:
  StoreOptions options_;
  std::map<ClusterKey, ClusterKnowledge> clusters_;
};

}  // namespace bofl::priors
