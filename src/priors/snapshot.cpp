#include "priors/snapshot.hpp"

#include <algorithm>

namespace bofl::priors {

core::BoflController::PriorSeed PriorSnapshot::make_seed(
    std::size_t max_verify) const {
  core::BoflController::PriorSeed seed;
  seed.observations = observations;
  const std::size_t count = std::min(max_verify, pareto_flat_ids.size());
  seed.verify_flat_ids.assign(pareto_flat_ids.begin(),
                              pareto_flat_ids.begin() +
                                  static_cast<std::ptrdiff_t>(count));
  seed.warm_fit1 = fit1;
  seed.warm_fit2 = fit2;
  return seed;
}

PriorSnapshot distill(const core::BoflController& controller,
                      std::int64_t source_rounds) {
  PriorSnapshot snapshot;
  snapshot.observations = controller.export_state();
  std::vector<std::size_t> exported;  // export_state is sorted by flat id
  exported.reserve(snapshot.observations.size());
  for (const auto& obs : snapshot.observations) {
    exported.push_back(obs.config_flat);
  }
  for (const std::size_t flat : controller.pareto_flat_ids()) {
    if (std::binary_search(exported.begin(), exported.end(), flat)) {
      snapshot.pareto_flat_ids.push_back(flat);
    }
  }
  if (controller.t_x_max()) {
    snapshot.t_x_max_s = controller.t_x_max()->value();
  }
  snapshot.source_rounds = source_rounds;
  snapshot.fit1 = controller.engine().warm_fit1();
  snapshot.fit2 = controller.engine().warm_fit2();
  return snapshot;
}

}  // namespace bofl::priors
