// Cluster identity for the fleet knowledge plane: clients sharing a device
// model and a workload profile share one prior.  Keys are the human-readable
// names (the same strings the mixes and Table 1/2 specs use), so a store
// saved by one fleet run is addressable from any other.
#pragma once

#include <string>

#include "device/device_model.hpp"
#include "device/workload.hpp"

namespace bofl::priors {

struct ClusterKey {
  std::string device;    ///< device model name, e.g. "jetson-agx"
  std::string workload;  ///< workload profile name, e.g. "vit"

  [[nodiscard]] static ClusterKey of(const device::DeviceModel& model,
                                     const device::WorkloadProfile& profile) {
    return {model.name(), profile.name};
  }

  /// "device/workload" — used in logs and the store's JSON.
  [[nodiscard]] std::string label() const { return device + "/" + workload; }

  friend bool operator==(const ClusterKey&, const ClusterKey&) = default;
  friend bool operator<(const ClusterKey& a, const ClusterKey& b) {
    return a.device != b.device ? a.device < b.device
                                : a.workload < b.workload;
  }
};

}  // namespace bofl::priors
