#include "core/trace.hpp"

namespace bofl::core {

Seconds RoundTrace::elapsed() const {
  Seconds total{0.0};
  for (const ConfigRun& run : runs) {
    total += run.true_time;
  }
  return total;
}

Joules RoundTrace::energy() const {
  Joules total{0.0};
  for (const ConfigRun& run : runs) {
    total += run.true_energy;
  }
  return total;
}

std::int64_t RoundTrace::jobs() const {
  std::int64_t total = 0;
  for (const ConfigRun& run : runs) {
    total += run.jobs;
  }
  return total;
}

bool RoundTrace::deadline_met() const {
  // Tolerance covers floating-point accumulation only, not real slack.
  return elapsed().value() <= deadline.value() + 1e-9;
}

Seconds RoundTrace::slack() const { return deadline - elapsed(); }

Seconds RoundTrace::safe_slack() const {
  const Seconds raw = slack();
  return raw.value() > 0.0 ? raw : Seconds{0.0};
}

Seconds RoundTrace::overrun() const {
  // Tied to deadline_met(), not to sign(slack): a round inside the float
  // tolerance must report zero overrun, not a denormal-sized miss.
  if (deadline_met()) {
    return Seconds{0.0};
  }
  return elapsed() - deadline;
}

Joules TaskResult::total_training_energy() const {
  Joules total{0.0};
  for (const RoundTrace& round : rounds) {
    total += round.energy();
  }
  return total;
}

Joules TaskResult::total_mbo_energy() const {
  Joules total{0.0};
  for (const RoundTrace& round : rounds) {
    total += round.mbo_energy;
  }
  return total;
}

Seconds TaskResult::total_mbo_latency() const {
  Seconds total{0.0};
  for (const RoundTrace& round : rounds) {
    total += round.mbo_latency;
  }
  return total;
}

bool TaskResult::all_deadlines_met() const {
  for (const RoundTrace& round : rounds) {
    if (!round.deadline_met()) {
      return false;
    }
  }
  return true;
}

std::int64_t TaskResult::rounds_in_phase(Phase phase) const {
  std::int64_t count = 0;
  for (const RoundTrace& round : rounds) {
    if (round.phase == phase) {
      ++count;
    }
  }
  return count;
}

}  // namespace bofl::core
