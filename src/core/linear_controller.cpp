#include "core/linear_controller.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::core {

LinearModelController::LinearModelController(const device::DeviceModel& model,
                                             device::WorkloadProfile profile,
                                             device::NoiseModel noise,
                                             std::uint64_t seed)
    : model_(model),
      profile_(std::move(profile)),
      observer_(model_, noise, seed) {}

RoundTrace LinearModelController::run_round(const RoundSpec& spec) {
  BOFL_REQUIRE(spec.num_jobs > 0, "round needs at least one job");
  RoundTrace trace;
  trace.index = spec.index;
  trace.deadline = spec.deadline;
  trace.phase = Phase::kExploitation;

  const device::DvfsSpace& space = model_.space();
  const device::DvfsConfig x_max = space.max_config();

  // First round: calibrate T(x_max) with one job at full speed.
  std::int64_t remaining = spec.num_jobs;
  if (!t_max_config_) {
    const device::Measurement m =
        observer_.run_jobs(profile_, x_max, 1, clock_);
    trace.runs.push_back({x_max, 1, m.true_duration, m.true_energy, true});
    trace.explored_flat_ids.push_back(space.to_flat(x_max));
    t_max_config_ = m.measured_latency;
    remaining -= 1;
    if (remaining == 0) {
      return trace;
    }
  }

  // Linear model: T(f_cpu) = T(x_max) * f_cpu_max / f_cpu.  Pick the lowest
  // CPU step predicted to fit the remaining deadline budget.
  const double budget = spec.deadline.value() - trace.elapsed().value();
  const double f_cpu_max = space.cpu_table().max().value();
  std::size_t chosen = space.cpu_table().size() - 1;
  for (std::size_t step = 0; step < space.cpu_table().size(); ++step) {
    const double predicted =
        static_cast<double>(remaining) * t_max_config_->value() * f_cpu_max /
        space.cpu_table().at(step).value();
    if (predicted <= budget) {
      chosen = step;
      break;
    }
  }
  device::DvfsConfig config = x_max;
  config.cpu = chosen;

  // Run job by job; the guardian switches to x_max if the prediction is
  // falling behind.
  std::int64_t jobs_at_chosen = 0;
  Seconds time_at_chosen{0.0};
  Joules energy_at_chosen{0.0};
  while (remaining > 0) {
    const double time_left = spec.deadline.value() - trace.elapsed().value() -
                             time_at_chosen.value();
    const double worst_case_rescue =
        static_cast<double>(remaining) * t_max_config_->value() * 1.05;
    if (!(config == x_max) && time_left < worst_case_rescue +
            model_.latency(profile_, config).value()) {
      ++guardian_interventions_;
      break;
    }
    const device::Measurement m = observer_.run_jobs(profile_, config, 1, clock_);
    ++jobs_at_chosen;
    time_at_chosen += m.true_duration;
    energy_at_chosen += m.true_energy;
    --remaining;
    if (config == x_max) {
      // Already at the rescue configuration; just finish everything.
      if (remaining > 0) {
        const device::Measurement rest =
            observer_.run_jobs(profile_, config, remaining, clock_);
        jobs_at_chosen += remaining;
        time_at_chosen += rest.true_duration;
        energy_at_chosen += rest.true_energy;
        remaining = 0;
      }
      break;
    }
  }
  if (jobs_at_chosen > 0) {
    trace.runs.push_back(
        {config, jobs_at_chosen, time_at_chosen, energy_at_chosen, false});
  }
  if (remaining > 0) {
    const device::Measurement m =
        observer_.run_jobs(profile_, x_max, remaining, clock_);
    trace.runs.push_back({x_max, remaining, m.true_duration, m.true_energy,
                          false});
  }
  return trace;
}

}  // namespace bofl::core
