// Task-level harness: drive a pace controller through a full FL task and
// compute the paper's summary metrics.
#pragma once

#include "core/pace_controller.hpp"
#include "core/task.hpp"
#include "core/trace.hpp"

namespace bofl::core {

/// Run all rounds in order through `controller`.
[[nodiscard]] TaskResult run_task(PaceController& controller,
                                  const std::vector<RoundSpec>& rounds);

/// Total energy attributable to the controller: training plus MBO overhead.
[[nodiscard]] Joules total_energy(const TaskResult& result);

/// "Improvement compared to Performant" (§6.4):
///   1 − subject energy / baseline energy.
[[nodiscard]] double improvement_vs(const TaskResult& subject,
                                    const TaskResult& baseline);

/// "Regret compared to Oracle" (§6.4):
///   subject energy / oracle energy − 1.
[[nodiscard]] double regret_vs(const TaskResult& subject,
                               const TaskResult& oracle);

}  // namespace bofl::core
