// Task-level harness: drive a pace controller through a full FL task and
// compute the paper's summary metrics.
#pragma once

#include <functional>

#include "core/pace_controller.hpp"
#include "core/task.hpp"
#include "core/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace bofl::core {

/// Per-round observer for run_task: called serially, on the round loop's
/// thread, after each round's trace is recorded.  Used by fault-injected
/// runs to drain queued fault events in deterministic order.
using RoundHook = std::function<void(const RoundTrace&)>;

/// Run all rounds in order through `controller`.
[[nodiscard]] TaskResult run_task(PaceController& controller,
                                  const std::vector<RoundSpec>& rounds);

/// Same, invoking `after_round` once per finished round (may be empty).
[[nodiscard]] TaskResult run_task(PaceController& controller,
                                  const std::vector<RoundSpec>& rounds,
                                  const RoundHook& after_round);

/// Sweep: run each controller through its paired round schedule, one task
/// per controller on `pool` (nullptr = serial).  Rounds stay strictly
/// ordered *within* a controller — only whole controllers run concurrently,
/// so every TaskResult is bit-identical to a run_task() call.  Results are
/// returned in input order.  `controllers` and `schedules` must be the same
/// length; null controllers are rejected.
[[nodiscard]] std::vector<TaskResult> run_tasks(
    const std::vector<PaceController*>& controllers,
    const std::vector<const std::vector<RoundSpec>*>& schedules,
    runtime::ThreadPool* pool);

/// Total energy attributable to the controller: training plus MBO overhead.
[[nodiscard]] Joules total_energy(const TaskResult& result);

/// "Improvement compared to Performant" (§6.4):
///   1 − subject energy / baseline energy.
[[nodiscard]] double improvement_vs(const TaskResult& subject,
                                    const TaskResult& baseline);

/// "Regret compared to Oracle" (§6.4):
///   subject energy / oracle energy − 1.
[[nodiscard]] double regret_vs(const TaskResult& subject,
                               const TaskResult& oracle);

}  // namespace bofl::core
