#include "core/oracle_controller.hpp"

#include "common/error.hpp"
#include "pareto/pareto.hpp"

namespace bofl::core {

std::vector<ilp::ConfigProfile> true_pareto_profiles(
    const device::DeviceModel& model,
    const device::WorkloadProfile& profile) {
  const device::DvfsSpace& space = model.space();
  std::vector<pareto::Point2> points;
  points.reserve(space.size());
  for (std::size_t flat = 0; flat < space.size(); ++flat) {
    const device::DvfsConfig config = space.from_flat(flat);
    points.push_back({model.energy(profile, config).value(),
                      model.latency(profile, config).value()});
  }
  const std::vector<std::size_t> front = pareto::non_dominated_indices(points);
  std::vector<ilp::ConfigProfile> profiles;
  profiles.reserve(front.size());
  for (std::size_t flat : front) {
    profiles.push_back({flat, points[flat].f1, points[flat].f2});
  }
  return profiles;
}

OracleController::OracleController(const device::DeviceModel& model,
                                   device::WorkloadProfile profile,
                                   device::NoiseModel noise,
                                   std::uint64_t seed)
    : model_(model),
      profile_(std::move(profile)),
      observer_(model_, noise, seed),
      pareto_profiles_(true_pareto_profiles(model_, profile_)) {}

RoundTrace OracleController::run_round(const RoundSpec& spec) {
  BOFL_REQUIRE(spec.num_jobs > 0, "round needs at least one job");
  RoundTrace trace;
  trace.index = spec.index;
  trace.deadline = spec.deadline;
  trace.phase = Phase::kExploitation;

  const ilp::Schedule schedule = ilp::solve_round_schedule(
      pareto_profiles_, spec.num_jobs, spec.deadline.value());
  if (!schedule.feasible) {
    // Deadline below T_min: degrade to x_max like a real system would.
    const device::DvfsConfig x_max = model_.space().max_config();
    const device::Measurement m =
        observer_.run_jobs(profile_, x_max, spec.num_jobs, clock_);
    trace.runs.push_back(
        {x_max, spec.num_jobs, m.true_duration, m.true_energy, false});
    return trace;
  }
  for (const auto& [profile_index, jobs] : schedule.assignments) {
    const std::size_t flat = pareto_profiles_[profile_index].config_id;
    const device::DvfsConfig config = model_.space().from_flat(flat);
    const device::Measurement m =
        observer_.run_jobs(profile_, config, jobs, clock_);
    trace.runs.push_back({config, jobs, m.true_duration, m.true_energy, false});
  }
  return trace;
}

}  // namespace bofl::core
