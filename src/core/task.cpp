#include "core/task.hpp"

#include "common/error.hpp"

namespace bofl::core {

namespace {

std::int64_t shard_size(const std::string& device_name, std::int64_t agx,
                        std::int64_t tx2) {
  if (device_name == "jetson-agx") {
    return agx;
  }
  if (device_name == "jetson-tx2") {
    return tx2;
  }
  BOFL_REQUIRE(false, "unknown device name: " + device_name);
  return 0;
}

}  // namespace

FlTaskSpec cifar10_vit_task(const std::string& device_name) {
  FlTaskSpec task;
  task.name = "CIFAR10-ViT";
  task.profile = device::vit_profile();
  task.minibatch_size = 32;
  task.epochs = 5;
  task.num_minibatches = shard_size(device_name, 40, 15);
  return task;
}

FlTaskSpec imagenet_resnet50_task(const std::string& device_name) {
  FlTaskSpec task;
  task.name = "ImageNet-ResNet50";
  task.profile = device::resnet50_profile();
  task.minibatch_size = 8;
  task.epochs = 2;
  task.num_minibatches = shard_size(device_name, 90, 30);
  return task;
}

FlTaskSpec imdb_lstm_task(const std::string& device_name) {
  FlTaskSpec task;
  task.name = "IMDB-LSTM";
  task.profile = device::lstm_profile();
  task.minibatch_size = 8;
  task.epochs = 4;
  task.num_minibatches = shard_size(device_name, 40, 20);
  return task;
}

std::vector<FlTaskSpec> paper_tasks(const std::string& device_name) {
  return {cifar10_vit_task(device_name), imagenet_resnet50_task(device_name),
          imdb_lstm_task(device_name)};
}

DeadlineGenerator::DeadlineGenerator(Seconds t_min, double max_over_min_ratio,
                                     std::uint64_t seed)
    : t_min_(t_min), ratio_(max_over_min_ratio), rng_(seed) {
  BOFL_REQUIRE(t_min.value() > 0.0, "T_min must be positive");
  BOFL_REQUIRE(max_over_min_ratio >= 1.0, "T_max/T_min must be >= 1");
}

Seconds DeadlineGenerator::next() {
  return Seconds{rng_.uniform(t_min_.value(), t_min_.value() * ratio_)};
}

std::vector<Seconds> DeadlineGenerator::generate(std::size_t rounds) {
  std::vector<Seconds> deadlines;
  deadlines.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    deadlines.push_back(next());
  }
  return deadlines;
}

std::vector<RoundSpec> make_rounds(const FlTaskSpec& task,
                                   const device::DeviceModel& model,
                                   double max_over_min_ratio,
                                   std::uint64_t seed) {
  const Seconds t_min =
      model.round_t_min(task.profile, task.jobs_per_round());
  DeadlineGenerator generator(t_min, max_over_min_ratio, seed);
  std::vector<RoundSpec> rounds;
  rounds.reserve(static_cast<std::size_t>(task.num_rounds));
  for (std::int64_t i = 0; i < task.num_rounds; ++i) {
    rounds.push_back({i, task.jobs_per_round(), generator.next()});
  }
  return rounds;
}

}  // namespace bofl::core
