// The Oracle baseline (paper §6.1): the whole configuration space is
// profiled offline (exactly, no noise), so every round is pure
// exploitation over the true Pareto set.  Unachievable in practice — it
// exists to lower-bound energy and measure BoFL's regret.
#pragma once

#include "core/pace_controller.hpp"
#include "device/observer.hpp"
#include "ilp/schedule_solver.hpp"

namespace bofl::core {

class OracleController final : public PaceController {
 public:
  OracleController(const device::DeviceModel& model,
                   device::WorkloadProfile profile,
                   device::NoiseModel noise, std::uint64_t seed);

  RoundTrace run_round(const RoundSpec& spec) override;
  [[nodiscard]] std::string_view name() const override { return "Oracle"; }
  void install_fault_model(device::JobFaultModel* faults) override {
    observer_.set_fault_model(faults);
  }
  [[nodiscard]] Seconds sim_time() const override { return clock_.now(); }

  /// The true Pareto-optimal profiles (from exhaustive offline profiling).
  [[nodiscard]] const std::vector<ilp::ConfigProfile>& pareto_profiles()
      const {
    return pareto_profiles_;
  }

 private:
  const device::DeviceModel& model_;
  device::WorkloadProfile profile_;
  device::PerformanceObserver observer_;
  device::SimClock clock_;
  std::vector<ilp::ConfigProfile> pareto_profiles_;
};

/// Exhaustively profile `model` under `profile` and return the true Pareto
/// set of (energy, latency) per-job profiles (config_id = flat index).
/// Shared by the Oracle controller and the Fig. 11 benchmark.
[[nodiscard]] std::vector<ilp::ConfigProfile> true_pareto_profiles(
    const device::DeviceModel& model, const device::WorkloadProfile& profile);

}  // namespace bofl::core
