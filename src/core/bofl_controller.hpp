// The BoFL pace controller (paper §4): safe random exploration, MBO-driven
// Pareto-front construction, then ILP exploitation — all under the
// deadline-guardian safety rule.
//
// Phase transitions:
//   Phase 1 -> 2 : when every quasi-random starting point has been explored.
//   Phase 2 -> 3 : when >= min_explored_fraction of the space is explored
//                  and the round's relative hypervolume improvement drops
//                  below hvi_stop_threshold (the paper's §4.3 stop rule),
//                  or when MBO has no unobserved candidate left to propose.
//
// Safety.  Before exploring an unknown configuration the controller checks
// a conservative form of the paper's Eqn. 2:
//     T_remain - (tau + allowance · T(x_max)) >= W_remain · T(x_max) · m
// where the allowance covers the first job of a possibly-pathological
// configuration (a job cannot be preempted mid-flight) and m is a small
// noise margin on the measured T(x_max).  On a failed check the remaining
// jobs run at x_max (Fig. 7's guardian path).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>

#include "bo/mbo_engine.hpp"
#include "core/mbo_cost.hpp"
#include "core/pace_controller.hpp"
#include "device/observer.hpp"
#include "ilp/schedule_cache.hpp"
#include "ilp/schedule_solver.hpp"
#include "priors/prior_policy.hpp"

namespace bofl::core {

/// Which low-discrepancy generator draws the phase-1 starting points.  The
/// paper only asks for "a quasi-random number generator" (§4.2); Sobol is
/// the default because its coarse-lattice projections cover the DVFS grid
/// slightly faster, but Halton is provided for A/B runs (see bench_fig11).
enum class ExplorationSampler {
  kSobol = 0,
  kHalton = 1,
};

[[nodiscard]] const char* to_string(ExplorationSampler sampler);

struct BoflOptions {
  /// Fraction of the space sampled as phase-1 starting points (§4.2: ~1 %).
  double initial_sample_fraction = 0.01;
  /// Quasi-random generator behind the phase-1 sample.
  ExplorationSampler exploration_sampler = ExplorationSampler::kSobol;
  /// Reference measurement duration τ (§4.2: e.g. 5 s).
  ///
  /// Safety contract: the deadline guarantee holds as long as the latency
  /// measurement error at this τ stays below deadline_safety_margin.  With
  /// the default sensor model (1 % CV at 5 s, growing as sqrt(5/τ)), τ of
  /// 2.5 s or more keeps the error under the default 3 % margin; τ of 1 s
  /// pushes the CV to ~2.2 % and occasional sub-0.1 s overshoots become
  /// possible — exactly the paper's rationale for not measuring too
  /// briefly (see the A2 ablation bench).
  Seconds tau{5.0};
  /// Phase-2 stop: explored share of the space must reach this first (~3 %).
  double min_explored_fraction = 0.03;
  /// Phase-2 stop: relative per-round hypervolume improvement below this.
  double hvi_stop_threshold = 0.01;
  /// Cap on the MBO batch size K (§4.3: e.g. 10).
  std::size_t max_batch_size = 10;
  /// Run at least this many Pareto-construction rounds before stopping.
  std::size_t min_pareto_rounds = 2;
  /// Guardian allowance for the first job of an unknown configuration,
  /// in multiples of T(x_max).
  double first_job_allowance = 12.0;
  /// Noise margin applied to measured latencies in guardian and ILP
  /// feasibility arithmetic.
  double deadline_safety_margin = 0.03;
  /// Drift demotion: a fresh per-job latency reading exceeding the config's
  /// aggregate mean by this ratio means the environment changed (thermal
  /// storm, co-runner, governor clamp) — the stale optimistic history is
  /// discarded and the guardian re-armed.  Plain measurement noise (~1 %
  /// CV) never crosses this; only genuine regressions (or injected latency
  /// spikes) do.
  double drift_demote_ratio = 1.25;
  /// Cap on the guardian's drift inflation factor.
  double drift_guard_cap = 3.0;
  bo::MboOptions mbo{};
  MboCostModel mbo_cost{};
  /// Branch-and-bound options forwarded to every exploitation solve.  The
  /// ilp.disable_cache escape hatch makes an attached ScheduleCache (see
  /// set_schedule_cache) pass every solve through uncached — used by the
  /// cache-on/off bit-identity tests.
  ilp::IlpOptions ilp{};
};

class BoflController final : public PaceController {
 public:
  BoflController(const device::DeviceModel& model,
                 device::WorkloadProfile profile, device::NoiseModel noise,
                 BoflOptions options, std::uint64_t seed);

  RoundTrace run_round(const RoundSpec& spec) override;
  [[nodiscard]] std::string_view name() const override { return "BoFL"; }
  void install_fault_model(device::JobFaultModel* faults) override {
    observer_.set_fault_model(faults);
  }
  [[nodiscard]] Seconds sim_time() const override { return clock_.now(); }

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const bo::MboEngine& engine() const { return engine_; }
  /// Guardian drift inflation: 1 when the latest x_max reading matches its
  /// history, larger (up to drift_guard_cap) while a regression detected at
  /// any configuration is still unresolved.
  [[nodiscard]] double drift_factor() const { return drift_factor_; }
  /// Latest believed per-job latency at x_max (unset before the first run).
  [[nodiscard]] std::optional<Seconds> t_x_max() const { return t_x_max_; }

  /// Score MBO candidates on `pool` (non-owning; nullptr = serial).
  /// Deterministic for any pool size — see bo::MboEngine::set_parallel_pool.
  void set_parallel_pool(runtime::ThreadPool* pool) {
    engine_.set_parallel_pool(pool);
  }

  /// Route exploitation solves through `cache` (non-owning; nullptr =
  /// solve directly, the default).  fl::Simulation shares one cache across
  /// a fleet so cohorts with identical round problems solve each once.
  /// Bit-identical to uncached solving — see ScheduleCache.
  void set_schedule_cache(ilp::ScheduleCache* cache) {
    schedule_cache_ = cache;
  }

  /// Measured per-job (energy, latency) profile of every explored
  /// configuration (job-weighted averages of the noisy readings).
  [[nodiscard]] std::vector<ilp::ConfigProfile> observed_profiles() const;

  /// Flat ids of the observed configurations that are Pareto-optimal among
  /// the observations (BoFL's constructed front, Fig. 11).
  [[nodiscard]] std::vector<std::size_t> pareto_flat_ids() const;

  /// One persisted per-configuration measurement aggregate (state_io.hpp
  /// serializes these so a controller can resume after a device restart).
  struct SavedObservation {
    std::size_t config_flat = 0;
    double jobs = 0.0;
    double mean_energy = 0.0;   ///< J per job
    double mean_latency = 0.0;  ///< s per job
  };

  /// Export every configuration's measurement aggregate.
  [[nodiscard]] std::vector<SavedObservation> export_state() const;

  /// Seed a *fresh* controller (no rounds run yet) with previously saved
  /// aggregates.  If x_max is among them the exploration phases are
  /// resumed where they left off: straight to exploitation when the saved
  /// coverage already satisfies the stopping rule's exploration floor,
  /// otherwise to Pareto construction.  Throws if any round already ran.
  void import_state(const std::vector<SavedObservation>& saved);

  // --- Cluster-prior warm start (the src/priors knowledge plane). ---------

  /// Knowledge distilled from converged controllers of the same
  /// (device model × workload profile) cluster: believed per-config
  /// profiles, a short on-unit verification plan, and GP hyperparameter
  /// optima to warm the surrogate's fits.
  struct PriorSeed {
    std::vector<SavedObservation> observations;
    /// Flat ids the verification pass re-measures on this unit (x_max is
    /// always prepended; these are the cluster's Pareto representatives).
    std::vector<std::size_t> verify_flat_ids;
    std::optional<gp::HyperoptResult> warm_fit1;
    std::optional<gp::HyperoptResult> warm_fit2;
  };

  /// How the prior seeding resolved on this unit.
  enum class PriorState {
    kNone,       ///< cold start, no prior applied
    kVerifying,  ///< prior adopted provisionally; verification pass running
    kVerified,   ///< verification confirmed the prior on this unit
    kAdopted,    ///< kTrust: imported without on-unit verification
    kDemoted,    ///< prior mispredicted; controller fell back to cold start
  };

  /// Fired once when the prior resolves (kVerified, kAdopted or kDemoted) —
  /// the knowledge plane's confidence feedback hook.
  using PriorFeedback = std::function<void(PriorState)>;

  /// Seed a *fresh* controller from a cluster prior under `policy`.
  /// kCold (or an empty seed) is a guaranteed no-op: the controller stays
  /// bit-identical to one never offered a prior.  kVerify overlays the
  /// believed profiles and collapses phase 1 to x_max plus the seed's
  /// verification ids; the Eqn. 2 guardian stays authoritative — a reading
  /// off by more than drift_demote_ratio from the believed profile arms the
  /// drift guard immediately and demotes back to cold start at the round
  /// boundary.  kTrust imports the observations as if locally measured.
  void apply_prior(const PriorSeed& seed, priors::PriorPolicy policy);

  void set_prior_feedback(PriorFeedback feedback) {
    feedback_ = std::move(feedback);
  }
  [[nodiscard]] PriorState prior_state() const { return prior_state_; }

 private:
  struct Aggregate {
    double jobs = 0.0;
    double latency_weighted = 0.0;  ///< sum of measured per-job latency * jobs
    double energy_weighted = 0.0;   ///< sum of measured per-job energy * jobs

    [[nodiscard]] double mean_latency() const {
      return latency_weighted / jobs;
    }
    [[nodiscard]] double mean_energy() const { return energy_weighted / jobs; }
  };

  struct RoundState {
    RoundTrace trace;
    std::int64_t remaining = 0;
  };

  /// Run `jobs` jobs under `config`, appending a ConfigRun to the trace.
  /// Returns the measurement.
  device::Measurement run_config(RoundState& state,
                                 const device::DvfsConfig& config,
                                 std::int64_t jobs, bool exploratory);
  /// Fold a measurement into the engine and the aggregate table.
  void record_observation(std::size_t flat, double energy_per_job,
                          double latency_per_job, double jobs);
  /// Conservative Eqn. 2 check for spending `budget` on exploration now.
  [[nodiscard]] bool guardian_allows(const RoundState& state,
                                     Seconds budget) const;
  /// Measure one candidate for >= τ seconds (Fig. 7's inner loop).
  void explore_candidate(RoundState& state, std::size_t flat);
  /// Finish the round's remaining jobs with the best observed schedule.
  void exploit_remaining(RoundState& state);
  /// Dominance-pruned observed_profiles(), recomputed only when a
  /// measurement has changed the aggregate table since the last call (the
  /// O(k^2) prune used to run on every ILP re-solve; now it runs once per
  /// profile-table version).
  [[nodiscard]] const std::vector<ilp::ConfigProfile>& exploitation_profiles();
  /// Run the MBO update between rounds (phase 2), charging its cost.
  void mbo_update(RoundState& state);
  void finish_round_bookkeeping(const RoundSpec& spec);
  /// Structural fallback after a prior misprediction: drop the overlay,
  /// rebuild the surrogate from this unit's own measurements and restart
  /// the cold phase-1 plan (minus configs already measured locally).
  void demote_prior_to_cold();

  const device::DeviceModel& model_;
  device::WorkloadProfile profile_;
  BoflOptions options_;
  device::PerformanceObserver observer_;
  device::SimClock clock_;
  bo::MboEngine engine_;
  Phase phase_ = Phase::kSafeRandomExploration;
  std::deque<std::size_t> pending_;
  std::size_t x_max_flat_;
  std::optional<Seconds> t_x_max_;  ///< measured per-job latency at x_max
  double drift_factor_ = 1.0;       ///< guardian inflation while drifted
  std::unordered_map<std::size_t, Aggregate> aggregates_;
  /// Bumped on every aggregate mutation; invalidates pruned_profiles_.
  std::uint64_t profiles_version_ = 0;
  std::uint64_t pruned_version_ = std::numeric_limits<std::uint64_t>::max();
  std::vector<ilp::ConfigProfile> pruned_profiles_;
  ilp::ScheduleCache* schedule_cache_ = nullptr;  ///< non-owning, optional
  std::vector<double> phase1_deadlines_;
  double t_avg_seconds_ = 0.0;
  double hv_prev_ = 0.0;
  std::size_t pareto_rounds_done_ = 0;
  /// Construction seed, kept so demote_prior_to_cold can rebuild the MBO
  /// engine on the exact stream a cold start would have used.
  std::uint64_t seed_ = 0;
  /// Believed per-config profiles borrowed from the cluster prior, keyed by
  /// flat id (ordered so merged profile listings stay deterministic).  An
  /// entry is shadowed as soon as this unit measures the config itself and
  /// cleared wholesale on demotion.
  std::map<std::size_t, Aggregate> prior_overlay_;
  /// Engine observations [0, prior_engine_obs_) came from the prior; the
  /// demotion path keeps only the suffix this unit measured itself.
  std::size_t prior_engine_obs_ = 0;
  /// Set mid-round by the misprediction check; the structural demotion runs
  /// at the next round boundary (the plan cannot be rebuilt mid-iteration).
  bool prior_demote_pending_ = false;
  PriorState prior_state_ = PriorState::kNone;
  PriorFeedback feedback_;
};

}  // namespace bofl::core
