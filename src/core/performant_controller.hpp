// The Performant baseline (paper §6.1): every job runs at x_max, the
// default real-time DVFS policy.  Fast, deadline-safe, energy-hungry.
#pragma once

#include "core/pace_controller.hpp"
#include "device/observer.hpp"

namespace bofl::core {

class PerformantController final : public PaceController {
 public:
  PerformantController(const device::DeviceModel& model,
                       device::WorkloadProfile profile,
                       device::NoiseModel noise, std::uint64_t seed);

  RoundTrace run_round(const RoundSpec& spec) override;
  [[nodiscard]] std::string_view name() const override { return "Performant"; }
  void install_fault_model(device::JobFaultModel* faults) override {
    observer_.set_fault_model(faults);
  }
  [[nodiscard]] Seconds sim_time() const override { return clock_.now(); }

 private:
  const device::DeviceModel& model_;
  device::WorkloadProfile profile_;
  device::PerformanceObserver observer_;
  device::SimClock clock_;
};

}  // namespace bofl::core
