#include "core/harness.hpp"

#include "common/error.hpp"

namespace bofl::core {

TaskResult run_task(PaceController& controller,
                    const std::vector<RoundSpec>& rounds) {
  TaskResult result;
  result.rounds.reserve(rounds.size());
  for (const RoundSpec& spec : rounds) {
    result.rounds.push_back(controller.run_round(spec));
  }
  return result;
}

Joules total_energy(const TaskResult& result) {
  return result.total_training_energy() + result.total_mbo_energy();
}

double improvement_vs(const TaskResult& subject, const TaskResult& baseline) {
  const double baseline_energy = total_energy(baseline).value();
  BOFL_REQUIRE(baseline_energy > 0.0, "baseline consumed no energy");
  return 1.0 - total_energy(subject).value() / baseline_energy;
}

double regret_vs(const TaskResult& subject, const TaskResult& oracle) {
  const double oracle_energy = total_energy(oracle).value();
  BOFL_REQUIRE(oracle_energy > 0.0, "oracle consumed no energy");
  return total_energy(subject).value() / oracle_energy - 1.0;
}

}  // namespace bofl::core
