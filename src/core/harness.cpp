#include "core/harness.hpp"

#include <string>

#include "common/error.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl::core {

namespace {

/// Record one finished round into the global registry / event stream.
/// Every recorded quantity is SimClock- or trace-derived (the determinism
/// contract: enabling telemetry cannot change what the controller does).
void record_round(const PaceController& controller, const RoundTrace& trace) {
  telemetry::Registry* reg = telemetry::global_registry();
  if (reg == nullptr) {
    return;
  }
  reg->counter("core.rounds").add(1);
  if (!trace.deadline_met()) {
    reg->counter("core.deadline_misses").add(1);
  }
  reg->histogram("core.round_energy_j").observe(trace.energy().value());
  // Clamped: a negative sample would skew the slack histogram's percentiles
  // toward "plenty of headroom" on the very rounds that missed.
  reg->histogram("core.round_slack_s").observe(trace.safe_slack().value());
  if (telemetry::RunRecorder* rec = telemetry::global_recorder()) {
    telemetry::JsonValue fields = telemetry::JsonValue::object();
    fields.set("controller", std::string(controller.name()))
        .set("round", trace.index)
        .set("phase", static_cast<int>(trace.phase))
        .set("deadline_s", trace.deadline.value())
        .set("elapsed_s", trace.elapsed().value())
        .set("slack_s", trace.slack().value())
        .set("energy_j", trace.energy().value())
        .set("mbo_latency_s", trace.mbo_latency.value())
        .set("mbo_energy_j", trace.mbo_energy.value())
        .set("jobs", trace.jobs())
        .set("met", trace.deadline_met());
    if (!trace.deadline_met()) {
      fields.set("overrun_s", trace.overrun().value());
    }
    rec->emit("round", std::move(fields));
  }
}

}  // namespace

TaskResult run_task(PaceController& controller,
                    const std::vector<RoundSpec>& rounds) {
  return run_task(controller, rounds, RoundHook{});
}

TaskResult run_task(PaceController& controller,
                    const std::vector<RoundSpec>& rounds,
                    const RoundHook& after_round) {
  TaskResult result;
  result.rounds.reserve(rounds.size());
  for (const RoundSpec& spec : rounds) {
    result.rounds.push_back(controller.run_round(spec));
    record_round(controller, result.rounds.back());
    if (after_round) {
      after_round(result.rounds.back());
    }
  }
  return result;
}

std::vector<TaskResult> run_tasks(
    const std::vector<PaceController*>& controllers,
    const std::vector<const std::vector<RoundSpec>*>& schedules,
    runtime::ThreadPool* pool) {
  BOFL_REQUIRE(controllers.size() == schedules.size(),
               "need one round schedule per controller");
  for (std::size_t i = 0; i < controllers.size(); ++i) {
    BOFL_REQUIRE(controllers[i] != nullptr && schedules[i] != nullptr,
                 "controllers and schedules must be non-null");
  }
  std::vector<TaskResult> results(controllers.size());
  runtime::parallel_for_each(pool, controllers.size(), [&](std::size_t i) {
    results[i] = run_task(*controllers[i], *schedules[i]);
  });
  return results;
}

Joules total_energy(const TaskResult& result) {
  return result.total_training_energy() + result.total_mbo_energy();
}

double improvement_vs(const TaskResult& subject, const TaskResult& baseline) {
  const double baseline_energy = total_energy(baseline).value();
  BOFL_REQUIRE(baseline_energy > 0.0, "baseline consumed no energy");
  return 1.0 - total_energy(subject).value() / baseline_energy;
}

double regret_vs(const TaskResult& subject, const TaskResult& oracle) {
  const double oracle_energy = total_energy(oracle).value();
  BOFL_REQUIRE(oracle_energy > 0.0, "oracle consumed no energy");
  return total_energy(subject).value() / oracle_energy - 1.0;
}

}  // namespace bofl::core
