#include "core/harness.hpp"

#include "common/error.hpp"

namespace bofl::core {

TaskResult run_task(PaceController& controller,
                    const std::vector<RoundSpec>& rounds) {
  TaskResult result;
  result.rounds.reserve(rounds.size());
  for (const RoundSpec& spec : rounds) {
    result.rounds.push_back(controller.run_round(spec));
  }
  return result;
}

std::vector<TaskResult> run_tasks(
    const std::vector<PaceController*>& controllers,
    const std::vector<const std::vector<RoundSpec>*>& schedules,
    runtime::ThreadPool* pool) {
  BOFL_REQUIRE(controllers.size() == schedules.size(),
               "need one round schedule per controller");
  for (std::size_t i = 0; i < controllers.size(); ++i) {
    BOFL_REQUIRE(controllers[i] != nullptr && schedules[i] != nullptr,
                 "controllers and schedules must be non-null");
  }
  std::vector<TaskResult> results(controllers.size());
  runtime::parallel_for_each(pool, controllers.size(), [&](std::size_t i) {
    results[i] = run_task(*controllers[i], *schedules[i]);
  });
  return results;
}

Joules total_energy(const TaskResult& result) {
  return result.total_training_energy() + result.total_mbo_energy();
}

double improvement_vs(const TaskResult& subject, const TaskResult& baseline) {
  const double baseline_energy = total_energy(baseline).value();
  BOFL_REQUIRE(baseline_energy > 0.0, "baseline consumed no energy");
  return 1.0 - total_energy(subject).value() / baseline_energy;
}

double regret_vs(const TaskResult& subject, const TaskResult& oracle) {
  const double oracle_energy = total_energy(oracle).value();
  BOFL_REQUIRE(oracle_energy > 0.0, "oracle consumed no energy");
  return total_energy(subject).value() / oracle_energy - 1.0;
}

}  // namespace bofl::core
