#include "core/bofl_controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/quasirandom.hpp"
#include "common/stats.hpp"
#include "core/state_io.hpp"
#include "pareto/pareto.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl::core {

namespace {

/// Quasi-random starting points over the DVFS lattice (§4.2): Sobol or
/// Halton points in the unit cube snapped to grid steps, deduplicated,
/// x_max excluded (it is always measured first, separately).
std::deque<std::size_t> sample_starting_points(const device::DvfsSpace& space,
                                               double fraction,
                                               ExplorationSampler sampler) {
  const auto target = static_cast<std::size_t>(std::max(
      3.0, std::ceil(fraction * static_cast<double>(space.size()))));
  const std::vector<std::size_t> sizes = {space.cpu_table().size(),
                                          space.gpu_table().size(),
                                          space.mem_table().size()};
  SobolSequence sobol(3);
  HaltonSequence halton(3);
  QuasiRandomSequence& seq =
      sampler == ExplorationSampler::kHalton
          ? static_cast<QuasiRandomSequence&>(halton)
          : static_cast<QuasiRandomSequence&>(sobol);
  std::deque<std::size_t> points;
  std::vector<bool> seen(space.size(), false);
  const std::size_t x_max_flat = space.to_flat(space.max_config());
  seen[x_max_flat] = true;
  // Collisions on the coarse lattice are common; cap the draw budget.
  const std::size_t max_draws = 50 * target + 256;
  for (std::size_t draw = 0; draw < max_draws && points.size() < target;
       ++draw) {
    const std::vector<std::size_t> idx = to_grid_indices(seq.next(), sizes);
    const std::size_t flat = space.to_flat({idx[0], idx[1], idx[2]});
    if (!seen[flat]) {
      seen[flat] = true;
      points.push_back(flat);
    }
  }
  BOFL_ASSERT(!points.empty(), "no starting points sampled");
  return points;
}

bo::MboOptions make_engine_options(const BoflOptions& options) {
  bo::MboOptions mbo = options.mbo;
  mbo.max_batch_size = options.max_batch_size;
  return mbo;
}

}  // namespace

const char* to_string(ExplorationSampler sampler) {
  return sampler == ExplorationSampler::kHalton ? "halton" : "sobol";
}

BoflController::BoflController(const device::DeviceModel& model,
                               device::WorkloadProfile profile,
                               device::NoiseModel noise, BoflOptions options,
                               std::uint64_t seed)
    : model_(model),
      profile_(std::move(profile)),
      options_(options),
      observer_(model_, noise, seed),
      engine_(model_.space().all_normalized(), make_engine_options(options),
              seed ^ 0x9E3779B97F4A7C15ULL),
      pending_(sample_starting_points(model_.space(),
                                      options.initial_sample_fraction,
                                      options.exploration_sampler)),
      x_max_flat_(model_.space().to_flat(model_.space().max_config())) {
  BOFL_REQUIRE(options_.tau.value() > 0.0, "tau must be positive");
  BOFL_REQUIRE(options_.initial_sample_fraction > 0.0,
               "initial sample fraction must be positive");
  BOFL_REQUIRE(options_.drift_demote_ratio > 1.0,
               "drift demote ratio must exceed 1");
  BOFL_REQUIRE(options_.drift_guard_cap >= 1.0,
               "drift guard cap must be >= 1");
  // x_max is the very first configuration ever measured (§4.2).
  pending_.push_front(x_max_flat_);
  seed_ = seed;
}

device::Measurement BoflController::run_config(RoundState& state,
                                               const device::DvfsConfig& config,
                                               std::int64_t jobs,
                                               bool exploratory) {
  BOFL_ASSERT(jobs > 0 && jobs <= state.remaining,
              "run_config job accounting error");
  const device::Measurement m =
      observer_.run_jobs(profile_, config, jobs, clock_);
  state.trace.runs.push_back(
      {config, jobs, m.true_duration, m.true_energy, exploratory});
  state.remaining -= jobs;
  // Every run — exploratory or not — refines the per-config aggregate.
  // Long exploitation runs are the most accurate readings the controller
  // ever gets, so the schedule self-corrects against measurement noise.
  const std::size_t flat = model_.space().to_flat(config);
  Aggregate& agg = aggregates_[flat];
  const auto jobs_d = static_cast<double>(jobs);
  double fresh_latency = m.measured_latency.value();
  if (agg.jobs == 0.0 && !prior_overlay_.empty()) {
    // First on-unit measurement of a config the cluster prior claims to
    // know.  A reading outside the drift band in either direction means the
    // prior does not describe this unit (degraded thermals, unit-to-unit
    // variation): arm the guardian for the optimistic case — the rest of
    // this round already runs under the inflated rescue arithmetic — and
    // schedule the structural fallback to cold start for the round boundary.
    const auto it = prior_overlay_.find(flat);
    if (it != prior_overlay_.end()) {
      const double believed = it->second.mean_latency();
      const bool optimistic_prior =
          fresh_latency > believed * options_.drift_demote_ratio;
      const bool pessimistic_prior =
          fresh_latency * options_.drift_demote_ratio < believed;
      if (optimistic_prior) {
        drift_factor_ =
            std::min(options_.drift_guard_cap,
                     std::max(drift_factor_, fresh_latency / believed));
      }
      if (optimistic_prior || pessimistic_prior) {
        prior_demote_pending_ = true;
        if (telemetry::Registry* reg = telemetry::global_registry()) {
          reg->counter("bofl.prior_mispredictions").add(1);
        }
      }
    }
  }
  if (agg.jobs > 0.0) {
    const double prior = agg.mean_latency();
    if (fresh_latency > prior * options_.drift_demote_ratio) {
      // Regression: the configuration is genuinely slower than its history
      // claims (throttling storm, co-runner, governor clamp).  A stale
      // optimistic aggregate is exactly what rides the ILP schedule into a
      // deadline miss, so demote it — drop the history, let this reading
      // define the config — and re-arm the guardian with headroom for the
      // drift still to come.
      agg = Aggregate{};
      drift_factor_ = std::min(options_.drift_guard_cap,
                               std::max(drift_factor_, fresh_latency / prior));
      if (telemetry::Registry* reg = telemetry::global_registry()) {
        reg->counter("bofl.aggregate_demotions").add(1);
      }
    } else if (fresh_latency < prior / options_.drift_demote_ratio) {
      // Suspiciously *fast* reading (flaky sensor garbage, or a large
      // genuine speedup like a storm ending).  Optimism is the dangerous
      // direction — believing it inflates the guardian's perceived budget
      // and can compound across folds into a sub-truth T(x_max) — so
      // winsorize the fold AND re-arm the guardian by the same factor the
      // reading is off.  A genuine speedup converges in a few bounded
      // folds, after which a consistent x_max reading stands the guardian
      // down again; garbage stays fenced off the whole time.
      drift_factor_ = std::min(options_.drift_guard_cap,
                               std::max(drift_factor_, prior / fresh_latency));
      if (telemetry::Registry* reg = telemetry::global_registry()) {
        reg->counter("bofl.suspicious_fast_readings").add(1);
      }
      fresh_latency = prior / options_.drift_demote_ratio;
    } else {
      if (flat == x_max_flat_ && drift_factor_ > 1.0) {
        // x_max reads consistent with its (possibly demoted) aggregate
        // again: T(x_max) is trustworthy, stand the guardian down.
        drift_factor_ = 1.0;
      }
    }
  }
  agg.jobs += jobs_d;
  agg.latency_weighted += fresh_latency * jobs_d;
  agg.energy_weighted += m.measured_energy.value() * jobs_d;
  ++profiles_version_;
  if (flat == x_max_flat_) {
    t_x_max_ = Seconds{agg.mean_latency()};
  }
  return m;
}

void BoflController::record_observation(std::size_t flat,
                                        double energy_per_job,
                                        double latency_per_job, double jobs) {
  (void)jobs;
  engine_.add_observation({flat, energy_per_job, latency_per_job});
}

bool BoflController::guardian_allows(const RoundState& state,
                                     Seconds budget) const {
  BOFL_ASSERT(t_x_max_.has_value(), "guardian check before T(x_max) is known");
  const double time_left =
      state.trace.deadline.value() - state.trace.elapsed().value();
  const double rescue = static_cast<double>(state.remaining) *
                        t_x_max_->value() * drift_factor_ *
                        (1.0 + options_.deadline_safety_margin);
  return time_left - budget.value() >= rescue;
}

void BoflController::explore_candidate(RoundState& state, std::size_t flat) {
  const device::DvfsConfig config = model_.space().from_flat(flat);
  // First job: establishes the latency estimate for this configuration.
  const device::Measurement first = run_config(state, config, 1, true);
  double measured_time = first.true_duration.value();
  double jobs = 1.0;
  double latency_weighted = first.measured_latency.value();
  double energy_weighted = first.measured_energy.value();

  // Keep the configuration busy until it has been measured for >= τ, as
  // long as jobs remain and the guardian stays satisfied.
  if (measured_time < options_.tau.value() && state.remaining > 0) {
    const double t_hat = std::max(first.measured_latency.value(), 1e-9);
    auto more = static_cast<std::int64_t>(
        std::ceil((options_.tau.value() - measured_time) / t_hat));
    more = std::min(more, state.remaining);
    if (t_x_max_) {
      // Largest batch that keeps the x_max rescue plan viable.
      const double time_left =
          state.trace.deadline.value() - state.trace.elapsed().value();
      const double rescue_per_job = t_x_max_->value() * drift_factor_ *
                                    (1.0 + options_.deadline_safety_margin);
      // time_left - more*t_hat >= (remaining - more) * rescue_per_job
      const double numerator =
          time_left -
          static_cast<double>(state.remaining) * rescue_per_job;
      const double denominator = t_hat - rescue_per_job;
      if (denominator > 0.0) {
        more = std::min(
            more, static_cast<std::int64_t>(
                      std::floor(numerator / denominator)));
      }
      more = std::max<std::int64_t>(more, 0);
    }
    if (more > 0) {
      const device::Measurement rest = run_config(state, config, more, true);
      measured_time += rest.true_duration.value();
      jobs += static_cast<double>(more);
      latency_weighted +=
          rest.measured_latency.value() * static_cast<double>(more);
      energy_weighted +=
          rest.measured_energy.value() * static_cast<double>(more);
    }
  }

  const double latency = latency_weighted / jobs;
  const double energy = energy_weighted / jobs;
  record_observation(flat, energy, latency, jobs);
  state.trace.explored_flat_ids.push_back(flat);
}

void BoflController::exploit_remaining(RoundState& state) {
  const device::DvfsConfig x_max = model_.space().max_config();
  // Closed-loop schedule execution: re-solve the ILP before every block
  // with the latest measurements and the *actual* remaining time, and run
  // the slowest block first so faster configurations remain available to
  // absorb any measurement optimism (winner's-curse latencies would
  // otherwise accumulate into a deadline miss).
  while (state.remaining > 0) {
    // Disturbances (latency spikes, thermal throttling) can blow the budget
    // mid-round; clamp at zero so the solver reports infeasible and the
    // x_max damage-control path below finishes the round as fast as
    // possible instead of tripping a precondition.
    const double time_left =
        std::max(0.0, state.trace.deadline.value() -
                          state.trace.elapsed().value());
    const std::vector<ilp::ConfigProfile>& profiles = exploitation_profiles();
    ilp::Schedule schedule;
    if (!profiles.empty()) {
      // While the guardian is armed (drift_factor_ > 1) the aggregates the
      // solver runs on are suspect by the same factor, so shrink its time
      // budget accordingly; infeasible mixes then fall through to x_max.
      const double budget =
          time_left /
          ((1.0 + options_.deadline_safety_margin) * drift_factor_);
      schedule = schedule_cache_ != nullptr
                     ? schedule_cache_->solve_pruned(profiles, state.remaining,
                                                     budget, options_.ilp)
                     : ilp::solve_round_schedule_pruned(
                           profiles, state.remaining, budget, options_.ilp);
    }
    if (!schedule.feasible) {
      // No observations yet or no feasible mix: play safe at x_max.
      run_config(state, x_max, state.remaining, false);
      return;
    }
    std::size_t slowest = 0;
    for (std::size_t a = 1; a < schedule.assignments.size(); ++a) {
      if (profiles[schedule.assignments[a].first].latency_per_job >
          profiles[schedule.assignments[slowest].first].latency_per_job) {
        slowest = a;
      }
    }
    const auto [profile_index, jobs] = schedule.assignments[slowest];
    // Cap each block at half the remaining jobs: the block's own (long,
    // accurate) measurement then dominates the config's aggregate before
    // the next re-solve, so a stale optimistic latency estimate can never
    // ride a full block into a deadline miss.
    const std::int64_t block =
        std::min(jobs, std::max<std::int64_t>(1, state.remaining / 2));
    run_config(state, model_.space().from_flat(profiles[profile_index].config_id),
               block, false);
  }
}

void BoflController::mbo_update(RoundState& state) {
  const double t_avg = t_avg_seconds_ > 0.0 ? t_avg_seconds_
                                            : options_.tau.value();
  auto batch = static_cast<std::size_t>(std::max<std::int64_t>(
      1, std::llround(t_avg / options_.tau.value())));
  batch = std::min(batch, options_.max_batch_size);

  const std::vector<std::size_t> suggestions = engine_.propose_batch(batch);
  pending_.assign(suggestions.begin(), suggestions.end());

  state.trace.mbo_latency =
      options_.mbo_cost.latency(engine_.num_observations(), batch);
  state.trace.mbo_energy =
      options_.mbo_cost.energy(engine_.num_observations(), batch);
  // The update runs in the configuration/reporting window between rounds
  // (§4.3), so it consumes wall time but no deadline budget.
  clock_.advance(state.trace.mbo_latency);
}

RoundTrace BoflController::run_round(const RoundSpec& spec) {
  BOFL_REQUIRE(spec.num_jobs > 0, "round needs at least one job");
  RoundState state;
  state.trace.index = spec.index;
  state.trace.deadline = spec.deadline;
  state.trace.phase = phase_;
  state.remaining = spec.num_jobs;

  if (phase_ == Phase::kExploitation) {
    exploit_remaining(state);
    finish_round_bookkeeping(spec);
    return state.trace;
  }

  if (phase_ == Phase::kParetoConstruction) {
    mbo_update(state);
  }

  while (state.remaining > 0) {
    if (pending_.empty()) {
      // Candidates exhausted: spend the rest of the round on the best
      // observed configurations (§4.2 "last round exploitation").
      exploit_remaining(state);
      break;
    }
    const std::size_t next = pending_.front();
    if (!t_x_max_) {
      // The very first measurement must be x_max (no guardian yet).
      BOFL_ASSERT(next == x_max_flat_, "x_max must be explored first");
      pending_.pop_front();
      explore_candidate(state, next);
      continue;
    }
    // Drift inflation applies to the allowance too: an unknown config's
    // first job slows down with the environment like everything else.
    const Seconds budget{options_.tau.value() + options_.first_job_allowance *
                                                    t_x_max_->value() *
                                                    drift_factor_};
    if (!guardian_allows(state, budget)) {
      // Deadline guardian trip: finish the round at x_max (Fig. 7).
      if (telemetry::Registry* reg = telemetry::global_registry()) {
        reg->counter("bofl.guardian_trips").add(1);
      }
      run_config(state, model_.space().max_config(), state.remaining, false);
      break;
    }
    pending_.pop_front();
    explore_candidate(state, next);
  }

  finish_round_bookkeeping(spec);
  return state.trace;
}

void BoflController::finish_round_bookkeeping(const RoundSpec& spec) {
  const Phase entered = phase_;
  if (prior_demote_pending_) {
    prior_demote_pending_ = false;
    demote_prior_to_cold();
  }
  if (phase_ == Phase::kSafeRandomExploration) {
    phase1_deadlines_.push_back(spec.deadline.value());
    if (pending_.empty()) {
      phase_ = Phase::kParetoConstruction;
      // Freeze the reference point at the phase-1 component-wise worst
      // observation (§4.3) and start hypervolume tracking.
      engine_.set_reference(engine_.reference());
      t_avg_seconds_ = mean_of(phase1_deadlines_);
      hv_prev_ = engine_.observed_hypervolume();
      if (prior_state_ == PriorState::kVerifying) {
        // The verification pass finished without tripping the misprediction
        // check: the cluster prior holds on this unit.  With the prior's
        // coverage already past the stopping rule's exploration floor the
        // Pareto-construction phase has nothing left to add — jump straight
        // to exploitation (the warm-start collapse the knowledge plane
        // exists for).
        prior_state_ = PriorState::kVerified;
        if (telemetry::Registry* reg = telemetry::global_registry()) {
          reg->counter("bofl.priors_verified").add(1);
        }
        if (feedback_) {
          feedback_(prior_state_);
        }
        const bool explored_enough =
            static_cast<double>(engine_.num_observed_candidates()) >=
            options_.min_explored_fraction *
                static_cast<double>(engine_.num_candidates());
        if (explored_enough) {
          phase_ = Phase::kExploitation;
        }
      }
    }
  } else if (phase_ == Phase::kParetoConstruction) {
    ++pareto_rounds_done_;
    const double hv = engine_.observed_hypervolume();
    const double relative_improvement =
        (hv - hv_prev_) / std::max(hv_prev_, 1e-12);
    hv_prev_ = hv;
    const bool explored_enough =
        static_cast<double>(engine_.num_observed_candidates()) >=
        options_.min_explored_fraction *
            static_cast<double>(engine_.num_candidates());
    const bool converged = relative_improvement < options_.hvi_stop_threshold;
    const bool exhausted =
        engine_.num_observed_candidates() == engine_.num_candidates();
    if ((pareto_rounds_done_ >= options_.min_pareto_rounds &&
         explored_enough && converged) ||
        exhausted) {
      phase_ = Phase::kExploitation;
    }
    // Hypervolume trajectory (§4.3's stopping signal), recorded from the
    // value the stop rule itself just computed.
    if (telemetry::Registry* reg = telemetry::global_registry()) {
      reg->gauge("mbo.hypervolume").set(hv);
      if (telemetry::RunRecorder* rec = telemetry::global_recorder()) {
        telemetry::JsonValue fields = telemetry::JsonValue::object();
        fields.set("round", spec.index)
            .set("hypervolume", hv)
            .set("relative_improvement", relative_improvement)
            .set("observed_candidates", engine_.num_observed_candidates())
            .set("observations", engine_.num_observations());
        rec->emit("pareto_round", std::move(fields));
      }
    }
  }
  if (phase_ != entered) {
    if (telemetry::Registry* reg = telemetry::global_registry()) {
      reg->counter("bofl.phase_transitions").add(1);
      if (telemetry::RunRecorder* rec = telemetry::global_recorder()) {
        telemetry::JsonValue fields = telemetry::JsonValue::object();
        fields.set("round", spec.index)
            .set("from", static_cast<int>(entered))
            .set("to", static_cast<int>(phase_));
        rec->emit("phase_transition", std::move(fields));
      }
    }
  }
}

std::vector<BoflController::SavedObservation> BoflController::export_state()
    const {
  std::vector<SavedObservation> saved;
  saved.reserve(aggregates_.size());
  for (const auto& [flat, agg] : aggregates_) {
    saved.push_back({flat, agg.jobs, agg.mean_energy(), agg.mean_latency()});
  }
  std::sort(saved.begin(), saved.end(),
            [](const SavedObservation& a, const SavedObservation& b) {
              return a.config_flat < b.config_flat;
            });
  return saved;
}

void BoflController::import_state(
    const std::vector<SavedObservation>& saved) {
  BOFL_REQUIRE(aggregates_.empty() && phase_ == Phase::kSafeRandomExploration,
               "import_state requires a fresh controller");
  for (const SavedObservation& obs : saved) {
    BOFL_REQUIRE(obs.config_flat < model_.space().size(),
                 "saved observation out of range");
    BOFL_REQUIRE(obs.jobs > 0.0 && obs.mean_energy > 0.0 &&
                     obs.mean_latency > 0.0,
                 "saved observation must be positive");
    Aggregate& agg = aggregates_[obs.config_flat];
    agg.jobs = obs.jobs;
    agg.latency_weighted = quotient_exact_weighted(obs.mean_latency, obs.jobs);
    agg.energy_weighted = quotient_exact_weighted(obs.mean_energy, obs.jobs);
    engine_.add_observation(
        {obs.config_flat, obs.mean_energy, obs.mean_latency});
    if (obs.config_flat == x_max_flat_) {
      t_x_max_ = Seconds{obs.mean_latency};
    }
  }
  ++profiles_version_;
  if (!t_x_max_) {
    // Without the guardian anchor, exploration must restart from scratch —
    // keep the sampled phase-1 plan as is.
    return;
  }
  // x_max is known: skip phase 1 (its job was the initial uniform sample).
  pending_.clear();
  engine_.set_reference(engine_.reference());
  hv_prev_ = engine_.observed_hypervolume();
  const bool explored_enough =
      static_cast<double>(engine_.num_observed_candidates()) >=
      options_.min_explored_fraction *
          static_cast<double>(engine_.num_candidates());
  phase_ = explored_enough ? Phase::kExploitation
                           : Phase::kParetoConstruction;
}

void BoflController::apply_prior(const PriorSeed& seed,
                                 priors::PriorPolicy policy) {
  BOFL_REQUIRE(aggregates_.empty() && prior_overlay_.empty() &&
                   phase_ == Phase::kSafeRandomExploration && !t_x_max_,
               "apply_prior requires a fresh controller");
  if (policy == priors::PriorPolicy::kCold || seed.observations.empty()) {
    // Differential guarantee: a kCold (or empty) seeding leaves the
    // controller bit-identical to one never offered a prior.
    return;
  }
  if (policy == priors::PriorPolicy::kTrust) {
    import_state(seed.observations);
    if (seed.warm_fit1 && seed.warm_fit2) {
      engine_.seed_warm_start(*seed.warm_fit1, *seed.warm_fit2);
    }
    prior_state_ = PriorState::kAdopted;
    if (telemetry::Registry* reg = telemetry::global_registry()) {
      reg->counter("bofl.prior_seeded").add(1);
    }
    return;
  }
  // kVerify: adopt the cluster's knowledge provisionally.  Believed
  // profiles overlay the ILP arithmetic and seed the GP surrogate, but
  // nothing is trusted structurally until x_max plus the cluster's chosen
  // representatives have been re-measured on this unit — t_x_max_ stays
  // unset so the guardian anchors on a local reading, never a borrowed one.
  for (const SavedObservation& obs : seed.observations) {
    BOFL_REQUIRE(obs.config_flat < model_.space().size(),
                 "prior observation out of range");
    BOFL_REQUIRE(obs.jobs > 0.0 && obs.mean_energy > 0.0 &&
                     obs.mean_latency > 0.0,
                 "prior observation must be positive");
    Aggregate overlay;
    overlay.jobs = obs.jobs;
    overlay.latency_weighted =
        quotient_exact_weighted(obs.mean_latency, obs.jobs);
    overlay.energy_weighted =
        quotient_exact_weighted(obs.mean_energy, obs.jobs);
    prior_overlay_.insert_or_assign(obs.config_flat, overlay);
    engine_.add_observation(
        {obs.config_flat, obs.mean_energy, obs.mean_latency});
  }
  prior_engine_obs_ = engine_.num_observations();
  if (seed.warm_fit1 && seed.warm_fit2) {
    engine_.seed_warm_start(*seed.warm_fit1, *seed.warm_fit2);
  }
  // The verification plan replaces the quasi-random phase-1 sample.
  pending_.clear();
  pending_.push_back(x_max_flat_);
  for (const std::size_t flat : seed.verify_flat_ids) {
    if (flat < model_.space().size() &&
        std::find(pending_.begin(), pending_.end(), flat) == pending_.end()) {
      pending_.push_back(flat);
    }
  }
  prior_state_ = PriorState::kVerifying;
  ++profiles_version_;
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    reg->counter("bofl.prior_seeded").add(1);
  }
}

void BoflController::demote_prior_to_cold() {
  // Keep only what this unit measured itself: aggregates_ (local readings
  // are never overlaid) and the engine observations appended after the
  // seed.  The drift guardian stays armed from the misprediction.
  prior_overlay_.clear();
  const std::vector<bo::MboObservation> own(
      engine_.observations().begin() +
          static_cast<std::ptrdiff_t>(prior_engine_obs_),
      engine_.observations().end());
  runtime::ThreadPool* pool = engine_.parallel_pool();
  engine_ = bo::MboEngine(model_.space().all_normalized(),
                          make_engine_options(options_),
                          seed_ ^ 0x9E3779B97F4A7C15ULL);
  engine_.set_parallel_pool(pool);
  for (const bo::MboObservation& obs : own) {
    engine_.add_observation(obs);
  }
  prior_engine_obs_ = 0;
  // Restart the cold phase-1 plan, minus configs already measured locally.
  const std::deque<std::size_t> plan = sample_starting_points(
      model_.space(), options_.initial_sample_fraction,
      options_.exploration_sampler);
  pending_.clear();
  for (const std::size_t flat : plan) {
    if (aggregates_.find(flat) == aggregates_.end()) {
      pending_.push_back(flat);
    }
  }
  if (!t_x_max_) {
    pending_.push_front(x_max_flat_);
  }
  phase_ = Phase::kSafeRandomExploration;
  phase1_deadlines_.clear();
  t_avg_seconds_ = 0.0;
  hv_prev_ = 0.0;
  pareto_rounds_done_ = 0;
  ++profiles_version_;
  prior_state_ = PriorState::kDemoted;
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    reg->counter("bofl.prior_demotions").add(1);
  }
  if (feedback_) {
    feedback_(prior_state_);
  }
}

const std::vector<ilp::ConfigProfile>& BoflController::exploitation_profiles() {
  if (pruned_version_ != profiles_version_) {
    pruned_profiles_ =
        ilp::prune_dominated_profiles(observed_profiles()).profiles;
    pruned_version_ = profiles_version_;
    if (telemetry::Registry* reg = telemetry::global_registry()) {
      reg->counter("bofl.profile_prunes").add(1);
    }
  }
  return pruned_profiles_;
}

std::vector<ilp::ConfigProfile> BoflController::observed_profiles() const {
  std::vector<ilp::ConfigProfile> profiles;
  profiles.reserve(aggregates_.size() + prior_overlay_.size());
  for (const auto& [flat, agg] : aggregates_) {
    profiles.push_back({flat, agg.mean_energy(), agg.mean_latency()});
  }
  // Borrowed profiles count until this unit measures the config itself;
  // the overlay map is ordered, so the merged listing is deterministic.
  for (const auto& [flat, agg] : prior_overlay_) {
    if (aggregates_.find(flat) == aggregates_.end()) {
      profiles.push_back({flat, agg.mean_energy(), agg.mean_latency()});
    }
  }
  return profiles;
}

std::vector<std::size_t> BoflController::pareto_flat_ids() const {
  const std::vector<ilp::ConfigProfile> profiles = observed_profiles();
  std::vector<pareto::Point2> points;
  points.reserve(profiles.size());
  for (const ilp::ConfigProfile& p : profiles) {
    points.push_back({p.energy_per_job, p.latency_per_job});
  }
  std::vector<std::size_t> ids;
  for (std::size_t index : pareto::non_dominated_indices(points)) {
    ids.push_back(profiles[index].config_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace bofl::core
