#include "core/performant_controller.hpp"

#include "common/error.hpp"

namespace bofl::core {

PerformantController::PerformantController(const device::DeviceModel& model,
                                           device::WorkloadProfile profile,
                                           device::NoiseModel noise,
                                           std::uint64_t seed)
    : model_(model),
      profile_(std::move(profile)),
      observer_(model_, noise, seed) {}

RoundTrace PerformantController::run_round(const RoundSpec& spec) {
  BOFL_REQUIRE(spec.num_jobs > 0, "round needs at least one job");
  RoundTrace trace;
  trace.index = spec.index;
  trace.deadline = spec.deadline;
  trace.phase = Phase::kExploitation;

  const device::DvfsConfig x_max = model_.space().max_config();
  const device::Measurement m =
      observer_.run_jobs(profile_, x_max, spec.num_jobs, clock_);
  trace.runs.push_back(
      {x_max, spec.num_jobs, m.true_duration, m.true_energy, false});
  return trace;
}

}  // namespace bofl::core
