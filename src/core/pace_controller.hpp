// The pace-controller interface: given a round (job count + deadline),
// decide which DVFS configurations run which jobs.
#pragma once

#include <string_view>

#include "core/task.hpp"
#include "core/trace.hpp"
#include "device/observer.hpp"

namespace bofl::core {

class PaceController {
 public:
  virtual ~PaceController() = default;

  /// Execute one training round: run spec.num_jobs jobs, choosing DVFS
  /// configurations so the round finishes before spec.deadline.  Rounds
  /// must be fed in order; controllers carry state across rounds.
  virtual RoundTrace run_round(const RoundSpec& spec) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Attach (or clear, with nullptr) a device fault model — the src/faults
  /// seam.  Non-owning; `faults` must outlive the controller and must not
  /// be shared with another controller (see device::JobFaultModel).
  virtual void install_fault_model(device::JobFaultModel* faults) {
    (void)faults;
  }

  /// Simulated time this controller's device has consumed so far.
  [[nodiscard]] virtual Seconds sim_time() const { return Seconds{0.0}; }
};

}  // namespace bofl::core
