// The pace-controller interface: given a round (job count + deadline),
// decide which DVFS configurations run which jobs.
#pragma once

#include <string_view>

#include "core/task.hpp"
#include "core/trace.hpp"

namespace bofl::core {

class PaceController {
 public:
  virtual ~PaceController() = default;

  /// Execute one training round: run spec.num_jobs jobs, choosing DVFS
  /// configurations so the round finishes before spec.deadline.  Rounds
  /// must be fed in order; controllers carry state across rounds.
  virtual RoundTrace run_round(const RoundSpec& spec) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace bofl::core
