#include "core/state_io.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace bofl::core {

double quotient_exact_weighted(double mean, double jobs) {
  double w = mean * jobs;
  for (int step = 0; step < 4 && w / jobs != mean; ++step) {
    w = std::nextafter(w, w / jobs < mean
                              ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity());
  }
  return w;
}

void save_state(const BoflController& controller, const std::string& path) {
  CsvWriter writer(path,
                   {"config_flat", "jobs", "mean_energy_J", "mean_latency_s"});
  for (const BoflController::SavedObservation& obs :
       controller.export_state()) {
    writer.write_row(std::vector<double>{
        static_cast<double>(obs.config_flat), obs.jobs, obs.mean_energy,
        obs.mean_latency});
  }
}

std::vector<BoflController::SavedObservation> load_state(
    const std::string& path) {
  const CsvReader reader(path);
  const std::size_t flat_col = reader.column("config_flat");
  const std::size_t jobs_col = reader.column("jobs");
  const std::size_t energy_col = reader.column("mean_energy_J");
  const std::size_t latency_col = reader.column("mean_latency_s");

  const auto parse = [&](const std::string& text) {
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    BOFL_REQUIRE(end != text.c_str() && *end == '\0',
                 "malformed number in saved state: " + text);
    return value;
  };

  std::vector<BoflController::SavedObservation> saved;
  saved.reserve(reader.rows().size());
  for (const auto& row : reader.rows()) {
    BoflController::SavedObservation obs;
    const double flat = parse(row[flat_col]);
    BOFL_REQUIRE(flat >= 0.0, "negative config id in saved state");
    obs.config_flat = static_cast<std::size_t>(flat);
    obs.jobs = parse(row[jobs_col]);
    obs.mean_energy = parse(row[energy_col]);
    obs.mean_latency = parse(row[latency_col]);
    saved.push_back(obs);
  }
  return saved;
}

}  // namespace bofl::core
