// Cost model for the MBO update itself (paper §6.5, Figure 13).
//
// On real hardware the Bayesian update takes 6–9 s and 50–70 J per round of
// the Pareto-construction phase.  The simulation charges that cost through
// this model: latency grows with the observation count (GP refit is cubic
// but small-n; the measured curve is near-linear in the paper's range) and
// with the batch size (one EHVI sweep per greedy pick).
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace bofl::core {

struct MboCostModel {
  double base_seconds = 4.8;
  double per_observation_seconds = 0.015;
  double per_pick_seconds = 0.12;
  double power_watts = 9.5;

  [[nodiscard]] Seconds latency(std::size_t num_observations,
                                std::size_t batch_size) const;
  [[nodiscard]] Joules energy(std::size_t num_observations,
                              std::size_t batch_size) const;
};

/// Calibrated per-device cost models (AGX ≈ 6 s / 60 J, TX2 ≈ 8.5 s / 58 J
/// per update, matching Fig. 13a).
[[nodiscard]] MboCostModel mbo_cost_for_device(const std::string& device_name);

}  // namespace bofl::core
