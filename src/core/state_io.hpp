// Persistence for the controller's learned state.
//
// FL tasks run for hundreds to thousands of rounds (§6.2 cites 500–10000);
// edge devices reboot, apps get killed.  Saving the per-configuration
// measurement aggregates lets a restarted client skip re-exploration: a
// resumed BoFL controller with enough saved coverage goes straight to
// exploitation.  The format is a plain CSV so operators can inspect and
// edit profiles by hand.
#pragma once

#include <string>
#include <vector>

#include "core/bofl_controller.hpp"

namespace bofl::core {

/// Write `controller.export_state()` to a CSV file at `path`.
void save_state(const BoflController& controller, const std::string& path);

/// Load saved aggregates from `path` (throws std::invalid_argument on a
/// missing or malformed file).
[[nodiscard]] std::vector<BoflController::SavedObservation> load_state(
    const std::string& path);

}  // namespace bofl::core
