// Persistence for the controller's learned state.
//
// FL tasks run for hundreds to thousands of rounds (§6.2 cites 500–10000);
// edge devices reboot, apps get killed.  Saving the per-configuration
// measurement aggregates lets a restarted client skip re-exploration: a
// resumed BoFL controller with enough saved coverage goes straight to
// exploitation.  The format is a plain CSV so operators can inspect and
// edit profiles by hand.
#pragma once

#include <string>
#include <vector>

#include "core/bofl_controller.hpp"

namespace bofl::core {

/// Write `controller.export_state()` to a CSV file at `path`.
void save_state(const BoflController& controller, const std::string& path);

/// Load saved aggregates from `path` (throws std::invalid_argument on a
/// missing or malformed file).
[[nodiscard]] std::vector<BoflController::SavedObservation> load_state(
    const std::string& path);

/// Weighted sum w such that w / jobs == mean bit-exactly.  mean * jobs is
/// within an ulp or two of such a w (every saved mean was itself produced
/// by a division by jobs), but the product alone can land on a neighbour
/// whose quotient rounds elsewhere — which would make
/// save -> load -> import -> save drift by one ulp per generation instead
/// of being byte-stable.  Shared by BoflController::import_state and the
/// priors KnowledgeStore merge so cross-generation round trips stay exact.
[[nodiscard]] double quotient_exact_weighted(double mean, double jobs);

}  // namespace bofl::core
