// Execution traces: what a pace controller actually did in each round.
// Every benchmark figure is rendered from these records.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "device/frequency.hpp"

namespace bofl::core {

/// BoFL's operating phases (§4.1).  Baseline controllers report
/// kExploitation for every round.
enum class Phase {
  kSafeRandomExploration = 1,
  kParetoConstruction = 2,
  kExploitation = 3,
};

/// A contiguous run of jobs under one configuration.
struct ConfigRun {
  device::DvfsConfig config;
  std::int64_t jobs = 0;
  Seconds true_time{0.0};
  Joules true_energy{0.0};
  bool exploratory = false;  ///< measured & recorded as an observation
};

/// Everything that happened in one training round.
struct RoundTrace {
  std::int64_t index = 0;
  Seconds deadline{0.0};
  Phase phase = Phase::kExploitation;
  std::vector<ConfigRun> runs;
  Seconds mbo_latency{0.0};  ///< MBO update cost (outside the round window)
  Joules mbo_energy{0.0};
  /// Flat ids of configurations newly explored in this round (Table 3).
  std::vector<std::size_t> explored_flat_ids;

  [[nodiscard]] Seconds elapsed() const;
  [[nodiscard]] Joules energy() const;  ///< training energy (MBO excluded)
  [[nodiscard]] std::int64_t jobs() const;
  [[nodiscard]] bool deadline_met() const;
  /// Deadline slack: deadline minus elapsed (negative on a miss; a tiny
  /// negative value within deadline_met()'s float tolerance still counts
  /// as met).  For aggregation use safe_slack()/overrun() — a negative
  /// sample in a slack histogram reads as "huge headroom" in percentile
  /// summaries.
  [[nodiscard]] Seconds slack() const;
  /// slack() clamped at zero: the recordable headroom (0 on any miss).
  [[nodiscard]] Seconds safe_slack() const;
  /// How far past the deadline the round ran: max(0, elapsed - deadline).
  /// Exactly 0 whenever deadline_met() holds (tolerance included), so
  /// `overrun() > 0` is the authoritative miss flag.
  [[nodiscard]] Seconds overrun() const;
};

/// A full task execution (|T| rounds).
struct TaskResult {
  std::vector<RoundTrace> rounds;

  [[nodiscard]] Joules total_training_energy() const;
  [[nodiscard]] Joules total_mbo_energy() const;
  [[nodiscard]] Seconds total_mbo_latency() const;
  [[nodiscard]] bool all_deadlines_met() const;
  /// Rounds spent in each phase.
  [[nodiscard]] std::int64_t rounds_in_phase(Phase phase) const;
};

}  // namespace bofl::core
