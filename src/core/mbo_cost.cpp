#include "core/mbo_cost.hpp"

#include <string>

#include "common/error.hpp"

namespace bofl::core {

Seconds MboCostModel::latency(std::size_t num_observations,
                              std::size_t batch_size) const {
  return Seconds{base_seconds +
                 per_observation_seconds *
                     static_cast<double>(num_observations) +
                 per_pick_seconds * static_cast<double>(batch_size)};
}

Joules MboCostModel::energy(std::size_t num_observations,
                            std::size_t batch_size) const {
  return Watts{power_watts} * latency(num_observations, batch_size);
}

MboCostModel mbo_cost_for_device(const std::string& device_name) {
  if (device_name == "jetson-agx") {
    return {4.8, 0.015, 0.12, 9.5};
  }
  if (device_name == "jetson-tx2") {
    return {7.2, 0.020, 0.18, 6.8};
  }
  if (device_name == "pixel-phone") {
    // Mobile big-core cluster: ~half the AGX's CPU throughput on the GP
    // refit, at phone-class power.
    return {8.8, 0.026, 0.21, 3.4};
  }
  if (device_name == "edge-server") {
    // Server CPU: the refit is fast but each second is expensive.
    return {2.2, 0.007, 0.055, 55.0};
  }
  BOFL_REQUIRE(false, "unknown device name: " + device_name);
  return {};
}

}  // namespace bofl::core
