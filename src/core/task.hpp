// Federated-learning task specifications from the device's point of view
// (paper §3.1): a task is (B, E, T, N) — minibatch size, epochs per round,
// the per-round training deadlines, and the number of local minibatches.
// W = E · N jobs must finish before each round's deadline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "device/device_model.hpp"
#include "device/workload.hpp"

namespace bofl::core {

/// Task parameters as assigned by the FL server (Table 2).
struct FlTaskSpec {
  std::string name;
  device::WorkloadProfile profile;
  std::int64_t minibatch_size = 1;   ///< B (carried for reporting)
  std::int64_t epochs = 1;           ///< E
  std::int64_t num_minibatches = 1;  ///< N (device-dependent shard size)
  std::int64_t num_rounds = 100;     ///< |T|

  /// W = E · N: jobs per round.
  [[nodiscard]] std::int64_t jobs_per_round() const {
    return epochs * num_minibatches;
  }
};

/// One round as seen by a pace controller.
struct RoundSpec {
  std::int64_t index = 0;
  std::int64_t num_jobs = 0;
  Seconds deadline{0.0};
};

/// The paper's three tasks with the per-device N values of Table 2.
/// `device_name` is DeviceModel::name() ("jetson-agx" or "jetson-tx2").
[[nodiscard]] FlTaskSpec cifar10_vit_task(const std::string& device_name);
[[nodiscard]] FlTaskSpec imagenet_resnet50_task(const std::string& device_name);
[[nodiscard]] FlTaskSpec imdb_lstm_task(const std::string& device_name);
[[nodiscard]] std::vector<FlTaskSpec> paper_tasks(const std::string& device_name);

/// Samples round deadlines uniformly from [T_min, ratio · T_min], the
/// paper's §6.1 protocol.  T_min is the device's round time at x_max.
class DeadlineGenerator {
 public:
  DeadlineGenerator(Seconds t_min, double max_over_min_ratio,
                    std::uint64_t seed);

  [[nodiscard]] Seconds next();
  [[nodiscard]] std::vector<Seconds> generate(std::size_t rounds);

 private:
  Seconds t_min_;
  double ratio_;
  Rng rng_;
};

/// Convenience: the full round list for a task on a device, with deadlines
/// sampled at the given T_max / T_min ratio.
[[nodiscard]] std::vector<RoundSpec> make_rounds(
    const FlTaskSpec& task, const device::DeviceModel& model,
    double max_over_min_ratio, std::uint64_t seed);

}  // namespace bofl::core
