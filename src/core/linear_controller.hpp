// SmartPC-style linear pace controller (ablation; paper §2.1 critique).
//
// Models round latency as inversely proportional to CPU frequency only —
// the assumption BoFL's measurements show to be wrong on multi-axis DVFS
// devices.  Each round it picks the single lowest CPU step whose *predicted*
// time W · T(x_max) · (f_max / f_cpu) fits the deadline, keeping GPU and
// memory at maximum.  On GPU-bound models the prediction is badly off: the
// device barely slows down, so the controller wastes little time — but it
// also barely saves energy, and on CPU-bound models it can overshoot.
// A deadline guardian (same as BoFL's) rescues overshoots at x_max.
#pragma once

#include <optional>

#include "core/pace_controller.hpp"
#include "device/observer.hpp"

namespace bofl::core {

class LinearModelController final : public PaceController {
 public:
  LinearModelController(const device::DeviceModel& model,
                        device::WorkloadProfile profile,
                        device::NoiseModel noise, std::uint64_t seed);

  RoundTrace run_round(const RoundSpec& spec) override;
  [[nodiscard]] std::string_view name() const override {
    return "LinearModel";
  }
  void install_fault_model(device::JobFaultModel* faults) override {
    observer_.set_fault_model(faults);
  }
  [[nodiscard]] Seconds sim_time() const override { return clock_.now(); }

  /// Rounds in which the linear prediction would have missed the deadline
  /// and the guardian had to intervene.
  [[nodiscard]] std::int64_t guardian_interventions() const {
    return guardian_interventions_;
  }

 private:
  const device::DeviceModel& model_;
  device::WorkloadProfile profile_;
  device::PerformanceObserver observer_;
  device::SimClock clock_;
  std::optional<Seconds> t_max_config_;  ///< measured T(x_max) per job
  std::int64_t guardian_interventions_ = 0;
};

}  // namespace bofl::core
