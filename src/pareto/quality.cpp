#include "pareto/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace bofl::pareto {

namespace {

double euclidean(const Point2& a, const Point2& b) {
  const double d1 = a.f1 - b.f1;
  const double d2 = a.f2 - b.f2;
  return std::sqrt(d1 * d1 + d2 * d2);
}

double mean_nearest_distance(const std::vector<Point2>& from,
                             const std::vector<Point2>& to) {
  BOFL_REQUIRE(!from.empty() && !to.empty(),
               "quality indicators need non-empty fronts");
  double total = 0.0;
  for (const Point2& p : from) {
    double nearest = std::numeric_limits<double>::infinity();
    for (const Point2& q : to) {
      nearest = std::min(nearest, euclidean(p, q));
    }
    total += nearest;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double additive_epsilon(const std::vector<Point2>& approximation,
                        const std::vector<Point2>& reference) {
  BOFL_REQUIRE(!approximation.empty() && !reference.empty(),
               "quality indicators need non-empty fronts");
  double eps = -std::numeric_limits<double>::infinity();
  for (const Point2& r : reference) {
    double best = std::numeric_limits<double>::infinity();
    for (const Point2& a : approximation) {
      best = std::min(best, std::max(a.f1 - r.f1, a.f2 - r.f2));
    }
    eps = std::max(eps, best);
  }
  return eps;
}

double generational_distance(const std::vector<Point2>& approximation,
                             const std::vector<Point2>& reference) {
  return mean_nearest_distance(approximation, reference);
}

double inverted_generational_distance(
    const std::vector<Point2>& approximation,
    const std::vector<Point2>& reference) {
  return mean_nearest_distance(reference, approximation);
}

}  // namespace bofl::pareto
