#include "pareto/hypervolume.hpp"

#include <algorithm>

namespace bofl::pareto {

double hypervolume_2d(const std::vector<Point2>& points, const Point2& ref) {
  // Reduce to the Pareto front clipped to the region dominated by ref.
  std::vector<Point2> relevant;
  relevant.reserve(points.size());
  for (const Point2& p : points) {
    if (p.f1 < ref.f1 && p.f2 < ref.f2) {
      relevant.push_back(p);
    }
  }
  const std::vector<Point2> front = pareto_front(std::move(relevant));
  // Sweep left to right: each front point contributes a rectangle from its
  // f1 to the next point's f1 (or ref.f1), with height ref.f2 - f2.
  double area = 0.0;
  for (std::size_t i = 0; i < front.size(); ++i) {
    const double right = (i + 1 < front.size()) ? front[i + 1].f1 : ref.f1;
    area += (right - front[i].f1) * (ref.f2 - front[i].f2);
  }
  return area;
}

double hypervolume_improvement(const std::vector<Point2>& front,
                               const std::vector<Point2>& candidates,
                               const Point2& ref) {
  std::vector<Point2> merged = front;
  merged.insert(merged.end(), candidates.begin(), candidates.end());
  const double combined = hypervolume_2d(merged, ref);
  const double base = hypervolume_2d(front, ref);
  return std::max(combined - base, 0.0);
}

}  // namespace bofl::pareto
