// Exact 2-D hypervolume indicator and hypervolume improvement (Eqns. 4–5).
//
// For minimization, HV(P', r) is the area of the region dominated by the
// approximated front P' and bounded above by the reference point r.  The
// paper uses HV to judge the quality of the constructed front and the HVI
// of each MBO round as the stopping signal.
#pragma once

#include "pareto/pareto.hpp"

namespace bofl::pareto {

/// Hypervolume (area) dominated by `points` and bounded by `ref`
/// (minimization: only the part of each point's dominated region with
/// coordinates <= ref counts).  Points at or beyond the reference point
/// contribute zero.  Exact, O(n log n).
[[nodiscard]] double hypervolume_2d(const std::vector<Point2>& points,
                                    const Point2& ref);

/// Hypervolume improvement of adding `candidates` to `front` (Eqn. 5):
/// HV(front ∪ candidates, ref) − HV(front, ref).  Always >= 0.
[[nodiscard]] double hypervolume_improvement(
    const std::vector<Point2>& front, const std::vector<Point2>& candidates,
    const Point2& ref);

}  // namespace bofl::pareto
