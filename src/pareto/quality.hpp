// Front-quality indicators beyond the hypervolume: the standard metrics the
// multi-objective optimization literature uses to score an approximated
// front against a reference front.  All assume minimization.
#pragma once

#include "pareto/pareto.hpp"

namespace bofl::pareto {

/// Additive epsilon indicator: the smallest eps such that every reference
/// point is weakly dominated by some approximation point shifted by eps,
///   eps = max_{r in reference} min_{a in approx} max_d (a_d - r_d).
/// 0 means the approximation covers the reference exactly; larger is worse.
[[nodiscard]] double additive_epsilon(const std::vector<Point2>& approximation,
                                      const std::vector<Point2>& reference);

/// Generational distance: mean Euclidean distance from each approximation
/// point to its nearest reference point (how *accurate* the approximation
/// is; 0 when every point lies on the reference front).
[[nodiscard]] double generational_distance(
    const std::vector<Point2>& approximation,
    const std::vector<Point2>& reference);

/// Inverted generational distance: mean distance from each reference point
/// to its nearest approximation point (how *complete* the coverage is).
[[nodiscard]] double inverted_generational_distance(
    const std::vector<Point2>& approximation,
    const std::vector<Point2>& reference);

}  // namespace bofl::pareto
