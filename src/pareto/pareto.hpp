// Pareto dominance and Pareto-set extraction for minimization problems.
//
// BoFL's performance space is 2-D — per-job energy E(x) and latency T(x),
// both minimized (§3.2).  Point2 carries that pair; the general N-d
// dominance helper backs the property tests.
#pragma once

#include <cstddef>
#include <vector>

namespace bofl::pareto {

/// A point in the 2-D objective space (both coordinates minimized).
/// For BoFL: f1 = energy per job [J], f2 = latency per job [s].
struct Point2 {
  double f1 = 0.0;
  double f2 = 0.0;

  friend bool operator==(const Point2&, const Point2&) = default;
};

/// Weak Pareto dominance for minimization: a dominates b iff a is no worse
/// in both coordinates and strictly better in at least one.
[[nodiscard]] bool dominates(const Point2& a, const Point2& b);

/// General N-dimensional dominance (minimization); sizes must match.
[[nodiscard]] bool dominates(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Indices of the non-dominated points in `points`.  Duplicates of a
/// non-dominated point are all retained (none strictly dominates another).
/// Order of returned indices is ascending.
[[nodiscard]] std::vector<std::size_t> non_dominated_indices(
    const std::vector<Point2>& points);

/// The non-dominated subset itself, sorted by ascending f1 (and descending
/// f2, as any valid 2-D front is).  Duplicate objective vectors are
/// collapsed to one representative.
[[nodiscard]] std::vector<Point2> pareto_front(std::vector<Point2> points);

}  // namespace bofl::pareto
