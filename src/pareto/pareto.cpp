#include "pareto/pareto.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace bofl::pareto {

bool dominates(const Point2& a, const Point2& b) {
  return a.f1 <= b.f1 && a.f2 <= b.f2 && (a.f1 < b.f1 || a.f2 < b.f2);
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  BOFL_REQUIRE(a.size() == b.size(), "dominance requires equal dimensions");
  bool strictly_better_somewhere = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) {
      return false;
    }
    if (a[i] < b[i]) {
      strictly_better_somewhere = true;
    }
  }
  return strictly_better_somewhere;
}

std::vector<std::size_t> non_dominated_indices(
    const std::vector<Point2>& points) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool is_dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && dominates(points[j], points[i])) {
        is_dominated = true;
        break;
      }
    }
    if (!is_dominated) {
      result.push_back(i);
    }
  }
  return result;
}

std::vector<Point2> pareto_front(std::vector<Point2> points) {
  if (points.empty()) {
    return {};
  }
  // Sort by f1 ascending, ties by f2 ascending; sweep keeping the running
  // minimum of f2.  O(n log n).
  std::sort(points.begin(), points.end(), [](const Point2& a, const Point2& b) {
    return a.f1 != b.f1 ? a.f1 < b.f1 : a.f2 < b.f2;
  });
  std::vector<Point2> front;
  double best_f2 = std::numeric_limits<double>::infinity();
  for (const Point2& p : points) {
    if (p.f2 < best_f2) {
      // Skip exact duplicates of the previous front point.
      if (!front.empty() && front.back() == p) {
        continue;
      }
      front.push_back(p);
      best_f2 = p.f2;
    }
  }
  return front;
}

}  // namespace bofl::pareto
