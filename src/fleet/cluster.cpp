#include "fleet/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/mbo_cost.hpp"
#include "ilp/schedule_solver.hpp"
#include "priors/knowledge_store.hpp"

namespace bofl::fleet {

namespace {

/// RNG domain tags: each cluster derives independent streams for its
/// deadline schedule and its canonical controller from the fleet seed via
/// stream_seed, so adding clusters (or re-sharding clients) never shifts an
/// existing cluster's draws.
constexpr std::uint64_t kDeadlineDomain = 0xF1EE7'DEAD'11E5ULL;
constexpr std::uint64_t kCanonicalDomain = 0xF1EE7'C0DE'C7F1ULL;

}  // namespace

std::uint64_t to_micros(Seconds s) {
  const double v = s.value();
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v * 1e6));
}

std::uint64_t to_microjoules(Joules j) {
  const double v = j.value();
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v * 1e6));
}

ClusterEngine::ClusterEngine(std::size_t index, const ClusterSpec& spec,
                             const FleetConfig& config,
                             ilp::ScheduleCache* cache,
                             const faults::FaultInjector* injector)
    : index_(index),
      model_(spec.model),
      profile_(spec.profile),
      kind_(config.controller),
      jobs_per_round_(config.jobs_per_round),
      deadline_rng_(stream_seed(config.seed ^ kDeadlineDomain, index)),
      deadline_ratio_(config.deadline_ratio),
      cache_(cache),
      config_(&config) {
  BOFL_REQUIRE(model_ != nullptr, "cluster needs a device model");
  BOFL_REQUIRE(jobs_per_round_ >= 1, "cluster needs at least one job/round");
  BOFL_REQUIRE(deadline_ratio_ >= 1.0, "deadline ratio must be >= 1");
  t_min_ = model_->round_t_min(profile_, jobs_per_round_);
  table_ = device::FlatPerfTable::build(*model_, profile_);
  x_max_flat_ = model_->space().to_flat(model_->space().max_config());
  if (kind_ == FleetControllerKind::kBofl) {
    if (injector != nullptr && injector->plan().has_device_faults()) {
      // The channel's "client" is the cluster index: the canonical device
      // IS the cluster as far as device-level faults are concerned.  The
      // channel survives workload switches (the silicon keeps its faults;
      // only the controller is replaced).
      channel_ =
          injector->make_device_channel(static_cast<std::int64_t>(index_));
    }
    init_controller();
  } else {
    rebuild_true_front();
  }
}

void ClusterEngine::init_controller() {
  core::BoflOptions options = config_->bofl_options;
  options.mbo_cost = core::mbo_cost_for_device(model_->name());
  if (config_->auto_scale_tau) {
    // Same rule as fl::Simulation: keep τ meaningfully smaller than a
    // round so short fleet rounds can still explore.
    options.tau = Seconds{std::min(options.tau.value(), t_min_.value() / 8.0)};
  }
  effective_options_ = options;
  // Generation 0 keeps the original canonical stream; every workload
  // switch derives a fresh, independent substream so the replacement
  // controller's exploration never replays the old one's draws.
  const std::uint64_t base =
      stream_seed(config_->seed ^ kCanonicalDomain, index_);
  controller_ = std::make_unique<core::BoflController>(
      *model_, profile_, device::NoiseModel{}, options,
      generation_ == 0 ? base : stream_seed(base, generation_));
  controller_->set_schedule_cache(cache_);
  applied_policy_ = priors::PriorPolicy::kCold;
  if (config_->knowledge != nullptr) {
    // Ask the knowledge plane for this cluster's prior.  Admission may
    // downgrade (kTrust -> kVerify below the trust bar) or decline
    // (unknown cluster / low confidence), in which case the controller
    // stays bit-identical to a cold start.  After a workload switch this
    // keys on the NEW profile, so a task switch re-admits the prior of the
    // cluster the population just became.
    const priors::KnowledgeStore::Admission admission =
        config_->knowledge->admit(priors::ClusterKey::of(*model_, profile_),
                                  config_->prior_policy);
    if (admission.snapshot != nullptr) {
      controller_->apply_prior(admission.snapshot->make_seed(
                                   config_->knowledge->options().max_verify_ids),
                               admission.policy);
      applied_policy_ = admission.policy;
    }
  }
  if (channel_ != nullptr) {
    controller_->install_fault_model(channel_.get());
  }
  if (pool_ != nullptr) {
    controller_->set_parallel_pool(pool_);
  }
}

void ClusterEngine::set_parallel_pool(runtime::ThreadPool* pool) {
  pool_ = pool;
  if (controller_ != nullptr) {
    controller_->set_parallel_pool(pool);
  }
}

void ClusterEngine::rebuild_true_front() {
  // Reference policies schedule over the true cost surface: the
  // dominance-pruned flat table is their (exact) Pareto front.
  std::vector<ilp::ConfigProfile> all;
  all.reserve(table_.size());
  for (std::size_t flat = 0; flat < table_.size(); ++flat) {
    all.push_back(ilp::ConfigProfile{flat, table_.energy_j[flat],
                                     table_.latency_s[flat]});
  }
  true_front_ = ilp::prune_dominated_profiles(all).profiles;
}

void ClusterEngine::switch_workload(const device::WorkloadProfile& profile) {
  profile_ = profile;
  t_min_ = model_->round_t_min(profile_, jobs_per_round_);
  table_ = device::FlatPerfTable::build(*model_, profile_);
  ++generation_;
  // The old workload's trajectory is stale the moment the population
  // retrains on the new one: drop it so the very next extend_to() replays
  // the replacement controller's own exploration from entry 0.  Clients
  // keep their participation cursors — a cursor deep into the old
  // trajectory lands on the new generation's entry at the same depth.
  // exploration_entries_ keeps accumulating across generations; the
  // re-exploration cost of a switch is exactly what it measures.
  trajectory_.clear();
  if (kind_ == FleetControllerKind::kBofl) {
    init_controller();
  } else {
    rebuild_true_front();
  }
}

void ClusterEngine::extend_to(std::size_t entries, double deadline_factor) {
  while (trajectory_.size() < entries) {
    append_entry(deadline_factor);
  }
}

void ClusterEngine::append_entry(double deadline_factor) {
  const auto k = static_cast<std::int64_t>(trajectory_.size());
  // The paper's §6.1 protocol per trajectory entry: uniform in
  // [T_min, ratio * T_min].  Draws are strictly sequential in k, so lazy
  // extension reproduces the eager schedule; the diurnal factor scales the
  // drawn deadline without touching the draw sequence.
  const Seconds deadline =
      t_min_ * (deadline_rng_.uniform(1.0, deadline_ratio_) * deadline_factor);
  const core::RoundSpec spec{k, jobs_per_round_, deadline};
  RoundEntry entry = kind_ == FleetControllerKind::kBofl
                         ? bofl_entry(spec)
                         : reference_entry(spec);
  entry.deadline_us = to_micros(deadline);
  if (entry.phase != core::Phase::kExploitation) {
    ++exploration_entries_;
  }
  trajectory_.push_back(entry);
}

ClusterEngine::RoundEntry ClusterEngine::bofl_entry(
    const core::RoundSpec& spec) {
  RoundEntry entry;
  // Pessimistic Eqn. 2 BEFORE the entry runs, mirroring the device
  // scenario harness: the worst combined fault effect any job inside
  // [now, now + deadline) could see, at the clamp-capped x_max.
  const double t0 = controller_->sim_time().value();
  faults::DeviceFaultChannel::WorstCase worst;
  if (channel_ != nullptr) {
    worst = channel_->worst_case_in(t0, t0 + spec.deadline.value());
  }
  const device::DvfsConfig capped = device::clamp_config(
      model_->space(), model_->space().max_config(), worst.config_cap);
  const double t_pess =
      model_->latency(profile_, capped).value() * worst.latency_multiplier;
  const double reserve = effective_options_.tau.value() +
                         effective_options_.first_job_allowance * t_pess;
  entry.feasible = static_cast<double>(spec.num_jobs) * t_pess *
                       (1.0 + effective_options_.deadline_safety_margin) <=
                   spec.deadline.value() - reserve;
  const core::RoundTrace trace = controller_->run_round(spec);
  entry.elapsed_us = to_micros(trace.elapsed());
  entry.energy_uj = to_microjoules(trace.energy());
  entry.mbo_energy_uj = to_microjoules(trace.mbo_energy);
  entry.phase = trace.phase;
  if (channel_ != nullptr) {
    // Extension may run on a pool worker; buffer the canonical device's
    // fault episodes (in entry order) instead of emitting inline.  The
    // engine flushes per cluster, in cluster-index order, after the
    // extension fan-out — the same stream order serial extension produced.
    for (faults::FaultEvent& event : channel_->drain_events(spec.index)) {
      pending_fault_events_.push_back(std::move(event));
    }
  }
  return entry;
}

void ClusterEngine::flush_fault_events() {
  for (const faults::FaultEvent& event : pending_fault_events_) {
    faults::emit_fault_event(event);
  }
  pending_fault_events_.clear();
}

ClusterEngine::RoundEntry ClusterEngine::reference_entry(
    const core::RoundSpec& spec) {
  RoundEntry entry;
  entry.phase = core::Phase::kExploitation;
  const double t_max_lat = table_.latency_s[x_max_flat_];
  const double t_max_energy = table_.energy_j[x_max_flat_];
  const auto jobs = static_cast<double>(spec.num_jobs);
  // Reference policies have no fault channel or reserve: feasibility is
  // simply whether running flat out fits the deadline.
  entry.feasible = jobs * t_max_lat <= spec.deadline.value();
  if (kind_ == FleetControllerKind::kOracle) {
    const ilp::IlpOptions ilp_options{};
    const ilp::Schedule schedule =
        cache_ != nullptr
            ? cache_->solve_pruned(true_front_, spec.num_jobs,
                                   spec.deadline.value(), ilp_options)
            : ilp::solve_round_schedule_pruned(true_front_, spec.num_jobs,
                                               spec.deadline.value(),
                                               ilp_options);
    if (schedule.feasible) {
      entry.elapsed_us = to_micros(Seconds{schedule.total_latency});
      entry.energy_uj = to_microjoules(Joules{schedule.total_energy});
      return entry;
    }
    // Infeasible even for the oracle: run flat out and eat the miss.
  }
  entry.elapsed_us = to_micros(Seconds{jobs * t_max_lat});
  entry.energy_uj = to_microjoules(Joules{jobs * t_max_energy});
  return entry;
}

ClusterEngine::PublishBatch ClusterEngine::prepare_publish() const {
  PublishBatch batch;
  if (kind_ != FleetControllerKind::kBofl || controller_ == nullptr) {
    return batch;
  }
  batch.key = priors::ClusterKey::of(*model_, profile_);
  switch (controller_->prior_state()) {
    case core::BoflController::PriorState::kVerified:
    case core::BoflController::PriorState::kAdopted:
      batch.has_outcome = true;
      batch.confirmed = true;
      break;
    case core::BoflController::PriorState::kDemoted:
      batch.has_outcome = true;
      batch.confirmed = false;
      break;
    case core::BoflController::PriorState::kNone:
    case core::BoflController::PriorState::kVerifying:
      break;
  }
  if (controller_->phase() == core::Phase::kExploitation) {
    batch.has_snapshot = true;
    batch.snapshot = priors::distill(
        *controller_, static_cast<std::int64_t>(trajectory_.size()));
  }
  return batch;
}

void ClusterEngine::apply_publish(priors::KnowledgeStore& store,
                                  const PublishBatch& batch) {
  if (batch.has_outcome) {
    store.record_outcome(batch.key, batch.confirmed);
  }
  if (batch.has_snapshot) {
    store.contribute(batch.key, batch.snapshot);
  }
}

void ClusterEngine::publish_to(priors::KnowledgeStore& store) const {
  apply_publish(store, prepare_publish());
}

std::vector<std::size_t> ClusterEngine::pareto_flat_ids() const {
  if (kind_ == FleetControllerKind::kBofl) {
    return controller_->pareto_flat_ids();
  }
  std::vector<std::size_t> ids;
  ids.reserve(true_front_.size());
  for (const ilp::ConfigProfile& profile : true_front_) {
    ids.push_back(profile.config_id);
  }
  return ids;
}

const char* to_string(FleetControllerKind kind) {
  switch (kind) {
    case FleetControllerKind::kBofl:
      return "BoFL";
    case FleetControllerKind::kPerformant:
      return "Performant";
    case FleetControllerKind::kOracle:
      return "Oracle";
  }
  return "unknown";
}

}  // namespace bofl::fleet
