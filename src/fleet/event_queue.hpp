// Event-driven round scheduling: a priority queue of client-completion
// events drained in deterministic (timestamp, client-id) order.
//
// This replaces per-client polling in the round loop.  A round pushes one
// completion event per participating client (training elapsed + any
// straggler delay) and then *drains* the queue in arrival order, which is
// exactly what the server experiences: reports trickling in until either
// everyone reported or the straggler cutoff fires.  The ordering rule —
// ascending timestamp, ties broken by ascending client id — makes the drain
// sequence a pure function of the event set, so any producer order (any
// worker count, any shard layout) yields the same sequence.
//
// The queue is single-owner by design: one shard (or one fl::Simulation
// round loop) owns one queue and touches it from one task at a time, so no
// synchronization is needed — the same ownership discipline as
// faults::DeviceFaultChannel.
//
// Time is a template parameter: fl::Simulation schedules in double seconds;
// the fleet engine schedules in integer microseconds so cross-shard
// reductions stay associative (see fleet_engine.hpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace bofl::fleet {

/// One "client finished (and its report arrived)" event.
template <typename Time>
struct CompletionEvent {
  Time time{};
  std::uint64_t client = 0;

  /// Drain order: earliest arrival first, client id breaking ties.
  friend bool operator<(const CompletionEvent& a, const CompletionEvent& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.client < b.client;
  }
  friend bool operator==(const CompletionEvent&,
                         const CompletionEvent&) = default;
};

/// Min-heap of completion events with peak-depth tracking (the
/// `fleet.event_queue_depth` telemetry histogram samples peak_depth() once
/// per shard per round).  pop_next() returns events in (time, client) order.
template <typename Time>
class CompletionQueue {
 public:
  void push(CompletionEvent<Time> event) {
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    peak_depth_ = std::max(peak_depth_, heap_.size());
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Remove and return the earliest event (requires !empty()).
  CompletionEvent<Time> pop_next() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    CompletionEvent<Time> event = heap_.back();
    heap_.pop_back();
    return event;
  }

  /// Largest size() ever seen (across rounds, until reset_peak()).
  [[nodiscard]] std::size_t peak_depth() const { return peak_depth_; }
  void reset_peak() { peak_depth_ = heap_.size(); }

  /// Drop all events; keeps the heap's capacity for the next round.
  void clear() { heap_.clear(); }

 private:
  struct Later {
    bool operator()(const CompletionEvent<Time>& a,
                    const CompletionEvent<Time>& b) const {
      return b < a;  // min-heap
    }
  };
  std::vector<CompletionEvent<Time>> heap_;
  std::size_t peak_depth_ = 0;
};

/// Round-close accounting over a drained queue: the server waits for
/// reports in arrival order and stops at `cutoff` when one is set.
template <typename Time>
struct RoundClose {
  Time wall{};                ///< last counted arrival (bounded by cutoff)
  std::size_t arrived = 0;    ///< reports within the cutoff
  std::size_t timed_out = 0;  ///< reports past the cutoff
};

/// Drain `queue` to empty, folding each arrival into the round-close
/// accounting: an arrival strictly past `cutoff` counts as timed out and
/// bounds the wall at the cutoff (the server stopped waiting); otherwise the
/// wall advances to the arrival.  With no cutoff the wall is simply the last
/// arrival.  The result is order-independent (max + counts), so it equals
/// the per-client polling loop it replaced, bit for bit.
///
/// When `timed_out_clients` is non-null, the ids of the timed-out clients
/// are appended in drain order (a pure function of the event set, so the
/// list is shard/thread-layout invariant).  The fleet engine uses it to
/// resync those clients' replay cursors: a timed-out report was discarded
/// by the server, so the client retries the SAME trajectory entry at its
/// next selection instead of advancing past work that never counted.
template <typename Time>
[[nodiscard]] RoundClose<Time> close_round(
    CompletionQueue<Time>& queue, std::optional<Time> cutoff,
    std::vector<std::uint64_t>* timed_out_clients = nullptr) {
  RoundClose<Time> close;
  while (!queue.empty()) {
    const CompletionEvent<Time> event = queue.pop_next();
    if (cutoff.has_value() && event.time > *cutoff) {
      ++close.timed_out;
      close.wall = std::max(close.wall, *cutoff);
      if (timed_out_clients != nullptr) {
        timed_out_clients->push_back(event.client);
      }
    } else {
      ++close.arrived;
      close.wall = std::max(close.wall, event.time);
    }
  }
  return close;
}

}  // namespace bofl::fleet
