// Per-cluster canonical cost trajectories.
//
// At fleet scale most clients are near-duplicates: same SoC, same workload
// class (ROADMAP item 2's observation).  The fleet engine therefore keeps
// ONE canonical pace controller per cluster — a full BoflController (or the
// Performant / Oracle reference policy) running on the cluster's device
// model with the cluster's own deadline stream — and represents every
// client in the cluster as a replay of the canonical per-participation
// trajectory, scaled by that client's pure-hash heterogeneity and jitter
// factors.  A client that has participated k times sits at trajectory entry
// k; entries are extended lazily (and serially, in cluster-id order) to the
// deepest cursor any participant of the upcoming round needs, so extension
// is a pure function of the round's participant set and never depends on
// shard or thread counts.
//
// Entries are quantized to integer microseconds / microjoules.  That is
// what makes the whole engine's cross-shard arithmetic associative: every
// downstream accumulation is integer addition or max, so fleet traces are
// bit-identical at any shard count (see fleet_engine.hpp).
//
// The cluster also owns the cluster-level device::FlatPerfTable (the PR 5
// SoA cost surface, built once per cluster instead of once per client) and
// shares the fleet-wide ilp::ScheduleCache, so the steady-state exploitation
// work of a million near-duplicate clients is paid once per distinct round
// problem.  The cluster index is the "Pareto-front handle": clients carry
// only the index; the front itself (pareto_flat_ids) lives here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/bofl_controller.hpp"
#include "faults/fault_injector.hpp"
#include "fleet/fleet_config.hpp"
#include "ilp/schedule_cache.hpp"
#include "priors/cluster_key.hpp"
#include "priors/snapshot.hpp"

namespace bofl::priors {
class KnowledgeStore;
}

namespace bofl::runtime {
class ThreadPool;
}

namespace bofl::fleet {

/// Quantization helpers: the engine's integer units.
[[nodiscard]] std::uint64_t to_micros(Seconds s);
[[nodiscard]] std::uint64_t to_microjoules(Joules j);

class ClusterEngine {
 public:
  /// `spec.model`, `config` and `cache` (nullable) must outlive the
  /// engine (workload switches rebuild the controller from `config`).  When
  /// `injector` (nullable) carries device-level faults, the canonical
  /// controller runs behind a DeviceFaultChannel keyed on the cluster
  /// index, so storms / clamps / flaky reads hit the whole cluster's
  /// trajectory exactly as they would a single device.
  ClusterEngine(std::size_t index, const ClusterSpec& spec,
                const FleetConfig& config, ilp::ScheduleCache* cache,
                const faults::FaultInjector* injector);

  /// One canonical participation: what a cluster-median client pays the
  /// k-th time it is selected.
  struct RoundEntry {
    std::uint64_t deadline_us = 0;    ///< assigned round deadline
    std::uint64_t elapsed_us = 0;     ///< training wall time
    std::uint64_t energy_uj = 0;      ///< training energy
    std::uint64_t mbo_energy_uj = 0;  ///< MBO update cost (phases 1–2)
    core::Phase phase = core::Phase::kExploitation;
    /// Pessimistic Eqn. 2 feasibility, evaluated BEFORE the entry ran (the
    /// scenario harness's never-miss precondition): at the worst fault
    /// effect in the deadline window, jobs * T_pess * (1 + margin) fits the
    /// deadline minus the tau + first-job reserve.  An infeasible entry is
    /// allowed to miss; a feasible one never is.
    bool feasible = true;
  };

  /// Ensure at least `entries` trajectory entries exist, scaling any NEWLY
  /// drawn deadline by `deadline_factor` (diurnal pressure; 1 = neutral).
  /// The underlying uniform draw stays strictly sequential in the entry
  /// index, so lazy extension reproduces the eager schedule for every
  /// factor sequence.  Distinct clusters may extend concurrently (each owns
  /// its controller, RNG streams and fault channel; the shared
  /// ScheduleCache is striped and bit-stable under races) — but the SAME
  /// cluster must never be extended from two threads.  Fault episodes raised
  /// during extension are buffered; the engine drains them in cluster-index
  /// order via flush_fault_events() so the telemetry stream stays canonical
  /// regardless of extension order.
  void extend_to(std::size_t entries, double deadline_factor = 1.0);

  /// Emit the fault episodes buffered since the last flush, in the entry
  /// order they occurred.  Serial only: the engine calls this in
  /// cluster-index order after each round's extension fan-out, reproducing
  /// the byte stream serial extension used to emit inline.
  void flush_fault_events();

  /// Hand the canonical controller a pool for its GP/EHVI inner loops.
  /// Survives switch_workload (re-applied when the controller is rebuilt).
  /// When control-plane extension itself runs on pool workers,
  /// parallel_for_each detects re-entry and runs those inner loops inline —
  /// same bits either way.
  void set_parallel_pool(runtime::ThreadPool* pool);

  /// Non-stationary workload switch: from this round on, the cluster
  /// trains `profile`.  Rebuilds the cost surface, REPLACES the canonical
  /// controller (fresh exploration on a generation-derived seed) and drops
  /// the old workload's trajectory — the next extend_to() replays the new
  /// controller from entry 0, so clients mid-replay land on the new
  /// generation's costs at their current participation depth.  With a
  /// knowledge store attached, the new controller re-admits the prior of
  /// the NEW (device, workload) cluster key — a mispredicting prior then
  /// demotes through the usual drift path.
  void switch_workload(const device::WorkloadProfile& profile);

  /// Number of workload switches applied so far; entry costs and the
  /// Pareto front are only comparable within one generation.
  [[nodiscard]] std::size_t generation() const { return generation_; }

  [[nodiscard]] const RoundEntry& entry(std::size_t k) const {
    return trajectory_[k];
  }
  [[nodiscard]] std::size_t size() const { return trajectory_.size(); }

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const device::DeviceModel& model() const { return *model_; }
  [[nodiscard]] const device::WorkloadProfile& profile() const {
    return profile_;
  }
  /// Round T_min (Table 2 definition) of the cluster's device/workload.
  [[nodiscard]] Seconds t_min() const { return t_min_; }
  /// Cluster-level SoA cost surface (shared by reference policies and
  /// reporting; clients never build their own).
  [[nodiscard]] const device::FlatPerfTable& flat_table() const {
    return table_;
  }
  /// The cluster's Pareto front, as flat config ids: the canonical BoFL
  /// controller's constructed front, or the true front for the reference
  /// policies.  This is what a client's "Pareto-front handle" (its cluster
  /// index) dereferences to.
  [[nodiscard]] std::vector<std::size_t> pareto_flat_ids() const;

  /// Trajectory entries spent outside exploitation (phases 1–2) — the
  /// knowledge plane's headline metric: warm-started clusters collapse
  /// this to the verification pass.
  [[nodiscard]] std::size_t exploration_entries() const {
    return exploration_entries_;
  }
  /// The prior policy the store actually granted at construction (kCold
  /// when no store was attached, the cluster was unknown, or admission
  /// declined).
  [[nodiscard]] priors::PriorPolicy applied_policy() const {
    return applied_policy_;
  }
  /// How the canonical controller's prior resolved (kNone for reference
  /// policies and cold starts).
  [[nodiscard]] core::BoflController::PriorState prior_state() const {
    return controller_ != nullptr
               ? controller_->prior_state()
               : core::BoflController::PriorState::kNone;
  }

  /// The live canonical controller (nullptr for reference policies).  The
  /// scenario harness samples its observed Pareto front per round; the
  /// pointer is invalidated by switch_workload.
  [[nodiscard]] const core::BoflController* canonical_controller() const {
    return controller_.get();
  }

  /// Everything a cluster wants to tell the knowledge store at end of run:
  /// outcome feedback for the confidence score, plus a distilled snapshot
  /// when the canonical controller reached exploitation.  Building the
  /// snapshot (GP posterior slices, front distillation) is the expensive
  /// part and is side-effect-free, so batches for distinct clusters are
  /// prepared in parallel; the store itself is only touched when the engine
  /// applies the batches serially in cluster-index order, keeping the
  /// warm-store bytes layout-invariant.
  struct PublishBatch {
    priors::ClusterKey key{};
    bool has_outcome = false;
    bool confirmed = false;
    bool has_snapshot = false;
    priors::PriorSnapshot snapshot{};
  };
  /// Const and store-free: safe to call concurrently across clusters.
  [[nodiscard]] PublishBatch prepare_publish() const;
  /// Apply a prepared batch to `store`.  Serial only, cluster-index order.
  static void apply_publish(priors::KnowledgeStore& store,
                            const PublishBatch& batch);

  /// prepare_publish + apply_publish in one step (kBofl only; no-op
  /// otherwise).  The engine's serial escape hatch uses this in
  /// cluster-index order after the round loop.
  void publish_to(priors::KnowledgeStore& store) const;

 private:
  void append_entry(double deadline_factor);
  void init_controller();
  void rebuild_true_front();
  [[nodiscard]] RoundEntry bofl_entry(const core::RoundSpec& spec);
  [[nodiscard]] RoundEntry reference_entry(const core::RoundSpec& spec);

  std::size_t index_ = 0;
  const device::DeviceModel* model_ = nullptr;
  device::WorkloadProfile profile_;
  FleetControllerKind kind_ = FleetControllerKind::kBofl;
  std::int64_t jobs_per_round_ = 0;
  Seconds t_min_{0.0};
  device::FlatPerfTable table_;
  std::size_t x_max_flat_ = 0;
  /// True-front profiles (dominance-pruned over the flat table), used by
  /// the Oracle policy's per-entry ILP.
  std::vector<ilp::ConfigProfile> true_front_;
  Rng deadline_rng_;
  double deadline_ratio_ = 8.0;
  ilp::ScheduleCache* cache_ = nullptr;  ///< non-owning, optional
  /// The engine's config (stable for the engine's lifetime): workload
  /// switches rebuild the canonical controller from it.
  const FleetConfig* config_ = nullptr;
  /// Canonical BoFL controller (kBofl only) and its fault channel.
  std::unique_ptr<faults::DeviceFaultChannel> channel_;
  std::unique_ptr<core::BoflController> controller_;
  /// The options the live controller was built with (after tau
  /// auto-scaling) — inputs to the per-entry Eqn. 2 feasibility check.
  core::BoflOptions effective_options_{};
  /// Fault episodes raised while extending, awaiting the engine's ordered
  /// flush.  Only the extending thread appends; only the (serial) flush
  /// drains — never both at once.
  std::vector<faults::FaultEvent> pending_fault_events_;
  /// Pool handed to the canonical controller's inner loops; survives
  /// workload switches (init_controller re-applies it).
  runtime::ThreadPool* pool_ = nullptr;
  std::vector<RoundEntry> trajectory_;
  std::size_t exploration_entries_ = 0;
  std::size_t generation_ = 0;
  priors::PriorPolicy applied_policy_ = priors::PriorPolicy::kCold;
};

}  // namespace bofl::fleet
